"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper, asserts its
qualitative claims, times the harness via pytest-benchmark, and writes
the rendered table to ``benchmarks/results/`` so the numbers are
inspectable after a ``--benchmark-only`` run.

Machine-readable numbers (the perf trajectory across PRs) accumulate in
``benchmarks/results/BENCH_engine.json``; see :mod:`_bench_util`, whose
helpers are re-exported here for the existing figure benchmarks.
"""

import pytest

from _bench_util import (  # noqa: F401  (re-exported for benchmarks)
    BENCH_JSON,
    RESULTS_DIR,
    time_best,
    update_bench_json,
    write_result,
)


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        default=None,
        help=(
            "record a Chrome trace-event file (viewable in Perfetto) plus a "
            "trace summary and gpusim bottleneck report during the serving "
            "replay benchmark"
        ),
    )


@pytest.fixture
def trace_out(request):
    """Path for the replay benchmark's trace export (None = tracing off)."""
    return request.config.getoption("--trace-out")
