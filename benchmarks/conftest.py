"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper, asserts its
qualitative claims, times the harness via pytest-benchmark, and writes
the rendered table to ``benchmarks/results/`` so the numbers are
inspectable after a ``--benchmark-only`` run.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)


def write_result(name: str, text: str) -> None:
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
