"""Figure 9 / Appendix A.7: ML workloads across A100, H800, MI308X.

Paper claims: RedFuser keeps clear average speedups over Eager on every
platform (MoE 1.6-6.7x, MHA 3.4-7.9x; Quant+GEMM 2.0x on MI308X).
"""

from conftest import write_result

from repro.harness import fig9_multiplatform, geomean, speedup_table


def _results():
    return fig9_multiplatform(("A100", "H800", "MI308X"))


def test_fig9_claims():
    results = _results()
    for key, rows in results.items():
        mean = geomean([r["redfuser_speedup"] for r in rows])
        assert mean > 1.2, (key, mean)


def test_fig9_benchmark(benchmark):
    results = benchmark(_results)
    tables = [
        speedup_table(rows, f"Figure 9 ({key}): speedup vs Eager")
        for key, rows in results.items()
    ]
    write_result("fig9_multiplatform", "\n\n".join(tables))
