"""Execution-backend benchmarks: one dispatch architecture, many "hows".

Every registered :class:`~repro.engine.backends.ExecutionBackend` runs
the same engine-servable workloads (attention, MLA decode, FP8
quant+GEMM single-row queries) against the ``unfused`` reference:

* the three NumPy paths measure real wall-clock;
* the ``tile_ir`` backend additionally executes the *generated* tile
  program through the NumPy interpreter and reports the analytical GPU
  cost model's latency estimate for the tuned kernel — the number a real
  deployment of the generated code would target.

Numbers land in ``benchmarks/results/BENCH_backends.json`` (one section
per workload, one entry per backend).  Set ``BENCH_QUICK=1`` for the CI
smoke configuration (smaller shapes, fewer repeats).
"""

import os

import numpy as np
from _bench_util import BENCH_BACKENDS_JSON, update_bench_json, write_result

from repro.engine import Engine, available_backends, get_backend
from repro.harness.runner import ENGINE_WORKLOADS, engine_workload, run_backend_comparison

QUICK = os.environ.get("BENCH_QUICK") == "1"
LENGTH = 128 if QUICK else 512
WIDTH = 8 if QUICK else 32
REPEATS = 1 if QUICK else 3
DEVICE = "A10"


def test_backends_agree_and_record():
    """All backends agree with unfused; results + estimates are recorded."""
    rows = run_backend_comparison(
        ENGINE_WORKLOADS,
        length=LENGTH,
        width=WIDTH,
        device_name=DEVICE,
        repeats=REPEATS,
    )
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], []).append(row)

    for kind, entries in by_workload.items():
        names = {e["backend"] for e in entries}
        assert names == set(available_backends()), f"{kind}: missing backends"
        for entry in entries:
            assert entry["supported"], f"{kind}/{entry['backend']} unsupported"
            assert entry["max_abs_error"] < 1e-6, (
                f"{kind}/{entry['backend']} deviates by {entry['max_abs_error']}"
            )
            # per-backend execution counters prove who served the request
            assert entry["executions_recorded"] >= 1
        tile = next(e for e in entries if e["backend"] == "tile_ir")
        assert tile["simulated_latency_seconds"] > 0
        assert tile["tile_config"]["num_segments"] >= 1
        update_bench_json(kind, entries, path=BENCH_BACKENDS_JSON)

    update_bench_json(
        "meta",
        {
            "length": LENGTH,
            "width": WIDTH,
            "repeats": REPEATS,
            "gpu": DEVICE,
            "quick": QUICK,
            "backends": list(available_backends()),
        },
        path=BENCH_BACKENDS_JSON,
    )

    lines = [f"execution backends (L={LENGTH}, w={WIDTH}, gpu={DEVICE})"]
    for kind, entries in by_workload.items():
        lines.append(f"  {kind}:")
        for entry in entries:
            sim = entry.get("simulated_latency_seconds")
            sim_txt = f"   sim {sim * 1e6:8.2f} us" if sim else ""
            lines.append(
                f"    {entry['backend']:<12} {entry['seconds'] * 1e3:9.3f} ms"
                f"{sim_txt}"
            )
    write_result("bench_backends", "\n".join(lines))


def test_tile_ir_compiles_once_per_shape():
    """Repeat queries of one shape reuse the cached tile program."""
    rng = np.random.default_rng(7)
    cascade, inputs = engine_workload("mha", rng, length=LENGTH, width=WIDTH)
    engine = Engine()
    plan = engine.plan_for(cascade)
    for _ in range(4):
        engine.run(cascade, inputs, mode="tile_ir", gpu=DEVICE)
    state = plan.describe()["tile_ir"]
    assert state["compiled_variants"] == 1  # one (length, widths, gpu) variant
    assert plan.execution_counts["tile_ir"] == 4
    assert engine.stats.backend_executions["tile_ir"] == 4
    update_bench_json(
        "tile_ir_cache",
        {
            "executions": plan.execution_counts["tile_ir"],
            "compiled_variants": state["compiled_variants"],
            "estimate": state["estimates"][0],
        },
        path=BENCH_BACKENDS_JSON,
    )


def test_tile_ir_estimates_scale_with_gpu():
    """The attached cost-model estimate responds to the simulated device."""
    rng = np.random.default_rng(11)
    cascade, inputs = engine_workload("mha", rng, length=LENGTH, width=WIDTH)
    engine = Engine()
    plan = engine.plan_for(cascade)
    tile = get_backend("tile_ir")
    latencies = {}
    for gpu in ("A10", "H800"):
        engine.run(cascade, inputs, mode="tile_ir", gpu=gpu)
        latencies[gpu] = tile.estimate_for(plan, gpu).latency_seconds
    assert latencies["H800"] <= latencies["A10"]  # H800 is strictly faster
    update_bench_json(
        "tile_ir_gpus", latencies, path=BENCH_BACKENDS_JSON
    )
