"""Figure 5a: MHA subgraph performance on A10 (configs H1-H9).

Paper claims reproduced here: RedFuser averages ~1.09x FlashAttention2
and outperforms it on H1-H5; it beats Dynamo and TVM by large factors
on prefill shapes.
"""

from conftest import write_result

from repro.harness import fig5a_mha, relative_summary, speedup_table


def _rows():
    return fig5a_mha("A10")


def test_fig5a_claims():
    rows = _rows()
    vs_fa2 = relative_summary(rows, "redfuser", "FlashAttention2")
    assert 0.95 <= vs_fa2 <= 1.3, vs_fa2  # parity-to-slightly-ahead
    for row in rows[:5]:  # H1-H5: RedFuser outperforms FA2
        assert row["redfuser_speedup"] >= row["FlashAttention2_speedup"]
    assert relative_summary(rows, "redfuser", "dynamo") > 1.5
    assert relative_summary(rows, "redfuser", "tvm") > 1.5


def test_fig5a_benchmark(benchmark):
    rows = benchmark(_rows)
    table = speedup_table(rows, "Figure 5a: MHA on A10 (speedup vs PyTorch Eager)")
    write_result("fig5a_mha", table)
    benchmark.extra_info["redfuser_vs_fa2"] = relative_summary(
        rows, "redfuser", "FlashAttention2"
    )
