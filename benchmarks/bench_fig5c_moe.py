"""Figure 5c: MoE routing performance on A10 (configs R1-R8).

Paper claims: RedFuser delivers ~1.7x over Dynamo and ~6.6x over TVM.
"""

from conftest import write_result

from repro.harness import fig5c_moe, relative_summary, speedup_table


def _rows():
    return fig5c_moe("A10")


def test_fig5c_claims():
    rows = _rows()
    assert relative_summary(rows, "redfuser", "dynamo") > 1.3
    assert relative_summary(rows, "redfuser", "tvm") > 2.5
    assert all(row["redfuser_speedup"] > 1.0 for row in rows)


def test_fig5c_benchmark(benchmark):
    rows = benchmark(_rows)
    write_result(
        "fig5c_moe",
        speedup_table(rows, "Figure 5c: MoE routing on A10 (speedup vs Eager)"),
    )
