"""Figure 6b: incremental vs non-incremental across parallelism.

Paper claims: (1) non-incremental is feasible only for segments <= 112;
(2) at matched parallelism non-incremental is faster; (3) performance
peaks at integer waves/SM, globally at waves = 3 (~1.25x) — a point
only the incremental mode can reach.
"""

from conftest import write_result

from repro.harness import fig6b_incremental, series_table


def _rows():
    return fig6b_incremental("A10")


def test_fig6b_claims():
    rows = _rows()
    for row in rows:
        feasible = row["non_incremental_perf"] is not None
        assert feasible == (row["segment_len"] <= 112)
        if feasible:  # non-incremental faster at matched parallelism
            assert row["non_incremental_perf"] >= row["incremental_perf"]
    best = max(rows, key=lambda r: r["incremental_perf"])
    assert abs(best["waves_per_sm"] - 3.0) < 0.01  # peak at 3 waves/SM
    assert best["non_incremental_perf"] is None  # reachable only incrementally
    assert best["incremental_perf"] > 1.15  # ~1.25x in the paper


def test_fig6b_benchmark(benchmark):
    rows = benchmark(_rows)
    columns = ["segment_len", "waves_per_sm", "incremental_perf", "non_incremental_perf"]
    write_result(
        "fig6b_incremental",
        series_table(rows, columns, "Figure 6b: normalized performance by waves/SM"),
    )
