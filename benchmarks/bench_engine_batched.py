"""Serving-engine benchmarks: plan-cache amortization and batched throughput.

Two claims of the compile-once/execute-many architecture are measured
and asserted here:

* **cold compile vs cache hit** — the first request for a cascade shape
  pays for ACRF (symbolic decomposition + simplification + randomized
  equivalence checks); every later request is a signature lookup that
  performs zero symbolic work.
* **batched vs looped** — executing B independent queries through the
  vectorized :class:`~repro.engine.BatchExecutor` beats a per-query
  Python loop over the same plan by a wide margin (>= 3x at B >= 32)
  while producing the same numbers to 1e-6.

Results land in ``benchmarks/results/BENCH_engine.json``.
"""

import numpy as np
from _bench_util import time_best, update_bench_json, write_result

from repro.core import Cascade, Reduction
from repro.engine import BatchExecutor, Engine, fusion_compile_count
from repro.symbolic import const, exp, var

BATCH = 64
LENGTH = 256
WIDTH = 8


def _attention_cascade(scale: float = 1.0) -> Cascade:
    """Attention-shaped cascade; ``scale`` makes signatures distinct so a
    cold compile stays cold regardless of what ran earlier in the session."""
    P, V, m, t = var("P"), var("V"), var("m"), var("t")
    return Cascade(
        "bench_engine",
        ("P", "V"),
        (
            Reduction("m", "max", P * const(scale)),
            Reduction("t", "sum", exp(P * const(scale) - m)),
            Reduction("O", "sum", exp(P * const(scale) - m) / t * V),
        ),
    )


def _queries(rng: np.random.Generator, n: int):
    return [
        {"P": rng.normal(size=(LENGTH, 1)), "V": rng.normal(size=(LENGTH, WIDTH))}
        for _ in range(n)
    ]


def _stack(queries):
    return {
        "P": np.stack([q["P"] for q in queries]),
        "V": np.stack([q["V"] for q in queries]),
    }


def test_cold_compile_vs_cache_hit():
    engine = Engine()
    cascade = _attention_cascade(1.000173)  # unique shape -> truly cold

    def cold():
        plan = engine.plan_for(cascade)
        plan.fused
        return plan

    def hit():
        plan = engine.plan_for(_attention_cascade(1.000173))
        plan.fused
        return plan

    cold_seconds = time_best(cold, repeats=1)
    plan = engine.cache.peek(engine.plan_for(cascade).signature)
    compiles_before = fusion_compile_count()
    hit_seconds = time_best(hit, repeats=5)
    assert fusion_compile_count() == compiles_before  # hits: zero symbolic work
    assert hit() is plan
    assert hit_seconds < cold_seconds
    update_bench_json(
        "plan_cache",
        {
            "cold_compile_seconds": cold_seconds,
            "cache_hit_seconds": hit_seconds,
            "amortization_x": cold_seconds / max(hit_seconds, 1e-12),
            "cache": engine.stats.snapshot(),
        },
    )


def test_batched_beats_looped_reference():
    engine = Engine()
    plan = engine.plan_for(_attention_cascade())
    plan.fused  # warm: measure execution, not compilation
    rng = np.random.default_rng(0)
    queries = _queries(rng, BATCH)
    batch = _stack(queries)
    executor = BatchExecutor(plan, num_segments=4)

    def looped():
        return [
            plan.execute(q, mode="fused_tree", num_segments=4) for q in queries
        ]

    def batched():
        return executor.run(batch)

    reference = looped()
    result = batched()
    for i, ref in enumerate(reference):
        for name in ("m", "t", "O"):
            np.testing.assert_allclose(
                result[name][i], ref[name], rtol=1e-6, atol=1e-9
            )

    looped_seconds = time_best(looped, repeats=3)
    batched_seconds = time_best(batched, repeats=3)
    speedup = looped_seconds / batched_seconds
    assert speedup >= 3.0, f"batched speedup only {speedup:.2f}x"

    per_query_us = batched_seconds / BATCH * 1e6
    update_bench_json(
        "batched_throughput",
        {
            "batch": BATCH,
            "length": LENGTH,
            "width": WIDTH,
            "looped_seconds": looped_seconds,
            "batched_seconds": batched_seconds,
            "speedup_x": speedup,
            "batched_us_per_query": per_query_us,
        },
    )
    write_result(
        "bench_engine_batched",
        "\n".join(
            [
                f"engine batched execution (B={BATCH}, L={LENGTH}, w={WIDTH})",
                f"  looped  : {looped_seconds * 1e3:10.3f} ms",
                f"  batched : {batched_seconds * 1e3:10.3f} ms"
                f"   ({per_query_us:.1f} us/query)",
                f"  speedup : {speedup:10.2f} x",
            ]
        ),
    )


def test_stream_session_throughput():
    """Streaming serves chunks with O(1) state; record its unit cost."""
    engine = Engine()
    plan = engine.plan_for(_attention_cascade())
    rng = np.random.default_rng(1)
    data = {"P": rng.normal(size=(4096, 1)), "V": rng.normal(size=(4096, WIDTH))}

    def stream():
        session = plan.stream()
        for start in range(0, 4096, 256):
            session.feed(
                {name: arr[start : start + 256] for name, arr in data.items()}
            )
        return session.values()

    got = stream()
    ref = plan.execute(data, mode="unfused")
    np.testing.assert_allclose(got["O"], ref["O"], rtol=1e-6, atol=1e-9)
    seconds = time_best(stream, repeats=3)
    update_bench_json(
        "stream_session",
        {"positions": 4096, "chunk": 256, "seconds": seconds},
    )
