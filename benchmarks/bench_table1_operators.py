"""Table 1: reduction operations and their compatible combine operators.

Regenerates the operator table and re-verifies the algebraic conditions
of section 3.2.1 (associativity, commutativity, identity,
distributivity) numerically.
"""

from conftest import write_result

from repro.core import TABLE1, compatible_combine, distributes_over, reduce_op


def _table():
    rows = []
    for name, otimes in TABLE1.items():
        rows.append((name, "+" if otimes.name == "add" else "*"))
    return rows


def test_table1_contents():
    rows = dict(_table())
    assert rows["max"] == rows["min"] == rows["topk"] == "+"
    assert rows["sum"] == rows["prod"] == "*"
    for name in ("sum", "max", "min"):
        assert distributes_over(reduce_op(name), compatible_combine(name))


def test_table1_benchmark(benchmark):
    rows = benchmark(_table)
    lines = ["Table 1: reduction op -> compatible combine op"]
    lines += [f"  {name:>8} -> {op}" for name, op in rows]
    write_result("table1_operators", "\n".join(lines))
