"""Figure 5b: MLA subgraph performance on H800 (configs L1-L9).

Paper claims: RedFuser reaches ~102% of FlashMLA and clearly beats
Dynamo (2.4x) and TVM (8.7x).
"""

from conftest import write_result

from repro.harness import fig5b_mla, relative_summary, speedup_table


def _rows():
    return fig5b_mla("H800")


def test_fig5b_claims():
    rows = _rows()
    vs_flashmla = relative_summary(rows, "redfuser", "FlashMLA")
    assert 0.9 <= vs_flashmla <= 1.1, vs_flashmla  # parity with FlashMLA
    assert relative_summary(rows, "redfuser", "dynamo") > 1.3
    assert relative_summary(rows, "redfuser", "tvm") > 3.0


def test_fig5b_benchmark(benchmark):
    rows = benchmark(_rows)
    write_result(
        "fig5b_mla",
        speedup_table(rows, "Figure 5b: MLA on H800 (speedup vs PyTorch Eager)"),
    )
