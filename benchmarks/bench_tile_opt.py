"""Tile-IR schedule optimizer: simulated-cycle reduction on fig5 workloads.

For each tile-servable fig5 workload (MHA on A10, MLA and Quant+GEMM on
H800 — MoE routing's top-k epilogue is outside the tile_ir class) the
tuner's winning kernel is re-costed under the engine-slot schedule model
at ``opt_level=0`` (serial issue, the legacy behavior) and at
``opt_level=2`` (dead code + unroll-by-two + temp renaming + slot
scheduling with software-pipelined loop accounting).  Both levels are
priced by the same schedule-aware model, so their ratio isolates what
the optimizer reclaimed rather than a cost-model switch.

Gate: the modeled cycle reduction must be >= 1.3x on at least two of the
three workloads (the optimizer's acceptance bar; the rewrites themselves
are bitwise-identity-checked in tests/test_tile_opt.py and
tests/test_engine_differential.py).

``BENCH_QUICK=1`` restricts each workload to its first config row.
Numbers land in ``benchmarks/results/BENCH_tileopt.json`` and the MHA
per-pass delta table in ``benchmarks/results/bench_tile_opt.txt``.
"""

import os

from conftest import RESULTS_DIR, update_bench_json, write_result

from repro.codegen.autotune import autotune
from repro.codegen.opt import optimize_programs
from repro.codegen.tensorize import (
    tensorize_multi_segment,
    tensorize_single_segment,
)
from repro.gpusim import A10, H800
from repro.harness import optimization_table
from repro.workloads import attention, mla, quant_gemm
from repro.workloads.configs import (
    MHA_CONFIGS,
    MLA_CONFIGS,
    QUANT_GEMM_CONFIGS,
)

QUICK = bool(os.environ.get("BENCH_QUICK"))
BENCH_TILEOPT_JSON = RESULTS_DIR / "BENCH_tileopt.json"

#: (workload, module, config table, fig5 device)
WORKLOADS = (
    ("mha", attention, MHA_CONFIGS, A10),
    ("mla", mla, MLA_CONFIGS, H800),
    ("quant_gemm", quant_gemm, QUANT_GEMM_CONFIGS, H800),
)
CONFIGS_PER_WORKLOAD = 1 if QUICK else 2

GATE_SPEEDUP = 1.3
GATE_WORKLOADS = 2

_rows_cache = None


def _winning_programs(module, config, gpu, instances):
    """Tensorized tile programs for the tuner's winning configuration."""
    spec, _ = module.fused_spec(config)
    tuned = autotune(spec, gpu, instances=instances)
    if tuned.num_segments == 1:
        programs = (tensorize_single_segment(spec, tuned.config),)
    else:
        programs = tensorize_multi_segment(
            spec, tuned.config, tuned.num_segments
        )
    return programs, tuned


def _rows():
    global _rows_cache
    if _rows_cache is not None:
        return _rows_cache
    rows = []
    for workload, module, configs, gpu in WORKLOADS:
        for config in configs[:CONFIGS_PER_WORKLOAD]:
            spec, instances = module.fused_spec(config)
            programs, tuned = _winning_programs(
                module, config, gpu, instances
            )
            opt = optimize_programs(
                programs,
                gpu,
                opt_level=2,
                threads=tuned.config.threads,
                pipeline_depth=tuned.config.pipeline_depth,
            )
            rows.append(
                {
                    "workload": workload,
                    "config": config.name,
                    "gpu": gpu.name,
                    "instances": instances,
                    "latency_opt0_s": opt.baseline_seconds,
                    "latency_opt2_s": opt.latency_seconds,
                    "cycle_reduction": opt.speedup,
                    "passes": [dict(p) for p in opt.passes],
                }
            )
    _rows_cache = rows
    return rows


def _pass_table_rows(passes):
    """Per-pass report rows in :func:`repro.obs.optimization_rows` shape."""
    table = []
    for report in passes:
        before = report["latency_before_s"]
        after = report["latency_after_s"]
        row = {
            "pass": report["pass"],
            "latency_before_s": before,
            "latency_after_s": after,
            "speedup": before / max(after, 1e-30),
        }
        for engine, idle in report["idle_before_s"].items():
            row[f"{engine}_idle_reclaimed_s"] = idle - report[
                "idle_after_s"
            ][engine]
        table.append(row)
    return table


def test_tile_opt_cycle_reduction_gate():
    rows = _rows()
    # the optimizer must never make the modeled schedule worse
    for row in rows:
        assert row["cycle_reduction"] >= 1.0, row
    best_per_workload = {}
    for row in rows:
        best_per_workload[row["workload"]] = max(
            best_per_workload.get(row["workload"], 0.0),
            row["cycle_reduction"],
        )
    hit = [w for w, s in best_per_workload.items() if s >= GATE_SPEEDUP]
    assert len(hit) >= GATE_WORKLOADS, (
        f"need >= {GATE_SPEEDUP}x modeled cycle reduction on >= "
        f"{GATE_WORKLOADS} fig5 workloads, got {best_per_workload}"
    )
    update_bench_json(
        "tile_opt",
        {
            "quick": QUICK,
            "gate": {
                "threshold": GATE_SPEEDUP,
                "required_workloads": GATE_WORKLOADS,
                "workloads_passing": sorted(hit),
            },
            "rows": [
                {k: v for k, v in row.items() if k != "passes"}
                for row in rows
            ],
        },
        path=BENCH_TILEOPT_JSON,
    )
    mha_row = rows[0]
    table = optimization_table(
        _pass_table_rows(mha_row["passes"]),
        f"Tile-IR optimizer passes: {mha_row['workload']} "
        f"{mha_row['config']} on {mha_row['gpu']} "
        f"({mha_row['cycle_reduction']:.2f}x overall)",
    )
    write_result("bench_tile_opt", table)


def test_tile_opt_benchmark(benchmark):
    """Time the optimizer pipeline itself on the MHA winner."""
    workload, module, configs, gpu = WORKLOADS[0]
    config = configs[0]
    spec, instances = module.fused_spec(config)
    programs, tuned = _winning_programs(module, config, gpu, instances)
    result = benchmark(
        lambda: optimize_programs(
            programs,
            gpu,
            opt_level=2,
            threads=tuned.config.threads,
            pipeline_depth=tuned.config.pipeline_depth,
        )
    )
    benchmark.extra_info["workload"] = f"{workload}/{config.name}"
    benchmark.extra_info["cycle_reduction"] = result.speedup
    assert result.speedup >= 1.0
