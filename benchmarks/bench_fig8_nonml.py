"""Figure 8 / Table 3: non-ML workloads across four platforms.

Paper claims: variance gains of ~2.9-4.8x over Eager per platform and
moment-of-inertia gains of ~5.5-11.6x (existing compilers cannot fuse
the element-wise-separated reduction chains).
"""

from conftest import write_result

from repro.harness import fig8_nonml, geomean, speedup_table


def _results():
    return fig8_nonml(("A10", "A100", "H800", "MI308X"))


def test_fig8_claims():
    results = _results()
    for key, rows in results.items():
        mean = geomean([r["redfuser_speedup"] for r in rows])
        assert mean > 1.25, (key, mean)  # clear wins everywhere
        for row in rows:
            assert row["redfuser_speedup"] > row["tvm_speedup"]


def test_fig8_benchmark(benchmark):
    results = benchmark(_results)
    tables = [
        speedup_table(rows, f"Figure 8 ({key}): speedup vs Eager")
        for key, rows in results.items()
    ]
    write_result("fig8_nonml", "\n\n".join(tables))
