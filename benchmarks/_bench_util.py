"""Importable helpers shared by the benchmarks.

Lives outside ``conftest.py`` so benchmark modules can import it by a
stable name (``from _bench_util import ...``) without relying on the
bare ``conftest`` module name, which another directory's conftest could
shadow in a combined collection.  ``conftest.py`` re-exports everything
for the existing figure benchmarks.
"""

import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

BENCH_JSON = RESULTS_DIR / "BENCH_engine.json"


def write_result(name: str, text: str) -> None:
    """Write one rendered table to ``benchmarks/results/<name>.txt``."""
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def update_bench_json(section: str, payload) -> None:
    """Merge one benchmark's numbers into BENCH_engine.json under ``section``."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def time_best(fn, repeats: int = 5) -> float:
    """Best-of-N wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
