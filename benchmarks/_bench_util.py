"""Importable helpers shared by the benchmarks.

Lives outside ``conftest.py`` so benchmark modules can import it by a
stable name (``from _bench_util import ...``) without relying on the
bare ``conftest`` module name, which another directory's conftest could
shadow in a combined collection.  ``conftest.py`` re-exports everything
for the existing figure benchmarks.
"""

import json
import pathlib

from repro.harness.runner import time_best  # noqa: F401  (shared timing helper)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

BENCH_JSON = RESULTS_DIR / "BENCH_engine.json"
BENCH_BACKENDS_JSON = RESULTS_DIR / "BENCH_backends.json"
BENCH_SERVING_JSON = RESULTS_DIR / "BENCH_serving.json"


def write_result(name: str, text: str) -> None:
    """Write one rendered table to ``benchmarks/results/<name>.txt``."""
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def update_bench_json(section: str, payload, path: pathlib.Path = BENCH_JSON) -> None:
    """Merge one benchmark's numbers into a BENCH_*.json under ``section``."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
