"""Micro-benchmarks of the reference executors themselves.

Not a paper figure: keeps an eye on the Python-side throughput of the
three execution modes so regressions in the hot paths are visible.  The
timings are also recorded to ``BENCH_engine.json`` so the perf
trajectory across PRs is machine-readable.
"""

import numpy as np
import pytest
from _bench_util import time_best, update_bench_json

from repro.core import Cascade, Reduction, fuse, run_fused_tree, run_incremental, run_unfused
from repro.symbolic import exp, var


def _attention_cascade():
    P, V, m, t = var("P"), var("V"), var("m"), var("t")
    return Cascade(
        "attention",
        ("P", "V"),
        (
            Reduction("m", "max", P),
            Reduction("t", "sum", exp(P - m)),
            Reduction("O", "sum", exp(P - m) / t * V),
        ),
    )


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return {
        "P": rng.normal(size=(4096, 1)),
        "V": rng.normal(size=(4096, 64)),
    }


@pytest.fixture(scope="module")
def fused():
    return fuse(_attention_cascade())


def test_unfused_chain(benchmark, fused, data):
    benchmark(run_unfused, fused.cascade, data)


def test_fused_tree(benchmark, fused, data):
    benchmark(run_fused_tree, fused, data, 8)


def test_incremental_chunked(benchmark, fused, data):
    benchmark(run_incremental, fused, data, 256)


def test_record_throughput_json(fused, data):
    """One machine-readable row per execution mode (best-of-N seconds)."""
    rows = [
        {
            "mode": "unfused",
            "seconds": time_best(lambda: run_unfused(fused.cascade, data), 3),
        },
        {
            "mode": "fused_tree",
            "seconds": time_best(lambda: run_fused_tree(fused, data, 8), 3),
        },
        {
            "mode": "incremental",
            "seconds": time_best(lambda: run_incremental(fused, data, 256), 3),
        },
    ]
    update_bench_json(
        "executor_throughput", {"length": 4096, "width": 64, "rows": rows}
    )
