"""Figure 6a: safe-softmax latency by fusion level (1K-8K inputs).

Paper claims: every fusion level beats unfused, with the ordering
intra-block < inter-block ~= intra-warp < intra-thread.
"""

from conftest import write_result

from repro.harness import fig6a_fusion_levels, series_table


def _rows():
    return fig6a_fusion_levels("A10")


def test_fig6a_ordering():
    for row in _rows():
        block = row["intra-block_speedup"]
        warp = row["intra-warp_speedup"]
        inter = row["inter-block_speedup"]
        thread = row["intra-thread_speedup"]
        assert min(block, warp, inter, thread) > 1.0  # all beat unfused
        assert block > warp > thread  # intra-block best, intra-thread worst
        assert block > inter > thread
        assert abs(inter - warp) / warp < 0.25  # inter-block ~= intra-warp


def test_fig6a_benchmark(benchmark):
    rows = benchmark(_rows)
    columns = [
        "n",
        "intra-thread_speedup",
        "intra-warp_speedup",
        "intra-block_speedup",
        "inter-block_speedup",
    ]
    write_result(
        "fig6a_fusion_levels",
        series_table(rows, columns, "Figure 6a: fusion-level speedup vs unfused"),
    )
