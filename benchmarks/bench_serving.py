"""Serving-runtime benchmarks: scheduled micro-batching vs per-request.

Three claims, asserted and recorded into
``benchmarks/results/BENCH_serving.json``:

* **throughput** — at 64 concurrent single-query clients, the request
  scheduler's continuous micro-batching sustains >= 3x the throughput
  of per-request ``Engine.run`` (measured ~10x: the batch dispatch is
  one vectorized NumPy pass instead of 64 interpreter round-trips);
* **traffic replay** — a Poisson-arrival stream of mixed attention /
  MLA / quant-GEMM requests reports throughput and p50/p99 latency as
  offered load rises, and admission control sheds (typed
  ``QueueFullError``) instead of queueing unboundedly once the bound is
  hit;
* **sharding** — the ``sharded`` backend splits a scheduler-formed
  batch across simulated devices with per-device counters and a gpusim
  makespan attribution, bitwise identical to ``fused_tree``;
* **ragged micro-batching** — mixed-length traffic under the
  ``bucket="pow2"`` policy pads into masked micro-batches and sustains
  >= 2x the per-request throughput of strict exact-geometry grouping
  (``bucket="exact"``), which fragments the same traffic into tiny
  batches.  The CI ``serving-smoke`` job runs this as the batching-
  efficiency gate.
* **SLA isolation** — with a background hog tenant saturating the
  bounded queue, the interactive class's p99 stays within 1.5x of its
  uncontended p99 (priority queues + policy-driven shedding), every
  shed is drawn from the lowest priority class, and the same load
  under one FIFO class degrades the interactive tail several-fold.
  The CI ``serving-smoke`` job runs this as the SLA gate.

Set ``BENCH_QUICK=1`` for the CI smoke configuration (smaller shapes,
shorter streams).
"""

import math
import os
import threading
import time

import numpy as np
from _bench_util import BENCH_SERVING_JSON, update_bench_json, write_result

from repro.engine import Engine, ServingConfig, get_backend
from repro.harness.report import bottleneck_table
from repro.harness.traffic import replay, sweep_offered_load
from repro.obs import padding_waste_rows, tracing, workload_bottlenecks
from repro.obs.trace import load_events as trace_load_events
from repro.obs.trace import render as trace_render
from repro.obs.trace import summarize as trace_summarize
from repro.workloads.serving_mix import query_for

QUICK = os.environ.get("BENCH_QUICK") == "1"
CONCURRENCY = 64
#: Serving-scale decode geometry.  Micro-batching pays off most where
#: per-request NumPy work is small relative to Python dispatch — short
#: KV lengths — which is exactly the regime per-request serving wastes.
LENGTH = 256
WIDTH = 8
ROUNDS = 2 if QUICK else 4  # requests each client issues back-to-back
#: Slow geometry for the admission-control flood (keeps the queue full).
FLOOD_LENGTH = 8192
REPLAY_COUNT = 60 if QUICK else 240
REPLAY_RATES = (500.0, 2000.0) if QUICK else (500.0, 2000.0, 8000.0)


def _concurrent_wall_seconds(worker, n_clients: int) -> float:
    """Wall-clock to serve one request from each of ``n_clients`` threads."""
    barrier = threading.Barrier(n_clients + 1)
    errors = []

    def client(i: int) -> None:
        barrier.wait()
        try:
            worker(i)
        except BaseException as err:  # surfaces in the main thread
            errors.append(err)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def test_scheduled_batching_beats_per_request():
    """>= 3x throughput over per-request Engine.run at 64 concurrent clients.

    Each of the 64 client threads issues ``ROUNDS`` requests
    back-to-back (a decode loop), so both sides amortize thread startup
    and the scheduler reaches its continuous-batching steady state:
    while one micro-batch executes, the next wave queues.
    """
    rng = np.random.default_rng(0)
    cascade, _ = query_for("mha", rng, length=LENGTH, width=WIDTH)
    queries = [
        [
            query_for("mha", rng, length=LENGTH, width=WIDTH)[1]
            for _ in range(ROUNDS)
        ]
        for _ in range(CONCURRENCY)
    ]
    total_requests = CONCURRENCY * ROUNDS

    # -- baseline: every client calls the synchronous per-request path ------
    baseline_engine = Engine()
    baseline_engine.run(cascade, queries[0][0])  # compile + warm the plan

    def per_request(i: int) -> None:
        for query in queries[i]:
            baseline_engine.run(cascade, query)

    baseline_s = _concurrent_wall_seconds(per_request, CONCURRENCY)

    # -- scheduled: same clients submit through the started scheduler -------
    serving_engine = Engine()
    serving = serving_engine.serving(
        ServingConfig(max_batch=CONCURRENCY, batch_window_s=0.003)
    )
    serving_engine.run(cascade, queries[0][0])  # same warmup
    last_outputs = [None] * CONCURRENCY

    def scheduled(i: int) -> None:
        for query in queries[i]:
            last_outputs[i] = serving.submit(cascade, query).result()

    scheduled_s = _concurrent_wall_seconds(scheduled, CONCURRENCY)
    serving_engine.close()

    # scheduled outputs match the per-request path
    for i in (0, CONCURRENCY // 2, CONCURRENCY - 1):
        ref = baseline_engine.run(cascade, queries[i][-1], mode="unfused")
        np.testing.assert_allclose(
            last_outputs[i]["O"], ref["O"], rtol=1e-6, atol=1e-9
        )

    speedup = baseline_s / scheduled_s
    snap = serving.stats.snapshot()
    update_bench_json(
        "scheduled_vs_per_request",
        {
            "concurrency": CONCURRENCY,
            "rounds": ROUNDS,
            "requests": total_requests,
            "length": LENGTH,
            "width": WIDTH,
            "per_request_s": baseline_s,
            "scheduled_s": scheduled_s,
            "throughput_speedup": speedup,
            "per_request_rps": total_requests / baseline_s,
            "scheduled_rps": total_requests / scheduled_s,
            "batches": snap["batches"],
            "mean_batch_size": snap["mean_batch_size"],
            "max_batch_size": snap["max_batch_size"],
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )
    assert snap["max_batch_size"] >= 8, "scheduler formed no real micro-batches"
    assert speedup >= 3.0, (
        f"scheduled micro-batching only {speedup:.2f}x over per-request "
        f"({baseline_s * 1e3:.1f} ms vs {scheduled_s * 1e3:.1f} ms)"
    )


def test_ragged_mix_beats_exact_geometry_grouping():
    """>= 2x per-request throughput on mixed-length traffic at 64 clients.

    Every client issues attention requests whose KV lengths are drawn
    uniformly from one pow2 bucket's range, so nearly every request has
    a distinct length.  Under ``bucket="exact"`` (the strict PR 4
    compatibility key) the scheduler can almost never group, so the
    traffic degrades to per-request dispatch; under ``bucket="pow2"``
    the same requests pad into masked ragged micro-batches and saturate
    ``max_batch``.  Results must still match the per-query reference.
    """
    rng = np.random.default_rng(7)
    cascade, _ = query_for("mha", rng, length=LENGTH, width=WIDTH)
    # lengths spread across (L/2, L]: all in one pow2 bucket, ~all distinct
    lengths = rng.integers(LENGTH // 2 + 8, LENGTH + 1, size=(CONCURRENCY, ROUNDS))
    queries = [
        [
            query_for("mha", rng, length=int(lengths[i, r]), width=WIDTH)[1]
            for r in range(ROUNDS)
        ]
        for i in range(CONCURRENCY)
    ]
    total_requests = CONCURRENCY * ROUNDS

    def timed(bucket):
        engine = Engine()
        serving = engine.serving(
            ServingConfig(
                max_batch=CONCURRENCY, batch_window_s=0.003, bucket=bucket
            )
        )
        engine.run(cascade, queries[0][0])  # compile + warm the plan
        outputs = [None] * CONCURRENCY

        def client(i: int) -> None:
            for query in queries[i]:
                outputs[i] = serving.submit(cascade, query).result()

        elapsed = _concurrent_wall_seconds(client, CONCURRENCY)
        snap = serving.stats.snapshot()
        engine.close()
        return elapsed, snap, outputs

    exact_s, exact_snap, _ = timed("exact")
    ragged_s, ragged_snap, ragged_outputs = timed("pow2")

    # padded micro-batches must still produce per-query-exact results
    check_engine = Engine()
    for i in (0, CONCURRENCY // 2, CONCURRENCY - 1):
        ref = check_engine.run(cascade, queries[i][-1], mode="unfused")
        np.testing.assert_allclose(
            ragged_outputs[i]["O"], ref["O"], rtol=1e-6, atol=1e-9
        )

    speedup = exact_s / ragged_s
    update_bench_json(
        "ragged_mix",
        {
            "concurrency": CONCURRENCY,
            "rounds": ROUNDS,
            "requests": total_requests,
            "length_range": [int(lengths.min()), int(lengths.max())],
            "distinct_lengths": int(np.unique(lengths).size),
            "exact_s": exact_s,
            "ragged_s": ragged_s,
            "throughput_speedup": speedup,
            "exact_rps": total_requests / exact_s,
            "ragged_rps": total_requests / ragged_s,
            "exact_mean_batch": exact_snap["mean_batch_size"],
            "ragged_mean_batch": ragged_snap["mean_batch_size"],
            "ragged_max_batch": ragged_snap["max_batch_size"],
            "ragged_batches": ragged_snap["ragged_batches"],
            "padding_efficiency": ragged_snap["padding_efficiency"],
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )
    # the batching-efficiency gate: ragged grouping must actually batch...
    assert ragged_snap["max_batch_size"] >= 8, (
        "pow2 buckets formed no real ragged micro-batches"
    )
    assert (
        ragged_snap["mean_batch_size"] >= exact_snap["mean_batch_size"]
    ), "ragged bucketing batched less than exact-geometry grouping"
    # ...and convert that into per-request throughput
    assert speedup >= 2.0, (
        f"ragged micro-batching only {speedup:.2f}x over exact-geometry "
        f"grouping ({exact_s * 1e3:.1f} ms vs {ragged_s * 1e3:.1f} ms)"
    )


def test_traffic_replay_reports_latency_vs_offered_load(trace_out):
    """Poisson mixed-workload replay: throughput + p50/p99 per offered load.

    With ``--trace-out <path>`` the replay runs under the span recorder
    and leaves three artifacts next to the path: the Chrome trace-event
    file itself (open it in Perfetto), a plain-text trace summary
    (``repro.obs.trace``), and the gpusim bottleneck report for the fig5
    workloads.
    """
    tracer = tracing.enable_tracing() if trace_out else None
    engine = Engine(
        serving_config=ServingConfig(
            max_queue_depth=4 * REPLAY_COUNT, max_batch=32, batch_window_s=0.002
        )
    )
    serving = engine.serving()
    # warm the three plans so the sweep measures serving, not compilation
    rng = np.random.default_rng(1)
    for kind in ("mha", "mla", "quant_gemm"):
        cascade, inputs = query_for(kind, rng, length=256, width=8)
        engine.run(cascade, inputs)

    rows = []
    # mixed KV lengths: the pow2 bucket policy pads them into shared
    # micro-batches instead of fragmenting by exact geometry
    for rate, report in sweep_offered_load(
        serving, REPLAY_RATES, REPLAY_COUNT, seed=2,
        length=(160, 192, 224, 256), width=8,
    ):
        row = report.snapshot()
        rows.append(row)
        assert report.completed == report.requests  # queue bound never hit
        assert report.latency_percentile(99.0) >= report.latency_percentile(50.0)
    padding_rows = padding_waste_rows(serving.stats)
    engine.close()

    snap = engine.stats.describe()
    update_bench_json(
        "traffic_replay",
        {
            "count": REPLAY_COUNT,
            "mix": ["mha", "mla", "quant_gemm"],
            "loads": rows,
            "serving_stats": snap["serving"],
            "cache": snap["cache"],
            "padding_by_bucket": padding_rows,
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )

    lines = [f"traffic replay ({REPLAY_COUNT} reqs, mixed mha/mla/quant_gemm)"]
    for row in rows:
        lines.append(
            f"  offered {row['offered_rps']:>7.0f} rps: "
            f"served {row['throughput_rps']:>7.1f} rps, "
            f"p50 {row['p50_latency_s'] * 1e3:6.2f} ms, "
            f"p99 {row['p99_latency_s'] * 1e3:6.2f} ms, shed {row['shed']}"
        )
    write_result("bench_serving", "\n".join(lines))

    if tracer is not None:
        tracing.disable_tracing()
        tracer.export_chrome(trace_out)
        assert len(tracer) > 0, "traced replay recorded no spans"
        summary = trace_summarize(trace_load_events(trace_out))
        write_result("bench_serving_trace_summary", trace_render(summary))
        report_rows = workload_bottlenecks(
            kinds=("moe", "quant_gemm") if QUICK else ("mha", "mla", "moe", "quant_gemm")
        )
        write_result(
            "bench_serving_bottlenecks",
            bottleneck_table(report_rows, "gpusim bottleneck report (fig5 workloads)"),
        )


def test_tracing_overhead_within_budget():
    """Tracing must be near-free when off and <10% when on.

    Measured on the inline serving path (synchronous ``Engine.run``
    through the scheduler) because its per-request time is stable;
    concurrent wall-clock at this scale swings several-fold run-to-run
    from batching nondeterminism, which would drown any tracing signal.
    Three gates:

    * **disabled guard** — with no active tracer, ``tracing.span`` is a
      module-attribute load plus a ``None`` check returning a shared
      no-op; the microbenchmark pins that under 2 µs/call (it measures
      ~0.3 µs), so the ~dozen instrumentation sites a request crosses
      cost single-digit microseconds against a ~500 µs request: the
      <3% tracing-off budget with a wide margin.
    * **end-to-end on/off** — N rounds on one shared engine, each
      timing off then on back-to-back; the best per-round median ratio
      must stay within 1.10x (the measured ratio is ~1.0: span
      recording sits in the noise floor of the NumPy execute).
    * tracing off must leave no tracer installed and record no spans.
    """
    import gc

    rng = np.random.default_rng(11)
    cascade, query = query_for("mha", rng, length=LENGTH, width=WIDTH)
    engine = Engine()
    engine.run(cascade, query)  # compile + warm the plan

    per_sample = 60 if QUICK else 100

    def per_request_s() -> float:
        # median of per-request times: a GC pause or scheduler hiccup
        # lands in one request's measurement instead of skewing the
        # whole sample the way a mean over the loop would
        times = []
        for _ in range(per_sample):
            start = time.perf_counter()
            engine.run(cascade, query)
            times.append(time.perf_counter() - start)
        times.sort()
        return times[len(times) // 2]

    tracing.disable_tracing()
    per_request_s()  # warmup
    # each round measures off then on back-to-back and the gate takes the
    # best per-round ratio: a host-load drift that spans rounds inflates
    # off and on together instead of poisoning a global min-per-mode
    off_s = math.inf
    on_s = math.inf
    ratio = math.inf
    spans_recorded = 0
    gc.collect()
    gc.disable()  # keep collector pauses out of the on-vs-off comparison
    try:
        for _ in range(4 if QUICK else 6):
            tracing.disable_tracing()
            round_off = per_request_s()
            assert tracing.active() is None  # a disabled run installs nothing
            tracer = tracing.enable_tracing(capacity=1 << 17)
            try:
                round_on = per_request_s()
            finally:
                tracing.disable_tracing()
            spans_recorded = len(tracer)
            if round_on / round_off < ratio:
                ratio = round_on / round_off
                off_s, on_s = round_off, round_on
    finally:
        gc.enable()
    engine.close()
    assert spans_recorded >= per_sample  # every traced request recorded spans

    # disabled-guard microbenchmark: amortized cost per span() call
    calls = 20_000 if QUICK else 100_000
    start = time.perf_counter()
    for _ in range(calls):
        with tracing.span("bench", "noop"):
            pass
    disabled_ns_per_call = (time.perf_counter() - start) / calls * 1e9

    # the steady-state budget is <10%; the quick (CI smoke) gate leaves
    # headroom for shared-runner noise — the recorded ratio keeps the
    # real trajectory either way
    budget = 1.25 if QUICK else 1.10
    update_bench_json(
        "tracing_overhead",
        {
            "requests_per_sample": per_sample,
            "off_us_per_request": off_s * 1e6,
            "on_us_per_request": on_s * 1e6,
            "on_over_off": ratio,
            "spans_recorded": spans_recorded,
            "disabled_ns_per_span_call": disabled_ns_per_call,
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )
    assert disabled_ns_per_call < 2_000, (
        f"disabled tracing guard costs {disabled_ns_per_call:.0f} ns/call"
    )
    assert ratio <= budget, (
        f"tracing-on serving is {ratio:.3f}x tracing-off "
        f"({off_s * 1e6:.1f} us vs {on_s * 1e6:.1f} us per request)"
    )


def test_admission_control_sheds_over_capacity():
    """Past max_queue_depth, submissions shed with a typed error, fast."""
    from repro.engine import QueueFullError

    engine = Engine()
    serving = engine.serving(
        ServingConfig(max_queue_depth=8, max_batch=4, batch_window_s=0.0)
    )
    rng = np.random.default_rng(3)
    cascade, _ = query_for("mha", rng, length=FLOOD_LENGTH, width=WIDTH)
    queries = [
        query_for("mha", rng, length=FLOOD_LENGTH, width=WIDTH)[1]
        for _ in range(32)
    ]
    shed = 0
    accepted = []
    lock = threading.Lock()

    def flood(i: int) -> None:
        nonlocal shed
        try:
            future = serving.submit(cascade, queries[i])
        except QueueFullError:
            with lock:
                shed += 1
            return
        with lock:
            accepted.append(future)

    _concurrent_wall_seconds(flood, 32)
    for future in accepted:
        future.result()
    stats = serving.stats.snapshot()
    engine.close()
    assert shed > 0, "flood never hit the admission bound"
    assert stats["shed"] == shed
    assert stats["completed"] == len(accepted)
    update_bench_json(
        "admission_control",
        {"offered": 32, "accepted": len(accepted), "shed": shed, "quick": QUICK},
        path=BENCH_SERVING_JSON,
    )


def test_sharded_backend_splits_scheduler_batches():
    """Sharded execution matches fused_tree bitwise; devices share the work."""
    engine = Engine()
    rng = np.random.default_rng(4)
    cascade, _ = query_for("mha", rng, length=512, width=8)
    queries = [query_for("mha", rng, length=512, width=8)[1] for _ in range(24)]
    batch = {
        name: np.stack([q[name] for q in queries])
        for name in ("P", "V")
    }
    ref = engine.run_batch(cascade, batch, mode="fused_tree")
    got = engine.run_batch(cascade, batch, mode="sharded", gpu="H800")
    for name in ref:
        np.testing.assert_array_equal(got[name], np.asarray(ref[name]))

    plan = engine.plan_for(cascade)
    info = plan.describe()["sharded"]
    devices = get_backend("sharded").device_snapshots()
    assert info["queries"] == 24
    assert sum(d["queries"] for d in devices) >= 24
    assert info["estimates"]["H800"]["latency_seconds"] > 0
    update_bench_json(
        "sharded_backend",
        {
            "batch": 24,
            "num_devices": info["num_devices"],
            "makespan_s": info["estimates"]["H800"]["latency_seconds"],
            "devices": list(devices),
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )


def test_sla_priority_isolation_under_background_hog():
    """A hog tenant saturating the queue must not move interactive p99.

    Three replays of the same seeded traffic shapes:

    * **uncontended** — the interactive tenant alone (tight deadlines,
      short KV lengths, ``priority="interactive"``) establishes its
      baseline p99;
    * **priority** — a background hog tenant (bursty, ~2x the queue's
      hog service rate, long KV lengths, ``priority="batch"``) saturates
      the bounded queue; the gate is that the interactive p99 stays
      within 1.5x of uncontended, every shed comes from the ``batch``
      class (the policy drops lowest-priority/longest-bucket first),
      and every interactive request completes;
    * **fifo** — the identical contended stream with both tenants in one
      class (the pre-SLA scheduler's behavior) must degrade the
      interactive tenant's p99 well past the gate, which is what makes
      the priority run's flat tail a property of the scheduler rather
      than of the load.
    """
    from dataclasses import replace

    from repro.harness.traffic import TenantProfile, adversarial_stream

    inter_count = 64 if QUICK else 160
    hog_count = 300 if QUICK else 800
    interactive = TenantProfile(
        tenant="interactive", rate_rps=400.0, count=inter_count,
        priority="interactive", kinds=("mha",), length=(96, 112, 128),
        width=WIDTH, deadline_s=(0.05, 0.1),
    )
    hog = TenantProfile(
        tenant="hog", rate_rps=4000.0, count=hog_count, priority="batch",
        kinds=("mha",), length=4096, width=WIDTH, burst_factor=2.0,
    )

    def run_replay(profiles, fifo=False):
        rng = np.random.default_rng(17)
        if fifo:
            # one class for everyone = the old FIFO scheduler (shedding
            # then falls back to rejecting arrivals, hog and web alike)
            profiles = [
                replace(p, priority="standard", deadline_s=None)
                for p in profiles
            ]
        stream = adversarial_stream(rng, profiles)
        engine = Engine()
        warm_rng = np.random.default_rng(1)
        for length in (128, 4096):  # compile + warm both geometries
            cascade, query = query_for("mha", warm_rng, length=length, width=WIDTH)
            engine.run(cascade, query)
            plan = engine.plan_for(cascade)
            plan.execute_batch(
                {name: np.stack([value] * 8) for name, value in query.items()}
            )
        config = ServingConfig(
            max_queue_depth=160, max_batch=8, batch_window_s=0.008
        )
        with engine.serving(config) as serving:
            report = replay(serving, stream)
            snap = serving.stats.snapshot()
        engine.close()
        return report, snap

    def best_of(n, make):
        # wall-clock p99 on a shared runner is noisy; repeat each
        # condition and keep the best-measured run — external CPU
        # contention only ever inflates the tail, never deflates it,
        # so min-of-N strips runner noise without touching the
        # scheduler property under test
        runs = [make() for _ in range(n)]
        return min(
            runs,
            key=lambda rs: rs[0].tenant_latency_percentile("interactive", 99.0),
        )

    uncontended, _ = best_of(2, lambda: run_replay([interactive]))
    contended, snap = best_of(2, lambda: run_replay([interactive, hog]))
    fifo_report, fifo_snap = best_of(
        2, lambda: run_replay([interactive, hog], fifo=True)
    )

    p99_uncontended = uncontended.tenant_latency_percentile("interactive", 99.0)
    p99_priority = contended.tenant_latency_percentile("interactive", 99.0)
    p99_fifo = fifo_report.tenant_latency_percentile("interactive", 99.0)
    priority_ratio = p99_priority / p99_uncontended
    fifo_ratio = p99_fifo / p99_uncontended
    shed_by_class = {
        name: info["shed"] for name, info in snap["by_class"].items()
    }

    update_bench_json(
        "sla_priority",
        {
            "interactive_requests": inter_count,
            "hog_requests": hog_count,
            "p99_uncontended_s": p99_uncontended,
            "p99_priority_s": p99_priority,
            "p99_fifo_s": p99_fifo,
            "priority_ratio": priority_ratio,
            "fifo_ratio": fifo_ratio,
            "shed_by_class": shed_by_class,
            "hog_completed": contended.completed_by_tenant.get("hog", 0),
            "fifo_shed_by_class": {
                name: info["shed"]
                for name, info in fifo_snap["by_class"].items()
            },
            "deadline_misses": snap["deadline_misses"],
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )
    write_result(
        "bench_serving_sla",
        f"SLA isolation ({inter_count} interactive vs {hog_count} hog reqs): "
        f"interactive p99 uncontended {p99_uncontended * 1e3:.1f} ms, "
        f"under hog {p99_priority * 1e3:.1f} ms ({priority_ratio:.2f}x), "
        f"FIFO baseline {p99_fifo * 1e3:.1f} ms ({fifo_ratio:.2f}x); "
        f"sheds by class {shed_by_class}",
    )

    # every interactive request finished; the hog saturated the queue
    assert contended.completed_by_tenant.get("interactive", 0) == inter_count
    assert shed_by_class.get("batch", 0) > 0, "hog never hit the queue bound"
    # the shed policy drained the lowest class only
    assert shed_by_class.get("interactive", 0) == 0
    assert shed_by_class.get("standard", 0) == 0
    # the SLA gate: priority isolation holds while FIFO degrades
    assert priority_ratio <= 1.5, (
        f"interactive p99 degraded {priority_ratio:.2f}x under the hog "
        f"({p99_uncontended * 1e3:.1f} -> {p99_priority * 1e3:.1f} ms)"
    )
    assert fifo_ratio >= 2.0 and fifo_ratio > priority_ratio, (
        f"FIFO baseline only degraded {fifo_ratio:.2f}x "
        f"(priority run: {priority_ratio:.2f}x) — contention too weak "
        "for the isolation gate to mean anything"
    )


# ---------------------------------------------------------------------------
# Multi-process serving tier: plan-store cold start and worker scaling
# ---------------------------------------------------------------------------

def _mixed_tenant_stream(rng, count, rate_rps, *, length):
    """Two-tenant mixed stream (interactive + batch) for the tier benches."""
    from repro.harness.traffic import TenantProfile, adversarial_stream

    half = count // 2
    profiles = (
        TenantProfile(
            tenant="acme", rate_rps=rate_rps / 2, count=half,
            priority="interactive", length=length, width=WIDTH,
            deadline_s=120.0,
        ),
        TenantProfile(
            tenant="globex", rate_rps=rate_rps / 2, count=count - half,
            priority="batch", length=length, width=WIDTH,
        ),
    )
    return adversarial_stream(rng, profiles)


def _rollup_payload(pool, router):
    """JSON-serializable per-worker stats (raw metric samples stripped)."""
    workers = {
        name: {k: v for k, v in payload.items() if k != "samples"}
        for name, payload in pool.stats().items()
    }
    return {"workers": workers, "router": router.stats.snapshot()}


def test_cold_start_warm_plan_store(tmp_path):
    """Warm-started workers answer first requests with zero recompiles.

    Two 1-worker pools over the same plan-store directory serve one
    request per workload kind.  The first (cold, empty store) pays one
    symbolic compile per cascade shape and persists the plans; the
    second (warm) loads every artifact at startup — the gate is that
    its compile count is exactly zero and its time-to-first-response
    drops accordingly.
    """
    from repro.engine import PlanStore, WorkerPool
    from repro.workloads.serving_mix import SERVING_KINDS

    rng = np.random.default_rng(12)
    length = 256 if QUICK else 1024
    requests = [
        query_for(kind, rng, length=length, width=WIDTH)
        for kind in SERVING_KINDS
    ]
    store_dir = tmp_path / "plans"

    def first_response_seconds(pool):
        start = time.perf_counter()
        futures = [pool.submit_to(0, c, q) for c, q in requests]
        futures[0].result(timeout=120)
        ttfr = time.perf_counter() - start
        for future in futures[1:]:
            future.result(timeout=120)
        return ttfr

    with WorkerPool(1, PlanStore(store_dir)) as cold_pool:
        ttfr_cold = first_response_seconds(cold_pool)
        compiles_cold = cold_pool.fusion_compiles()
        warm_loaded_cold = cold_pool.stats()["w0"]["warm_loaded"]

    with WorkerPool(1, PlanStore(store_dir)) as warm_pool:
        ttfr_warm = first_response_seconds(warm_pool)
        compiles_warm = warm_pool.fusion_compiles()
        warm_loaded = warm_pool.stats()["w0"]["warm_loaded"]

    update_bench_json(
        "cold_start",
        {
            "kinds": len(requests),
            "length": length,
            "ttfr_cold_s": ttfr_cold,
            "ttfr_warm_s": ttfr_warm,
            "ttfr_speedup": ttfr_cold / ttfr_warm if ttfr_warm > 0 else 0.0,
            "compiles_cold": compiles_cold,
            "compiles_warm": compiles_warm,
            "warm_loaded": warm_loaded,
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )
    write_result(
        "bench_serving_cold_start",
        f"Plan-store cold start ({len(requests)} kinds, length {length}): "
        f"cold TTFR {ttfr_cold * 1e3:.1f} ms / {compiles_cold} compiles, "
        f"warm TTFR {ttfr_warm * 1e3:.1f} ms / {compiles_warm} compiles "
        f"({warm_loaded} plans warm-loaded)",
    )

    assert compiles_cold >= 1, "cold worker never compiled anything"
    assert warm_loaded_cold == 0  # the store really was empty
    assert warm_loaded >= compiles_cold  # every compile was persisted
    # THE warm-restart gate: zero symbolic compiles after a restart
    assert compiles_warm == 0, (
        f"warm-started worker recompiled {compiles_warm} plans"
    )


def test_multi_worker_replay_scaling(tmp_path):
    """Aggregate replay throughput at 1/2/4 workers, vs in-process serving.

    The same mixed-tenant stream replays through the in-process
    scheduler and through routers over warm 1/2/4-worker pools; every
    pool run must stay at zero recompiles.  Numbers (and the host's
    ``cpu_count``, which bounds honest scaling) are recorded into
    ``BENCH_serving.json``; the >= 2.5x 4-worker scaling gate only
    applies where 4 cores exist for 4 workers — on smaller hosts the
    run still records the measured curve.
    """
    from repro.engine import PlanStore, Router, WorkerPool
    from repro.workloads.serving_mix import SERVING_KINDS

    rng = np.random.default_rng(23)
    count = 80 if QUICK else 240
    rate = 4000.0
    length = (64, 128) if QUICK else (256, 512)
    stream = _mixed_tenant_stream(rng, count, rate, length=length)

    store_dir = tmp_path / "plans"
    store = PlanStore(store_dir)
    seeder = Engine(plan_store=store)
    for kind in SERVING_KINDS:
        for one in (length if isinstance(length, tuple) else (length,)):
            cascade, query = query_for(rng=rng, kind=kind, length=one, width=WIDTH)
            seeder.run(cascade, query)
    seeder.close()

    engine = Engine(plan_store=PlanStore(store_dir))
    engine.warm_start()
    in_process = replay(engine.serving(), stream, offered_rps=rate)
    engine.close()
    assert in_process.completed == count

    worker_counts = (1, 2) if QUICK else (1, 2, 4)
    tier_rps = {}
    for n in worker_counts:
        with WorkerPool(n, PlanStore(store_dir)) as pool:
            router = Router(pool, imbalance=4)
            report = replay(router, stream, offered_rps=rate)
            assert report.completed == count, (
                f"{n}-worker tier completed {report.completed}/{count}"
            )
            assert pool.fusion_compiles() == 0, (
                f"{n}-worker tier recompiled plans despite the warm store"
            )
            tier_rps[n] = report.throughput_rps

    cpu_count = os.cpu_count() or 1
    scaling = (
        tier_rps[max(worker_counts)] / tier_rps[1] if tier_rps[1] > 0 else 0.0
    )
    update_bench_json(
        "worker_scaling",
        {
            "requests": count,
            "offered_rps": rate,
            "cpu_count": cpu_count,
            "in_process_rps": in_process.throughput_rps,
            "tier_rps": {f"workers_{n}": rps for n, rps in tier_rps.items()},
            "scaling_vs_one_worker": scaling,
            "recompiles": 0,
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )
    write_result(
        "bench_serving_worker_scaling",
        f"Worker scaling ({count} reqs, {cpu_count} cores): in-process "
        f"{in_process.throughput_rps:.0f} rps; "
        + ", ".join(f"{n}w {rps:.0f} rps" for n, rps in tier_rps.items())
        + f"; {max(worker_counts)}w/1w = {scaling:.2f}x",
    )

    # the scaling gate needs one core per worker to be meaningful
    if cpu_count >= 4 and 4 in tier_rps and not QUICK:
        assert tier_rps[4] >= 2.5 * tier_rps[1], (
            f"4-worker tier scaled only {scaling:.2f}x over 1 worker "
            f"on a {cpu_count}-core host"
        )


def test_multiprocess_warm_restart_smoke(tmp_path):
    """CI smoke: 2-worker tier, mixed tenants, zero recompiles after restart.

    Replays a mixed-tenant stream through a cold 2-worker pool (which
    persists every compiled plan), then recycles both workers and
    replays again: the recycled tier must complete everything with zero
    symbolic compiles.  The per-worker stats rollup lands in
    ``benchmarks/results/SERVING_worker_rollup.json`` for the CI
    artifact upload.
    """
    import json as _json

    from _bench_util import RESULTS_DIR

    from repro.engine import PlanStore, Router, WorkerPool

    rng = np.random.default_rng(31)
    count = 60 if QUICK else 160
    stream = _mixed_tenant_stream(
        rng, count, 3000.0, length=(32, 64) if QUICK else (64, 128)
    )
    store_dir = tmp_path / "plans"

    with WorkerPool(2, PlanStore(store_dir)) as pool:
        router = Router(pool, imbalance=4)
        cold = replay(router, stream)
        assert cold.completed == count
        compiles_cold = pool.fusion_compiles()
        assert compiles_cold >= 1

        # recycle every worker: drain, close, respawn warm from the store
        for index in range(pool.num_workers):
            pool.restart(index)
        warm = replay(router, stream)
        assert warm.completed == count
        # THE CI gate: a warm restart performs zero plan compiles
        assert pool.fusion_compiles() == 0, "restarted workers recompiled"

        rollup = _rollup_payload(pool, router)
        rollup["replay"] = {
            "cold": cold.snapshot(), "warm_restart": warm.snapshot(),
        }
        rollup["compiles"] = {"cold": compiles_cold, "warm_restart": 0}
        (RESULTS_DIR / "SERVING_worker_rollup.json").write_text(
            _json.dumps(rollup, indent=2, sort_keys=True) + "\n"
        )

    tenants = set()
    for payload in rollup["workers"].values():
        tenants.update(payload["serving"]["by_tenant"])
    assert {"acme", "globex"} <= tenants  # both tenants reached workers

    update_bench_json(
        "multiprocess_smoke",
        {
            "requests": count,
            "workers": 2,
            "compiles_cold": compiles_cold,
            "compiles_warm_restart": 0,
            "cold_rps": cold.throughput_rps,
            "warm_rps": warm.throughput_rps,
            "router": rollup["router"],
            "quick": QUICK,
        },
        path=BENCH_SERVING_JSON,
    )


def _same_outputs(a, b) -> bool:
    """Bitwise comparison of two request outputs (arrays / TopK states)."""
    if a is None or b is None or set(a) != set(b):
        return False
    for key in a:
        left, right = a[key], b[key]
        if hasattr(left, "values") and hasattr(left, "indices"):  # TopKState
            if not (np.array_equal(left.values, right.values)
                    and np.array_equal(left.indices, right.indices)):
                return False
        elif not np.array_equal(np.asarray(left), np.asarray(right)):
            return False
    return True


def test_fault_recovery_chaos_replay(tmp_path):
    """Chaos differential: seeded worker kills mid-replay, zero lost requests.

    The same mixed-tenant stream replays twice: undisturbed through an
    in-process serving engine (the reference), then through a supervised
    2-worker router while a seeded :class:`~repro.harness.chaos.
    ChaosPolicy` SIGKILLs workers mid-stream (plus a hang in the full
    configuration).  The CI ``chaos-smoke`` gates: **zero client-visible
    errors** (every retryable request completes, nothing sheds),
    **bitwise-identical results** vs the reference, **every killed slot
    recovers** (new pid answering pings) with bounded recovery time, and
    the warm restarts perform **zero symbolic compiles**.  The chaos
    report lands in ``benchmarks/results/SERVING_chaos_report.json`` for
    the artifact upload and the ``fault_recovery`` section of
    ``BENCH_serving.json``.
    """
    import json as _json

    from _bench_util import RESULTS_DIR

    from repro.engine import (
        PlanStore,
        Router,
        SupervisorConfig,
        WorkerPool,
    )
    from repro.harness.chaos import ChaosPolicy
    from repro.workloads.serving_mix import SERVING_KINDS

    rng = np.random.default_rng(47)
    count = 80 if QUICK else 240
    length = (32, 64) if QUICK else (64, 128)
    # pace the stream over a few seconds so the kill window (20-80% of
    # the horizon) lands while requests are genuinely in flight
    horizon_s = 2.5 if QUICK else 4.0
    rate = count / horizon_s
    stream = _mixed_tenant_stream(rng, count, rate, length=length)
    config = ServingConfig(max_queue_depth=4 * count)
    store_dir = tmp_path / "plans"

    # seed the store with every shape so workers (and restarts) are warm
    store = PlanStore(store_dir)
    seeder = Engine(plan_store=store)
    for kind in SERVING_KINDS:
        for one in length:
            cascade, query = query_for(rng=rng, kind=kind, length=one, width=WIDTH)
            seeder.run(cascade, query)
    seeder.close()

    # reference: the identical stream, undisturbed, in process
    engine = Engine(plan_store=PlanStore(store_dir), serving_config=config)
    engine.warm_start()
    reference = replay(engine.serving(), stream, offered_rps=rate,
                       collect_results=True)
    engine.close()
    assert reference.completed == count

    policy = ChaosPolicy.seeded(
        7, num_workers=2, horizon_s=stream[-1].arrival_s,
        count=2 if QUICK else 3,
        kinds=("kill",) if QUICK else ("kill", "hang"),
        recovery_timeout_s=20.0,
    )
    supervisor_config = SupervisorConfig(
        interval_s=0.05, ping_timeout_s=0.5,
        backoff_base_s=0.05, backoff_max_s=0.5,
        breaker_threshold=10, breaker_window_s=30.0,
        restart_timeout_s=10.0,
    )
    with WorkerPool(2, PlanStore(store_dir), serving_config=config) as pool:
        with Router(pool, imbalance=4, max_retries=3,
                    supervisor_config=supervisor_config) as router:
            run = policy.start(pool)
            chaotic = replay(router, stream, offered_rps=rate,
                             collect_results=True)
            chaos = run.finish()
            recompiles = pool.fusion_compiles()
            router_snap = router.stats.snapshot()
            degraded = router.degraded

    mismatches = sum(
        0 if _same_outputs(got, want) else 1
        for got, want in zip(chaotic.results, reference.results)
    )
    zero_client_errors = (
        chaotic.failed == 0 and chaotic.shed == 0
        and chaotic.completed == count
    )

    section = {
        "requests": count,
        "workers": 2,
        "offered_rps": rate,
        "injected": chaos.injected,
        "disruptive": chaos.disruptive,
        "recovered": chaos.recovered,
        "lost_workers": chaos.lost,
        "recovery_p50_s": chaos.recovery_percentile(50.0),
        "recovery_p99_s": chaos.recovery_percentile(99.0),
        "retries": router_snap["retries"],
        "retries_exhausted": router_snap["retries_exhausted"],
        "failover": router_snap["failover"],
        "degraded_requests": router_snap["degraded"],
        "completed": chaotic.completed,
        "shed": chaotic.shed,
        "failed": chaotic.failed,
        "client_failures": chaotic.failures,
        "result_mismatches": mismatches,
        "zero_client_errors": zero_client_errors,
        "recompiles": recompiles,
        "quick": QUICK,
    }
    update_bench_json("fault_recovery", section, path=BENCH_SERVING_JSON)
    artifact = {
        "chaos": chaos.snapshot(),
        "replay": chaotic.snapshot(),
        "reference": reference.snapshot(),
        "router": router_snap,
        "gates": {
            "zero_client_errors": zero_client_errors,
            "bitwise_identical": mismatches == 0,
            "all_workers_recovered": chaos.lost == 0,
            "zero_recompiles": recompiles == 0,
        },
    }
    (RESULTS_DIR / "SERVING_chaos_report.json").write_text(
        _json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    write_result(
        "bench_serving_chaos",
        f"Chaos replay ({count} reqs, 2 workers): {chaos.injected} faults "
        f"({chaos.disruptive} disruptive), {chaos.recovered} recovered "
        f"(p99 {chaos.recovery_percentile(99.0):.2f} s), "
        f"{router_snap['retries']} retries, "
        f"{router_snap['degraded']} degraded, "
        f"{chaotic.completed}/{count} completed, {chaotic.failed} failed, "
        f"{mismatches} result mismatches, {recompiles} recompiles",
    )

    # THE chaos gates: faults landed, every slot healed, and no client
    # ever saw an error or a wrong bit
    assert chaos.disruptive >= 1, "no disruptive fault was injected"
    assert chaos.lost == 0, f"{chaos.lost} worker slots never recovered"
    assert chaos.recovery_percentile(99.0) <= 10.0, (
        f"recovery p99 {chaos.recovery_percentile(99.0):.2f}s exceeds 10s"
    )
    assert zero_client_errors, (
        f"client-visible damage: {chaotic.failed} failed, "
        f"{chaotic.shed} shed ({chaotic.failures})"
    )
    assert mismatches == 0, (
        f"{mismatches} requests returned different bits than the "
        "undisturbed reference"
    )
    assert recompiles == 0, "chaos recovery recompiled plans"
    assert not degraded, "tier still in degraded mode after recovery"
