"""Figure 7: loads of the dependent result d_K by fusion level.

Unfused execution re-loads d_K L0 times; fusing at level k reduces this
to L_k loads (L4 = 1 for inter-block).
"""

from conftest import write_result

from repro.gpusim.levels import level_sizes
from repro.harness import fig7_access_counts, series_table


def _rows():
    return fig7_access_counts(4096)


def test_fig7_counts():
    rows = {r["strategy"]: r["dk_loads"] for r in _rows()}
    sizes = level_sizes(4096)
    assert rows["unfused"] == 4096
    assert rows["intra-thread"] == sizes[1]
    assert rows["intra-warp"] == sizes[2]
    assert rows["intra-block"] == sizes[3]
    assert rows["inter-block"] == 1
    assert (
        rows["unfused"]
        > rows["intra-thread"]
        > rows["intra-warp"]
        > rows["intra-block"]
        > rows["inter-block"]
    )


def test_fig7_benchmark(benchmark):
    rows = benchmark(_rows)
    write_result(
        "fig7_access_counts",
        series_table(rows, ["strategy", "dk_loads"], "Figure 7: d_K load counts"),
    )
