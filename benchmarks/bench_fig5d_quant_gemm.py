"""Figure 5d: FP8 PerToken Quant+GEMM on H800 (configs Q1-Q10).

Paper claims: RedFuser reaches ~3.4x over Dynamo and ~12.1x over TVM
(TVM lacks the FP8 tensor-core path entirely).
"""

from conftest import write_result

from repro.harness import fig5d_quant_gemm, relative_summary, speedup_table


def _rows():
    return fig5d_quant_gemm("H800")


def test_fig5d_claims():
    rows = _rows()
    assert relative_summary(rows, "redfuser", "dynamo") > 1.8
    assert relative_summary(rows, "redfuser", "tvm") > 8.0
    assert all(row["redfuser_speedup"] > 1.0 for row in rows)


def test_fig5d_benchmark(benchmark):
    rows = benchmark(_rows)
    write_result(
        "fig5d_quant_gemm",
        speedup_table(rows, "Figure 5d: FP8 Quant+GEMM on H800 (speedup vs Eager)"),
    )
