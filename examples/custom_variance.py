"""Bring your own cascade: single-pass variance via the multi-term
decomposition.

(x - mean)^2 is *not* directly decomposable as G(x) * H(mean); ACRF's
distributive extension expands it into x^2 - 2*mean*x + mean^2, whose
per-term accumulators are dependency-free running sums — i.e. the
classic one-pass moments algorithm, derived automatically.

Run:  python examples/custom_variance.py
"""

import numpy as np

from repro.core import Cascade, Reduction, fuse, run_incremental, run_unfused
from repro.symbolic import const, var

N = 4096
x, mean = var("x"), var("mean")
cascade = Cascade(
    name="variance",
    element_vars=("x",),
    reductions=(
        Reduction("mean", "sum", x * const(1.0 / N)),
        Reduction("var", "sum", (x - mean) ** 2 * const(1.0 / N)),
    ),
)
fused = fuse(cascade)
terms = fused[1].terms
print("Multi-term decomposition of (x - mean)^2 / N:")
for term in terms:
    print(f"  g = {term.g!r}    h = {term.h!r}")

rng = np.random.default_rng(11)
data = rng.normal(5.0, 2.5, size=N)
stream = run_incremental(fused, {"x": data}, chunk_len=256)
print(f"\none-pass variance: {float(stream['var'][0]):.6f}")
print(f"numpy variance:    {float(np.var(data)):.6f}")
assert np.allclose(stream["var"][0], np.var(data))
print("Single-pass fused variance matches NumPy. ✔")
