"""FP8 per-token Quant + GEMM (§3.4): the paper's worked case study.

The abs-max reduction and the scaled GEMM fuse into a single pass; the
incremental form (Eq. 21/22) rescales the running accumulator by
m̂[L-1]/m̂[L] whenever a larger magnitude arrives.

Run:  python examples/fp8_quant_gemm.py
"""

import numpy as np

from repro.core import fuse, run_fused_tree, run_incremental, run_unfused
from repro.workloads import quant_gemm

M, K, N = 6, 256, 8
rng = np.random.default_rng(3)
A = rng.normal(size=(M, K))
W = rng.normal(size=(K, N)) / np.sqrt(K)

fused = fuse(quant_gemm.cascade())
for fr in fused:
    print(f"{fr.reduction.name}: gh = {fr.gh!r}  correction = {fr.h_ratio!r}")

expected = quant_gemm.reference(A, W)
for row in range(M):
    inputs = {"A": A[row][:, None], "W": W}
    stream = run_incremental(fused, inputs, chunk_len=32)
    tree = run_fused_tree(fused, inputs, num_segments=4)
    assert np.allclose(stream["c"], expected[row])
    assert np.allclose(tree["c"], expected[row])
print("\nFused Quant+GEMM matches Eq. 17 on every row. ✔")

rounded = quant_gemm.reference_rounded(A, W)
err = np.abs(rounded - expected).max() / np.abs(expected).max()
print(f"Relative error from actual FP8-E4M3 rounding: {err:.4f} "
      "(the formula the paper fuses is the un-rounded one)")
