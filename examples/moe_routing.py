"""MoE routing: softmax statistics + top-k expert selection, fused.

The router cascade (Eq. 34-38) pairs two scalar reductions with a top-k
carrier whose H is the additive identity — the selection needs no
correction terms and streams incrementally alongside the softmax
statistics.

Run:  python examples/moe_routing.py
"""

import numpy as np

from repro.core import fuse, run_incremental, run_unfused
from repro.workloads import moe
from repro.workloads.configs import MOE_CONFIGS

config = MOE_CONFIGS[6]  # R7: Qwen3-30B-A3B, 128 experts, top-8
print(f"Config {config.name}: {config.model} — {config.en} experts, "
      f"top-{config.topk}")

rng = np.random.default_rng(7)
hidden, router_w = moe.make_inputs(config, rng)
expected_gates, expected_ids = moe.reference(hidden, router_w, config.topk)

cascade = moe.cascade(config.topk)
fused = fuse(cascade)

scores = hidden @ router_w
for token in range(4):
    state = run_incremental(fused, {"x": scores[token]}, chunk_len=16)
    gates, ids = moe.gates_from_state(state)
    assert np.allclose(gates, expected_gates[token])
    assert np.array_equal(ids, expected_ids[token])
    chosen = ", ".join(
        f"e{int(e)}:{g:.3f}" for e, g in zip(ids[:4], gates[:4])
    )
    print(f"  token {token}: {chosen} ...")
print("\nFused streaming router matches the two-pass reference. ✔")
