"""Quickstart: fuse a cascaded reduction and execute it three ways.

The safe softmax is the canonical cascade: a max reduction followed by a
sum-of-exponentials that depends on it.  ACRF decomposes each mapping
function into G(x) (x) H(d); the fused forms then allow single-pass
streaming execution with O(1) state — the online-softmax trick, derived
automatically.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cascade, Reduction, fuse, run_fused_tree, run_incremental, run_unfused
from repro.symbolic import exp, var

# 1. Describe the cascade: m = max(x), t = sum(exp(x - m)).
x, m = var("x"), var("m")
softmax = Cascade(
    name="safe_softmax",
    element_vars=("x",),
    reductions=(
        Reduction("m", "max", x),
        Reduction("t", "sum", exp(x - m)),
    ),
)

# 2. Run ACRF (Algorithm 1): derives G, H and the correction terms.
fused = fuse(softmax)
for fr in fused:
    print(f"{fr.reduction.name}:  G(x) (x) H(d) = {fr.gh!r}   "
          f"correction = {fr.h_ratio!r}")

# 3. Execute: unfused chain, fused reduction tree, incremental stream.
rng = np.random.default_rng(0)
data = rng.normal(0.0, 4.0, size=10_000)

reference = run_unfused(softmax, {"x": data})
tree = run_fused_tree(fused, {"x": data}, num_segments=16)
stream = run_incremental(fused, {"x": data}, chunk_len=128)

print("\nmax(x):     ", float(reference["m"][0]))
print("sum exp (unfused):    ", float(reference["t"][0]))
print("sum exp (fused tree): ", float(tree["t"][0]))
print("sum exp (incremental):", float(stream["t"][0]))
assert np.allclose(reference["t"], tree["t"])
assert np.allclose(reference["t"], stream["t"])
print("\nAll three execution modes agree. ✔")
