"""Quickstart: compile a cascade once, then execute it many ways.

The safe softmax is the canonical cascade: a max reduction followed by a
sum-of-exponentials that depends on it.  ACRF decomposes each mapping
function into G(x) (x) H(d); the serving engine freezes that result in a
FusionPlan, caches it by the cascade's structural signature, and then
serves per-query, batched, and streaming execution off the same plan —
compile once, execute many.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cascade, Engine, Reduction
from repro.symbolic import exp, var

# 1. Describe the cascade: m = max(x), t = sum(exp(x - m)).
x, m = var("x"), var("m")
softmax = Cascade(
    name="safe_softmax",
    element_vars=("x",),
    reductions=(
        Reduction("m", "max", x),
        Reduction("t", "sum", exp(x - m)),
    ),
)

# 2. Compile: the engine runs ACRF (Algorithm 1) once and caches the
#    FusionPlan under the cascade's structural signature.
engine = Engine()
plan = engine.plan_for(softmax)
for fr in plan.fused:
    print(f"{fr.reduction.name}:  G(x) (x) H(d) = {fr.gh!r}   "
          f"correction = {fr.h_ratio!r}")

# Re-requesting the same cascade shape is a pure cache hit — zero
# symbolic work, the identical plan object comes back.
assert engine.plan_for(softmax) is plan
print(f"\nplan {plan.signature}: cache {engine.stats.snapshot()}")

# 3. Execute one query: unfused chain, fused reduction tree, incremental.
rng = np.random.default_rng(0)
data = rng.normal(0.0, 4.0, size=10_000)

reference = plan.execute({"x": data}, mode="unfused")
tree = plan.execute({"x": data}, mode="fused_tree", num_segments=16)
stream = plan.execute({"x": data}, mode="incremental", chunk_len=128)

print("\nmax(x):     ", float(reference["m"][0]))
print("sum exp (unfused):    ", float(reference["t"][0]))
print("sum exp (fused tree): ", float(tree["t"][0]))
print("sum exp (incremental):", float(stream["t"][0]))
assert np.allclose(reference["t"], tree["t"])
assert np.allclose(reference["t"], stream["t"])

# 4. Execute many independent queries at once: the BatchExecutor
#    vectorizes the fused tree across a leading batch axis.
batch = rng.normal(0.0, 4.0, size=(32, 10_000))
batched = plan.execute_batch({"x": batch}, num_segments=16)
per_query = np.array([plan.execute({"x": q})["t"][0] for q in batch])
assert np.allclose(batched["t"][:, 0], per_query, rtol=1e-9)
print(f"\nbatched 32 queries: t[:3] = {batched['t'][:3, 0]}")

# 5. Stream a stateful client: O(1) state between chunks (Eq. 15/16).
session = plan.stream()
for start in range(0, data.shape[0], 1024):
    session.feed({"x": data[start : start + 1024]})
assert np.allclose(session.values()["t"], reference["t"])
print(f"streamed {session.position} positions; all execution modes agree. ✔")

# 6. Pick a different execution backend: "tile_ir" lowers the compiled
#    cascade through the codegen stack (tensorize + autotune), executes
#    the generated tile program with the NumPy interpreter, and attaches
#    the analytical GPU cost model's latency estimate to the plan.
small = data[:512]
simulated = engine.run(softmax, {"x": small}, backend="tile_ir", gpu="A10")
assert np.allclose(
    simulated["t"], plan.execute({"x": small}, mode="unfused")["t"]
)
estimate = plan.describe()["tile_ir"]["estimates"][0]
print(
    f"\ntile_ir backend: {estimate['strategy']} kernel, "
    f"tile {estimate['blk_rows']}x{estimate['blk_len']}, "
    f"simulated {estimate['gpu']} latency "
    f"{estimate['latency_seconds'] * 1e6:.2f} us"
)
print(f"backends used so far: {plan.execution_counts}")

# 6b. The tile-IR schedule optimizer ran behind that execute (default
#     opt_level=2): dead-code elimination, segment-loop unroll-by-two,
#     temp renaming, and engine-slot list scheduling, each re-costed by
#     the GPU model.  opt_level=0 compiles the legacy serial program —
#     bitwise-identical outputs, its own cached variant — and the
#     per-pass delta report shows what each rewrite bought.
from repro.harness import optimization_table
from repro.obs import optimization_rows

legacy = plan.execute({"x": small}, mode="tile_ir", opt_level=0)
assert np.array_equal(legacy["t"], simulated["t"])  # bitwise, not approx
opt_est = next(
    e for e in plan.describe()["tile_ir"]["estimates"] if e["opt_level"] == 2
)
print(
    f"\ntile-IR optimizer: {len(opt_est['opt_passes'])} passes at "
    f"opt_level={opt_est['opt_level']}"
)
print(optimization_table(optimization_rows(plan), "per-pass latency deltas"))

# 7. Serve concurrent clients: the serving runtime queues independent
#    requests, groups compatible ones into micro-batches (continuous
#    batching), applies admission control, and resolves each client's
#    Future with its own row of the batched result.
import threading

with engine.serving() as serving:
    futures = [None] * 16

    def client(i, query):
        futures[i] = serving.submit(softmax, {"x": query})

    queries = rng.normal(size=(16, 512))
    threads = [
        threading.Thread(target=client, args=(i, q))
        for i, q in enumerate(queries)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    results = [f.result() for f in futures]

for q, out in zip(queries, results):
    assert np.allclose(out["t"], plan.execute({"x": q}, mode="unfused")["t"])
stats = engine.stats.describe()
print(
    f"\nserved {stats['serving']['completed']} requests in "
    f"{stats['serving']['batches']} micro-batch(es), "
    f"mean batch size {stats['serving']['mean_batch_size']:.1f}, "
    f"p99 latency {stats['serving']['p99_latency_s'] * 1e3:.2f} ms"
)

# 8. Shard a big batch across simulated devices: the "sharded" backend
#    splits the batch axis, runs each shard on its own device (worker
#    thread with gpusim latency attribution), and merges the results —
#    bitwise identical to one whole-batch fused_tree call.
big_batch = {"x": rng.normal(size=(64, 2048))}
whole = engine.run_batch(softmax, big_batch, mode="fused_tree")
sharded = engine.run_batch(softmax, big_batch, mode="sharded", gpu="H800")
assert np.array_equal(whole["t"], sharded["t"])
shard_info = plan.describe()["sharded"]
print(
    f"sharded 64 queries over {shard_info['num_devices']} devices; "
    f"modeled H800 makespan "
    f"{shard_info['estimates']['H800']['latency_seconds'] * 1e6:.2f} us ✔"
)

# 9. Serve mixed-length requests as ONE micro-batch: real decode traffic
#    arrives with different KV lengths, and the scheduler's length-bucket
#    policy (pow2 by default) pads requests within a bucket into a masked
#    RaggedBatch — padded positions contribute each reduction's identity
#    (0 for sum, -inf for max), so every client still gets the exact
#    per-query answer while sharing one vectorized dispatch.
mixed = [rng.normal(size=length) for length in (1100, 1400, 1750, 2048) * 4]
with engine.serving() as serving:
    futures = [serving.submit(softmax, {"x": q}) for q in mixed]
    mixed_results = [f.result() for f in futures]
for q, out in zip(mixed, mixed_results):
    assert np.allclose(out["t"], plan.execute({"x": q}, mode="unfused")["t"])

# Library callers opt in explicitly instead (stack_queries is strict by
# default and names the offending input when lengths differ):
from repro.engine import stack_queries

ragged = stack_queries(softmax, [{"x": q} for q in mixed], allow_ragged=True)
batched_mixed = engine.run_batch(softmax, ragged)
assert np.allclose(batched_mixed["t"][0], mixed_results[0]["t"])
serving_stats = engine.stats.describe()["serving"]
print(
    f"served {len(mixed)} mixed-length requests "
    f"(KV 1100-2048, one pow2 bucket) in {serving_stats['batches'] - stats['serving']['batches']} "
    f"ragged micro-batch(es); padding efficiency "
    f"{ragged.padding_efficiency:.0%} ✔"
)

# 10. Serve many tenants with SLAs: requests carry a tenant, a priority
#     class ("interactive" > "standard" > "batch"), and optionally a
#     deadline.  The scheduler serves the highest class first, bounds
#     the batching window by each request's deadline (minus the modeled
#     dispatch cost), enforces per-tenant queue quotas, and — when the
#     bounded queue fills — sheds the lowest-priority, longest-bucket
#     victim instead of the newest arrival.  drain() blocks until
#     nothing is queued *or* in flight, so every future below resolved.
from repro.engine import ServingConfig

sla = ServingConfig(max_batch=16, batch_window_s=0.004, tenant_quota=64)
with engine.serving(sla) as serving:
    background = [
        serving.submit(softmax, {"x": rng.normal(size=2048)},
                       tenant="jobs", priority="batch")
        for _ in range(8)
    ]
    urgent = serving.submit(softmax, {"x": rng.normal(size=512)},
                            tenant="web", priority="interactive",
                            deadline_s=0.05)
    serving.drain()
    assert urgent.done() and all(f.done() for f in background)
    by_class = serving.stats.by_class()
print(
    f"\nSLA serving: interactive p99 "
    f"{by_class['interactive']['p99_latency_s'] * 1e3:.2f} ms with "
    f"{by_class['batch']['completed']} background requests in flight; "
    f"per-tenant accounting {serving.stats.by_tenant()} ✔"
)

# 11. Scale past one process: persist compiled plans to a PlanStore
#     (atomic JSON artifacts keyed by cascade signature, format version,
#     and gpu/opt_level environment), then fork a WorkerPool whose
#     workers warm-start from the store — zero recompiles — behind a
#     Router that is sticky by cascade signature and fails over when a
#     worker dies.
import tempfile
import time

from repro.engine import PlanStore, Router, SupervisorConfig, WorkerPool

with tempfile.TemporaryDirectory() as plan_dir:
    store = PlanStore(plan_dir)
    seeder = Engine(plan_store=store)
    seeder.run(softmax, {"x": data[:512]})  # compile once, artifact saved
    assert store.describe()["saves"] == 1

    with WorkerPool(2, store) as pool:
        fast = SupervisorConfig(interval_s=0.05, ping_timeout_s=0.5,
                                backoff_base_s=0.05)
        with Router(pool, supervisor_config=fast) as router:
            routed = [
                router.submit(softmax, {"x": q}).result()
                for q in rng.normal(size=(6, 512))
            ]
            compiles = pool.fusion_compiles()  # workers loaded, never compiled
            assert compiles == 0, compiles

            # 11b. Kill and recover: SIGKILL one worker mid-service.  The
            #      router's background supervisor detects the dead slot and
            #      warm-restarts it from the store; requests in flight on it
            #      would be resubmitted to the live sibling transparently.
            victim_pid = pool.pids()[0]
            pool.kill(0)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if pool.alive() == [True, True] and pool.pids()[0] != victim_pid:
                    break  # slot holds a fresh, live process again
                time.sleep(0.05)
            assert pool.alive() == [True, True], "supervisor never healed w0"
            healed = router.submit(softmax, {"x": data[:512]}).result()
            assert np.allclose(healed["t"], plan.execute({"x": data[:512]})["t"])
            recompiles = pool.fusion_compiles()  # restart warm: still zero
            assert recompiles == 0, recompiles
            snap = router.stats.snapshot()
            restarts = router.supervisor.describe()["restarts"]
    print(
        f"\nmulti-process tier: {len(routed)} requests over 2 warm workers "
        f"({snap['sticky']} sticky, {compiles} recompiles) ✔"
    )
    print(
        f"kill-and-recover: w0 pid {victim_pid} SIGKILLed, supervisor "
        f"restarted it warm ({restarts} restart, {recompiles} recompiles) ✔"
    )

# 12. Observe everything: enable request tracing, serve a traced request
#     through the tile_ir (simulated-kernel) backend, export a Chrome
#     trace viewable at https://ui.perfetto.dev, and ask the gpusim
#     bottleneck profiler which engine dominates the plan.
from repro.obs import profile_plan, tracing

tracer = tracing.enable_tracing()
with engine.serving() as serving:
    serving.submit(softmax, {"x": rng.normal(size=512)}, mode="tile_ir").result()
tracing.disable_tracing()
trace_path = "quickstart_trace.json"
tracer.export_chrome(trace_path)
kinds = sorted({s.kind for s in tracer.spans()})

profile = profile_plan(engine.plan_for(softmax), backend="tile_ir")
print(
    f"\ntraced 1 request into {len(tracer)} spans ({', '.join(kinds)}) -> "
    f"{trace_path}; tile_ir bottleneck engine: {profile.bottleneck} "
    f"({profile.busy_fraction(profile.bottleneck):.0%} busy) ✔"
)
print("one-scrape metrics:", engine.render_prometheus().count("\n"), "samples")

import os

os.remove(trace_path)  # quickstart leaves no artifacts behind
