"""FlashAttention, derived — not hand-written.

Starting from the *unfused* attention loop nest of Fig. 11, this example
runs the full RedFuser pipeline:

1. detect the cascaded reduction chain in the scalar IR (§4.1),
2. decompose each reduction with ACRF (§4.2),
3. lower the fused form to the three-step scalar template (Fig. 12a),
4. tensorize to the tile-level program of Fig. 12b,

and checks that the generated kernels reproduce softmax(QKᵀ)·V exactly.
The incremental recurrence that appears is identical to FlashAttention's
online softmax (Eq. 33) — recovered automatically.

Run:  python examples/attention_flash.py
"""

import numpy as np

from repro.codegen import (
    CodegenSpec,
    ElementLayout,
    GemmProducer,
    TileConfig,
    lower_single_segment,
    tensorize_multi_segment,
    tensorize_single_segment,
)
from repro.core import fuse
from repro.ir import TileInterpreter, detect_cascades, run_function
from repro.ir.examples import unfused_attention

Q_LEN, KV_LEN, HEAD_DIM = 8, 64, 16

# 1. Frontend output: the unfused loop nest (Fig. 11).
unfused = unfused_attention(Q_LEN, KV_LEN, HEAD_DIM)
detected = detect_cascades(unfused)[0]
print(f"Detected cascade on axis {detected.axis!r}:")
for red in detected.cascade.reductions:
    print(f"  {red.name} = {red.op_name} over {red.fn!r}")
print(f"Producer reductions: {[p.buffer for p in detected.producers]}")

# 2. ACRF: the fused forms (FlashAttention's rescale factors appear).
fused = fuse(detected.cascade)
for fr in fused:
    if fr.needs_correction:
        print(f"  correction for {fr.reduction.name}: {fr.h_ratio!r}")

# 3-4. Generate kernels and validate numerically.
spec = CodegenSpec(
    fused=fused,
    rows=Q_LEN,
    length=KV_LEN,
    layouts=(ElementLayout("P", 1, True), ElementLayout("V", HEAD_DIM, False)),
    producer=GemmProducer("P", "Q", "K", HEAD_DIM),
)
rng = np.random.default_rng(1)
Q = rng.normal(size=(Q_LEN, HEAD_DIM))
K = rng.normal(size=(KV_LEN, HEAD_DIM))
V = rng.normal(size=(KV_LEN, HEAD_DIM))
scores = Q @ K.T
weights = np.exp(scores - scores.max(1, keepdims=True))
weights /= weights.sum(1, keepdims=True)
expected = weights @ V

scalar = run_function(lower_single_segment(spec), {"Q": Q, "K": K, "V": V})
assert np.allclose(scalar["o"], expected)
print("\nFused scalar kernel (Fig. 12a) matches NumPy. ✔")

config = TileConfig(blk_rows=4, blk_len=16)
tile_out = TileInterpreter(tensorize_single_segment(spec, config)).run(
    {"Q": Q, "K": K, "V": V}
)
assert np.allclose(tile_out["o"], expected)
print("FlashAttention tile program (Fig. 12b) matches NumPy. ✔")

partial, combine = tensorize_multi_segment(spec, config, splits=2)
parts = TileInterpreter(partial).run({"Q": Q, "K": K, "V": V})
final = TileInterpreter(combine).run(
    {k: v for k, v in parts.items() if k.endswith("_part")}
)
assert np.allclose(final["o"], expected)
print("FlashDecoding split-kv program (Fig. 13b) matches NumPy. ✔")
