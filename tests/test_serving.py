"""Serving runtime tests: scheduler, admission control, sharded backend."""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core import Cascade, Reduction, run_unfused
from repro.core.ops import TopKState
from repro.core.spec import SpecError
from repro.engine import (
    AdmissionError,
    Engine,
    QueueFullError,
    ServingClosedError,
    ServingConfig,
    ServingEngine,
    get_backend,
    merge_batch_outputs,
    split_batch,
)
from repro.symbolic import const, exp, var


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def topk_cascade(k: int = 3) -> Cascade:
    x = var("x")
    return Cascade(
        "routing",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("sel", "topk", x, topk=k),
        ),
    )


class TestInlineScheduler:
    def test_engine_run_goes_through_scheduler(self):
        engine = Engine()
        out = engine.run(softmax_cascade(), {"x": np.arange(8.0)})
        ref = run_unfused(softmax_cascade(), {"x": np.arange(8.0)})
        np.testing.assert_allclose(out["t"], ref["t"])
        serving = engine.stats.describe()["serving"]
        assert serving["submitted"] == 1
        assert serving["completed"] == 1

    def test_submit_inline_returns_completed_future(self):
        engine = Engine()
        future = engine.submit(softmax_cascade(), {"x": np.arange(8.0)})
        assert isinstance(future, Future)
        assert future.done()
        np.testing.assert_allclose(
            future.result()["t"],
            run_unfused(softmax_cascade(), {"x": np.arange(8.0)})["t"],
        )

    def test_inline_execution_errors_surface_through_result(self):
        engine = Engine()
        with pytest.raises(ValueError, match="unknown execution mode"):
            engine.run(softmax_cascade(), {"x": np.arange(8.0)}, mode="nope")
        with pytest.raises(TypeError, match="unexpected options"):
            engine.run(softmax_cascade(), {"x": np.arange(8.0)}, bogus=1)
        with pytest.raises(SpecError):
            engine.run(softmax_cascade(), {})

    def test_run_batch_shim_matches_plan_execute_batch(self):
        engine = Engine()
        batch = {"x": np.random.default_rng(0).normal(size=(4, 16))}
        via_engine = engine.run_batch(softmax_cascade(), batch)
        direct = engine.plan_for(softmax_cascade()).execute_batch(batch)
        np.testing.assert_array_equal(via_engine["t"], direct["t"])

    def test_describe_merges_cache_and_serving(self):
        engine = Engine()
        engine.run(softmax_cascade(), {"x": np.arange(8.0)})
        engine.run(softmax_cascade(), {"x": np.arange(8.0)})
        info = engine.stats.describe()
        assert info["cache"]["hits"] == 1
        assert info["cache"]["misses"] == 1
        assert info["cache"]["evictions"] == 0
        assert info["cache"]["plans"] == 1
        assert info["backend_executions"]["fused_tree"] == 2
        assert info["serving"]["submitted"] == 2


class TestAsyncScheduler:
    def test_concurrent_submissions_micro_batch(self):
        engine = Engine()
        cascade = softmax_cascade(1.5)
        rng = np.random.default_rng(1)
        datas = [rng.normal(size=32) for _ in range(24)]
        with engine.serving(
            ServingConfig(max_batch=16, batch_window_s=0.01)
        ) as serving:
            futures = [None] * len(datas)

            def client(i):
                futures[i] = serving.submit(cascade, {"x": datas[i]})

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(datas))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            results = [f.result() for f in futures]
        for data, out in zip(datas, results):
            ref = run_unfused(cascade, {"x": data})
            np.testing.assert_allclose(out["t"], ref["t"], rtol=1e-9)
            np.testing.assert_allclose(out["m"], ref["m"], rtol=1e-9)
        snap = serving.stats.snapshot()
        assert snap["completed"] == len(datas)
        # at least one real micro-batch formed (scheduling is timing-
        # dependent, but 24 threads against a 10ms window always overlap)
        assert snap["max_batch_size"] > 1
        assert snap["batches"] >= 1

    def test_incompatible_shapes_never_share_a_batch(self):
        engine = Engine()
        cascade = softmax_cascade(2.0)
        # lengths 8 and 12 fall in different pow2 buckets (8 vs 16), so
        # even the ragged policy keeps them apart; exact makes it strict
        with engine.serving(
            ServingConfig(max_batch=8, batch_window_s=0.01, bucket="exact")
        ) as serving:
            futures = []

            def client(length):
                futures.append(
                    (length, serving.submit(cascade, {"x": np.arange(float(length))}))
                )

            threads = [
                threading.Thread(target=client, args=(length,))
                for length in (8, 12, 8, 12, 8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for length, future in futures:
                ref = run_unfused(cascade, {"x": np.arange(float(length))})
                np.testing.assert_allclose(future.result()["t"], ref["t"])

    def test_ragged_bucket_batches_mixed_lengths(self):
        engine = Engine()
        cascade = softmax_cascade(2.5)
        rng = np.random.default_rng(21)
        # all lengths land in the (16, 32] pow2 bucket, none equal
        lengths = (17, 21, 25, 29, 32, 19, 27, 23)
        datas = [rng.normal(size=n) for n in lengths]
        with engine.serving(
            ServingConfig(max_batch=8, batch_window_s=0.05)
        ) as serving:
            futures = [None] * len(datas)

            def client(i):
                futures[i] = serving.submit(cascade, {"x": datas[i]})

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(datas))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for data, future in zip(datas, futures):
                ref = run_unfused(cascade, {"x": data})
                np.testing.assert_allclose(future.result()["t"], ref["t"], rtol=1e-9)
                np.testing.assert_allclose(future.result()["m"], ref["m"], rtol=1e-9)
        snap = serving.stats.snapshot()
        assert snap["completed"] == len(datas)
        # mixed lengths shared micro-batches (timing-dependent how many,
        # but 8 threads against a 50ms window always overlap)
        assert snap["max_batch_size"] > 1
        assert snap["ragged_batches"] >= 1
        assert snap["useful_positions"] < snap["padded_positions"]
        assert 0.0 < snap["padding_efficiency"] < 1.0

    def test_bucket_policies(self):
        assert ServingConfig(bucket="exact").bucket_for(100) == 100
        pow2 = ServingConfig(bucket="pow2")
        assert pow2.bucket_for(1) == 1
        assert pow2.bucket_for(8) == 8
        assert pow2.bucket_for(9) == 16
        assert pow2.bucket_for(100) == 128
        edges = ServingConfig(bucket=(16, 64, 256))
        assert edges.bucket == (16, 64, 256)
        assert edges.bucket_for(10) == 16
        assert edges.bucket_for(16) == 16
        assert edges.bucket_for(17) == 64
        assert edges.bucket_for(300) == 300  # beyond the last edge: exact
        for bad in ("nope", (), (0, 4), (8, 8), (16, 4)):
            with pytest.raises(ValueError, match="bucket"):
                ServingConfig(bucket=bad)

    def test_topk_outputs_scatter_per_request(self):
        engine = Engine()
        cascade = topk_cascade(2)
        rng = np.random.default_rng(2)
        datas = [rng.normal(size=16) for _ in range(6)]
        with engine.serving(
            ServingConfig(max_batch=6, batch_window_s=0.01)
        ) as serving:
            futures = [None] * len(datas)

            def client(i):
                futures[i] = serving.submit(cascade, {"x": datas[i]})

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(datas))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for data, future in zip(datas, futures):
                out = future.result()
                ref = run_unfused(cascade, {"x": data})
                assert isinstance(out["sel"], TopKState)
                np.testing.assert_allclose(out["sel"].values, ref["sel"].values)
                np.testing.assert_array_equal(out["sel"].indices, ref["sel"].indices)

    def test_non_batchable_mode_executes_solo(self):
        engine = Engine()
        cascade = softmax_cascade(3.0)
        with engine.serving() as serving:
            future = serving.submit(
                cascade, {"x": np.arange(32.0)}, mode="incremental", chunk_len=8
            )
            ref = run_unfused(cascade, {"x": np.arange(32.0)})
            np.testing.assert_allclose(future.result()["t"], ref["t"])
        assert engine.plan_for(cascade).execution_counts["incremental"] == 1

    def test_submit_batch_dispatches_as_one_unit(self):
        engine = Engine()
        cascade = softmax_cascade(4.0)
        batch = {"x": np.random.default_rng(3).normal(size=(5, 16))}
        with engine.serving() as serving:
            out = serving.submit_batch(cascade, batch).result()
        direct = engine.plan_for(cascade).execute_batch(batch)
        np.testing.assert_array_equal(out["t"], direct["t"])

    def test_validation_errors_raise_at_submit_time(self):
        engine = Engine()
        with engine.serving() as serving:
            with pytest.raises(ValueError, match="unknown execution mode"):
                serving.submit(softmax_cascade(), {"x": np.arange(4.0)}, mode="nah")
            with pytest.raises(TypeError, match="unexpected options"):
                serving.submit(softmax_cascade(), {"x": np.arange(4.0)}, wat=1)
            with pytest.raises(SpecError):
                serving.submit(softmax_cascade(), {"y": np.arange(4.0)})

    def test_execution_errors_surface_through_future(self):
        class Exploding(Exception):
            pass

        engine = Engine()
        cascade = softmax_cascade(5.0)
        plan = engine.plan_for(cascade)
        backend = get_backend("fused_tree")
        original = type(backend).execute_batch

        def boom(self, plan, batch_inputs, **params):
            raise Exploding("device on fire")

        with engine.serving(
            ServingConfig(max_batch=4, batch_window_s=0.01)
        ) as serving:
            type(backend).execute_batch = boom
            try:
                futures = [None, None]

                def client(i):
                    futures[i] = serving.submit(cascade, {"x": np.arange(8.0)})

                threads = [
                    threading.Thread(target=client, args=(i,)) for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                for future in futures:
                    with pytest.raises(Exploding):
                        future.result()
            finally:
                type(backend).execute_batch = original
        assert serving.stats.snapshot()["failed"] >= 1


class TestAdmissionControl:
    def test_queue_full_sheds_with_typed_error(self):
        engine = Engine()
        cascade = softmax_cascade(6.0)
        rng = np.random.default_rng(4)
        big = rng.normal(size=100_000)
        serving = engine.serving(
            ServingConfig(max_queue_depth=2, max_batch=2, batch_window_s=0.0)
        )
        shed = 0
        accepted = []
        lock = threading.Lock()

        def flood():
            nonlocal shed
            try:
                future = serving.submit(cascade, {"x": big})
            except QueueFullError:
                with lock:
                    shed += 1
                return
            with lock:
                accepted.append(future)

        threads = [threading.Thread(target=flood) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for future in accepted:
            future.result()
        engine.close()
        assert shed > 0
        assert serving.stats.snapshot()["shed"] == shed
        assert isinstance(QueueFullError("x"), AdmissionError)

    def test_cancelled_future_does_not_kill_the_scheduler(self):
        engine = Engine()
        cascade = softmax_cascade(6.5)
        serving = engine.serving(ServingConfig(max_batch=2, batch_window_s=0.05))
        victim = serving.submit(cascade, {"x": np.arange(8.0)})
        victim.cancel()  # queued => PENDING => cancellable
        survivor = serving.submit(cascade, {"x": np.arange(16.0)})
        ref = run_unfused(softmax_cascade(6.5), {"x": np.arange(16.0)})
        np.testing.assert_allclose(survivor.result(timeout=10)["t"], ref["t"])
        # the scheduler thread survived the cancelled future
        again = serving.submit(cascade, {"x": np.arange(8.0)})
        again.result(timeout=10)
        engine.close()

    def test_serving_restartable_with_new_config_after_close(self):
        engine = Engine()
        first = engine.serving(ServingConfig(max_batch=4))
        first.submit(softmax_cascade(6.6), {"x": np.arange(8.0)}).result()
        first.close()
        second = engine.serving(ServingConfig(max_batch=8))
        assert second is not first
        assert second.config.max_batch == 8
        out = second.submit(softmax_cascade(6.6), {"x": np.arange(8.0)}).result()
        assert out["t"].shape == (1,)
        # counters carried across the restart
        assert second.stats.snapshot()["completed"] >= 2
        engine.close()

    def test_closed_runtime_rejects_submissions(self):
        engine = Engine()
        serving = engine.serving()
        serving.close()
        with pytest.raises(ServingClosedError):
            serving.submit(softmax_cascade(), {"x": np.arange(4.0)})
        with pytest.raises(ServingClosedError):
            serving.start()

    def test_close_drains_queued_requests(self):
        engine = Engine()
        cascade = softmax_cascade(7.0)
        serving = engine.serving(ServingConfig(max_batch=4, batch_window_s=0.05))
        futures = [
            serving.submit(cascade, {"x": np.arange(16.0)}) for _ in range(3)
        ]
        serving.close()
        for future in futures:
            assert future.result()["t"].shape == (1,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_batch": 0},
            {"batch_window_s": -1.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestShardedBackend:
    def test_batch_results_bitwise_equal_fused_tree(self):
        engine = Engine()
        cascade = softmax_cascade(8.0)
        batch = {"x": np.random.default_rng(5).normal(size=(13, 40))}
        ref = engine.run_batch(cascade, batch, mode="fused_tree")
        got = engine.run_batch(cascade, batch, mode="sharded")
        for name in ref:
            np.testing.assert_array_equal(np.asarray(got[name]), np.asarray(ref[name]))

    def test_single_query_routes_to_a_device(self):
        engine = Engine()
        cascade = softmax_cascade(8.1)
        out = engine.run(cascade, {"x": np.arange(24.0)}, mode="sharded")
        ref = run_unfused(cascade, {"x": np.arange(24.0)})
        np.testing.assert_allclose(out["t"], ref["t"])
        assert engine.plan_for(cascade).execution_counts["sharded"] == 1

    def test_describe_reports_devices_and_makespan(self):
        engine = Engine()
        cascade = softmax_cascade(8.2)
        batch = {"x": np.random.default_rng(6).normal(size=(8, 32))}
        engine.run_batch(cascade, batch, mode="sharded", gpu="H800")
        info = engine.plan_for(cascade).describe()["sharded"]
        assert info["queries"] == 8
        assert info["batches"] == 1
        assert info["estimates"]["H800"]["latency_seconds"] > 0
        assert info["estimates"]["H800"]["inner"] == "fused_tree"
        backend = get_backend("sharded")
        est = backend.estimate_for(engine.plan_for(cascade), "H800")
        assert est is not None and est.num_devices >= 1

    def test_unshardable_inner_rejected(self):
        engine = Engine()
        cascade = softmax_cascade(8.3)
        batch = {"x": np.zeros((4, 8))}
        with pytest.raises(ValueError, match="not shardable"):
            engine.run_batch(cascade, batch, mode="sharded", inner="incremental")
        with pytest.raises(ValueError, match="shard itself"):
            engine.run_batch(cascade, batch, mode="sharded", inner="sharded")

    def test_gpu_forwarded_to_simulated_inner(self):
        engine = Engine()
        cascade = softmax_cascade(8.5)
        batch = {"x": np.random.default_rng(11).normal(size=(4, 32))}
        engine.run_batch(cascade, batch, mode="sharded", inner="tile_ir", gpu="H800")
        tile_info = engine.plan_for(cascade).describe()["tile_ir"]
        assert {e["gpu"] for e in tile_info["estimates"]} == {"H800"}

    def test_inner_unfused_serves_unfusable_cascades(self):
        x, m = var("x"), var("m")
        entangled = Cascade(
            "entangled",
            ("x",),
            (
                Reduction("m", "max", x),
                Reduction("t", "sum", exp(x * m)),
            ),
        )
        engine = Engine()
        batch = {"x": np.random.default_rng(7).normal(size=(6, 12))}
        got = engine.run_batch(entangled, batch, mode="sharded", inner="unfused")
        ref = engine.run_batch(entangled, batch, mode="unfused")
        for name in ref:
            np.testing.assert_array_equal(np.asarray(got[name]), np.asarray(ref[name]))

    def test_through_the_scheduler(self):
        engine = Engine()
        cascade = softmax_cascade(8.4)
        rng = np.random.default_rng(8)
        datas = [rng.normal(size=20) for _ in range(9)]
        with engine.serving(
            ServingConfig(max_batch=9, batch_window_s=0.01)
        ) as serving:
            futures = [None] * len(datas)

            def client(i):
                futures[i] = serving.submit(cascade, {"x": datas[i]}, mode="sharded")

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(datas))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for data, future in zip(datas, futures):
                ref = run_unfused(cascade, {"x": data})
                np.testing.assert_allclose(future.result()["t"], ref["t"])


class TestSplitMergeHelpers:
    def test_split_round_trip(self):
        cascade = softmax_cascade(9.0)
        batch = {"x": np.random.default_rng(9).normal(size=(10, 16))}
        shards = split_batch(cascade, batch, 3)
        assert [len(rows) for rows, _ in shards] == [3, 3, 4]
        engine = Engine()
        plan = engine.plan_for(cascade)
        outs = [
            plan.execute_batch(shard, mode="fused_tree") for _rows, shard in shards
        ]
        merged = merge_batch_outputs(outs)
        whole = plan.execute_batch(batch, mode="fused_tree")
        np.testing.assert_array_equal(merged["t"], whole["t"])

    def test_split_fewer_rows_than_parts(self):
        cascade = softmax_cascade(9.1)
        shards = split_batch(cascade, {"x": np.zeros((2, 8))}, 5)
        assert len(shards) == 2

    def test_merge_topk_carriers(self):
        cascade = topk_cascade(2)
        batch = {"x": np.random.default_rng(10).normal(size=(7, 12))}
        engine = Engine()
        plan = engine.plan_for(cascade)
        whole = plan.execute_batch(batch, mode="fused_tree")
        shards = split_batch(cascade, batch, 2)
        merged = merge_batch_outputs(
            [plan.execute_batch(s, mode="fused_tree") for _r, s in shards]
        )
        np.testing.assert_array_equal(merged["sel"].values, whole["sel"].values)
        np.testing.assert_array_equal(merged["sel"].indices, whole["sel"].indices)

    def test_validation(self):
        cascade = softmax_cascade(9.2)
        with pytest.raises(ValueError):
            split_batch(cascade, {"x": np.zeros((2, 8))}, 0)
        with pytest.raises(ValueError):
            merge_batch_outputs([])


class TestStandaloneServingEngine:
    def test_owns_private_engine_when_none_given(self):
        serving = ServingEngine()
        out = serving.run(softmax_cascade(11.0), {"x": np.arange(8.0)})
        ref = run_unfused(softmax_cascade(11.0), {"x": np.arange(8.0)})
        np.testing.assert_allclose(out["t"], ref["t"])
        assert serving.engine.stats.misses == 1

    def test_latency_percentiles_reported(self):
        engine = Engine()
        for _ in range(5):
            engine.run(softmax_cascade(11.1), {"x": np.arange(8.0)})
        snap = engine.scheduler.stats.snapshot()
        assert snap["p50_latency_s"] > 0
        assert snap["p99_latency_s"] >= snap["p50_latency_s"]
