"""Differential fuzzing of the engine's execution paths.

Randomly generated (seeded) small cascades are compiled through the
serving engine and executed through every registered execution backend
(the three NumPy paths plus the ``tile_ir`` simulated-kernel backend),
as a fused tree with several tree shapes, incrementally, and batched;
every path must agree with the unfused reference chain within floating
point tolerance.  The generator only emits shapes ACRF is specified to
handle (Table 1 operators, decomposable dependencies, one optional
terminal top-k), so a NotFusableError here is a real regression.
"""

import numpy as np
import pytest

from repro.core import Cascade, NotFusableError, Reduction, run_unfused
from repro.engine import (
    BackendError,
    BatchExecutor,
    Engine,
    RaggedBatch,
    available_backends,
    get_backend,
    stack_queries,
)
from repro.symbolic import Const, exp, var

X, Y = var("x"), var("y")

RTOL, ATOL = 1e-6, 1e-9


def _coeff(rng, lo=0.5, hi=1.5):
    return float(rng.uniform(lo, hi) * rng.choice([-1.0, 1.0]))


def random_cascade(rng: np.random.Generator, length: int) -> Cascade:
    """A random fusable cascade of 1-3 scalar stages (+ optional top-k)."""
    reductions = []
    maxes, sumexps, sums = [], [], []

    def stage(i: int) -> Reduction:
        name = f"r{i}"
        choices = ["max", "min", "sum_lin", "prod_exp"]
        if maxes:
            choices += ["sum_exp", "sum_exp"]  # weight dependency-using forms
        if sumexps:
            choices += ["softmax_weight"]
        if sums:
            choices += ["max_shift"]
        kind = rng.choice(choices)
        if kind == "max":
            maxes.append(name)
            return Reduction(name, "max", X * Const(_coeff(rng)))
        if kind == "min":
            return Reduction(name, "min", X * Const(_coeff(rng)) + Const(_coeff(rng)))
        if kind == "sum_lin":
            sums.append(name)
            return Reduction(
                name, "sum", X * Const(_coeff(rng)) + Y * Const(_coeff(rng))
            )
        if kind == "prod_exp":
            return Reduction(
                name, "prod", exp(X * Const(_coeff(rng) / length))
            )
        if kind == "sum_exp":
            dep = var(rng.choice(maxes))
            scale = float(rng.uniform(0.5, 1.5))
            sumexps.append((name, dep.name))
            return Reduction(name, "sum", exp((X - dep) * Const(scale)))
        if kind == "softmax_weight":
            t_name, m_name = sumexps[int(rng.integers(len(sumexps)))]
            return Reduction(
                name, "sum", exp(X - var(m_name)) / var(t_name) * Y
            )
        # max_shift: max of x - c * (an earlier sum)
        dep = var(rng.choice(sums))
        return Reduction(name, "max", X - dep * Const(_coeff(rng, 0.1, 0.5)))

    for i in range(int(rng.integers(1, 4))):
        reductions.append(stage(i))
    if rng.random() < 0.3:
        reductions.append(
            Reduction("sel", "topk", X, topk=int(rng.integers(1, 4)))
        )
    return Cascade(f"fuzz", ("x", "y"), tuple(reductions))


def _assert_same(got, ref, context: str) -> None:
    for name, ref_value in ref.items():
        if hasattr(ref_value, "values"):  # top-k carrier
            np.testing.assert_allclose(
                got[name].values, ref_value.values, rtol=RTOL, atol=ATOL,
                err_msg=f"{context}: {name}.values",
            )
            np.testing.assert_array_equal(
                got[name].indices, ref_value.indices, err_msg=f"{context}: {name}.indices"
            )
        else:
            np.testing.assert_allclose(
                got[name], ref_value, rtol=RTOL, atol=ATOL, err_msg=f"{context}: {name}"
            )


@pytest.mark.parametrize("seed", range(12))
def test_fused_paths_match_unfused(seed):
    rng = np.random.default_rng(seed)
    length = int(rng.integers(16, 80))
    cascade = random_cascade(rng, length)
    inputs = {
        "x": rng.normal(size=length),
        "y": rng.normal(size=length),
    }
    ref = run_unfused(cascade, inputs)

    engine = Engine()
    plan = engine.plan_for(cascade)
    assert plan.fusable, f"seed {seed}: generator emitted unfusable {cascade}"

    for segments in (1, 3, 7):
        got = plan.execute(inputs, mode="fused_tree", num_segments=segments)
        _assert_same(got, ref, f"seed {seed}, tree segments={segments}")
    got = plan.execute(
        inputs, mode="fused_tree", num_segments=6, branching=None
    )  # flat one-level merge
    _assert_same(got, ref, f"seed {seed}, flat merge")

    for chunk in (1, 13, length):
        got = plan.execute(inputs, mode="incremental", chunk_len=chunk)
        _assert_same(got, ref, f"seed {seed}, incremental chunk={chunk}")


@pytest.mark.parametrize("seed", range(12))
def test_all_registered_backends_match_unfused(seed):
    """Every backend in the registry agrees with the reference chain.

    Backends that declare a plan unsupported (e.g. ``tile_ir`` on
    cascades with a terminal top-k) must refuse it — ``BackendError``
    for out-of-class cascades, ``NotFusableError`` for unfusable ones —
    instead of silently degrading.
    """
    rng = np.random.default_rng(seed)
    length = int(rng.integers(16, 80))
    cascade = random_cascade(rng, length)
    inputs = {
        "x": rng.normal(size=length),
        "y": rng.normal(size=length),
    }
    ref = run_unfused(cascade, inputs)

    engine = Engine()
    plan = engine.plan_for(cascade)
    exercised = []
    for name in available_backends():
        backend = get_backend(name)
        if not backend.supports(plan):
            with pytest.raises((BackendError, NotFusableError)):
                plan.execute(inputs, mode=name)
            continue
        got = plan.execute(inputs, mode=name)
        _assert_same(got, ref, f"seed {seed}, backend {name}")
        exercised.append(name)
    assert set(exercised) >= {"unfused", "fused_tree", "incremental"}
    counts = plan.execution_counts
    assert all(counts[name] == 1 for name in exercised)


@pytest.mark.parametrize("seed", range(12, 20))
def test_batched_path_matches_per_query_unfused(seed):
    rng = np.random.default_rng(seed)
    length = int(rng.integers(16, 64))
    batch = int(rng.integers(2, 7))
    cascade = random_cascade(rng, length)
    queries = [
        {"x": rng.normal(size=length), "y": rng.normal(size=length)}
        for _ in range(batch)
    ]

    engine = Engine()
    plan = engine.plan_for(cascade)
    executor = BatchExecutor(plan, num_segments=4)
    out = executor.run_many(queries)

    for i, query in enumerate(queries):
        ref = run_unfused(cascade, query)
        for name, ref_value in ref.items():
            context = f"seed {seed}, query {i}, {name}"
            if hasattr(ref_value, "values"):
                row = out[name].row(i)
                np.testing.assert_allclose(
                    row.values, ref_value.values, rtol=RTOL, atol=ATOL,
                    err_msg=context,
                )
                np.testing.assert_array_equal(
                    row.indices, ref_value.indices, err_msg=context
                )
            else:
                np.testing.assert_allclose(
                    out[name][i], ref_value, rtol=RTOL, atol=ATOL, err_msg=context
                )


def _assert_row_matches(out, ref, i: int, context: str) -> None:
    """One padded batch row against its per-query reference outputs."""
    for name, ref_value in ref.items():
        if hasattr(ref_value, "values"):  # top-k carrier
            row = out[name].row(i)
            np.testing.assert_allclose(
                row.values, ref_value.values, rtol=RTOL, atol=ATOL,
                err_msg=f"{context}: {name}.values",
            )
            np.testing.assert_array_equal(
                row.indices, ref_value.indices, err_msg=f"{context}: {name}.indices"
            )
        else:
            np.testing.assert_allclose(
                out[name][i], ref_value, rtol=RTOL, atol=ATOL,
                err_msg=f"{context}: {name}",
            )


@pytest.mark.parametrize("seed", range(38, 52))
def test_ragged_batches_match_per_query_loop(seed):
    """Masked padded execution must equal the per-query loop, per backend.

    Random mixed-length queries pad into one RaggedBatch; every backend
    that declares the ``ragged`` capability (including the sharded
    backend and top-k epilogues) must return, for every row, the same
    outputs as ``run_unfused`` at that row's true length.
    """
    rng = np.random.default_rng(seed)
    cascade = random_cascade(rng, 48)
    batch = int(rng.integers(2, 9))
    lengths = rng.integers(4, 64, size=batch)
    lengths[int(rng.integers(batch))] = int(lengths.max()) + int(
        rng.integers(1, 16)
    )  # guarantee real raggedness
    queries = [
        {"x": rng.normal(size=int(n)), "y": rng.normal(size=int(n))}
        for n in lengths
    ]
    refs = [run_unfused(cascade, q) for q in queries]

    engine = Engine()
    plan = engine.plan_for(cascade)
    exercised = []
    for name in available_backends():
        backend = get_backend(name)
        if not backend.capabilities.ragged:
            continue
        if not backend.supports(plan):
            continue
        executor = BatchExecutor(plan, mode=name)
        out = executor.run_many(queries, allow_ragged=True)
        for i, ref in enumerate(refs):
            _assert_row_matches(out, ref, i, f"seed {seed}, backend {name}, row {i}")
        exercised.append(name)
    assert set(exercised) >= {"unfused", "fused_tree", "sharded"}
    # padding overhead was accounted per backend (the sharded run also
    # adds its inner backend's shard executions to that inner's account)
    padding = plan.padding_counts
    for name in exercised:
        assert padding[name]["useful_positions"] >= int(sum(lengths)), name
        assert 0.0 < padding[name]["efficiency"] <= 1.0


@pytest.mark.parametrize("seed", range(52, 58))
def test_ragged_topk_epilogue_matches_per_query(seed):
    """Dedicated top-k coverage: padded rows keep exact values/indices,
    including rows shorter than k (identity -inf/-1 padding)."""
    rng = np.random.default_rng(seed)
    x = var("x")
    cascade = Cascade(
        "routing",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("t", "sum", exp(x - var("m"))),
            Reduction("sel", "topk", x, topk=4),
        ),
    )
    lengths = [2, 3, int(rng.integers(5, 40)), int(rng.integers(5, 40)), 4]
    queries = [{"x": rng.normal(size=n)} for n in lengths]
    refs = [run_unfused(cascade, q) for q in queries]
    engine = Engine()
    plan = engine.plan_for(cascade)
    for name in ("unfused", "fused_tree", "sharded"):
        out = BatchExecutor(plan, mode=name).run_many(queries, allow_ragged=True)
        for i, ref in enumerate(refs):
            _assert_row_matches(out, ref, i, f"seed {seed}, backend {name}, row {i}")


@pytest.mark.parametrize("seed", range(58, 64))
def test_ragged_sharded_matches_whole_batch_per_row(seed):
    """Length-aware sharding must not change any row's result beyond fp
    noise, while trimming per-device padding below the naive footprint."""
    rng = np.random.default_rng(seed)
    cascade = random_cascade(rng, 48)
    batch = int(rng.integers(6, 16))
    lengths = rng.integers(4, 96, size=batch)
    if len(set(int(n) for n in lengths)) == 1:
        lengths[0] += 7
    queries = [
        {"x": rng.normal(size=int(n)), "y": rng.normal(size=int(n))}
        for n in lengths
    ]
    engine = Engine()
    plan = engine.plan_for(cascade)
    ragged = stack_queries(cascade, queries, allow_ragged=True)
    assert isinstance(ragged, RaggedBatch)
    out = plan.execute_batch(ragged, mode="sharded")
    for i, q in enumerate(queries):
        _assert_row_matches(
            out, run_unfused(cascade, q), i, f"seed {seed}, sharded row {i}"
        )
    padding = plan.padding_counts["sharded"]
    assert padding["useful_positions"] == int(lengths.sum())
    # trimming each shard to its own longest row must not execute more
    # padding than the untrimmed whole-batch footprint
    assert padding["padded_positions"] <= batch * int(lengths.max())


@pytest.mark.parametrize("seed", range(20, 26))
def test_stream_prefix_consistency(seed):
    """Every stream prefix must equal the unfused chain over that prefix."""
    rng = np.random.default_rng(seed)
    length = int(rng.integers(24, 60))
    cascade = random_cascade(rng, length)
    data = {"x": rng.normal(size=length), "y": rng.normal(size=length)}

    session = Engine().stream(cascade)
    chunk = int(rng.integers(3, 11))
    for start in range(0, length, chunk):
        stop = min(start + chunk, length)
        session.feed({k: v[start:stop] for k, v in data.items()})
        prefix = {k: v[:stop] for k, v in data.items()}
        _assert_same(
            session.values(),
            run_unfused(cascade, prefix),
            f"seed {seed}, prefix {stop}",
        )


def _tile_servable(rng: np.random.Generator, length: int):
    """A random cascade the ``tile_ir`` backend accepts, plus its plan.

    Terminal top-k stages are stripped (tile_ir refuses them by
    contract, and this differential targets the schedule optimizer);
    multi-term decompositions are skipped by resampling, which keeps the
    draw deterministic per seed.
    """
    backend = get_backend("tile_ir")
    engine = Engine()
    for _ in range(64):
        cascade = random_cascade(rng, length)
        if cascade.reductions[-1].op_name == "topk":
            cascade = Cascade(
                cascade.name, cascade.element_vars, cascade.reductions[:-1]
            )
        plan = engine.plan_for(cascade)
        if backend.supports(plan):
            return cascade, plan
    raise AssertionError("no tile-servable cascade in 64 draws")


@pytest.mark.parametrize("seed", range(64, 76))
def test_tile_opt_levels_bitwise_equal_dense(seed):
    """The tile-IR optimizer must not change a single output bit.

    Every rewrite (dead-code, unroll-by-two, temp renaming, DAG-safe
    reordering) is specified to preserve the interpreter's float
    sequence exactly, so ``opt_level=2`` is compared against
    ``opt_level=0`` with exact equality, not tolerance.
    """
    rng = np.random.default_rng(seed)
    length = int(rng.integers(16, 80))
    cascade, plan = _tile_servable(rng, length)
    inputs = {
        "x": rng.normal(size=length),
        "y": rng.normal(size=length),
    }
    out0 = plan.execute(inputs, mode="tile_ir", opt_level=0)
    out2 = plan.execute(inputs, mode="tile_ir", opt_level=2)
    for name, ref_value in out0.items():
        np.testing.assert_array_equal(
            np.asarray(out2[name]), np.asarray(ref_value),
            err_msg=f"seed {seed}: {name}",
        )
    # and both agree with the unfused reference to tolerance
    _assert_same(out2, run_unfused(cascade, inputs), f"seed {seed}, opt2")


@pytest.mark.parametrize("seed", range(76, 82))
def test_tile_opt_levels_bitwise_equal_ragged(seed):
    """Optimizer bitwise-equality holds on masked/ragged execution too."""
    rng = np.random.default_rng(seed)
    cascade, plan = _tile_servable(rng, 32)
    batch = int(rng.integers(2, 6))
    # draw from a small length pool so the per-length grouping fallback
    # compiles at most a handful of variants per level
    pool = [8, 12, 20, 28]
    lengths = [int(rng.choice(pool)) for _ in range(batch)]
    lengths[0], lengths[-1] = 8, 28  # guarantee real raggedness
    queries = [
        {"x": rng.normal(size=n), "y": rng.normal(size=n)} for n in lengths
    ]
    executor = BatchExecutor(plan, mode="tile_ir")
    out0 = executor.run_many(queries, allow_ragged=True, opt_level=0)
    out2 = executor.run_many(queries, allow_ragged=True, opt_level=2)
    for name, ref_value in out0.items():
        np.testing.assert_array_equal(
            np.asarray(out2[name]), np.asarray(ref_value),
            err_msg=f"seed {seed}: {name}",
        )
    for i, q in enumerate(queries):
        ref = run_unfused(cascade, q)
        for name, value in ref.items():
            np.testing.assert_allclose(
                np.asarray(out2[name])[i], value, rtol=RTOL, atol=ATOL,
                err_msg=f"seed {seed}, row {i}: {name}",
            )


@pytest.mark.parametrize("seed", range(26, 38))
def test_sharded_batches_bitwise_equal_fused_tree(seed):
    """Sharding a batch across devices must not change a single bit.

    Every shardable backend reduces strictly along the length axis, so
    splitting the batch axis and concatenating shard outputs is the
    same float operations in the same order — asserted exactly, not to
    tolerance.
    """
    rng = np.random.default_rng(seed)
    length = int(rng.integers(16, 64))
    batch = int(rng.integers(1, 12))
    cascade = random_cascade(rng, length)
    batch_inputs = {
        "x": rng.normal(size=(batch, length)),
        "y": rng.normal(size=(batch, length)),
    }

    engine = Engine()
    plan = engine.plan_for(cascade)
    ref = plan.execute_batch(batch_inputs, mode="fused_tree")
    got = plan.execute_batch(batch_inputs, mode="sharded")
    for name, ref_value in ref.items():
        if hasattr(ref_value, "values"):  # top-k carrier
            np.testing.assert_array_equal(
                got[name].values, ref_value.values,
                err_msg=f"seed {seed}: {name}.values",
            )
            np.testing.assert_array_equal(
                got[name].indices, ref_value.indices,
                err_msg=f"seed {seed}: {name}.indices",
            )
        else:
            np.testing.assert_array_equal(
                np.asarray(got[name]), np.asarray(ref_value),
                err_msg=f"seed {seed}: {name}",
            )

    # the unfused inner serves the same contract
    got_unfused = plan.execute_batch(batch_inputs, mode="sharded", inner="unfused")
    ref_unfused = plan.execute_batch(batch_inputs, mode="unfused")
    for name, ref_value in ref_unfused.items():
        if hasattr(ref_value, "values"):
            np.testing.assert_array_equal(got_unfused[name].values, ref_value.values)
            np.testing.assert_array_equal(got_unfused[name].indices, ref_value.indices)
        else:
            np.testing.assert_array_equal(
                np.asarray(got_unfused[name]), np.asarray(ref_value)
            )
