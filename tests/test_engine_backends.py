"""Unit tests for the pluggable execution-backend layer.

Covers registry semantics (registration, capability flags, uniform
unknown-name errors raised before any symbolic work), the cached
BatchExecutor reuse on plans, per-backend execution accounting, and the
``tile_ir`` simulated-kernel backend (differential correctness against
the unfused reference across attention / MLA / quant-GEMM shapes, plan
state caching, and cost-model annotations).
"""

import numpy as np
import pytest

from repro.core import Cascade, NotFusableError, Reduction, run_unfused
from repro.engine import (
    BackendCapabilities,
    BackendError,
    BatchExecutor,
    Engine,
    ExecutionBackend,
    FusionPlan,
    available_backends,
    fusion_compile_count,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.symbolic import const, exp, var
from repro.workloads import attention, mla, quant_gemm
from repro.workloads.configs import MHAConfig, MLAConfig, QuantGemmConfig


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def topk_cascade() -> Cascade:
    x = var("x")
    return Cascade("k", ("x",), (Reduction("s", "topk", x, topk=3),))


def unfusable_cascade() -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "entangled",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("t", "sum", exp(x * m)),
        ),
    )


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = available_backends()
        assert names[:4] == ("unfused", "fused_tree", "incremental", "tile_ir")

    def test_capability_flags(self):
        assert get_backend("unfused").capabilities == BackendCapabilities(
            requires_fusion=False, batchable=True, streamable=False,
            simulated=False, shardable=True, ragged=True,
        )
        assert get_backend("fused_tree").capabilities.requires_fusion
        assert get_backend("fused_tree").capabilities.batchable
        assert get_backend("fused_tree").capabilities.shardable
        assert get_backend("fused_tree").capabilities.ragged
        assert get_backend("incremental").capabilities.streamable
        assert not get_backend("incremental").capabilities.batchable
        assert not get_backend("incremental").capabilities.ragged
        tile = get_backend("tile_ir").capabilities
        assert tile.requires_fusion and tile.batchable and tile.simulated
        assert tile.ragged
        sharded = get_backend("sharded").capabilities
        assert sharded.batchable and sharded.simulated and sharded.ragged
        assert not sharded.shardable  # a sharder does not shard itself

    def test_unknown_name_error_is_uniform(self):
        with pytest.raises(ValueError, match="unknown execution mode 'nope'"):
            get_backend("nope")

    def test_get_backend_auto_points_at_resolver(self):
        with pytest.raises(ValueError, match="resolve_backend"):
            get_backend("auto")

    def test_replaced_backend_applies_to_cached_executors(self):
        class A(ExecutionBackend):
            name = "swap"
            capabilities = BackendCapabilities(batchable=True)

            def execute(self, plan, inputs, **params):
                return {"t": np.ones(1)}

            def execute_batch(self, plan, batch_inputs, **params):
                return {"t": np.ones((2, 1))}

        class B(A):
            def execute_batch(self, plan, batch_inputs, **params):
                return {"t": np.full((2, 1), 2.0)}

        register_backend(A())
        try:
            plan = FusionPlan(softmax_cascade(1.23))
            batch = {"x": np.zeros((2, 8))}
            assert plan.execute_batch(batch, mode="swap")["t"][0] == 1.0
            register_backend(B(), replace=True)
            # the cached executor re-resolves by name, so B serves it
            assert plan.execute_batch(batch, mode="swap")["t"][0] == 2.0
        finally:
            unregister_backend("swap")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("unfused"))

    @pytest.mark.parametrize("reserved", ["auto", "executions", "signature"])
    def test_reserved_names_rejected(self, reserved):
        class Bad(ExecutionBackend):
            name = reserved

            def execute(self, plan, inputs, **params):
                return {}

        with pytest.raises(ValueError, match="reserved"):
            register_backend(Bad())

    def test_custom_backend_is_selectable_everywhere(self):
        class Constant(ExecutionBackend):
            name = "constant"
            capabilities = BackendCapabilities(batchable=False)

            def execute(self, plan, inputs, **params):
                return {name: np.zeros(1) for name in plan.cascade.output_names}

        register_backend(Constant())
        try:
            assert "constant" in available_backends()
            engine = Engine()
            out = engine.run(softmax_cascade(), {"x": np.arange(4.0)}, mode="constant")
            assert out["t"] == 0.0
            # not batchable: BatchExecutor refuses it up front
            plan = engine.plan_for(softmax_cascade())
            with pytest.raises(ValueError, match="does not support batched"):
                BatchExecutor(plan, mode="constant")
        finally:
            unregister_backend("constant")
        with pytest.raises(ValueError):
            get_backend("constant")

    def test_resolve_auto_needs_plan(self):
        with pytest.raises(ValueError, match="auto"):
            resolve_backend("auto", None)
        plan = FusionPlan(softmax_cascade(2.22))
        assert resolve_backend("auto", plan).name == "fused_tree"
        assert resolve_backend(None, plan).name == "fused_tree"
        assert resolve_backend("unfused", plan).name == "unfused"


class TestUpFrontValidation:
    """Unknown modes raise the uniform ValueError before any symbolic work."""

    def test_execute_validates_before_compile(self):
        plan = FusionPlan(softmax_cascade(3.33))
        before = fusion_compile_count()
        with pytest.raises(ValueError, match="unknown execution mode"):
            plan.execute({"x": np.arange(4.0)}, mode="warp_specialized")
        assert fusion_compile_count() == before
        assert not plan.is_compiled

    def test_execute_batch_validates_before_compile(self):
        plan = FusionPlan(softmax_cascade(3.44))
        before = fusion_compile_count()
        with pytest.raises(ValueError, match="unknown execution mode"):
            plan.execute_batch({"x": np.zeros((2, 8))}, mode="warp_specialized")
        assert fusion_compile_count() == before
        assert not plan.is_compiled

    def test_batch_executor_validates_before_compile(self):
        plan = FusionPlan(softmax_cascade(3.55))
        before = fusion_compile_count()
        with pytest.raises(ValueError, match="unknown execution mode"):
            BatchExecutor(plan, mode="warp_specialized")
        assert fusion_compile_count() == before
        assert not plan.is_compiled

    def test_engine_mode_backend_alias_conflict(self):
        engine = Engine()
        with pytest.raises(ValueError, match="not both"):
            engine.run(
                softmax_cascade(), {"x": np.arange(4.0)},
                mode="unfused", backend="tile_ir",
            )

    def test_engine_backend_alias_selects_backend(self):
        engine = Engine()
        data = np.linspace(-1.0, 1.0, 32)
        got = engine.run(softmax_cascade(), {"x": data}, backend="unfused")
        ref = run_unfused(softmax_cascade(), {"x": data})
        np.testing.assert_allclose(got["t"], ref["t"])


class TestBatchExecutorReuse:
    def test_execute_batch_reuses_cached_executor(self):
        plan = FusionPlan(softmax_cascade(4.44))
        first = plan.batch_executor(num_segments=4)
        second = plan.batch_executor(num_segments=4)
        assert first is second  # object reuse, not reconstruction
        batch = np.random.default_rng(0).normal(size=(3, 32))
        plan.execute_batch({"x": batch}, num_segments=4)
        plan.execute_batch({"x": batch}, num_segments=4)
        assert len(plan._batch_executors) == 1

    def test_distinct_parameters_get_distinct_executors(self):
        plan = FusionPlan(softmax_cascade(4.55))
        a = plan.batch_executor(num_segments=4)
        b = plan.batch_executor(num_segments=8)
        c = plan.batch_executor("unfused", num_segments=4)
        assert a is not b and a is not c
        assert len(plan._batch_executors) == 3

    def test_auto_and_resolved_name_share_executor(self):
        plan = FusionPlan(softmax_cascade(4.66))
        assert plan.batch_executor("auto") is plan.batch_executor("fused_tree")

    def test_executor_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(FusionPlan, "max_batch_executors", 2)
        plan = FusionPlan(softmax_cascade(4.77))
        for segments in (2, 3, 4, 5):
            plan.batch_executor(num_segments=segments)
        assert len(plan._batch_executors) == 2
        newest = plan.batch_executor(num_segments=5)  # survived eviction
        assert newest is plan.batch_executor(num_segments=5)


class TestExecutionCounts:
    def test_plan_counts_per_backend(self):
        plan = FusionPlan(softmax_cascade(5.55))
        data = np.arange(16.0)
        plan.execute({"x": data}, mode="unfused")
        plan.execute({"x": data}, mode="fused_tree")
        plan.execute({"x": data}, mode="fused_tree")
        plan.execute_batch({"x": np.stack([data, data])})
        counts = plan.execution_counts
        assert counts == {"unfused": 1, "fused_tree": 3}
        assert plan.describe()["executions"] == counts

    def test_engine_stats_aggregate_backend_executions(self):
        engine = Engine()
        data = np.arange(8.0)
        engine.run(softmax_cascade(6.1), {"x": data}, mode="unfused")
        engine.run(softmax_cascade(6.2), {"x": data}, mode="incremental")
        engine.run(softmax_cascade(6.2), {"x": data})  # auto -> fused_tree
        stats = engine.stats
        assert stats.backend_executions == {
            "unfused": 1, "incremental": 1, "fused_tree": 1,
        }
        snap = stats.snapshot()
        assert snap["backend_executions"]["incremental"] == 1
        assert snap["misses"] == 2  # cache delegation still works
        assert stats.compiles == 2

    def test_failed_execution_not_counted(self):
        plan = FusionPlan(unfusable_cascade())
        with pytest.raises(NotFusableError):
            plan.execute({"x": np.arange(4.0)}, mode="fused_tree")
        assert plan.execution_counts == {}

    def test_stream_sessions_count_as_incremental(self):
        engine = Engine()
        session = engine.stream(softmax_cascade(6.3))
        session.feed({"x": np.arange(8.0)})
        session.feed({"x": np.arange(8.0)})
        assert engine.stats.backend_executions == {"incremental": 2}

    def test_totals_survive_eviction_and_reset(self):
        engine = Engine(cache_size=1)
        data = np.arange(8.0)
        engine.run(softmax_cascade(6.4), {"x": data}, mode="unfused")
        engine.run(softmax_cascade(6.5), {"x": data}, mode="unfused")  # evicts 6.4
        assert engine.stats.evictions == 1
        assert engine.stats.backend_executions == {"unfused": 2}  # monotonic
        engine.reset()
        assert engine.stats.backend_executions == {"unfused": 2}  # preserved

    def test_evicted_plans_keep_counting(self):
        """A stream session outliving its plan's cache slot still counts."""
        engine = Engine(cache_size=1)
        session = engine.stream(softmax_cascade(6.7))
        session.feed({"x": np.arange(8.0)})
        engine.run(softmax_cascade(6.8), {"x": np.arange(8.0)}, mode="unfused")
        assert engine.stats.evictions == 1  # streaming plan evicted
        session.feed({"x": np.arange(8.0)})  # ...but its sink still fires
        assert engine.stats.backend_executions == {
            "incremental": 2, "unfused": 1,
        }

    def test_unknown_backend_option_raises_type_error(self):
        plan = FusionPlan(softmax_cascade(6.6))
        with pytest.raises(TypeError, match="num_segmets"):
            plan.execute({"x": np.arange(8.0)}, num_segmets=8)  # typo'd kwarg
        with pytest.raises(TypeError, match="chunk_length"):
            plan.execute({"x": np.arange(8.0)}, mode="incremental", chunk_length=2)
        with pytest.raises(TypeError, match="gpu"):
            plan.execute_batch({"x": np.zeros((2, 8))}, gpu="A10")  # fused_tree
        # tile_ir declares gpu, so it passes validation
        plan.execute({"x": np.arange(8.0)}, mode="tile_ir", gpu="A10")


def _tile_workloads():
    rng = np.random.default_rng(42)
    return [
        (
            "mha",
            attention.cascade(),
            attention.engine_query(
                MHAConfig("t", 1, 1, 1, 96, 8, "t"), rng
            ),
        ),
        (
            "mla",
            mla.cascade(),
            mla.engine_query(MLAConfig("t", 1, 1, 96, 8, 2), rng),
        ),
        (
            "quant_gemm",
            quant_gemm.cascade(),
            quant_gemm.engine_query(QuantGemmConfig("t", 1, 6, 96, "t"), rng),
        ),
    ]


class TestTileIRBackend:
    @pytest.mark.parametrize(
        "kind,cascade,inputs",
        _tile_workloads(),
        ids=[w[0] for w in _tile_workloads()],
    )
    def test_matches_unfused_reference(self, kind, cascade, inputs):
        engine = Engine()
        ref = run_unfused(cascade, inputs)
        got = engine.run(cascade, inputs, mode="tile_ir")
        for name, value in ref.items():
            np.testing.assert_allclose(
                got[name], value, rtol=1e-6, atol=1e-9,
                err_msg=f"{kind}: {name}",
            )

    def test_compiles_once_per_shape_and_describes_estimate(self):
        engine = Engine()
        cascade = softmax_cascade(7.77)
        plan = engine.plan_for(cascade)
        rng = np.random.default_rng(1)
        for _ in range(3):
            engine.run(cascade, {"x": rng.normal(size=64)}, mode="tile_ir")
        info = plan.describe()["tile_ir"]
        assert info["compiled_variants"] == 1
        est = info["estimates"][0]
        assert est["gpu"] == "A10"
        assert est["latency_seconds"] > 0
        assert est["length"] == 64
        assert est["strategy"] in ("single-segment", "multi-segment")
        assert plan.execution_counts["tile_ir"] == 3

    def test_distinct_shapes_and_gpus_compile_distinct_variants(self):
        engine = Engine()
        cascade = softmax_cascade(7.88)
        plan = engine.plan_for(cascade)
        rng = np.random.default_rng(2)
        engine.run(cascade, {"x": rng.normal(size=32)}, mode="tile_ir")
        engine.run(cascade, {"x": rng.normal(size=64)}, mode="tile_ir")
        engine.run(cascade, {"x": rng.normal(size=64)}, mode="tile_ir", gpu="H800")
        info = plan.describe()["tile_ir"]
        assert info["compiled_variants"] == 3
        gpus = {e["gpu"] for e in info["estimates"]}
        assert gpus == {"A10", "H800"}

    def test_execute_batch_matches_per_query(self):
        engine = Engine()
        cascade = attention.cascade()
        rng = np.random.default_rng(3)
        queries = [
            attention.engine_query(MHAConfig("t", 1, 1, 1, 48, 4, "t"), rng)
            for _ in range(4)
        ]
        batch = {
            "P": np.stack([q["P"] for q in queries]),
            "V": np.stack([q["V"] for q in queries]),
        }
        out = engine.run_batch(cascade, batch, mode="tile_ir")
        plan = engine.plan_for(cascade)
        assert plan.describe()["tile_ir"]["compiled_variants"] == 1
        for i, query in enumerate(queries):
            ref = run_unfused(cascade, query)
            np.testing.assert_allclose(out["O"][i], ref["O"], rtol=1e-6, atol=1e-9)
            np.testing.assert_allclose(out["t"][i], ref["t"], rtol=1e-6, atol=1e-9)

    def test_topk_cascade_rejected_with_backend_error(self):
        plan = FusionPlan(topk_cascade())
        backend = get_backend("tile_ir")
        assert not backend.supports(plan)
        with pytest.raises(BackendError, match="top-k"):
            plan.execute({"x": np.arange(8.0)}, mode="tile_ir")

    def test_multi_term_cascade_rejected_with_backend_error(self):
        n = 16
        x, mean = var("x"), var("mean")
        variance = Cascade(
            "variance",
            ("x",),
            (
                Reduction("mean", "sum", x * const(1.0 / n)),
                Reduction("var", "sum", (x - mean) ** 2 * const(1.0 / n)),
            ),
        )
        plan = FusionPlan(variance)
        assert not get_backend("tile_ir").supports(plan)
        with pytest.raises(BackendError, match="multi-term"):
            plan.execute({"x": np.arange(float(n))}, mode="tile_ir")

    def test_unfusable_cascade_raises_not_fusable(self):
        plan = FusionPlan(unfusable_cascade())
        assert not get_backend("tile_ir").supports(plan)
        with pytest.raises(NotFusableError):
            plan.execute({"x": np.arange(8.0)}, mode="tile_ir")

    def test_concurrent_first_queries_compile_once(self, monkeypatch):
        """Racing threads on one geometry pay a single autotune+tensorize."""
        from concurrent.futures import ThreadPoolExecutor

        backend = get_backend("tile_ir")
        calls = []
        original = type(backend)._compile

        def counting(self, plan, rows, length, widths, gpu_spec, **kw):
            calls.append((rows, length, widths, gpu_spec.name))
            return original(self, plan, rows, length, widths, gpu_spec, **kw)

        monkeypatch.setattr(type(backend), "_compile", counting)
        engine = Engine()
        cascade = softmax_cascade(10.1)
        plan = engine.plan_for(cascade)
        plan.fused  # symbolic compile up front; race purely on tile state
        data = {"x": np.arange(32.0)}
        ref = plan.execute(data, mode="unfused")
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(lambda _: plan.execute(data, mode="tile_ir"), range(12))
            )
        assert len(calls) == 1  # exactly-once despite 12 concurrent queries
        for got in results:
            np.testing.assert_allclose(got["t"], ref["t"], rtol=1e-9)
        assert plan.execution_counts["tile_ir"] == 12

    def test_compilation_cache_is_bounded(self, monkeypatch):
        """Growing query lengths must not grow plan state without bound."""
        backend = get_backend("tile_ir")
        monkeypatch.setattr(type(backend), "max_cached_variants", 3)
        engine = Engine()
        cascade = softmax_cascade(9.99)
        plan = engine.plan_for(cascade)
        rng = np.random.default_rng(4)
        for length in (8, 12, 16, 20, 24):
            engine.run(cascade, {"x": rng.normal(size=length)}, mode="tile_ir")
        info = plan.describe()["tile_ir"]
        assert info["compiled_variants"] == 3
        lengths = {e["length"] for e in info["estimates"]}
        assert 24 in lengths  # newest variant survives eviction

    def test_estimate_for_returns_cached_estimate(self):
        engine = Engine()
        cascade = softmax_cascade(8.88)
        plan = engine.plan_for(cascade)
        tile = get_backend("tile_ir")
        assert tile.estimate_for(plan) is None  # nothing compiled yet
        engine.run(cascade, {"x": np.arange(32.0)}, mode="tile_ir")
        est = tile.estimate_for(plan, "A10")
        assert est is not None and est.latency_seconds > 0
        assert tile.estimate_for(plan, "H800") is None
