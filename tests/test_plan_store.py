"""Tests for the persistent plan store: codecs, hardening, warm starts."""

import json
import os
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core import Cascade, NotFusableError, Reduction, run_unfused
from repro.engine import (
    FORMAT_VERSION,
    Engine,
    PlanStore,
    cascade_signature,
    fusion_compile_count,
)
from repro.engine.store import (
    cascade_from_json,
    cascade_to_json,
    expr_from_json,
    expr_to_json,
)
from repro.symbolic import absv, const, exp, log, sqrt, var


def assert_outputs_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        left, right = a[key], b[key]
        if hasattr(left, "values") and hasattr(left, "indices"):  # TopKState
            np.testing.assert_array_equal(left.values, right.values)
            np.testing.assert_array_equal(left.indices, right.indices)
        else:
            np.testing.assert_array_equal(left, right)


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def variance_cascade(n: int = 181) -> Cascade:
    x, mean = var("x"), var("mean")
    return Cascade(
        "variance",
        ("x",),
        (
            Reduction("mean", "sum", x * const(1.0 / n)),
            Reduction("var", "sum", (x - mean) ** 2 * const(1.0 / n)),
        ),
    )


def topk_cascade(k: int = 3) -> Cascade:
    x = var("x")
    return Cascade("select", ("x",), (Reduction("sel", "topk", x, topk=k),))


def unfusable_cascade() -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "entangled",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("t", "sum", exp(x * m)),  # x and m are not separable
        ),
    )


ROUND_TRIP_CASCADES = [softmax_cascade(1.25), variance_cascade(97), topk_cascade(4)]


class TestCodecs:
    def test_expr_round_trip_is_equal(self):
        x, m = var("x"), var("m")
        e = exp(x * const(0.5) - m) + sqrt(absv(log(x + const(2.0)))) ** const(3.0)
        assert expr_from_json(expr_to_json(e)) == e

    def test_expr_float_bits_survive(self):
        tricky = const(0.1 + 0.2)  # not exactly representable in decimal
        blob = json.dumps(expr_to_json(tricky))
        restored = expr_from_json(json.loads(blob))
        assert restored.value == tricky.value

    @pytest.mark.parametrize("cascade", ROUND_TRIP_CASCADES, ids=lambda c: c.name)
    def test_cascade_round_trip_preserves_signature(self, cascade):
        restored = cascade_from_json(cascade_to_json(cascade))
        assert restored == cascade
        assert cascade_signature(restored) == cascade_signature(cascade)


class TestPlanRoundTrip:
    @pytest.mark.parametrize("cascade", ROUND_TRIP_CASCADES, ids=lambda c: c.name)
    def test_saved_plan_reloads_bitwise_identical(self, cascade, tmp_path):
        rng = np.random.default_rng(7)
        data = {"x": rng.normal(0, 2, size=193)}
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        reference = engine.run(cascade, data)
        assert store.stats.saves == 1

        before = fusion_compile_count()
        warm = Engine(plan_store=PlanStore(tmp_path))
        out = warm.run(cascade, data)
        assert fusion_compile_count() == before  # zero symbolic work
        assert_outputs_equal(out, reference)

    def test_restored_plan_matches_unfused_reference(self, tmp_path):
        cascade = variance_cascade(151)
        data = {"x": np.random.default_rng(3).normal(1, 3, size=151)}
        store = PlanStore(tmp_path)
        Engine(plan_store=store).run(cascade, data)
        plan = PlanStore(tmp_path).load_plan(cascade_signature(cascade))
        out = plan.execute(data)
        ref = run_unfused(cascade, data)
        assert out["var"][0] == pytest.approx(ref["var"][0], rel=1e-9)

    def test_not_fusable_outcome_round_trips(self, tmp_path):
        cascade = unfusable_cascade()
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        engine.run(cascade, {"x": np.arange(6.0)})  # falls back to unfused
        assert store.stats.saves == 1

        before = fusion_compile_count()
        plan = PlanStore(tmp_path).load_plan(cascade_signature(cascade))
        assert plan is not None
        assert plan.is_compiled
        assert not plan.fusable  # memoized outcome, no fresh analysis
        with pytest.raises(NotFusableError):
            plan.fused
        assert fusion_compile_count() == before

    def test_load_without_cascade_rebuilds_spec_from_artifact(self, tmp_path):
        cascade = softmax_cascade(2.5)
        store = PlanStore(tmp_path)
        Engine(plan_store=store).run(cascade, {"x": np.arange(8.0)})
        plan = PlanStore(tmp_path).load_plan(cascade_signature(cascade))
        assert plan.cascade == cascade

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = PlanStore(tmp_path)
        Engine(plan_store=store).run(softmax_cascade(), {"x": np.arange(4.0)})
        leftovers = [
            p for p in Path(store.directory).iterdir() if p.suffix != ".json"
        ]
        assert leftovers == []


class TestHardening:
    def _seed(self, tmp_path, cascade=None):
        cascade = cascade or softmax_cascade(1.5)
        store = PlanStore(tmp_path)
        Engine(plan_store=store).run(cascade, {"x": np.arange(8.0)})
        return cascade, store.path_for(cascade_signature(cascade))

    def test_truncated_artifact_falls_back_to_recompile(self, tmp_path):
        cascade, path = self._seed(tmp_path)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])

        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        before = fusion_compile_count()
        out = engine.run(cascade, {"x": np.arange(8.0)})
        assert fusion_compile_count() == before + 1  # recompiled
        assert store.stats.corrupt == 1
        assert np.isfinite(out["t"]).all()
        # the recompile overwrote the bad artifact: next load is healthy
        healed = PlanStore(tmp_path)
        assert healed.load_plan(cascade_signature(cascade)) is not None
        assert healed.stats.corrupt == 0

    def test_garbage_bytes_count_as_corrupt(self, tmp_path):
        cascade, path = self._seed(tmp_path)
        path.write_bytes(b"\x00\xffnot json at all")
        store = PlanStore(tmp_path)
        assert store.load_plan(cascade_signature(cascade)) is None
        assert store.stats.corrupt == 1

    def test_format_version_mismatch_is_counted_not_fatal(self, tmp_path):
        cascade, path = self._seed(tmp_path)
        payload = json.loads(path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        store = PlanStore(tmp_path)
        assert store.load_plan(cascade_signature(cascade)) is None
        assert store.stats.version_mismatch == 1
        assert store.stats.corrupt == 0

    def test_env_mismatch_partitions_directories(self, tmp_path):
        cascade, _ = self._seed(tmp_path)
        other = PlanStore(tmp_path, env={"gpu": "H800", "opt_level": 2})
        assert other.load_plan(cascade_signature(cascade)) is None
        assert other.stats.misses == 1  # different directory, not corruption

    def test_signature_mismatch_inside_payload_is_corrupt(self, tmp_path):
        cascade, path = self._seed(tmp_path)
        payload = json.loads(path.read_text())
        payload["signature"] = "0" * 20
        path.write_text(json.dumps(payload))
        store = PlanStore(tmp_path)
        assert store.load_plan(cascade_signature(cascade)) is None
        assert store.stats.corrupt == 1

    def test_missing_artifact_is_a_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        assert store.load_plan("deadbeefdeadbeefdead") is None
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0


class TestWarmStart:
    def test_warm_start_loads_everything_without_compiles(self, tmp_path):
        cascades = ROUND_TRIP_CASCADES
        store = PlanStore(tmp_path)
        seeder = Engine(plan_store=store)
        for cascade in cascades:
            seeder.run(cascade, {"x": np.arange(16.0)})
        assert len(store) == len(cascades)

        before = fusion_compile_count()
        warm = Engine(plan_store=PlanStore(tmp_path))
        loaded = warm.warm_start()
        assert loaded == len(cascades)
        for cascade in cascades:
            warm.run(cascade, {"x": np.arange(16.0)})
        assert fusion_compile_count() == before
        assert warm.stats.hits == len(cascades)  # all served from memory

    def test_warm_start_respects_limit_and_cache_size(self, tmp_path):
        store = PlanStore(tmp_path)
        seeder = Engine(plan_store=store)
        for scale in (1.0, 2.0, 3.0):
            seeder.run(softmax_cascade(scale), {"x": np.arange(4.0)})
        warm = Engine(plan_store=PlanStore(tmp_path))
        assert warm.warm_start(limit=2) == 2
        assert warm.warm_start() == 1  # already-cached plans are skipped

    def test_exactly_once_compile_under_contention_with_store(self, tmp_path):
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        before = fusion_compile_count()
        barrier = threading.Barrier(8)

        def request(_):
            barrier.wait()
            return engine.run(softmax_cascade(4.2), {"x": np.arange(8.0)})

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(request, range(8)))
        assert fusion_compile_count() == before + 1
        assert store.stats.saves == 1  # the compile sink fired exactly once

    def test_store_counters_reach_prometheus(self, tmp_path):
        engine = Engine(plan_store=PlanStore(tmp_path))
        engine.run(softmax_cascade(), {"x": np.arange(4.0)})
        text = engine.metrics.render_prometheus()
        assert "plan_store_misses_total 1" in text
        assert "plan_store_saves_total 1" in text
        assert "plan_store_artifacts 1" in text


class TestCrossProcessDeterminism:
    def test_signature_is_stable_across_interpreters(self):
        """The store key must not depend on interpreter hash seeds."""
        script = (
            "from repro.engine import cascade_signature\n"
            "from repro.core import Cascade, Reduction\n"
            "from repro.symbolic import const, exp, var\n"
            "x, m = var('x'), var('m')\n"
            "c = Cascade('softmax', ('x',), ("
            "Reduction('m', 'max', x * const(1.25)),"
            "Reduction('t', 'sum', exp(x * const(1.25) - m))))\n"
            "print(cascade_signature(c))\n"
        )
        signatures = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            signatures.add(out.stdout.strip())
        local = cascade_signature(softmax_cascade(1.25))
        assert signatures == {local}
