"""Unit tests for cascaded-reduction detection and lifting (§4.1)."""

import numpy as np
import pytest

from repro.core import fuse, run_incremental
from repro.ir import FunctionBuilder, collect_reduction_sites, detect_cascades, load
from repro.ir.examples import (
    unfused_attention,
    unfused_quant_gemm,
    unfused_softmax,
    unfused_variance,
)
from repro.symbolic import exp, var


class TestSiteCollection:
    def test_attention_has_four_reductions(self):
        sites = collect_reduction_sites(unfused_attention())
        assert len(sites) == 4
        assert [s.buffer for s in sites] == ["P", "pmax", "psum", "o"]

    def test_axes_identified(self):
        sites = collect_reduction_sites(unfused_attention())
        by_buffer = {s.buffer: s for s in sites}
        assert by_buffer["P"].axes == ("d",)  # gemm reduces over head dim
        assert by_buffer["pmax"].axes == ("kvs",)
        assert by_buffer["o"].axes == ("kvs",)  # d is an output index

    def test_program_order_preserved(self):
        sites = collect_reduction_sites(unfused_attention())
        assert [s.order for s in sites] == [0, 1, 2, 3]


class TestDetection:
    def test_attention_chain(self):
        detected = detect_cascades(unfused_attention())
        assert len(detected) == 1
        chain = detected[0]
        assert chain.axis == "kvs"
        assert chain.cascade.output_names == ("pmax", "psum", "o")
        assert chain.element_buffers == ("P", "V")
        assert [p.buffer for p in chain.producers] == ["P"]
        assert chain.is_cascaded

    def test_lifted_expressions_match_paper(self):
        chain = detect_cascades(unfused_attention())[0]
        psum = chain.cascade.reduction("psum")
        assert psum.fn == exp(var("P") - var("pmax"))

    @pytest.mark.parametrize(
        "builder, outputs",
        [
            (unfused_softmax, ("m", "t")),
            (unfused_quant_gemm, ("amax", "c")),
            (unfused_variance, ("mean", "variance")),
        ],
    )
    def test_other_workloads_detected(self, builder, outputs):
        detected = detect_cascades(builder())
        assert len(detected) == 1
        assert detected[0].cascade.output_names == outputs
        assert detected[0].is_cascaded

    def test_no_reductions_no_chains(self):
        fb = FunctionBuilder("copy")
        fb.input_buffer("x", (4,))
        fb.output_buffer("y", (4,))
        with fb.loop("i", 4):
            fb.store("y", (var("i"),), load("x", var("i")))
        assert detect_cascades(fb.build()) == []

    def test_independent_reductions_not_cascaded(self):
        fb = FunctionBuilder("two_sums")
        fb.input_buffer("x", (16,))
        fb.output_buffer("a", (1,))
        fb.output_buffer("b", (1,))
        with fb.loop("l", 16):
            fb.reduce("a", (0,), "sum", load("x", var("l")))
        with fb.loop("l", 16):
            fb.reduce("b", (0,), "max", load("x", var("l")))
        detected = detect_cascades(fb.build())
        assert len(detected) == 1  # same axis groups them
        assert not detected[0].is_cascaded  # but no data dependency

    def test_recurrence_not_lifted(self):
        """An axis-indexed read of a chain output is a scan, not a
        cascaded reduction — the lift must refuse it."""
        from repro.ir.detect import _lift_expr

        r, el = var("r"), var("l")
        # "prefix[r, l]" is a chain buffer read *along the chain axis*.
        scan_value = load("x", r, el) + load("prefix", r, el)
        assert _lift_expr(scan_value, "l", ["prefix"], []) is None

    def test_bare_loop_variable_not_lifted(self):
        from repro.ir.detect import _lift_expr

        r, el = var("r"), var("l")
        assert _lift_expr(load("x", r, el) * el, "l", [], []) is None


class TestDetectedCascadeExecutes:
    """The lifted cascade must compute what the original IR computes."""

    def test_attention_end_to_end(self):
        fn = unfused_attention(q_len=3, kv_len=20, head_dim=4)
        rng = np.random.default_rng(9)
        Q, K, V = (rng.normal(size=s) for s in ((3, 4), (20, 4), (20, 4)))
        from repro.ir import run_function

        ir_out = run_function(fn, {"Q": Q, "K": K, "V": V})
        chain = detect_cascades(fn)[0]
        fused = fuse(chain.cascade)
        P = Q @ K.T
        for row in range(3):
            got = run_incremental(
                fused, {"P": P[row][:, None], "V": V}, chunk_len=4
            )
            np.testing.assert_allclose(got["o"], ir_out["o"][row], rtol=1e-9)
