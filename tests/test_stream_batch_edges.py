"""Edge cases for StreamSession and the batched top-k carrier.

The serving scheduler leans on both: streams are the incremental
backend's stateful path, and ``BatchTopKState`` is how top-k outputs
scatter back to individual requests after a micro-batch.  These tests
pin the boundary behavior — empty batches, batches of one, ragged
lengths — to clear, typed errors instead of shape explosions from deep
inside NumPy.
"""

import numpy as np
import pytest

from repro.core import Cascade, Reduction, run_unfused
from repro.core.ops import TopKState
from repro.core.spec import SpecError
from repro.engine import (
    BackendError,
    BatchExecutor,
    BatchTopKState,
    Engine,
    RaggedBatch,
    normalize_batch_inputs,
    stack_queries,
)
from repro.symbolic import exp, var


def softmax_cascade() -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("t", "sum", exp(x - m)),
        ),
    )


def topk_cascade(k: int = 3) -> Cascade:
    x = var("x")
    return Cascade(
        "routing",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("sel", "topk", x, topk=k),
        ),
    )


class TestBatchEdges:
    def test_empty_batch_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            normalize_batch_inputs(softmax_cascade(), {"x": np.zeros((0, 8))})
        with pytest.raises(SpecError, match="at least one query"):
            stack_queries(softmax_cascade(), [])
        engine = Engine()
        with pytest.raises(SpecError, match="non-empty"):
            engine.run_batch(softmax_cascade(), {"x": np.zeros((0, 8))})

    def test_zero_length_batch_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            normalize_batch_inputs(softmax_cascade(), {"x": np.zeros((4, 0))})

    def test_batch_of_one_matches_single_query(self):
        engine = Engine()
        data = np.random.default_rng(0).normal(size=16)
        batched = engine.run_batch(softmax_cascade(), {"x": data[None, :]})
        single = engine.run(softmax_cascade(), {"x": data})
        assert batched["t"].shape == (1, 1)
        np.testing.assert_allclose(batched["t"][0], single["t"])

    def test_ragged_lengths_rejected_with_clear_error(self):
        queries = [
            {"x": np.arange(8.0)},
            {"x": np.arange(12.0)},
            {"x": np.arange(8.0)},
        ]
        # the strict default names the offending input and its lengths
        with pytest.raises(SpecError, match=r"ragged.*'x'.*\[8, 12, 8\]"):
            stack_queries(softmax_cascade(), queries)
        engine = Engine()
        executor = BatchExecutor(engine.plan_for(softmax_cascade()))
        with pytest.raises(SpecError, match="ragged"):
            executor.run_many(queries)

    def test_mismatched_batch_shapes_rejected(self):
        x, y, m = var("x"), var("y"), var("m")
        cascade = Cascade(
            "two_vars",
            ("x", "y"),
            (
                Reduction("m", "max", x),
                Reduction("t", "sum", exp(x - m) * y),
            ),
        )
        with pytest.raises(SpecError, match="expected"):
            normalize_batch_inputs(
                cascade, {"x": np.zeros((3, 8)), "y": np.zeros((2, 8))}
            )


class TestRaggedBatch:
    def test_stack_queries_opt_in_returns_ragged_carrier(self):
        queries = [{"x": np.arange(8.0)}, {"x": np.arange(12.0)}]
        ragged = stack_queries(softmax_cascade(), queries, allow_ragged=True)
        assert isinstance(ragged, RaggedBatch)
        assert ragged.batch == 2
        assert ragged.max_length == 12
        assert list(ragged.lengths) == [8, 12]
        np.testing.assert_array_equal(
            ragged.mask[0], np.arange(12) < 8
        )
        assert ragged.useful_positions == 20
        assert ragged.padded_positions == 24
        assert ragged.padding_efficiency == pytest.approx(20 / 24)
        # padding replicates each row's last valid element
        np.testing.assert_array_equal(ragged.arrays["x"][0, 8:, 0], 7.0)

    def test_uniform_queries_still_stack_dense(self):
        queries = [{"x": np.arange(8.0)}, {"x": np.arange(8.0)}]
        stacked = stack_queries(softmax_cascade(), queries, allow_ragged=True)
        assert isinstance(stacked, dict)
        assert stacked["x"].shape == (2, 8, 1)

    def test_uniform_ragged_carrier_routes_to_dense_path(self):
        # a RaggedBatch with equal lengths is executed on the dense path,
        # bitwise identical to a plain batched call
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        data = np.random.default_rng(7).normal(size=(3, 16))
        ragged = RaggedBatch(
            arrays={"x": data[:, :, None].copy()},
            lengths=np.full(3, 16),
        )
        dense = plan.execute_batch({"x": data})
        got = plan.execute_batch(ragged)
        np.testing.assert_array_equal(np.asarray(got["t"]), np.asarray(dense["t"]))
        assert plan.padding_counts == {}  # no masked work ran

    def test_carrier_validation(self):
        with pytest.raises(SpecError, match="at least one element"):
            RaggedBatch(arrays={}, lengths=np.array([1]))
        with pytest.raises(SpecError, match="at least one valid position"):
            RaggedBatch(
                arrays={"x": np.zeros((2, 4))}, lengths=np.array([0, 4])
            )
        with pytest.raises(SpecError, match="only hold"):
            RaggedBatch(
                arrays={"x": np.zeros((2, 4))}, lengths=np.array([2, 9])
            )
        with pytest.raises(SpecError, match="pad_to"):
            RaggedBatch.from_queries(
                softmax_cascade(), [{"x": np.arange(8.0)}], pad_to=4
            )

    def test_row_inputs_round_trip(self):
        queries = [{"x": np.arange(5.0)}, {"x": np.arange(9.0)}]
        ragged = RaggedBatch.from_queries(softmax_cascade(), queries)
        for i, q in enumerate(queries):
            np.testing.assert_array_equal(
                ragged.row_inputs(i)["x"][:, 0], q["x"]
            )

    def test_take_trims_to_subset_max(self):
        queries = [{"x": np.arange(float(n))} for n in (4, 16, 6)]
        ragged = RaggedBatch.from_queries(softmax_cascade(), queries)
        subset = ragged.take([0, 2])
        assert subset.max_length == 6
        assert list(subset.lengths) == [4, 6]
        np.testing.assert_array_equal(subset.arrays["x"][1, :, 0], np.arange(6.0))

    def test_non_ragged_backend_rejects_mixed_lengths(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        ragged = stack_queries(
            softmax_cascade(),
            [{"x": np.arange(8.0)}, {"x": np.arange(12.0)}],
            allow_ragged=True,
        )

        from repro.engine import ExecutionBackend, register_backend, unregister_backend
        from repro.engine.backends import BackendCapabilities

        class DenseOnly(ExecutionBackend):
            name = "dense_only"
            capabilities = BackendCapabilities(batchable=True)

            def execute(self, plan, inputs, **params):  # pragma: no cover
                raise NotImplementedError

            def execute_batch(self, plan, batch_inputs, **params):
                return {}

        register_backend(DenseOnly())
        try:
            with pytest.raises(BackendError, match="ragged"):
                plan.execute_batch(ragged, mode="dense_only")
        finally:
            unregister_backend("dense_only")

    def test_padding_stats_surface_in_describe(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        ragged = stack_queries(
            softmax_cascade(),
            [{"x": np.arange(8.0)}, {"x": np.arange(12.0)}],
            allow_ragged=True,
        )
        plan.execute_batch(ragged, mode="fused_tree")
        info = plan.describe()["padding"]["fused_tree"]
        assert info["useful_positions"] == 20
        assert info["padded_positions"] == 24
        assert info["efficiency"] == pytest.approx(20 / 24)
        engine_info = engine.stats.describe()["padding"]["fused_tree"]
        assert engine_info["useful_positions"] == 20


class TestBatchTopKState:
    def test_batch_of_one_row_view(self):
        engine = Engine()
        data = np.random.default_rng(1).normal(size=20)
        out = engine.run_batch(topk_cascade(3), {"x": data[None, :]})
        state = out["sel"]
        assert isinstance(state, BatchTopKState)
        assert state.batch_size == 1
        row = state.row(0)
        assert isinstance(row, TopKState)
        ref = run_unfused(topk_cascade(3), {"x": data})
        np.testing.assert_allclose(row.values, ref["sel"].values)
        np.testing.assert_array_equal(row.indices, ref["sel"].indices)

    def test_row_views_are_copies(self):
        engine = Engine()
        batch = {"x": np.random.default_rng(2).normal(size=(2, 10))}
        state = engine.run_batch(topk_cascade(2), batch)["sel"]
        row = state.row(0)
        row.values[0] = 123.0
        row.indices[0] = -7
        assert state.values[0, 0] != 123.0
        assert state.indices[0, 0] != -7

    def test_k_larger_than_length_pads(self):
        engine = Engine()
        out = engine.run_batch(topk_cascade(5), {"x": np.arange(6.0).reshape(2, 3)})
        state = out["sel"]
        assert state.values.shape == (2, 5)
        assert np.all(np.isinf(state.values[:, 3:]) & (state.values[:, 3:] < 0))
        assert np.all(state.indices[:, 3:] == -1)

    def test_ties_resolve_like_the_scalar_full_pass(self):
        # Tie order is only specified *within* one tree shape; compare
        # the batched full pass against the scalar full pass (the
        # segmented tree may legitimately order equal values differently).
        data = np.zeros(8)  # all tied
        engine = Engine()
        batched = engine.run_batch(
            topk_cascade(3), {"x": data[None, :]}, mode="unfused"
        )
        ref = run_unfused(topk_cascade(3), {"x": data})
        np.testing.assert_array_equal(
            batched["sel"].row(0).indices, ref["sel"].indices
        )


class TestStreamSessionEdges:
    def test_values_before_any_feed_raises(self):
        engine = Engine()
        session = engine.stream(softmax_cascade())
        with pytest.raises(RuntimeError, match="no data fed"):
            session.values()

    def test_empty_chunk_rejected(self):
        engine = Engine()
        session = engine.stream(softmax_cascade())
        with pytest.raises(SpecError, match="non-empty"):
            session.feed({"x": np.zeros(0)})
        assert session.position == 0  # rejected chunk leaves state untouched

    def test_single_element_chunks(self):
        engine = Engine()
        data = np.random.default_rng(3).normal(size=7)
        session = engine.stream(softmax_cascade())
        for value in data:
            session.feed({"x": np.array([value])})
        assert session.position == 7
        ref = run_unfused(softmax_cascade(), {"x": data})
        np.testing.assert_allclose(session.values()["t"], ref["t"])

    def test_reset_allows_reuse(self):
        engine = Engine()
        session = engine.stream(softmax_cascade())
        session.feed({"x": np.arange(4.0)})
        session.reset()
        assert session.position == 0
        with pytest.raises(RuntimeError):
            session.values()
        session.feed({"x": np.arange(6.0)})
        ref = run_unfused(softmax_cascade(), {"x": np.arange(6.0)})
        np.testing.assert_allclose(session.values()["t"], ref["t"])

    def test_topk_stream_indices_are_global(self):
        engine = Engine()
        data = np.random.default_rng(4).normal(size=24)
        session = engine.stream(topk_cascade(4))
        for start in range(0, 24, 8):
            session.feed({"x": data[start : start + 8]})
        ref = run_unfused(topk_cascade(4), {"x": data})
        got = session.values()["sel"]
        np.testing.assert_allclose(got.values, ref["sel"].values)
        np.testing.assert_array_equal(got.indices, ref["sel"].indices)

    def test_ragged_chunk_widths_rejected(self):
        x, y, m = var("x"), var("y"), var("m")
        cascade = Cascade(
            "two_vars",
            ("x", "y"),
            (
                Reduction("m", "max", x),
                Reduction("t", "sum", exp(x - m) * y),
            ),
        )
        engine = Engine()
        session = engine.stream(cascade)
        with pytest.raises(SpecError, match="length"):
            session.feed({"x": np.arange(4.0), "y": np.arange(6.0)})
