"""Bottleneck-profiler tests: engine attribution over the gpusim model."""


import numpy as np
import pytest

from repro.core import Cascade, Reduction
from repro.engine import Engine
from repro.gpusim import (
    KernelSpec,
    KernelTimes,
    Program,
    gpu,
    kernel_latency,
    kernel_times,
    program_latency,
)
from repro.harness.report import bottleneck_table
from repro.obs import (
    ENGINES,
    padding_waste_rows,
    profile_plan,
    profile_program,
    workload_bottlenecks,
)
from repro.symbolic import const, exp, var


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def _kernel(tensor_cores: bool, flops: float, bytes_read: float) -> KernelSpec:
    return KernelSpec(
        name="k",
        grid=256,
        threads_per_cta=128,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_read / 8,
        tensor_cores=tensor_cores,
    )


class TestKernelTimes:
    def test_latency_matches_kernel_latency(self):
        device = gpu("A10")
        for tensor_cores in (False, True):
            for flops, read in ((1e9, 1e6), (1e6, 1e9), (5e7, 5e7)):
                kernel = _kernel(tensor_cores, flops, read)
                times = kernel_times(device, kernel)
                assert isinstance(times, KernelTimes)
                assert times.latency == kernel_latency(device, kernel)

    def test_compute_engine_follows_tensor_core_flag(self):
        device = gpu("H800")
        assert kernel_times(device, _kernel(True, 1e9, 1e6)).compute_engine == (
            "tensor_core"
        )
        assert kernel_times(device, _kernel(False, 1e9, 1e6)).compute_engine == (
            "cuda_core"
        )


class TestProfileProgram:
    def test_busy_idle_accounting(self):
        device = gpu("A10")
        program = Program(name="p")
        program.add(_kernel(True, 4e12, 1e8))  # compute heavy
        profile = profile_program(device, program)
        assert profile.bottleneck == "tensor_core"
        assert profile.latency_seconds == pytest.approx(
            program_latency(device, program)
        )
        for engine in ENGINES:
            busy = profile.busy_seconds[engine]
            assert busy >= 0.0
            assert busy <= profile.critical_seconds + 1e-12
            assert profile.idle_seconds[engine] == pytest.approx(
                profile.critical_seconds - busy
            )
        assert sum(profile.idle_slot_histogram) == len(ENGINES)

    def test_memory_bound_program_blames_dram(self):
        device = gpu("A10")
        program = Program(name="p")
        program.add(_kernel(False, 1e6, 4e9))  # memory heavy
        profile = profile_program(device, program)
        assert profile.bottleneck == "dram"
        assert profile.busy_fraction("dram") > profile.busy_fraction("cuda_core")
        # cuda cores idle most of the critical path => right-edge mass
        assert profile.idle_slot_histogram[-1] >= 1

    def test_to_row_shape(self):
        device = gpu("A10")
        program = Program(name="p")
        program.add(_kernel(True, 1e12, 1e9))
        row = profile_program(device, program).to_row(workload="x", config="c0")
        assert row["workload"] == "x"
        assert row["gpu"] == "A10"
        assert row["bottleneck"] in ENGINES
        for engine in ENGINES:
            assert 0.0 <= row[f"{engine}_busy_frac"] <= 1.0
        assert 0.0 <= row["overhead_frac"] <= 1.0


class TestProfilePlan:
    def test_tile_ir_plan_profile_after_execution(self):
        engine = Engine()
        cascade = softmax_cascade()
        engine.run(cascade, {"x": np.linspace(0.0, 1.0, 64)}, "tile_ir")
        profile = profile_plan(engine.plan_for(cascade), gpu="A10", backend="tile_ir")
        assert profile is not None
        assert profile.bottleneck in ENGINES
        assert profile.latency_seconds > 0.0
        assert profile.kernels

    def test_unexecuted_plan_profiles_to_none(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        assert profile_plan(plan, backend="tile_ir") is None
        assert profile_plan(plan, backend="sharded") is None

    def test_sharded_plan_profile_after_batch(self):
        engine = Engine()
        cascade = softmax_cascade()
        batch = {"x": np.random.default_rng(0).normal(size=(8, 32))}
        engine.run_batch(cascade, batch, mode="sharded")
        profile = profile_plan(engine.plan_for(cascade), backend="sharded")
        assert profile is not None
        assert profile.bottleneck in ENGINES
        assert profile.latency_seconds > 0.0

    def test_unknown_backend_rejected(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        with pytest.raises(ValueError):
            profile_plan(plan, backend="unfused")


class TestWorkloadBottlenecks:
    def test_rows_and_table(self):
        rows = workload_bottlenecks(kinds=("moe", "quant_gemm"))
        assert [row["workload"] for row in rows] == ["moe", "quant_gemm"]
        for row in rows:
            assert row["bottleneck"] in ENGINES
            assert row["latency_seconds"] > 0.0
            total_busy = sum(row[f"{e}_busy_frac"] for e in ENGINES)
            assert total_busy > 0.0
        text = bottleneck_table(rows, "bottlenecks")
        assert "bottlenecks" in text
        assert "moe" in text and "quant_gemm" in text
        for row in rows:
            assert row["bottleneck"] in text


class TestPaddingWaste:
    def test_rows_from_serving_stats(self):
        from repro.engine import ServingStats

        stats = ServingStats()
        stats.note_batch(4, useful=100, padded=28, bucket=128)
        stats.note_batch(2, useful=50, padded=0, bucket=64)
        rows = padding_waste_rows(stats)
        by_bucket = {row["bucket"] for row in rows}
        assert by_bucket == {64, 128}
        for row in rows:
            if row["bucket"] == 128:
                assert row["useful_positions"] == 100
                assert row["padded_positions"] == 28
                assert row["waste_frac"] == pytest.approx(28 / 128)
            else:
                assert row["waste_frac"] == 0.0
