"""Unit tests for the ⊕/⊗ operator algebra (Table 1, Appendix A.1)."""

import numpy as np
import pytest

from repro.core import (
    MAX,
    MIN,
    OTIMES_ADD,
    OTIMES_MUL,
    PROD,
    SUM,
    TABLE1,
    TopK,
    combine_op,
    compatible_combine,
    distributes_over,
    reduce_op,
)
from repro.symbolic import Const, var


class TestCombineOps:
    def test_identities(self):
        assert OTIMES_ADD.identity == 0.0
        assert OTIMES_MUL.identity == 1.0

    def test_apply_num(self):
        assert OTIMES_ADD.apply_num(2.0, 3.0) == 5.0
        assert OTIMES_MUL.apply_num(2.0, 3.0) == 6.0

    def test_inverse_num(self):
        assert OTIMES_ADD.inverse_num(2.0) == -2.0
        assert OTIMES_MUL.inverse_num(4.0) == 0.25

    def test_guarded_inverse_repairs_zero(self):
        """Appendix A.1: non-invertible points get the identity e."""
        values = np.array([2.0, 0.0, -4.0])
        repaired = OTIMES_MUL.guarded_inverse_num(values)
        np.testing.assert_allclose(repaired, [0.5, 1.0, -0.25])

    def test_is_invertible(self):
        assert OTIMES_MUL.is_invertible_num(np.array([1.0, 2.0]))
        assert not OTIMES_MUL.is_invertible_num(np.array([1.0, 0.0]))
        assert OTIMES_ADD.is_invertible_num(np.array([0.0]))
        assert not OTIMES_ADD.is_invertible_num(np.array([np.inf]))

    def test_symbolic_application(self):
        x = var("x")
        assert OTIMES_ADD.apply_sym(x, Const(1.0)).op == "add"
        assert OTIMES_MUL.inverse_sym(x).op == "div"
        assert OTIMES_ADD.inverse_sym(x).op == "neg"

    def test_lookup(self):
        assert combine_op("add") is OTIMES_ADD
        assert combine_op("mul") is OTIMES_MUL
        with pytest.raises(KeyError):
            combine_op("xor")


class TestReduceOps:
    def test_identity_seeds(self):
        assert SUM.identity == 0.0
        assert PROD.identity == 1.0
        assert MAX.identity == -np.inf
        assert MIN.identity == np.inf

    def test_reduce_matches_numpy(self):
        data = np.array([[1.0, 5.0], [3.0, -2.0], [2.0, 0.0]])
        np.testing.assert_allclose(SUM.reduce(data), data.sum(axis=0))
        np.testing.assert_allclose(MAX.reduce(data), data.max(axis=0))
        np.testing.assert_allclose(MIN.reduce(data), data.min(axis=0))
        np.testing.assert_allclose(PROD.reduce(data), data.prod(axis=0))

    def test_combine_is_binary_oplus(self):
        assert SUM.combine(2.0, 3.0) == 5.0
        assert MAX.combine(2.0, 3.0) == 3.0

    def test_lookup_rejects_topk(self):
        with pytest.raises(ValueError):
            reduce_op("topk")
        with pytest.raises(KeyError):
            reduce_op("median")


class TestTable1:
    """Every Table 1 pairing must satisfy the distributivity of Eq. 5."""

    @pytest.mark.parametrize("name", ["sum", "max", "min"])
    def test_pairing_distributes(self, name):
        oplus = reduce_op(name)
        otimes = compatible_combine(name)
        assert distributes_over(oplus, otimes)

    def test_prod_needs_log_transformation(self):
        """Table 1 footnote: Π is fused via Π F = sgn(·) * 2^Σ log2|F|,
        i.e. by transformation to a summation — the direct (prod, *)
        pairing does not distribute."""
        assert not distributes_over(PROD, OTIMES_MUL)

    def test_wrong_pairing_fails(self):
        # max does NOT distribute over * (negative scaling flips order).
        assert not distributes_over(MAX, OTIMES_MUL)
        assert not distributes_over(SUM, OTIMES_ADD)

    def test_table_contents(self):
        assert TABLE1["max"] is OTIMES_ADD
        assert TABLE1["min"] is OTIMES_ADD
        assert TABLE1["topk"] is OTIMES_ADD
        assert TABLE1["sum"] is OTIMES_MUL
        assert TABLE1["prod"] is OTIMES_MUL

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            compatible_combine("xor")


class TestTopK:
    def test_from_array(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        state = TopK(2).from_array(scores)
        np.testing.assert_allclose(state.values, [0.9, 0.7])
        np.testing.assert_array_equal(state.indices, [1, 3])

    def test_base_index_offsets(self):
        state = TopK(1).from_array(np.array([1.0, 3.0]), base_index=10)
        assert state.indices[0] == 11

    def test_combine_merges_candidates(self):
        op = TopK(2)
        a = op.from_array(np.array([0.2, 0.8]), base_index=0)
        b = op.from_array(np.array([0.9, 0.1]), base_index=2)
        merged = op.combine(a, b)
        np.testing.assert_allclose(merged.values, [0.9, 0.8])
        np.testing.assert_array_equal(merged.indices, [2, 1])

    def test_combine_matches_global_topk(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=64)
        op = TopK(4)
        whole = op.from_array(data)
        parts = op.combine(
            op.from_array(data[:20], 0),
            op.combine(op.from_array(data[20:50], 20), op.from_array(data[50:], 50)),
        )
        np.testing.assert_allclose(whole.values, parts.values)
        np.testing.assert_array_equal(whole.indices, parts.indices)

    def test_shift_preserves_indices(self):
        op = TopK(2)
        state = op.from_array(np.array([1.0, 2.0, 3.0]))
        shifted = op.shift(state, -1.5)
        np.testing.assert_allclose(shifted.values, state.values - 1.5)
        np.testing.assert_array_equal(shifted.indices, state.indices)

    def test_short_input_pads_with_sentinels(self):
        state = TopK(3).from_array(np.array([5.0]))
        assert state.indices[0] == 0
        assert (state.indices[1:] == -1).all()
        assert list(state.valid()) == [True, False, False]
