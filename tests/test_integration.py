"""End-to-end integration tests: frontend IR → detector → ACRF →
codegen → simulated execution, cross-checked against NumPy.

These are the "whole pipeline" tests: every stage of RedFuser runs for
real, the way the examples and benchmarks use it.
"""

import numpy as np
import pytest

from repro.codegen import (
    CodegenSpec,
    ElementLayout,
    GemmProducer,
    TileConfig,
    autotune,
    lower_single_segment,
    tensorize_multi_segment,
    tensorize_single_segment,
)
from repro.core import fuse, run_incremental
from repro.gpusim import A10, program_latency
from repro.ir import TileInterpreter, detect_cascades, run_function
from repro.ir.examples import unfused_attention, unfused_quant_gemm, unfused_softmax


class TestAttentionPipeline:
    """Fig. 11 in, FlashAttention out."""

    Q_LEN, KV_LEN, HD = 8, 32, 8

    @pytest.fixture(scope="class")
    def pipeline(self):
        fn = unfused_attention(self.Q_LEN, self.KV_LEN, self.HD)
        chain = detect_cascades(fn)[0]
        fused = fuse(chain.cascade)
        spec = CodegenSpec(
            fused=fused,
            rows=self.Q_LEN,
            length=self.KV_LEN,
            layouts=(
                ElementLayout("P", 1, True),
                ElementLayout("V", self.HD, False),
            ),
            producer=GemmProducer("P", "Q", "K", self.HD),
        )
        rng = np.random.default_rng(0)
        data = {
            "Q": rng.normal(size=(self.Q_LEN, self.HD)),
            "K": rng.normal(size=(self.KV_LEN, self.HD)),
            "V": rng.normal(size=(self.KV_LEN, self.HD)),
        }
        p = data["Q"] @ data["K"].T
        s = np.exp(p - p.max(1, keepdims=True))
        s /= s.sum(1, keepdims=True)
        return fn, spec, data, s @ data["V"]

    def test_unfused_ir_matches_numpy(self, pipeline):
        fn, _, data, expected = pipeline
        out = run_function(fn, data)
        np.testing.assert_allclose(out["o"], expected, rtol=1e-9)

    def test_detector_lifts_the_paper_chain(self, pipeline):
        fn, spec, _, _ = pipeline
        chain = detect_cascades(fn)[0]
        assert chain.cascade.output_names == ("pmax", "psum", "o")
        assert chain.axis == "kvs"

    def test_flash_recurrence_emerges(self, pipeline):
        """The derived corrections are FlashAttention's (Eq. 31/33)."""
        _, spec, _, _ = pipeline
        corrections = {
            fr.reduction.name: repr(fr.h_ratio)
            for fr in spec.fused
            if fr.needs_correction
        }
        assert "exp" in corrections["psum"]  # exp(m_prev - m_new)
        assert "t__prev" in corrections["o"] or "psum" in corrections["o"]

    def test_generated_scalar_kernel(self, pipeline):
        _, spec, data, expected = pipeline
        out = run_function(lower_single_segment(spec), data)
        np.testing.assert_allclose(out["o"], expected, rtol=1e-9)

    def test_generated_tile_kernel(self, pipeline):
        _, spec, data, expected = pipeline
        prog = tensorize_single_segment(spec, TileConfig(blk_rows=4, blk_len=8))
        out = TileInterpreter(prog).run(data)
        np.testing.assert_allclose(out["o"], expected, rtol=1e-9)

    def test_generated_flash_decoding_kernels(self, pipeline):
        _, spec, data, expected = pipeline
        partial, combine = tensorize_multi_segment(
            spec, TileConfig(blk_rows=4, blk_len=8), splits=2
        )
        parts = TileInterpreter(partial).run(data)
        out = TileInterpreter(combine).run(
            {k: v for k, v in parts.items() if k.endswith("_part")}
        )
        np.testing.assert_allclose(out["o"], expected, rtol=1e-9)

    def test_autotuned_program_is_fastest_candidate(self, pipeline):
        _, spec, _, _ = pipeline
        result = autotune(
            spec, A10,
            blk_rows=(4, 8), blk_len=(8, 16), threads=(256,),
            pipeline=(1, 2), segments=(1, 2),
        )
        assert program_latency(A10, result.program) == pytest.approx(result.latency)


class TestDetectedPipelines:
    """Detector output feeds ACRF + executor for the other IR examples."""

    def test_softmax(self):
        fn = unfused_softmax(rows=2, length=24)
        chain = detect_cascades(fn)[0]
        fused = fuse(chain.cascade)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 24))
        ir_out = run_function(fn, {"x": x})
        for row in range(2):
            got = run_incremental(fused, {"x": x[row]}, chunk_len=5)
            np.testing.assert_allclose(got["t"], ir_out["t"][row], rtol=1e-9)

    def test_quant_gemm(self):
        fn = unfused_quant_gemm(3, 16, 4)
        chain = detect_cascades(fn)[0]
        fused = fuse(chain.cascade)
        rng = np.random.default_rng(2)
        a = rng.normal(size=(3, 16))
        w = rng.normal(size=(16, 4))
        ir_out = run_function(fn, {"A": a, "W": w})
        for row in range(3):
            got = run_incremental(
                fused, {"A": a[row][:, None], "W": w}, chunk_len=4
            )
            np.testing.assert_allclose(got["c"], ir_out["c"][row], rtol=1e-9)


class TestCrossStageConsistency:
    def test_scalar_and_tile_backends_agree(self):
        """The two codegen backends must produce identical numerics."""
        from repro.core import Cascade, Reduction
        from repro.symbolic import absv, const, var

        A, W, amax = var("A"), var("W"), var("amax")
        cascade = Cascade(
            "quant",
            ("A", "W"),
            (
                Reduction("amax", "max", absv(A)),
                Reduction("c", "sum", const(448.0) * A / amax * W),
            ),
        )
        spec = CodegenSpec(
            fused=fuse(cascade), rows=4, length=16,
            layouts=(ElementLayout("A", 1, True), ElementLayout("W", 3, False)),
        )
        rng = np.random.default_rng(3)
        data = {"A": rng.normal(size=(4, 16)), "W": rng.normal(size=(16, 3))}
        scalar = run_function(lower_single_segment(spec), data)
        tiled = TileInterpreter(
            tensorize_single_segment(spec, TileConfig(blk_rows=2, blk_len=4))
        ).run(data)
        np.testing.assert_allclose(scalar["c"], tiled["c"], rtol=1e-12)
        np.testing.assert_allclose(scalar["amax"], tiled["amax"][:, 0], rtol=1e-12)
