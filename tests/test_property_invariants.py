"""Property-based tests (hypothesis) for the core invariants.

The central theorem of the paper — fused and incremental execution
compute the same values as the unfused chain, for any segmentation — is
checked here over randomized data, shapes, chunkings and tree shapes,
together with the monoid laws the derivation relies on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    Cascade,
    Reduction,
    TopK,
    fuse,
    merge_states,
    compute_segment_state,
    run_fused_tree,
    run_incremental,
    run_unfused,
    state_values,
)
from repro.symbolic import Binary, Const, Var, exp, simplify, var

finite = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
small_arrays = st.lists(finite, min_size=2, max_size=120).map(np.asarray)


def softmax_cascade():
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (Reduction("m", "max", x), Reduction("t", "sum", exp(x - m))),
    )


SOFTMAX_FUSED = fuse(softmax_cascade())


class TestExecutionEquivalence:
    @given(data=small_arrays, chunk=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_unfused(self, data, chunk):
        ref = run_unfused(SOFTMAX_FUSED.cascade, {"x": data})
        got = run_incremental(SOFTMAX_FUSED, {"x": data}, chunk_len=chunk)
        np.testing.assert_allclose(got["m"], ref["m"])
        np.testing.assert_allclose(got["t"], ref["t"], rtol=1e-9)

    @given(
        data=small_arrays,
        segments=st.integers(1, 16),
        branching=st.sampled_from([None, 2, 3, 5]),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_tree_shape_equals_unfused(self, data, segments, branching):
        ref = run_unfused(SOFTMAX_FUSED.cascade, {"x": data})
        got = run_fused_tree(
            SOFTMAX_FUSED, {"x": data}, num_segments=segments, branching=branching
        )
        np.testing.assert_allclose(got["t"], ref["t"], rtol=1e-9)

    @given(data=st.lists(finite, min_size=3, max_size=60).map(np.asarray))
    @settings(max_examples=40, deadline=None)
    def test_merge_associativity(self, data):
        third = max(1, len(data) // 3)
        chunks = [data[:third], data[third : 2 * third], data[2 * third :]]
        chunks = [c for c in chunks if len(c)]
        states = [
            compute_segment_state(SOFTMAX_FUSED, {"x": c}) for c in chunks
        ]
        if len(states) < 3:
            return
        left = merge_states(
            SOFTMAX_FUSED, merge_states(SOFTMAX_FUSED, states[0], states[1]), states[2]
        )
        right = merge_states(
            SOFTMAX_FUSED, states[0], merge_states(SOFTMAX_FUSED, states[1], states[2])
        )
        lv, rv = state_values(left), state_values(right)
        np.testing.assert_allclose(lv["t"], rv["t"], rtol=1e-9)

    @given(
        data=st.lists(
            st.floats(min_value=-4, max_value=4, allow_nan=False), min_size=4, max_size=64
        ).map(np.asarray),
        k=st.integers(1, 6),
        segments=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_carrier_any_split(self, data, k, segments):
        x = var("x")
        cascade = Cascade("k", ("x",), (Reduction("s", "topk", x, topk=k),))
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x": data})
        got = run_fused_tree(fused, {"x": data}, num_segments=segments)
        np.testing.assert_allclose(got["s"].values, ref["s"].values)

    @given(
        data=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=80,
        ).map(np.asarray),
        chunk=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_variance_multi_term_any_chunking(self, data, chunk):
        n = len(data)
        x, mean = var("x"), var("mean")
        cascade = Cascade(
            "variance",
            ("x",),
            (
                Reduction("mean", "sum", x * Const(1.0 / n)),
                Reduction("var", "sum", (x - mean) ** 2 * Const(1.0 / n)),
            ),
        )
        fused = fuse(cascade)
        got = run_incremental(fused, {"x": data}, chunk_len=chunk)
        np.testing.assert_allclose(got["var"], np.var(data), rtol=1e-6, atol=1e-9)


class TestMonoidLaws:
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=100)
    def test_topk_merge_associative_commutative(self, a, b, c):
        op = TopK(2)
        sa = op.from_array(np.array([a]), 0)
        sb = op.from_array(np.array([b]), 1)
        sc = op.from_array(np.array([c]), 2)
        left = op.combine(op.combine(sa, sb), sc)
        right = op.combine(sa, op.combine(sb, sc))
        np.testing.assert_allclose(left.values, right.values)
        ab = op.combine(sa, sb)
        ba = op.combine(sb, sa)
        np.testing.assert_allclose(np.sort(ab.values), np.sort(ba.values))

    @given(v=finite, delta=finite)
    @settings(max_examples=100)
    def test_topk_shift_is_monoid_action(self, v, delta):
        op = TopK(2)
        state = op.from_array(np.array([v, v - 1.0]))
        shifted = op.shift(op.shift(state, delta), -delta)
        np.testing.assert_allclose(shifted.values, state.values, atol=1e-9)


@st.composite
def random_expr(draw, depth=0):
    """Random expression over {x, y} with safe-domain operators."""
    if depth >= 3 or draw(st.booleans()):
        return draw(
            st.sampled_from(
                [Var("x"), Var("y"), Const(draw(st.floats(-3, 3))), Const(1.0)]
            )
        )
    op = draw(st.sampled_from(["add", "sub", "mul", "max", "min"]))
    return Binary(op, draw(random_expr(depth + 1)), draw(random_expr(depth + 1)))


class TestSimplifierSoundness:
    @given(e=random_expr(), x=finite, y=finite)
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_value(self, e, x, y):
        env = {"x": x, "y": y}
        with np.errstate(all="ignore"):
            original = e.evaluate(env)
            simplified = simplify(e).evaluate(env)
        if np.isfinite(original):
            np.testing.assert_allclose(simplified, original, rtol=1e-9, atol=1e-9)

    @given(e=random_expr())
    @settings(max_examples=100, deadline=None)
    def test_simplify_idempotent(self, e):
        once = simplify(e)
        assert simplify(once) == once
