"""Unit tests for the serving engine: plan cache, batch, and stream paths."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import Cascade, NotFusableError, Reduction, fuse, run_unfused
from repro.engine import (
    BatchExecutor,
    Engine,
    FusionPlan,
    PlanCache,
    cascade_signature,
    fusion_compile_count,
    stack_queries,
)
from repro.symbolic import const, exp, var


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def unfusable_cascade() -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "entangled",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("t", "sum", exp(x * m)),  # x and m are not separable
        ),
    )


class TestSignature:
    def test_structurally_equal_cascades_share_signature(self):
        assert cascade_signature(softmax_cascade()) == cascade_signature(
            softmax_cascade()
        )

    def test_distinct_structure_distinct_signature(self):
        assert cascade_signature(softmax_cascade(1.0)) != cascade_signature(
            softmax_cascade(2.0)
        )

    def test_operator_and_name_affect_signature(self):
        x = var("x")
        a = Cascade("c", ("x",), (Reduction("m", "max", x),))
        b = Cascade("c", ("x",), (Reduction("m", "min", x),))
        c = Cascade("c", ("x",), (Reduction("n", "max", x),))
        assert len({cascade_signature(s) for s in (a, b, c)}) == 3


class TestPlanCache:
    def test_hit_returns_same_plan_object(self):
        engine = Engine()
        first = engine.plan_for(softmax_cascade())
        second = engine.plan_for(softmax_cascade())  # fresh, equal structure
        assert first is second
        assert engine.stats.hits == 1
        assert engine.stats.misses == 1
        assert engine.stats.compiles == 1

    def test_compile_counter_once_per_signature(self):
        engine = Engine()
        before = fusion_compile_count()
        for _ in range(5):
            engine.fused_for(softmax_cascade(1.25))
        assert fusion_compile_count() == before + 1  # exactly one ACRF run
        engine.fused_for(softmax_cascade(1.5))  # distinct shape compiles again
        assert fusion_compile_count() == before + 2

    def test_cache_hit_performs_zero_symbolic_work(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade(2.5))
        plan.fused  # pay the symbolic cost once
        before = fusion_compile_count()
        again = engine.plan_for(softmax_cascade(2.5))
        again.fused
        again.execute({"x": np.arange(6.0)})
        assert fusion_compile_count() == before

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        a, b, c = softmax_cascade(1.0), softmax_cascade(2.0), softmax_cascade(3.0)
        plan_a = cache.get_or_compile(a)
        cache.get_or_compile(b)
        cache.get_or_compile(a)  # refresh a: b becomes least-recent
        cache.get_or_compile(c)  # evicts b
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cascade_signature(b) not in cache
        assert cache.get_or_compile(a) is plan_a  # survived as most-recent
        assert cache.stats.compiles == 3
        cache.get_or_compile(b)  # evicted entries recompile
        assert cache.stats.compiles == 4

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_concurrent_get_or_compile_is_exactly_once(self):
        engine = Engine(cache_size=64)
        scales = [1.0 + i / 10 for i in range(6)]
        before = fusion_compile_count()

        def request(i: int) -> FusionPlan:
            plan = engine.plan_for(softmax_cascade(scales[i % len(scales)]))
            plan.fused  # force the symbolic stage under contention too
            return plan

        with ThreadPoolExecutor(max_workers=8) as pool:
            plans = list(pool.map(request, range(48)))

        assert engine.stats.compiles == len(scales)
        assert fusion_compile_count() == before + len(scales)
        by_signature = {}
        for plan in plans:
            by_signature.setdefault(plan.signature, plan)
            assert plan is by_signature[plan.signature]
        assert len(by_signature) == len(scales)

    def test_failed_compile_wakes_waiters(self):
        calls = []

        def flaky(cascade, signature):
            calls.append(signature)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return FusionPlan(cascade, signature=signature)

        cache = PlanCache()
        with pytest.raises(RuntimeError):
            cache.get_or_compile(softmax_cascade(), compile_fn=flaky)
        plan = cache.get_or_compile(softmax_cascade(), compile_fn=flaky)
        assert plan is cache.get_or_compile(softmax_cascade())
        assert len(calls) == 2


class TestFusionPlan:
    def test_unfusable_plan_falls_back_to_unfused(self):
        plan = FusionPlan(unfusable_cascade())
        assert not plan.fusable
        assert plan.default_mode == "unfused"
        with pytest.raises(NotFusableError):
            plan.fused
        data = np.linspace(-1.0, 1.0, 32)
        got = plan.execute({"x": data})  # auto -> unfused
        ref = run_unfused(plan.cascade, {"x": data})
        np.testing.assert_allclose(got["t"], ref["t"])
        with pytest.raises(NotFusableError):
            plan.stream()

    def test_unknown_mode_rejected(self):
        plan = FusionPlan(softmax_cascade())
        with pytest.raises(ValueError):
            plan.execute({"x": np.arange(4.0)}, mode="warp_specialized")

    def test_from_fused_wraps_without_recompiling(self):
        fused = fuse(softmax_cascade(7.0))
        before = fusion_compile_count()
        plan = FusionPlan.from_fused(fused)
        assert plan.fused is fused
        assert plan.is_compiled
        assert fusion_compile_count() == before

    def test_run_entry_points_match_plan_execution(self):
        engine = Engine()
        data = np.random.default_rng(3).normal(size=300)
        ref = run_unfused(softmax_cascade(), {"x": data})
        got = engine.run(softmax_cascade(), {"x": data})  # auto: fused tree
        np.testing.assert_allclose(got["t"], ref["t"], rtol=1e-9)

    def test_describe_reports_lifecycle(self):
        plan = FusionPlan(softmax_cascade(9.0))
        assert plan.describe()["compiled"] is False
        plan.fused
        info = plan.describe()
        assert info["compiled"] and info["fusable"]
        assert info["default_mode"] == "fused_tree"
        assert info["reductions"] == ["m", "t"]


class TestBatchExecutor:
    def test_batch_matches_per_query(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(16, 128))
        out = BatchExecutor(plan, num_segments=4).run({"x": batch})
        for i in range(16):
            ref = run_unfused(plan.cascade, {"x": batch[i]})
            np.testing.assert_allclose(out["t"][i], ref["t"], rtol=1e-9)
            np.testing.assert_allclose(out["m"][i], ref["m"])

    def test_run_many_stacks_query_dicts(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        rng = np.random.default_rng(1)
        queries = [{"x": rng.normal(size=64)} for _ in range(5)]
        out = BatchExecutor(plan).run_many(queries)
        assert out["t"].shape == (5, 1)
        for i, q in enumerate(queries):
            ref = run_unfused(plan.cascade, q)
            np.testing.assert_allclose(out["t"][i], ref["t"], rtol=1e-9)

    def test_mismatched_batch_shapes_rejected(self):
        from repro.core import SpecError

        plan = FusionPlan(softmax_cascade())
        executor = BatchExecutor(plan)
        with pytest.raises(SpecError):
            executor.run({"x": np.zeros((0, 8))})
        with pytest.raises(SpecError):
            stack_queries(plan.cascade, [])

    def test_unfusable_plan_uses_batched_unfused(self):
        plan = FusionPlan(unfusable_cascade())
        executor = BatchExecutor(plan)
        assert executor.mode == "unfused"
        batch = np.random.default_rng(2).normal(size=(4, 32))
        out = executor.run({"x": batch})
        for i in range(4):
            ref = run_unfused(plan.cascade, {"x": batch[i]})
            np.testing.assert_allclose(out["t"][i], ref["t"], rtol=1e-9)


class TestStreamSession:
    def test_stream_matches_unfused_at_every_chunk(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        data = np.random.default_rng(5).normal(size=100)
        session = engine.stream(softmax_cascade())
        for start in range(0, 100, 17):
            current = session.feed({"x": data[start : start + 17]})
            seen = data[: min(start + 17, 100)]
            ref = run_unfused(plan.cascade, {"x": seen})
            np.testing.assert_allclose(current["t"], ref["t"], rtol=1e-9)
        assert session.position == 100

    def test_stream_topk_indices_are_global(self):
        x = var("x")
        cascade = Cascade("k", ("x",), (Reduction("s", "topk", x, topk=2),))
        session = Engine().stream(cascade)
        session.feed({"x": np.array([1.0, 2.0])})
        session.feed({"x": np.array([5.0, 0.0])})
        state = session.values()["s"]
        assert list(state.values) == [5.0, 2.0]
        assert list(state.indices) == [2, 1]

    def test_values_before_feed_raises(self):
        session = Engine().stream(softmax_cascade())
        with pytest.raises(RuntimeError):
            session.values()

    def test_reset_starts_a_fresh_stream(self):
        session = Engine().stream(softmax_cascade())
        session.feed({"x": np.arange(8.0)})
        session.reset()
        assert session.position == 0
        session.feed({"x": np.arange(4.0)})
        ref = run_unfused(softmax_cascade(), {"x": np.arange(4.0)})
        np.testing.assert_allclose(session.values()["t"], ref["t"], rtol=1e-9)
