"""Unit tests for the ACRF decomposition algorithm (§4.2, Algorithm 1)."""

import pytest

from repro.core import Cascade, NotFusableError, Reduction, analyze_cascade, decompose
from repro.core.acrf import decompose_single
from repro.core.ops import OTIMES_ADD, OTIMES_MUL
from repro.symbolic import (
    Const,
    absv,
    const,
    exp,
    numeric_equivalent,
    sqrt,
    var,
    variables,
    vmax,
)


def check_decomposition(fn, x_vars, d_vars, op_name):
    """Decompose and verify G ⊗ H == F numerically."""
    decomp = decompose(fn, x_vars, d_vars, op_name)
    rebuilt = None
    for term in decomp.terms:
        gh = decomp.otimes.apply_sym(term.g, term.h)
        rebuilt = gh if rebuilt is None else rebuilt + gh
    assert numeric_equivalent(rebuilt, fn, rtol=1e-5, atol=1e-7)
    return decomp


class TestSingleTerm:
    def test_softmax_sum_exp(self):
        """F = exp(x - m): the canonical safe-softmax second reduction."""
        x, m = variables("x", "m")
        decomp = check_decomposition(exp(x - m), ["x"], ["m"], "sum")
        assert decomp.otimes is OTIMES_MUL
        assert decomp.g == exp(x)
        assert decomp.h == exp(-m)

    def test_attention_output_reduction(self):
        """F = exp(P - m)/t * V with two dependencies."""
        P, V, m, t = variables("P", "V", "m", "t")
        fn = exp(P - m) / t * V
        decomp = check_decomposition(fn, ["P", "V"], ["m", "t"], "sum")
        assert decomp.otimes is OTIMES_MUL
        # H must reference both dependencies
        assert decomp.h.free_vars() == {"m", "t"}

    def test_quant_gemm_reduction(self):
        """Paper §3.4: F = MAX * A / m * W decomposes with H ∝ 1/m."""
        A, W, m = variables("A", "W", "m")
        fp8_max = const(448.0)
        fn = fp8_max * A / m * W
        decomp = check_decomposition(fn, ["A", "W"], ["m"], "sum")
        assert decomp.h.free_vars() == {"m"}
        # H evaluates to MAX-scaled reciprocal: H(2m) == H(m)/2
        h1 = decomp.h.evaluate({"m": 1.0})
        h2 = decomp.h.evaluate({"m": 2.0})
        assert h1 == pytest.approx(2 * h2)

    def test_max_reduction_with_additive_dep(self):
        """⊕ = max pairs with ⊗ = +: F = x - m is decomposable."""
        x, m = variables("x", "m")
        decomp = check_decomposition(x - m, ["x"], ["m"], "max")
        assert decomp.otimes is OTIMES_ADD

    def test_no_dependency_gives_identity_h(self):
        x = var("x")
        decomp = check_decomposition(absv(x), ["x"], [], "max")
        assert decomp.h == Const(0.0)  # additive identity

    def test_sum_sum_pattern(self):
        """Appendix A.2.3: F = x1*x2 / sqrt(max(m - 10, 1))."""
        x1, x2, m = variables("x1", "x2", "m")
        fn = x1 * x2 / sqrt(vmax(m - 10, 1))
        decomp = check_decomposition(fn, ["x1", "x2"], ["m"], "sum")
        assert decomp.h.free_vars() == {"m"}

    def test_syntactic_dep_that_cancels(self):
        """x + m - m semantically has no dependency; H becomes identity."""
        x, m = variables("x", "m")
        decomp = check_decomposition(x + m - m, ["x"], ["m"], "max")
        assert decomp.h == Const(0.0)


class TestNotFusable:
    def test_entangled_multiplicative(self):
        """F = exp(x * m) cannot split as G(x) * H(m)."""
        x, m = variables("x", "m")
        with pytest.raises(NotFusableError):
            decompose(exp(x * m), ["x"], ["m"], "sum")

    def test_entangled_additive(self):
        """F = x * m under max cannot split as G(x) + H(m)."""
        x, m = variables("x", "m")
        with pytest.raises(NotFusableError):
            decompose(x * m, ["x"], ["m"], "max")

    def test_single_returns_none_on_failure(self):
        x, m = variables("x", "m")
        assert decompose_single(exp(x * m), ["x"], ["m"], OTIMES_MUL) is None


class TestMultiTerm:
    def test_variance_square(self):
        """(x - m)^2 needs the distributive multi-term extension."""
        x, m = variables("x", "m")
        decomp = check_decomposition((x - m) ** 2, ["x"], ["m"], "sum")
        assert decomp.is_multi_term
        assert len(decomp.terms) == 3  # x^2, x (cross, merged), const
        with pytest.raises(ValueError):
            _ = decomp.g  # no single G for multi-term

    def test_like_terms_merged(self):
        """The two x*m cross terms of the square collapse into one."""
        x, m = variables("x", "m")
        decomp = decompose((x - m) ** 2, ["x"], ["m"], "sum")
        gs = [t.g for t in decomp.terms]
        assert len(gs) == len(set(gs))

    def test_inertia_style(self):
        """m_l * (x - c)^2: mass-weighted second moment about c."""
        mass, x, c = variables("mass", "x", "c")
        decomp = check_decomposition(mass * (x - c) ** 2, ["mass", "x"], ["c"], "sum")
        assert decomp.is_multi_term

    def test_multi_term_only_for_sum(self):
        x, m = variables("x", "m")
        with pytest.raises(NotFusableError):
            decompose((x - m) ** 2, ["x"], ["m"], "max")


class TestAnalyzeCascade:
    def test_safe_softmax_cascade(self):
        x, m = variables("x", "m")
        cascade = Cascade(
            "softmax",
            ("x",),
            (
                Reduction("m", "max", x),
                Reduction("t", "sum", exp(x - m)),
            ),
        )
        results = analyze_cascade(cascade)
        assert len(results) == 2
        assert results[0].h == Const(0.0)
        assert results[1].h == exp(-var("m"))

    def test_topk_reduction_skipped(self):
        x, m = variables("x", "m")
        cascade = Cascade(
            "moe",
            ("x",),
            (
                Reduction("m", "max", x),
                Reduction("t", "sum", exp(x - m)),
                Reduction("s", "topk", x, topk=4),
            ),
        )
        results = analyze_cascade(cascade)
        assert results[2] is None

    def test_unfusable_cascade_raises(self):
        x, m = variables("x", "m")
        cascade = Cascade(
            "bad",
            ("x",),
            (
                Reduction("m", "max", x),
                Reduction("t", "sum", exp(exp(x) * m)),
            ),
        )
        with pytest.raises(NotFusableError):
            analyze_cascade(cascade)
