"""Unit tests for cascade specifications."""

import numpy as np
import pytest

from repro.core import Cascade, Reduction, SpecError, normalize_inputs
from repro.core.ops import TopK
from repro.symbolic import exp, var


def softmax_cascade():
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (Reduction("m", "max", x), Reduction("t", "sum", exp(x - m))),
    )


class TestReduction:
    def test_scalar_op_property(self):
        red = Reduction("m", "max", var("x"))
        assert red.op.name == "max"
        assert not red.is_topk

    def test_topk_op_property(self):
        red = Reduction("s", "topk", var("x"), topk=4)
        assert isinstance(red.op, TopK)
        assert red.op.k == 4
        assert red.is_topk

    def test_topk_requires_k(self):
        with pytest.raises(SpecError):
            Reduction("s", "topk", var("x"))

    def test_unknown_op_rejected(self):
        with pytest.raises(SpecError):
            Reduction("m", "median", var("x"))


class TestCascadeValidation:
    def test_valid_cascade(self):
        cascade = softmax_cascade()
        assert cascade.output_names == ("m", "t")

    def test_undefined_name_rejected(self):
        with pytest.raises(SpecError):
            Cascade("bad", ("x",), (Reduction("t", "sum", var("y")),))

    def test_forward_reference_rejected(self):
        x = var("x")
        with pytest.raises(SpecError):
            Cascade(
                "bad",
                ("x",),
                (
                    Reduction("t", "sum", exp(x - var("m"))),
                    Reduction("m", "max", x),
                ),
            )

    def test_duplicate_names_rejected(self):
        x = var("x")
        with pytest.raises(SpecError):
            Cascade("bad", ("x",), (Reduction("x", "max", x),))
        with pytest.raises(SpecError):
            Cascade(
                "bad",
                ("x",),
                (Reduction("m", "max", x), Reduction("m", "sum", x)),
            )

    def test_empty_cascade_rejected(self):
        with pytest.raises(SpecError):
            Cascade("bad", ("x",), ())

    def test_topk_output_is_terminal(self):
        x = var("x")
        with pytest.raises(SpecError):
            Cascade(
                "bad",
                ("x",),
                (
                    Reduction("s", "topk", x, topk=2),
                    Reduction("t", "sum", x + var("s")),
                ),
            )

    def test_deps_of(self):
        cascade = softmax_cascade()
        assert cascade.deps_of(0) == ()
        assert cascade.deps_of(1) == ("m",)

    def test_depth(self):
        cascade = softmax_cascade()
        assert cascade.depth() == 2
        x = var("x")
        flat = Cascade(
            "flat", ("x",), (Reduction("a", "sum", x), Reduction("b", "max", x))
        )
        assert flat.depth() == 1

    def test_reduction_lookup(self):
        cascade = softmax_cascade()
        assert cascade.reduction("t").op_name == "sum"
        with pytest.raises(KeyError):
            cascade.reduction("nope")


class TestNormalizeInputs:
    def test_promotes_1d(self):
        cascade = softmax_cascade()
        arrays = normalize_inputs(cascade, {"x": np.arange(5.0)})
        assert arrays["x"].shape == (5, 1)

    def test_keeps_2d(self):
        cascade = softmax_cascade()
        arrays = normalize_inputs(cascade, {"x": np.ones((5, 3))})
        assert arrays["x"].shape == (5, 3)

    def test_missing_input(self):
        with pytest.raises(SpecError):
            normalize_inputs(softmax_cascade(), {})

    def test_length_mismatch(self):
        x, m = var("P"), var("m")
        cascade = Cascade(
            "attn",
            ("P", "V"),
            (Reduction("m", "max", var("P")),),
        )
        with pytest.raises(SpecError):
            normalize_inputs(cascade, {"P": np.ones(4), "V": np.ones(5)})

    def test_rejects_3d(self):
        with pytest.raises(SpecError):
            normalize_inputs(softmax_cascade(), {"x": np.ones((2, 2, 2))})

    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            normalize_inputs(softmax_cascade(), {"x": np.ones((0, 1))})
