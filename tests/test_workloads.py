"""Unit tests for the workload definitions and their fused execution."""

import numpy as np
import pytest

from repro.core import fuse, run_fused_tree, run_incremental
from repro.workloads import attention, mla, moe, nonml, quant_gemm
from repro.workloads.configs import (
    INERTIA_CONFIGS,
    MHA_CONFIGS,
    MLA_CONFIGS,
    MOE_CONFIGS,
    QUANT_GEMM_CONFIGS,
    VARIANCE_CONFIGS,
)
from repro.workloads.opgraph import KernelGroup, LogicalOp, OpGraph, TensorInfo


class TestConfigTables:
    def test_table_2a(self):
        assert len(MHA_CONFIGS) == 9
        h7 = MHA_CONFIGS[6]
        assert (h7.q, h7.kv, h7.hd, h7.model) == (1, 1024, 128, "LLaMA-65B")

    def test_table_2b(self):
        assert len(MLA_CONFIGS) == 9
        assert all(c.hd == 512 and c.ped == 64 for c in MLA_CONFIGS)

    def test_table_2c(self):
        assert len(MOE_CONFIGS) == 8
        r5 = MOE_CONFIGS[4]
        assert (r5.hd, r5.en, r5.topk) == (8192, 64, 8)

    def test_table_2d(self):
        assert len(QUANT_GEMM_CONFIGS) == 10
        assert all(c.m == 4096 for c in QUANT_GEMM_CONFIGS)

    def test_table_3(self):
        assert len(VARIANCE_CONFIGS) == 8
        assert len(INERTIA_CONFIGS) == 8
        assert all(c.dim == 3 for c in INERTIA_CONFIGS)


class TestMHA:
    def test_fused_matches_reference(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(2, 3, 5, 8))
        k = rng.normal(size=(2, 3, 32, 8))
        v = rng.normal(size=(2, 3, 32, 8))
        expected = attention.reference(q, k, v)
        fused = fuse(attention.cascade())
        scale = 1.0 / np.sqrt(8)
        for b in range(2):
            for h in range(3):
                p = (q[b, h] @ k[b, h].T) * scale
                for row in range(5):
                    got = run_incremental(
                        fused, {"P": p[row][:, None], "V": v[b, h]}, chunk_len=8
                    )
                    np.testing.assert_allclose(got["O"], expected[b, h, row], rtol=1e-9)

    def test_op_graph_shape(self):
        graph = attention.op_graph(MHA_CONFIGS[0])
        assert [op.kind for op in graph.ops] == [
            "gemm", "reduction", "elementwise", "reduction", "elementwise", "gemm",
        ]
        assert graph.external_outputs() == {"O"}

    def test_fused_spec_geometry(self):
        spec, instances = attention.fused_spec(MHA_CONFIGS[1])  # BERT-base
        assert (spec.rows, spec.length) == (512, 512)
        assert instances == 32 * 12
        assert spec.producer.inner_dim == 64


class TestMLA:
    def test_fused_matches_reference(self):
        cfg_like = MLA_CONFIGS[0]
        rng = np.random.default_rng(1)
        bs, hn, kv, qdim = 2, 4, 16, 12
        q = rng.normal(size=(bs, hn, qdim))
        latent = rng.normal(size=(bs, kv, qdim))
        expected = mla.reference(q, latent)
        fused = fuse(attention.cascade())
        scale = 1.0 / np.sqrt(qdim)
        for b in range(bs):
            p = (q[b] @ latent[b].T) * scale
            for h in range(hn):
                got = run_incremental(
                    fused, {"P": p[h][:, None], "V": latent[b]}, chunk_len=4
                )
                np.testing.assert_allclose(got["O"], expected[b, h], rtol=1e-9)

    def test_decode_has_single_query(self):
        graph = mla.op_graph(MLA_CONFIGS[0])
        p = graph.tensor("P")
        assert p.elems == MLA_CONFIGS[0].bs * MLA_CONFIGS[0].hn * MLA_CONFIGS[0].kv


class TestMoE:
    def test_fused_routing_matches_reference(self):
        config = MOE_CONFIGS[3]  # top-6
        rng = np.random.default_rng(2)
        hidden = rng.normal(size=(8, 16))
        router_w = rng.normal(size=(16, config.en))
        gates, ids = moe.reference(hidden, router_w, config.topk)
        fused = fuse(moe.cascade(config.topk))
        scores = hidden @ router_w
        for token in range(8):
            state = run_fused_tree(fused, {"x": scores[token]}, num_segments=4)
            got_gates, got_ids = moe.gates_from_state(state)
            np.testing.assert_allclose(got_gates, gates[token], rtol=1e-9)
            np.testing.assert_array_equal(got_ids, ids[token])

    def test_gate_weights_are_softmax_values(self):
        rng = np.random.default_rng(3)
        hidden = rng.normal(size=(4, 8))
        w = rng.normal(size=(8, 16))
        gates, _ = moe.reference(hidden, w, 16)  # top-all = full softmax
        np.testing.assert_allclose(gates.sum(axis=1), 1.0, rtol=1e-9)

    def test_redfuser_program_single_kernel(self):
        program = moe.redfuser_program(MOE_CONFIGS[0])
        assert program.num_kernels == 1
        assert program.kernels[0].tensor_cores


class TestQuantGemm:
    def test_fused_matches_eq17(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(4, 64))
        w = rng.normal(size=(64, 8))
        expected = quant_gemm.reference(a, w)
        fused = fuse(quant_gemm.cascade())
        for row in range(4):
            got = run_incremental(fused, {"A": a[row][:, None], "W": w}, chunk_len=16)
            np.testing.assert_allclose(got["c"], expected[row], rtol=1e-9)

    def test_fp8_grid_rounding(self):
        values = np.array([1.0, 1.05, 447.9, 500.0, -500.0, 0.0])
        rounded = quant_gemm.quantize_fp8(values)
        assert rounded[0] == 1.0
        assert abs(rounded[1] - 1.05) <= 0.0625  # within one E4M3 step
        assert rounded[3] == quant_gemm.FP8_MAX  # clipped
        assert rounded[4] == -quant_gemm.FP8_MAX
        assert rounded[5] == 0.0

    def test_rounded_reference_close_to_exact(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(8, 128))
        w = rng.normal(size=(128, 4)) / np.sqrt(128)
        exact = quant_gemm.reference(a, w)
        rounded = quant_gemm.reference_rounded(a, w)
        rel = np.abs(rounded - exact).max() / np.abs(exact).max()
        assert rel < 0.05

    def test_fp8_gemm_flagged(self):
        graph = quant_gemm.op_graph(QUANT_GEMM_CONFIGS[0])
        assert any(op.fp8 for op in graph.ops if op.kind == "gemm")


class TestNonML:
    def test_variance_cascade_matches_numpy(self):
        rng = np.random.default_rng(6)
        data = rng.normal(5, 3, size=256)
        fused = fuse(nonml.variance_cascade(256))
        got = run_incremental(fused, {"x": data}, chunk_len=32)
        np.testing.assert_allclose(got["var"], np.var(data), rtol=1e-7)

    def test_inertia_cascade_matches_numpy(self):
        rng = np.random.default_rng(7)
        mass = rng.uniform(0.5, 2.0, size=64)
        pos = rng.normal(size=(64, 3))
        expected = nonml.inertia_reference(mass, pos)
        fused = fuse(nonml.inertia_cascade())
        got = run_fused_tree(
            fused, {"mass": mass[:, None], "x": pos}, num_segments=4
        )
        assert got["inertia"].shape == (3,)
        np.testing.assert_allclose(got["inertia"].sum(), expected, rtol=1e-7)

    def test_sum_sum_cascade_matches_numpy(self):
        rng = np.random.default_rng(8)
        x1 = rng.normal(2, 1, size=100)
        x2 = rng.normal(size=100)
        expected = nonml.sum_sum_reference(x1, x2)
        fused = fuse(nonml.sum_sum_cascade())
        got = run_incremental(fused, {"x1": x1, "x2": x2}, chunk_len=10)
        np.testing.assert_allclose(got["s"], expected, rtol=1e-7)


class TestOpGraph:
    def test_tensor_bytes(self):
        t = TensorInfo("x", 100, 2)
        assert t.nbytes == 200

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LogicalOp("bad", "scan", (), ())

    def test_group_io_cancels_temporaries(self):
        x = TensorInfo("x", 10)
        tmp = TensorInfo("tmp", 10)
        y = TensorInfo("y", 10)
        graph = OpGraph(
            "g",
            (
                LogicalOp("a", "elementwise", (x,), (tmp,)),
                LogicalOp("b", "elementwise", (tmp,), (y,)),
            ),
        )
        group = KernelGroup(list(graph.ops))
        reads, writes = group.io(graph)
        assert [t.name for t in reads] == ["x"]
        assert [t.name for t in writes] == ["y"]

    def test_partial_group_keeps_interface(self):
        x = TensorInfo("x", 10)
        tmp = TensorInfo("tmp", 10)
        y = TensorInfo("y", 10)
        graph = OpGraph(
            "g",
            (
                LogicalOp("a", "elementwise", (x,), (tmp,)),
                LogicalOp("b", "elementwise", (tmp,), (y,)),
            ),
        )
        first = KernelGroup([graph.ops[0]])
        reads, writes = first.io(graph)
        assert [t.name for t in writes] == ["tmp"]  # consumed later
