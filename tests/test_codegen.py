"""Unit tests for lowering, tensorization, kernel estimation, tuning."""

import numpy as np
import pytest

from repro.codegen import (
    CodegenSpec,
    ElementLayout,
    GemmProducer,
    LoweringError,
    TileConfig,
    autotune,
    estimate_kernel,
    lower_multi_segment,
    lower_single_segment,
    tensorize_multi_segment,
    tensorize_single_segment,
)
from repro.core import Cascade, Reduction, fuse
from repro.gpusim import A10, occupancy
from repro.ir import TileInterpreter, run_function
from repro.symbolic import absv, const, exp, var


def attention_spec(rows=4, length=24, width=6, inner=5):
    P, V, m, t = var("P"), var("V"), var("m"), var("t")
    cascade = Cascade(
        "attention",
        ("P", "V"),
        (
            Reduction("m", "max", P),
            Reduction("t", "sum", exp(P - m)),
            Reduction("O", "sum", exp(P - m) / t * V),
        ),
    )
    return CodegenSpec(
        fused=fuse(cascade),
        rows=rows,
        length=length,
        layouts=(ElementLayout("P", 1, True), ElementLayout("V", width, False)),
        producer=GemmProducer("P", "Q", "K", inner),
    )


def softmax_spec(rows=4, length=32):
    x, m = var("x"), var("m")
    cascade = Cascade(
        "softmax",
        ("x",),
        (Reduction("m", "max", x), Reduction("t", "sum", exp(x - m))),
    )
    return CodegenSpec(
        fused=fuse(cascade),
        rows=rows,
        length=length,
        layouts=(ElementLayout("x", 1, True),),
    )


def attention_data(spec, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "Q": rng.normal(size=(spec.rows, spec.producer.inner_dim)),
        "K": rng.normal(size=(spec.length, spec.producer.inner_dim)),
        "V": rng.normal(size=(spec.length, spec.layout("V").width)),
    }


def attention_expected(data):
    p = data["Q"] @ data["K"].T
    s = np.exp(p - p.max(1, keepdims=True))
    s /= s.sum(1, keepdims=True)
    return s @ data["V"]


class TestScalarLowering:
    def test_single_segment_matches_numpy(self):
        spec = attention_spec()
        data = attention_data(spec)
        out = run_function(lower_single_segment(spec), data)
        np.testing.assert_allclose(out["O"], attention_expected(data), rtol=1e-9)

    def test_three_step_template_structure(self):
        """pmax/psum keep prev buffers; the terminal output does not."""
        fn = lower_single_segment(attention_spec())
        names = {b.name for b in fn.buffers}
        assert "m_prev" in names and "t_prev" in names
        assert "O_prev" not in names  # step 1 skipped: O is never reused

    @pytest.mark.parametrize("segments", [2, 3, 4])
    def test_multi_segment_matches_numpy(self, segments):
        spec = attention_spec(length=24)
        data = attention_data(spec, seed=segments)
        partial, combine = lower_multi_segment(spec, segments)
        parts = run_function(partial, data)
        out = run_function(
            combine, {n: parts[n] for n in ("m_part", "t_part", "O_part")}
        )
        np.testing.assert_allclose(out["O"], attention_expected(data), rtol=1e-8)

    def test_multi_segment_requires_divisibility(self):
        with pytest.raises(LoweringError):
            lower_multi_segment(attention_spec(length=24), 5)
        with pytest.raises(LoweringError):
            lower_multi_segment(attention_spec(), 1)

    def test_topk_rejected_by_scalar_emitter(self):
        x = var("x")
        cascade = Cascade(
            "k", ("x",), (Reduction("s", "topk", x, topk=2),)
        )
        spec = CodegenSpec(
            fused=fuse(cascade), rows=2, length=8,
            layouts=(ElementLayout("x", 1, True),),
        )
        with pytest.raises(LoweringError):
            lower_single_segment(spec)

    def test_variance_multi_term_lowering(self):
        n = 32
        x, mean = var("x"), var("mean")
        cascade = Cascade(
            "variance",
            ("x",),
            (
                Reduction("mean", "sum", x * const(1.0 / n)),
                Reduction("var", "sum", (x - mean) ** 2 * const(1.0 / n)),
            ),
        )
        spec = CodegenSpec(
            fused=fuse(cascade), rows=3, length=n,
            layouts=(ElementLayout("x", 1, True),),
        )
        rng = np.random.default_rng(5)
        data = rng.normal(1, 2, size=(3, n))
        out = run_function(lower_single_segment(spec), {"x": data})
        np.testing.assert_allclose(out["var"], data.var(axis=1), rtol=1e-9)


class TestTensorize:
    def test_single_segment_tile_matches_numpy(self):
        spec = attention_spec(rows=8, length=32, width=4)
        data = attention_data(spec, seed=7)
        prog = tensorize_single_segment(spec, TileConfig(blk_rows=4, blk_len=8))
        out = TileInterpreter(prog).run(data)
        np.testing.assert_allclose(out["O"], attention_expected(data), rtol=1e-9)

    @pytest.mark.parametrize("splits", [2, 4])
    def test_multi_segment_tile_matches_numpy(self, splits):
        spec = attention_spec(rows=8, length=32, width=4)
        data = attention_data(spec, seed=splits)
        partial, combine = tensorize_multi_segment(
            spec, TileConfig(blk_rows=4, blk_len=8), splits
        )
        parts = TileInterpreter(partial).run(data)
        out = TileInterpreter(combine).run(
            {k: v for k, v in parts.items() if k.endswith("_part")}
        )
        np.testing.assert_allclose(out["O"], attention_expected(data), rtol=1e-9)

    def test_quant_gemm_through_tile_backend(self):
        A, W, amax = var("A"), var("W"), var("amax")
        cascade = Cascade(
            "quant",
            ("A", "W"),
            (
                Reduction("amax", "max", absv(A)),
                Reduction("c", "sum", const(448.0) * A / amax * W),
            ),
        )
        spec = CodegenSpec(
            fused=fuse(cascade), rows=4, length=16,
            layouts=(ElementLayout("A", 1, True), ElementLayout("W", 3, False)),
        )
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 16))
        w = rng.normal(size=(16, 3))
        prog = tensorize_single_segment(spec, TileConfig(blk_rows=2, blk_len=4))
        out = TileInterpreter(prog).run({"A": a, "W": w})
        expected = (448.0 * a / np.abs(a).max(1, keepdims=True)) @ w
        np.testing.assert_allclose(out["c"], expected, rtol=1e-9)

    def test_abs_max_state_seeds_zero(self):
        """Abs-max reductions seed 0, not -inf, so the un-peeled tile
        template's first correction ratio stays finite."""
        from repro.codegen.tensorize import _seed_init

        A, W, amax = var("A"), var("W"), var("amax")
        cascade = Cascade(
            "quant",
            ("A", "W"),
            (
                Reduction("amax", "max", absv(A)),
                Reduction("c", "sum", const(448.0) * A / amax * W),
            ),
        )
        spec = CodegenSpec(
            fused=fuse(cascade), rows=2, length=4,
            layouts=(ElementLayout("A", 1, True), ElementLayout("W", 2, False)),
        )
        assert _seed_init(spec, spec.fused[0]) == 0.0

    def test_tile_divisibility_enforced(self):
        spec = attention_spec(rows=4, length=24)
        with pytest.raises(LoweringError):
            tensorize_single_segment(spec, TileConfig(blk_rows=3, blk_len=8))


class TestKernelEstimation:
    def test_fused_reads_inputs_once(self):
        spec = attention_spec(rows=128, length=256, width=64, inner=64)
        prog = tensorize_single_segment(spec, TileConfig(blk_rows=64, blk_len=64))
        kernel = estimate_kernel(prog)
        fp16 = 2
        k_bytes = spec.length * 64 * fp16
        v_bytes = spec.length * 64 * fp16
        q_bytes = spec.rows * 64 * fp16
        # K/V staged once per row block (2 blocks), Q once per block
        expected_reads = 2 * (k_bytes + v_bytes) + q_bytes
        assert kernel.bytes_read == pytest.approx(expected_reads)

    def test_gemm_flops_counted(self):
        spec = attention_spec(rows=128, length=256, width=64, inner=64)
        prog = tensorize_single_segment(spec, TileConfig(blk_rows=64, blk_len=64))
        kernel = estimate_kernel(prog)
        two_gemms = 2 * 2.0 * 128 * 256 * 64
        assert kernel.flops > two_gemms  # gemms plus corrections
        assert kernel.tensor_cores

    def test_pipeline_depth_buffers_streamed_tiles_only(self):
        spec = attention_spec(rows=128, length=256, width=64, inner=64)
        prog = tensorize_single_segment(spec, TileConfig(blk_rows=64, blk_len=64))
        shallow = estimate_kernel(prog, pipeline_depth=1)
        deep = estimate_kernel(prog, pipeline_depth=3)
        assert deep.smem_bytes > shallow.smem_bytes
        q_tile = 64 * 64 * 2  # persistent: must not be multiplied
        assert deep.smem_bytes - shallow.smem_bytes < 3 * (prog.shared_bytes())
        assert deep.overlap > shallow.overlap


class TestAutotune:
    def test_finds_feasible_config(self):
        spec = attention_spec(rows=128, length=256, width=64, inner=64)
        result = autotune(
            spec, A10,
            blk_rows=(32, 64, 128), blk_len=(32, 64), threads=(256,),
            pipeline=(1, 2), segments=(1, 2),
        )
        assert result.latency > 0
        assert result.candidates_tried > 4
        for kernel in result.program.kernels:
            assert occupancy(A10, kernel).feasible

    def test_decode_prefers_multi_segment(self):
        """One query row: splitting the kv axis is the only way to get
        parallelism (the FlashDecoding case)."""
        spec = attention_spec(rows=1, length=512, width=64, inner=64)
        result = autotune(
            spec, A10,
            blk_rows=(1,), blk_len=(32, 64), threads=(256,),
            pipeline=(2,), segments=(1, 8),
            instances=8,  # modest batch: 8 CTAs can't fill 72 SMs unsplit
        )
        assert result.num_segments > 1
        assert result.strategy == "multi-segment"

    def test_instances_scale_candidates(self):
        spec = softmax_spec(rows=128, length=256)
        single = autotune(spec, A10, segments=(1,), instances=1)
        batched = autotune(spec, A10, segments=(1,), instances=64)
        assert batched.latency > single.latency
