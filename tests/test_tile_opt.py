"""Unit tests for the tile-IR schedule optimizer (`repro.codegen.opt`).

Every pass is exercised on hand-built :class:`TileProgram`s with known
hazards — a dead defensive fill, a staging buffer reused across two
loads (false WAR/WAW), a segment loop with a carried accumulator — and
every rewrite is checked two ways: the structural property the pass
claims (op removed, clone introduced, loop halved) and bitwise equality
of the :class:`TileInterpreter` output before and after.
"""

import numpy as np
import pytest

from repro.codegen.opt import (
    OPT_LEVELS,
    PASS_NAMES,
    build_dag,
    carried_buffers,
    dead_code,
    engine_rates,
    full_cover_write,
    list_schedule,
    op_cost,
    optimize_programs,
    passes_for_level,
    pipeline_loops,
    privatizable_buffers,
    refs_disjoint,
    rename_temps,
    schedule_program,
)
from repro.engine import BackendError, Engine, get_backend
from repro.gpusim import A10
from repro.ir.tile import (
    Copy,
    Fill,
    ForStage,
    Gemm,
    Reduce,
    TileBuffer,
    TileInterpreter,
    TileProgram,
    tile,
)
from repro.symbolic import Const, exp, var
from repro.symbolic.expr import Binary, Var


def run_program(program: TileProgram, inputs):
    return TileInterpreter(program).run(inputs)


def assert_same_outputs(a: TileProgram, b: TileProgram, inputs) -> None:
    """Interpreter outputs must match bitwise on shared global buffers."""
    out_a = run_program(a, inputs)
    out_b = run_program(b, inputs)
    for name in out_a:
        if name in out_b:
            np.testing.assert_array_equal(
                out_a[name], out_b[name], err_msg=name
            )


# ---------------------------------------------------------------------------
# hand-built fixture programs
# ---------------------------------------------------------------------------
def staging_reuse_program() -> TileProgram:
    """Two load/store pairs sharing one staging buffer: a false WAR/WAW."""
    return TileProgram(
        name="staging_reuse",
        buffers=(
            TileBuffer("X", (8, 4), "global"),
            TileBuffer("X2", (8, 4), "global"),
            TileBuffer("Y", (8, 4), "global"),
            TileBuffer("Y2", (8, 4), "global"),
            TileBuffer("S", (8, 4), "shared"),
        ),
        grid=(),
        body=(
            Copy(tile("X", (0, 8), (0, 4)), tile("S", (0, 8), (0, 4))),
            Copy(tile("S", (0, 8), (0, 4)), tile("Y", (0, 8), (0, 4))),
            Copy(tile("X2", (0, 8), (0, 4)), tile("S", (0, 8), (0, 4))),
            Copy(tile("S", (0, 8), (0, 4)), tile("Y2", (0, 8), (0, 4))),
        ),
    )


def segment_loop_program(extent: int) -> TileProgram:
    """Streamed reduction: copy a stage tile in, accumulate into `acc`."""
    stage = Var("s")
    return TileProgram(
        name="segment_loop",
        buffers=(
            TileBuffer("X", (4 * extent, 4), "global"),
            TileBuffer("S", (4, 4), "shared"),
            TileBuffer("acc", (1, 4), "global"),
        ),
        grid=(),
        body=(
            ForStage(
                "s",
                extent,
                (
                    Copy(
                        tile("X", (Binary("mul", stage, Const(4)), 4), (0, 4)),
                        tile("S", (0, 4), (0, 4)),
                    ),
                    Reduce(
                        tile("S", (0, 4), (0, 4)),
                        tile("acc", (0, 1), (0, 4)),
                        0,
                        "sum",
                    ),
                ),
            ),
        ),
    )


def segment_inputs(extent: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return {"X": rng.normal(size=(4 * extent, 4))}


# ---------------------------------------------------------------------------
# dependence analysis
# ---------------------------------------------------------------------------
class TestDeps:
    def test_refs_disjoint_constant_offsets(self):
        a = tile("B", (0, 4), (0, 4))
        assert refs_disjoint(a, tile("B", (4, 4), (0, 4)))
        assert not refs_disjoint(a, tile("B", (2, 4), (0, 4)))  # overlap
        assert not refs_disjoint(a, tile("B", (0, 4), (0, 4)))  # identical

    def test_refs_disjoint_symbolic_offsets(self):
        bx = Binary("mul", Var("bx"), Const(8))
        # same symbolic row offset: separated along the column dim
        assert refs_disjoint(
            tile("B", (bx, 8), (0, 4)), tile("B", (bx, 8), (4, 4))
        )
        # different variables: nothing provable, must conflict
        by = Binary("mul", Var("by"), Const(8))
        assert not refs_disjoint(
            tile("B", (bx, 8), (0, 4)), tile("B", (by, 8), (0, 4))
        )

    def test_full_cover_write(self):
        buf = TileBuffer("S", (8, 4), "shared")
        assert full_cover_write(
            Fill(tile("S", (0, 8), (0, 4)), 0.0), buf
        )
        # partial fill leaves live elements behind
        assert not full_cover_write(
            Fill(tile("S", (0, 4), (0, 4)), 0.0), buf
        )
        assert full_cover_write(
            Copy(tile("X", (0, 8), (0, 4)), tile("S", (0, 8), (0, 4))), buf
        )
        # self-copy reads the buffer it covers: prior values flow through
        assert not full_cover_write(
            Copy(tile("S", (0, 8), (0, 4)), tile("S", (0, 8), (0, 4))), buf
        )

    def test_build_dag_orders_conflicts_only(self):
        program = staging_reuse_program()
        dag = build_dag(program.body)
        assert dag.preds[1] == [0]  # RAW through S
        assert 1 in dag.preds[2] and 0 in dag.preds[2]  # WAR + WAW on S
        # every edge points forward: original order is topological
        for j, preds in enumerate(dag.preds):
            assert all(i < j for i in preds)

    def test_carried_and_privatizable(self):
        program = segment_loop_program(4)
        loop = program.body[0]
        carried = carried_buffers(loop.body, program.buffers)
        # the accumulator is read-modify-write (and global): carried
        assert "acc" in carried
        # the staging tile is covered by its first write: private per trip
        assert privatizable_buffers(loop.body, program.buffers) == ("S",)


# ---------------------------------------------------------------------------
# pass 1: dead code
# ---------------------------------------------------------------------------
class TestDeadCode:
    def _program(self, extra_ops=()) -> TileProgram:
        return TileProgram(
            name="dead",
            buffers=(
                TileBuffer("X", (8, 4), "global"),
                TileBuffer("Y", (8, 4), "global"),
                TileBuffer("S", (8, 4), "shared"),
                TileBuffer("D", (8, 4), "shared"),
            ),
            grid=(),
            body=(
                Copy(tile("X", (0, 8), (0, 4)), tile("S", (0, 8), (0, 4))),
                Fill(tile("D", (0, 8), (0, 4)), 3.0),  # nobody reads D
                Copy(tile("S", (0, 8), (0, 4)), tile("Y", (0, 8), (0, 4))),
            )
            + tuple(extra_ops),
        )

    def test_removes_unread_fill_keeps_live_chain(self):
        program = self._program()
        rewritten, stats = dead_code(program)
        assert stats["ops_removed"] == 1
        assert len(rewritten.body) == 2
        assert all(
            not (isinstance(op, Fill) and op.ref.buffer == "D")
            for op in rewritten.body
        )
        inputs = {"X": np.arange(32.0).reshape(8, 4)}
        assert_same_outputs(program, rewritten, inputs)

    def test_removes_fully_dead_loop(self):
        program = self._program(
            extra_ops=(
                ForStage(
                    "s", 4, (Fill(tile("D", (0, 8), (0, 4)), 1.0),)
                ),
            )
        )
        rewritten, stats = dead_code(program)
        # the standalone fill, the in-loop fill, and the emptied loop
        assert stats["ops_removed"] == 3
        assert not any(isinstance(op, ForStage) for op in rewritten.body)

    def test_keeps_writes_read_by_later_loop(self):
        stage = Var("s")
        program = TileProgram(
            name="live_into_loop",
            buffers=(
                TileBuffer("X", (8, 4), "global"),
                TileBuffer("S", (8, 4), "shared"),
                TileBuffer("acc", (1, 4), "global"),
            ),
            grid=(),
            body=(
                Copy(tile("X", (0, 8), (0, 4)), tile("S", (0, 8), (0, 4))),
                ForStage(
                    "s",
                    2,
                    (
                        Reduce(
                            tile(
                                "S",
                                (Binary("mul", stage, Const(4)), 4),
                                (0, 4),
                            ),
                            tile("acc", (0, 1), (0, 4)),
                            0,
                            "sum",
                        ),
                    ),
                ),
            ),
        )
        rewritten, stats = dead_code(program)
        assert stats["ops_removed"] == 0
        assert len(rewritten.body) == 2


# ---------------------------------------------------------------------------
# pass 2: segment-loop unrolling
# ---------------------------------------------------------------------------
class TestPipelineLoops:
    @pytest.mark.parametrize("extent", [2, 3, 4, 5, 7, 8])
    def test_unroll_preserves_iteration_sequence(self, extent):
        program = segment_loop_program(extent)
        rewritten, stats = pipeline_loops(program)
        assert stats["loops_unrolled"] == 1
        loop = rewritten.body[0]
        assert isinstance(loop, ForStage)
        assert loop.extent == extent // 2
        assert len(loop.body) == 4  # two copies of the two-op body
        epilogue = rewritten.body[1:]
        assert len(epilogue) == (2 if extent % 2 else 0)
        assert_same_outputs(program, rewritten, segment_inputs(extent))

    def test_single_trip_loop_flattens(self):
        program = segment_loop_program(1)
        rewritten, stats = pipeline_loops(program)
        assert stats["loops_flattened"] == 1
        assert not any(isinstance(op, ForStage) for op in rewritten.body)
        assert_same_outputs(program, rewritten, segment_inputs(1))


# ---------------------------------------------------------------------------
# pass 3: temp renaming
# ---------------------------------------------------------------------------
class TestRenameTemps:
    def test_breaks_false_chain_with_one_clone(self):
        program = staging_reuse_program()
        rewritten, stats = rename_temps(program)
        assert stats["buffers_renamed"] == 1
        clone_names = {b.name for b in rewritten.buffers} - {
            b.name for b in program.buffers
        }
        assert clone_names == {"S__r1"}
        # first pair now uses the clone; last range keeps the original so
        # live-out readers see the final value
        assert rewritten.body[0].dst.buffer == "S__r1"
        assert rewritten.body[1].src.buffer == "S__r1"
        assert rewritten.body[2].dst.buffer == "S"
        assert rewritten.body[3].src.buffer == "S"
        # the false WAR/WAW edges are gone: the two pairs are independent
        dag = build_dag(rewritten.body)
        assert dag.preds[2] == [] and dag.preds[3] == [2]
        rng = np.random.default_rng(7)
        inputs = {
            "X": rng.normal(size=(8, 4)),
            "X2": rng.normal(size=(8, 4)),
        }
        assert_same_outputs(program, rewritten, inputs)

    def test_renames_inside_unrolled_loop_body(self):
        program, _ = pipeline_loops(segment_loop_program(6))
        rewritten, stats = rename_temps(program)
        assert stats["buffers_renamed"] >= 1
        loop = rewritten.body[0]
        # the first unrolled half stages through the clone, the second
        # keeps the original name (it is the trip's live-out generation)
        assert loop.body[0].dst.buffer.startswith("S__r")
        assert_same_outputs(
            segment_loop_program(6), rewritten, segment_inputs(6)
        )

    def test_accumulators_never_cloned(self):
        program, _ = pipeline_loops(segment_loop_program(6))
        rewritten, _ = rename_temps(program)
        assert all("acc" not in b.name or b.name == "acc"
                   for b in rewritten.buffers)


# ---------------------------------------------------------------------------
# pass 4: slot scheduling
# ---------------------------------------------------------------------------
def mixed_engine_ops():
    """A DRAM copy, a tensor-core GEMM, and a CUDA-core fill, independent."""
    return [
        Copy(tile("X", (0, 16), (0, 16)), tile("S", (0, 16), (0, 16))),
        Gemm(
            tile("A", (0, 16), (0, 16)),
            tile("B", (0, 16), (0, 16)),
            tile("C", (0, 16), (0, 16)),
        ),
        Fill(tile("F", (0, 16), (0, 16)), 0.0),
    ]


def mixed_engine_program() -> TileProgram:
    return TileProgram(
        name="mixed",
        buffers=(
            TileBuffer("X", (16, 16), "global"),
            TileBuffer("S", (16, 16), "shared"),
            TileBuffer("A", (16, 16), "shared"),
            TileBuffer("B", (16, 16), "shared"),
            TileBuffer("C", (16, 16), "fragment"),
            TileBuffer("F", (16, 16), "shared"),
        ),
        grid=(),
        body=tuple(mixed_engine_ops()),
    )


class TestListSchedule:
    def test_independent_ops_overlap(self):
        program = mixed_engine_program()
        ops = list(program.body)
        costs = [op_cost(op, program) for op in ops]
        rates = engine_rates(A10)
        serial = list_schedule(ops, costs, rates, reorder=False)
        overlapped = list_schedule(ops, costs, rates, reorder=True)
        assert serial.span == pytest.approx(sum(rates.duration(c) for c in costs))
        # three engines, no dependences: the makespan is the slowest op
        assert overlapped.span == pytest.approx(
            max(rates.duration(c) for c in costs)
        )
        assert overlapped.span < serial.span

    def test_reorder_respects_dependences(self):
        program = staging_reuse_program()
        ops = list(program.body)
        costs = [op_cost(op, program) for op in ops]
        rates = engine_rates(A10)
        dag = build_dag(ops)
        rs = list_schedule(ops, costs, rates, dag=dag, reorder=True)
        position = {op_index: pos for pos, op_index in enumerate(rs.order)}
        for j, preds in enumerate(dag.preds):
            for i in preds:
                assert position[i] < position[j]

    def test_schedule_is_deterministic(self):
        program = mixed_engine_program()
        ops = list(program.body)
        costs = [op_cost(op, program) for op in ops]
        rates = engine_rates(A10)
        first = list_schedule(ops, costs, rates, reorder=True)
        second = list_schedule(ops, costs, rates, reorder=True)
        assert first.order == second.order
        assert first.span == second.span


class TestScheduleProgram:
    def test_pipelining_credits_loop_overlap(self):
        program = segment_loop_program(8)
        flat = schedule_program(program, A10, reorder=True, pipeline=False)
        piped = schedule_program(program, A10, reorder=True, pipeline=True)
        assert piped.pipelined_loops == 1
        assert flat.pipelined_loops == 0
        assert piped.span <= flat.span
        # totals are identical: pipelining changes the critical path only
        assert piped.profile.dram_bytes == flat.profile.dram_bytes
        assert piped.profile.cp_dram_bytes <= flat.profile.cp_dram_bytes

    def test_scheduled_body_preserves_interpreter_output(self):
        program = staging_reuse_program()
        ps = schedule_program(program, A10, reorder=True, pipeline=False)
        rng = np.random.default_rng(11)
        inputs = {
            "X": rng.normal(size=(8, 4)),
            "X2": rng.normal(size=(8, 4)),
        }
        assert_same_outputs(program, ps.program, inputs)


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------
class TestOptimizePipeline:
    def test_level_gating(self):
        assert passes_for_level(0) == ()
        assert passes_for_level(1) == ("dead_code", "slot_schedule")
        assert passes_for_level(2) == PASS_NAMES

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            optimize_programs([segment_loop_program(4)], A10, opt_level=7)

    def test_level0_is_serial_baseline(self):
        result = optimize_programs([segment_loop_program(4)], A10, opt_level=0)
        assert result.passes == ()
        assert result.latency_seconds == pytest.approx(result.baseline_seconds)

    def test_level2_report_and_speedup(self):
        program = segment_loop_program(8)
        result = optimize_programs([program], A10, opt_level=2)
        assert tuple(r["pass"] for r in result.passes) == PASS_NAMES
        for report in result.passes:
            assert report["latency_before_s"] > 0
            assert report["latency_after_s"] > 0
            assert set(report["idle_before_s"]) == set(report["idle_after_s"])
        assert result.latency_seconds <= result.baseline_seconds
        assert result.speedup >= 1.0
        # the optimized program still computes the same thing, bitwise
        assert_same_outputs(
            program, result.programs[0], segment_inputs(8)
        )
        # kernels carry schedules for the cost model
        assert all(k.schedule is not None for k in result.kernels.kernels)


# ---------------------------------------------------------------------------
# backend integration
# ---------------------------------------------------------------------------
def softmax_cascade():
    from repro.core import Cascade, Reduction

    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("t", "sum", exp(x - m)),
        ),
    )


class TestBackendIntegration:
    def test_opt_levels_share_outputs_and_cache_separately(self):
        engine = Engine()
        cascade = softmax_cascade()
        plan = engine.plan_for(cascade)
        rng = np.random.default_rng(3)
        inputs = {"x": rng.normal(size=64)}
        out0 = plan.execute(inputs, mode="tile_ir", opt_level=0)
        out2 = plan.execute(inputs, mode="tile_ir", opt_level=2)
        out_default = plan.execute(inputs, mode="tile_ir")
        for name in out0:
            np.testing.assert_array_equal(out0[name], out2[name], err_msg=name)
            np.testing.assert_array_equal(
                out0[name], out_default[name], err_msg=name
            )
        info = plan.describe()["tile_ir"]
        # level 0 and level 2 are distinct variants; the default level
        # (2) reuses the level-2 compilation instead of adding a third
        assert info["compiled_variants"] == 2
        by_level = {e["opt_level"]: e for e in info["estimates"]}
        assert set(by_level) == {0, 2}
        assert by_level[0]["opt_passes"] == ()
        assert tuple(r["pass"] for r in by_level[2]["opt_passes"]) == PASS_NAMES

    def test_invalid_opt_level_raises_backend_error(self):
        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        inputs = {"x": np.arange(16.0)}
        with pytest.raises(BackendError):
            plan.execute(inputs, mode="tile_ir", opt_level=7)
        with pytest.raises(BackendError):
            plan.execute(inputs, mode="tile_ir", opt_level="fast")

    def test_optimization_rows_and_table(self):
        from repro.harness import optimization_table
        from repro.obs import optimization_rows

        engine = Engine()
        plan = engine.plan_for(softmax_cascade())
        rng = np.random.default_rng(5)
        plan.execute({"x": rng.normal(size=96)}, mode="tile_ir", opt_level=2)
        rows = optimization_rows(plan)
        assert tuple(r["pass"] for r in rows) == PASS_NAMES
        for row in rows:
            assert row["latency_before_s"] > 0
            assert row["speedup"] > 0
            assert "dram_idle_reclaimed_s" in row
        text = optimization_table(rows, "tile-IR optimizer")
        for name in PASS_NAMES:
            assert name in text

    def test_backend_supports_opt_level_option(self):
        backend = get_backend("tile_ir")
        assert "opt_level" in backend.options
        assert 2 in OPT_LEVELS
