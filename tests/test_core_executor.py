"""Unit tests for the unfused / fused-tree / incremental executors.

The central invariant of the whole paper: all three execution modes
compute the same values (Eq. 1 == Eq. 6+11 == Eq. 15/16).
"""

import numpy as np
import pytest

from repro.core import (
    Cascade,
    Reduction,
    compute_segment_state,
    fuse,
    merge_states,
    run_fused_tree,
    run_incremental,
    run_unfused,
    state_values,
)
from repro.symbolic import const, exp, sqrt, var, variables, vmax


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


def softmax_cascade():
    x, m = variables("x", "m")
    return Cascade(
        "softmax",
        ("x",),
        (Reduction("m", "max", x), Reduction("t", "sum", exp(x - m))),
    )


def attention_cascade():
    P, V, m, t = variables("P", "V", "m", "t")
    return Cascade(
        "attention",
        ("P", "V"),
        (
            Reduction("m", "max", P),
            Reduction("t", "sum", exp(P - m)),
            Reduction("O", "sum", exp(P - m) / t * V),
        ),
    )


def assert_outputs_close(a, b, rtol=1e-9):
    assert set(a) == set(b)
    for name in a:
        if hasattr(a[name], "values"):  # TopKState
            np.testing.assert_allclose(a[name].values, b[name].values, rtol=rtol)
            np.testing.assert_array_equal(a[name].indices, b[name].indices)
        else:
            np.testing.assert_allclose(a[name], b[name], rtol=rtol)


class TestRunUnfused:
    def test_softmax_matches_numpy(self, rng):
        data = rng.normal(0, 4, size=300)
        out = run_unfused(softmax_cascade(), {"x": data})
        assert out["m"][0] == data.max()
        assert out["t"][0] == pytest.approx(np.exp(data - data.max()).sum())

    def test_attention_matches_numpy(self, rng):
        P = rng.normal(0, 2, size=(64, 1))
        V = rng.normal(size=(64, 16))
        out = run_unfused(attention_cascade(), {"P": P, "V": V})
        weights = np.exp(P[:, 0] - P.max())
        weights /= weights.sum()
        np.testing.assert_allclose(out["O"], weights @ V, rtol=1e-9)

    def test_topk_output(self, rng):
        x = var("x")
        cascade = Cascade("k", ("x",), (Reduction("s", "topk", x, topk=3),))
        data = rng.normal(size=32)
        out = run_unfused(cascade, {"x": data})
        np.testing.assert_allclose(out["s"].values, np.sort(data)[::-1][:3])

    def test_topk_rejects_wide_input(self):
        x = var("x")
        cascade = Cascade("k", ("x",), (Reduction("s", "topk", x, topk=2),))
        with pytest.raises(ValueError):
            run_unfused(cascade, {"x": np.ones((4, 2))})


class TestEquivalenceAcrossModes:
    @pytest.mark.parametrize("segments", [1, 2, 3, 8, 64])
    def test_softmax_tree(self, rng, segments):
        data = rng.normal(0, 5, size=193)
        cascade = softmax_cascade()
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x": data})
        got = run_fused_tree(fused, {"x": data}, num_segments=segments)
        assert_outputs_close(ref, got)

    @pytest.mark.parametrize("chunk", [1, 2, 7, 64, 1000])
    def test_softmax_incremental(self, rng, chunk):
        data = rng.normal(0, 5, size=193)
        cascade = softmax_cascade()
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x": data})
        got = run_incremental(fused, {"x": data}, chunk_len=chunk)
        assert_outputs_close(ref, got)

    @pytest.mark.parametrize("branching", [None, 2, 3])
    def test_attention_tree_any_shape(self, rng, branching):
        P = rng.normal(0, 3, size=(157, 1))
        V = rng.normal(size=(157, 8))
        cascade = attention_cascade()
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"P": P, "V": V})
        got = run_fused_tree(
            fused, {"P": P, "V": V}, num_segments=10, branching=branching
        )
        assert_outputs_close(ref, got, rtol=1e-8)

    def test_attention_incremental_is_flash_recurrence(self, rng):
        P = rng.normal(0, 3, size=(130, 1))
        V = rng.normal(size=(130, 4))
        cascade = attention_cascade()
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"P": P, "V": V})
        got = run_incremental(fused, {"P": P, "V": V}, chunk_len=1)
        assert_outputs_close(ref, got, rtol=1e-8)

    def test_large_magnitudes_stay_finite(self):
        """Safe-softmax robustness: naive exp(x) would overflow."""
        data = np.array([900.0, 901.0, 899.5, 900.5])
        cascade = softmax_cascade()
        fused = fuse(cascade)
        out = run_incremental(fused, {"x": data}, chunk_len=1)
        assert np.isfinite(out["t"]).all()
        ref = run_unfused(cascade, {"x": data})
        assert_outputs_close(ref, out)

    def test_variance_multi_term(self, rng):
        n = 181
        x, mean = variables("x", "mean")
        cascade = Cascade(
            "variance",
            ("x",),
            (
                Reduction("mean", "sum", x * const(1.0 / n)),
                Reduction("var", "sum", (x - mean) ** 2 * const(1.0 / n)),
            ),
        )
        data = rng.normal(3, 2, size=n)
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x": data})
        assert ref["var"][0] == pytest.approx(np.var(data))
        for mode in (
            run_incremental(fused, {"x": data}, chunk_len=13),
            run_fused_tree(fused, {"x": data}, num_segments=6),
        ):
            assert_outputs_close(ref, mode, rtol=1e-7)

    def test_moe_routing_with_topk(self, rng):
        x, m = variables("x", "m")
        cascade = Cascade(
            "moe",
            ("x",),
            (
                Reduction("m", "max", x),
                Reduction("t", "sum", exp(x - m)),
                Reduction("s", "topk", x, topk=4),
            ),
        )
        scores = rng.normal(size=128)
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x": scores})
        got = run_fused_tree(fused, {"x": scores}, num_segments=8)
        inc = run_incremental(fused, {"x": scores}, chunk_len=16)
        assert_outputs_close(ref, got)
        assert_outputs_close(ref, inc)

    def test_min_reduction_cascade(self, rng):
        x, lo = variables("x", "lo")
        cascade = Cascade(
            "minshift",
            ("x",),
            (
                Reduction("lo", "min", x),
                Reduction("t", "sum", exp(lo - x)),
            ),
        )
        data = rng.normal(size=77)
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x": data})
        got = run_incremental(fused, {"x": data}, chunk_len=5)
        assert_outputs_close(ref, got)

    def test_sum_sum_appendix_pattern(self, rng):
        """Appendix A.2.3 with max(m - 10, 1) made explicit."""
        x1, x2, m = variables("x1", "x2", "m")
        cascade = Cascade(
            "sum_sum",
            ("x1", "x2"),
            (
                Reduction("m", "sum", x1 * x1),
                Reduction("s", "sum", x1 * x2 / sqrt(vmax(m - 10, 1))),
            ),
        )
        a = rng.normal(2, 1, size=50)
        b = rng.normal(size=50)
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x1": a, "x2": b})
        got = run_incremental(fused, {"x1": a, "x2": b}, chunk_len=3)
        assert_outputs_close(ref, got, rtol=1e-7)


class TestMergeStates:
    def test_merge_is_associative(self, rng):
        cascade = attention_cascade()
        fused = fuse(cascade)
        P = rng.normal(size=(90, 1))
        V = rng.normal(size=(90, 4))
        parts = []
        for lo, hi in [(0, 30), (30, 60), (60, 90)]:
            parts.append(
                compute_segment_state(
                    fused, {"P": P[lo:hi], "V": V[lo:hi]}, base_index=lo
                )
            )
        left = merge_states(fused, merge_states(fused, parts[0], parts[1]), parts[2])
        right = merge_states(fused, parts[0], merge_states(fused, parts[1], parts[2]))
        assert_outputs_close(state_values(left), state_values(right), rtol=1e-9)

    def test_merge_with_identityless_history(self, rng):
        """Merging a fresh chunk into a seeded state never sees inf ratios."""
        cascade = softmax_cascade()
        fused = fuse(cascade)
        a = compute_segment_state(fused, {"x": np.array([-1000.0])})
        b = compute_segment_state(fused, {"x": np.array([1000.0])})
        merged = state_values(merge_states(fused, a, b))
        assert merged["m"][0] == 1000.0
        assert np.isfinite(merged["t"]).all()


class TestErrors:
    def test_bad_num_segments(self):
        fused = fuse(softmax_cascade())
        with pytest.raises(ValueError):
            run_fused_tree(fused, {"x": np.ones(8)}, num_segments=0)

    def test_bad_chunk_len(self):
        fused = fuse(softmax_cascade())
        with pytest.raises(ValueError):
            run_incremental(fused, {"x": np.ones(8)}, chunk_len=0)

    def test_more_segments_than_rows_is_clamped(self, rng):
        data = rng.normal(size=5)
        cascade = softmax_cascade()
        fused = fuse(cascade)
        ref = run_unfused(cascade, {"x": data})
        got = run_fused_tree(fused, {"x": data}, num_segments=64)
        assert_outputs_close(ref, got)
