"""Fault-tolerance tests: supervisor, in-flight retry, hangs, chaos harness.

Deterministic by construction: the supervisor is driven through
``check_once()`` (no background thread, no sleeps deciding outcomes),
hangs/delays/crashes are injected through the pool's chaos wire op, and
pipe ordering guarantees an injected fault lands before any probe sent
after it.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import Cascade, Reduction
from repro.engine import (
    DeadlineExceededError,
    Engine,
    PlanStore,
    RequestSerializationError,
    RetriesExhaustedError,
    Router,
    RouterStats,
    Supervisor,
    SupervisorConfig,
    WorkerError,
    WorkerPool,
    cascade_signature,
)
from repro.harness import ChaosEvent, ChaosPolicy, seeded_schedule
from repro.symbolic import const, exp, var


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def assert_outputs_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


def seed_store(tmp_path, cascade, inputs):
    store = PlanStore(tmp_path)
    engine = Engine(plan_store=store)
    reference = engine.run(cascade, inputs)
    engine.close()
    return store, reference


def wait_dead(pool, index, timeout=10.0):
    """Block until the reader thread has registered the slot's death."""
    handle = pool._handle(index)
    handle.process.join(timeout)
    handle.reader.join(timeout)
    assert not handle.alive


#: manual-drive supervisor config: no backoff, fast hang detection
FAST = SupervisorConfig(
    interval_s=0.05, ping_timeout_s=0.5,
    backoff_base_s=0.0, backoff_max_s=0.0,
    breaker_threshold=3, breaker_window_s=60.0, breaker_reset_s=60.0,
    restart_timeout_s=10.0,
)


class TestSupervisor:
    def test_check_once_restarts_crashed_worker_warm(self, tmp_path):
        cascade = softmax_cascade(1.5)
        inputs = {"x": np.arange(8.0)}
        store, reference = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            supervisor = Supervisor(pool, FAST)
            pool.submit_to(0, cascade, inputs).result(timeout=60)
            old_pid = pool.pids()[0]
            pool.kill(0)
            wait_dead(pool, 0)
            actions = supervisor.check_once()
            assert actions == ["restarted"]
            assert pool.alive() == [True]
            assert pool.pids()[0] != old_pid
            out = pool.submit_to(0, cascade, inputs).result(timeout=60)
            assert_outputs_equal(out, reference)
            assert pool.fusion_compiles() == 0  # warm from the store
            assert supervisor.describe()["crashes_detected"] == 1

    def test_check_once_restarts_hung_worker(self, tmp_path):
        # satellite: a worker that stops draining its pipe is alive but
        # must fail ping() and be recycled exactly like a crash
        cascade = softmax_cascade(2.0)
        inputs = {"x": np.arange(8.0)}
        store, reference = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            supervisor = Supervisor(pool, FAST)
            pool.submit_to(0, cascade, inputs).result(timeout=60)
            old_pid = pool.pids()[0]
            pool.inject(0, "hang")  # stops draining; process stays alive
            assert pool.alive() == [True]
            assert pool.ping_one(0, timeout=0.3) is None  # mute, not dead
            actions = supervisor.check_once()
            assert actions == ["restarted"]
            assert pool.pids()[0] != old_pid
            out = pool.submit_to(0, cascade, inputs).result(timeout=60)
            assert_outputs_equal(out, reference)
            assert supervisor.describe()["hangs_detected"] == 1

    def test_healthy_workers_untouched(self, tmp_path):
        cascade = softmax_cascade()
        inputs = {"x": np.arange(4.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(2, store) as pool:
            supervisor = Supervisor(pool, FAST)
            pids = pool.pids()
            assert supervisor.check_once() == [None, None]
            assert pool.pids() == pids

    def test_circuit_breaker_parks_crash_loop_then_half_opens(self, tmp_path):
        cascade = softmax_cascade(0.75)
        inputs = {"x": np.arange(8.0)}
        store, reference = seed_store(tmp_path, cascade, inputs)
        cfg = SupervisorConfig(
            interval_s=0.05, ping_timeout_s=0.5,
            backoff_base_s=0.0, backoff_max_s=0.0,
            breaker_threshold=2, breaker_window_s=60.0,
            breaker_reset_s=0.0,  # half-open immediately on the next sweep
            restart_timeout_s=10.0,
        )
        with WorkerPool(2, store) as pool:
            router = Router(pool, supervise=True, supervisor_config=cfg,
                            imbalance=64)
            supervisor = router.supervisor
            supervisor.stop()  # drive every sweep by hand
            home = int(cascade_signature(cascade)[:8], 16) % 2
            # two crashes restart; the third trips the breaker
            for expected in ("restarted", "restarted", "parked"):
                pool.kill(home)
                wait_dead(pool, home)
                actions = supervisor.check_once()
                assert actions[home] == expected
            assert supervisor.parked()[home]
            # traffic reroutes off the parked slot
            out = router.submit(cascade, inputs).result(timeout=60)
            assert_outputs_equal(out, reference)
            snap = router.stats.snapshot()
            assert snap["by_worker"][f"w{1 - home}"] == 1
            # breaker_reset_s elapsed: probation restart heals the slot
            actions = supervisor.check_once()
            assert actions[home] == "restarted"
            assert not supervisor.parked()[home]
            assert pool.alive() == [True, True]
            assert pool.fusion_compiles() == 0

    def test_background_thread_heals_killed_worker(self, tmp_path):
        # end to end through the real thread: no manual sweeps at all
        cascade = softmax_cascade(1.25)
        inputs = {"x": np.arange(8.0)}
        store, reference = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            with Router(pool, supervisor_config=FAST) as router:
                old_pid = pool.pids()[0]
                pool.kill(0)
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if pool.alive() == [True] and pool.pids()[0] != old_pid:
                        break
                    time.sleep(0.05)
                assert pool.alive() == [True]
                assert pool.pids()[0] != old_pid
                out = router.submit(cascade, inputs).result(timeout=60)
                assert_outputs_equal(out, reference)


class TestInFlightRecovery:
    def test_pending_requests_retry_onto_live_worker(self, tmp_path):
        cascade = softmax_cascade(3.0)
        inputs = {"x": np.arange(16.0)}
        store, reference = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(2, store) as pool:
            router = Router(pool, supervise=False, max_retries=2,
                            imbalance=64)
            home = int(cascade_signature(cascade)[:8], 16) % 2
            # stall the home worker's recv loop so the next submits sit
            # in its pipe, then kill it: those requests die in flight
            pool.inject(home, "delay", 1.0)
            futures = [router.submit(cascade, inputs) for _ in range(4)]
            assert pool.outstanding()[home] == 4
            pool.kill(home)
            for future in futures:
                assert_outputs_equal(future.result(timeout=60), reference)
            snap = router.stats.snapshot()
            assert snap["retries"] == 4  # every in-flight request retried
            assert snap["retries_exhausted"] == 0
            assert snap["by_worker"][f"w{1 - home}"] == 4

    def test_retry_budget_exhausted_surfaces_typed_error(self, tmp_path):
        cascade = softmax_cascade(0.5)
        inputs = {"x": np.arange(8.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            router = Router(pool, supervise=False, degraded_fallback=False,
                            max_retries=0)
            pool.inject(0, "delay", 1.0)
            future = router.submit(cascade, inputs)
            pool.kill(0)
            with pytest.raises(RetriesExhaustedError) as err:
                future.result(timeout=60)
            assert isinstance(err.value.__cause__, WorkerError)
            assert router.stats.snapshot()["retries_exhausted"] == 1

    def test_per_request_max_retries_overrides_router_default(self, tmp_path):
        cascade = softmax_cascade(0.5)
        inputs = {"x": np.arange(8.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            router = Router(pool, supervise=False, degraded_fallback=False,
                            max_retries=5)
            pool.inject(0, "delay", 1.0)
            future = router.submit(cascade, inputs, max_retries=0)
            pool.kill(0)
            with pytest.raises(RetriesExhaustedError):
                future.result(timeout=60)
            with pytest.raises(ValueError):
                router.submit(cascade, inputs, max_retries=-1)

    def test_client_deadline_reaps_future_on_hung_worker(self, tmp_path):
        cascade = softmax_cascade(2.5)
        inputs = {"x": np.arange(8.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            router = Router(pool, supervise=False, deadline_grace_s=0.2)
            pool.inject(0, "hang")  # results will never drain
            future = router.submit(cascade, inputs, deadline_s=0.3)
            start = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
            assert time.monotonic() - start < 10.0  # reaped, not hung
            assert router.stats.snapshot()["timeouts"] == 1
            pool.kill(0)  # reclaim the wedged slot: close() joins fast


class TestDegradedMode:
    def test_all_workers_dead_falls_back_in_process(self, tmp_path):
        cascade = softmax_cascade(1.75)
        inputs = {"x": np.arange(12.0)}
        store, reference = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            router = Router(pool, supervise=False)
            pool.kill(0)
            wait_dead(pool, 0)
            out = router.submit(cascade, inputs).result(timeout=60)
            assert_outputs_equal(out, reference)
            assert router.degraded
            snap = router.stats.snapshot()
            assert snap["degraded"] == 1
            scrape = router.render_prometheus()
            assert "router_degraded_mode 1" in scrape
            # a healed worker clears degraded mode on the next request
            pool.restart(0, drain=False)
            out = router.submit(cascade, inputs).result(timeout=60)
            assert_outputs_equal(out, reference)
            assert not router.degraded
            router.close()

    def test_fallback_disabled_raises_like_closed_runtime(self, tmp_path):
        cascade = softmax_cascade(1.75)
        inputs = {"x": np.arange(12.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            router = Router(pool, supervise=False, degraded_fallback=False)
            pool.kill(0)
            wait_dead(pool, 0)
            with pytest.raises(WorkerError):
                router.submit(cascade, inputs)


class TestRequestSerialization:
    def test_unpicklable_payload_spares_the_worker(self, tmp_path):
        # satellite: a request-level pickling error must not condemn the
        # (healthy) worker slot
        cascade = softmax_cascade()
        good = {"x": np.arange(4.0)}
        bad = {"x": threading.Lock()}  # locks cannot pickle
        store, _ = seed_store(tmp_path, cascade, good)
        with WorkerPool(1, store) as pool:
            pool.submit_to(0, cascade, good).result(timeout=60)
            with pytest.raises(RequestSerializationError):
                pool.submit_to(0, cascade, bad)
            assert pool.alive() == [True]
            assert pool.outstanding() == [0]  # no leaked pending entry
            pool.submit_to(0, cascade, good).result(timeout=60)

    def test_router_raises_synchronously_without_failover(self, tmp_path):
        cascade = softmax_cascade()
        good = {"x": np.arange(4.0)}
        store, _ = seed_store(tmp_path, cascade, good)
        with WorkerPool(2, store) as pool:
            router = Router(pool, supervise=False)
            with pytest.raises(RequestSerializationError):
                router.submit(cascade, {"x": threading.Lock()})
            assert pool.alive() == [True, True]
            snap = router.stats.snapshot()
            assert snap["failover"] == 0
            assert all(n == 0 for n in snap["failover_by_worker"].values())


class TestDrainBudget:
    def test_drain_timeout_is_shared_not_per_worker(self, tmp_path):
        # satellite: two hung workers must cost ~1x the budget, not 2x
        cascade = softmax_cascade()
        inputs = {"x": np.arange(4.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(2, store) as pool:
            pool.inject(0, "hang")
            pool.inject(1, "hang")
            start = time.monotonic()
            ok = pool.drain(timeout=1.0)
            elapsed = time.monotonic() - start
            assert ok is False
            assert 0.9 <= elapsed < 1.8
            pool.kill(0)  # reclaim the wedged slots: close() joins fast
            pool.kill(1)

    def test_drain_returns_true_when_everything_empties(self, tmp_path):
        cascade = softmax_cascade()
        inputs = {"x": np.arange(4.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(2, store) as pool:
            pool.submit_to(0, cascade, inputs)
            pool.submit_to(1, cascade, inputs)
            assert pool.drain(timeout=60.0) is True


class TestRouterStatsAccounting:
    def test_per_worker_failover_counters(self):
        stats = RouterStats(2)
        stats.note_failover_from(1)
        stats.note_failover_from(1)
        stats.note_retry()
        stats.note_timeout()
        stats.note_degraded()
        snap = stats.snapshot()
        assert snap["failover_by_worker"] == {"w0": 0, "w1": 2}
        assert snap["retries"] == 1
        assert snap["timeouts"] == 1
        assert snap["degraded"] == 1
        assert snap["retries_exhausted"] == 0


class TestChaosHarness:
    def test_seeded_schedule_is_deterministic(self):
        a = seeded_schedule(np.random.default_rng(9), 2, 4.0, count=3)
        b = seeded_schedule(np.random.default_rng(9), 2, 4.0, count=3)
        assert a == b
        assert all(0.8 <= e.at_s <= 3.2 for e in a)
        assert {e.worker for e in a} == {0, 1}

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(at_s=-1.0, worker=0, kind="kill")
        with pytest.raises(ValueError):
            ChaosEvent(at_s=0.0, worker=0, kind="meteor")
        assert ChaosEvent(0.0, 0, "kill").disruptive
        assert not ChaosEvent(0.0, 0, "delay").disruptive

    def test_kill_schedule_recovers_under_supervisor(self, tmp_path):
        cascade = softmax_cascade(1.1)
        inputs = {"x": np.arange(8.0)}
        store, reference = seed_store(tmp_path, cascade, inputs)
        policy = ChaosPolicy(
            [ChaosEvent(at_s=0.1, worker=0, kind="kill")],
            recovery_timeout_s=15.0,
        )
        with WorkerPool(1, store) as pool:
            with Router(pool, supervisor_config=FAST) as router:
                run = policy.start(pool)
                report = run.finish()
                assert report.injected == 1
                assert report.disruptive == 1
                assert report.recovered == 1
                assert report.lost == 0
                assert report.recovery_percentile(99.0) < 15.0
                out = router.submit(cascade, inputs).result(timeout=60)
                assert_outputs_equal(out, reference)

    def test_injection_on_dead_worker_is_skipped(self, tmp_path):
        cascade = softmax_cascade()
        inputs = {"x": np.arange(4.0)}
        store, _ = seed_store(tmp_path, cascade, inputs)
        with WorkerPool(1, store) as pool:
            pool.kill(0)
            wait_dead(pool, 0)
            policy = ChaosPolicy(
                [ChaosEvent(at_s=0.0, worker=0, kind="kill")],
                recovery_timeout_s=2.0,
            )
            report = policy.start(pool).finish()
            assert report.injected == 0
            assert report.skipped == 1
            assert report.lost == 0
