"""Tests for the multi-process serving tier: worker pool and router."""

import json

import numpy as np
import pytest

from repro.core import Cascade, Reduction
from repro.engine import (
    Engine,
    PlanStore,
    Router,
    ServingConfig,
    WorkerError,
    WorkerPool,
    cascade_signature,
    pick_worker,
)
from repro.symbolic import const, exp, var
from repro.workloads.serving_mix import SERVING_KINDS, request_mix


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def assert_outputs_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        left, right = a[key], b[key]
        if hasattr(left, "values") and hasattr(left, "indices"):  # TopKState
            np.testing.assert_array_equal(left.values, right.values)
            np.testing.assert_array_equal(left.indices, right.indices)
        else:
            np.testing.assert_array_equal(left, right)


def seed_store(tmp_path, requests):
    """Compile every request shape in process and persist the plans."""
    store = PlanStore(tmp_path)
    engine = Engine(plan_store=store)
    baseline = [engine.run(c, i) for _, c, i in requests]
    engine.close()
    return store, baseline


class TestPickWorker:
    SIG_HOME_1 = "10000000aaaaaaaaaaaa"  # int("10000000", 16) % 2 == 0 ... see below

    def _sig_with_home(self, home: int, n: int) -> str:
        for prefix in range(4096):
            sig = f"{prefix:08x}" + "a" * 12
            if int(sig[:8], 16) % n == home:
                return sig
        raise AssertionError("unreachable")

    def test_sticky_when_balanced(self):
        sig = self._sig_with_home(1, 3)
        assert pick_worker(sig, [5, 5, 5], [True] * 3, imbalance=4) == 1

    def test_spills_to_least_loaded_beyond_imbalance(self):
        sig = self._sig_with_home(1, 3)
        assert pick_worker(sig, [0, 9, 2], [True] * 3, imbalance=4) == 0

    def test_home_within_imbalance_budget_stays_home(self):
        sig = self._sig_with_home(1, 3)
        assert pick_worker(sig, [0, 4, 2], [True] * 3, imbalance=4) == 1

    def test_dead_home_goes_least_loaded(self):
        sig = self._sig_with_home(1, 3)
        assert pick_worker(sig, [7, 0, 3], [True, False, True], imbalance=4) == 2

    def test_ties_break_to_lowest_index(self):
        sig = self._sig_with_home(2, 3)
        assert pick_worker(sig, [1, 1, 9], [True] * 3, imbalance=0) == 0

    def test_no_live_workers_raises(self):
        with pytest.raises(WorkerError):
            pick_worker("0" * 20, [0, 0], [False, False], imbalance=4)

    def test_zero_imbalance_is_pure_least_loaded(self):
        sig = self._sig_with_home(1, 2)
        assert pick_worker(sig, [0, 1], [True, True], imbalance=0) == 0


class TestWorkerPool:
    def test_results_match_in_process_execution(self, tmp_path):
        rng = np.random.default_rng(11)
        requests = request_mix(8, rng, kinds=SERVING_KINDS, length=48, width=8)
        store, baseline = seed_store(tmp_path, requests)
        with WorkerPool(2, store) as pool:
            futures = [
                pool.submit_to(i % 2, c, inp) for i, (_, c, inp) in enumerate(requests)
            ]
            for future, reference in zip(futures, baseline):
                assert_outputs_equal(future.result(timeout=60), reference)

    def test_warm_workers_perform_zero_compiles(self, tmp_path):
        rng = np.random.default_rng(5)
        requests = request_mix(10, rng, kinds=SERVING_KINDS, length=48, width=8)
        store, _ = seed_store(tmp_path, requests)
        with WorkerPool(2, store) as pool:
            futures = [pool.submit_to(i % 2, c, inp) for i, (_, c, inp) in enumerate(requests)]
            for future in futures:
                future.result(timeout=60)
            assert pool.fusion_compiles() == 0
            stats = pool.stats()
            assert all(p["warm_loaded"] >= 1 for p in stats.values())

    def test_cold_workers_each_compile(self, tmp_path):
        cascade = softmax_cascade(3.5)
        with WorkerPool(2) as pool:  # no store: nothing to warm from
            for index in range(2):
                pool.submit_to(index, cascade, {"x": np.arange(8.0)}).result(timeout=60)
            assert pool.fusion_compiles() == 2  # once per process

    def test_worker_error_propagates_to_future(self, tmp_path):
        cascade = softmax_cascade()
        with WorkerPool(1) as pool:
            future = pool.submit_to(0, cascade, {"x": np.arange(4.0)})
            future.result(timeout=60)
            bad = pool.submit_to(0, cascade, {"x": "not an array"})
            with pytest.raises(Exception):
                bad.result(timeout=60)
            # the worker survives a request-level failure
            again = pool.submit_to(0, cascade, {"x": np.arange(4.0)})
            again.result(timeout=60)

    def test_killed_worker_fails_fast_and_restarts_warm(self, tmp_path):
        rng = np.random.default_rng(2)
        requests = request_mix(4, rng, kinds=SERVING_KINDS, length=32, width=8)
        store, baseline = seed_store(tmp_path, requests)
        with WorkerPool(1, store) as pool:
            pool.submit_to(0, requests[0][1], requests[0][2]).result(timeout=60)
            pool._handle(0).process.kill()
            pool._handle(0).process.join(10)
            pool._handle(0).reader.join(10)
            assert pool.alive() == [False]
            with pytest.raises(WorkerError):
                pool.submit_to(0, requests[0][1], requests[0][2])
            pool.restart(0, drain=False)
            assert pool.alive() == [True]
            out = pool.submit_to(0, requests[0][1], requests[0][2]).result(timeout=60)
            assert_outputs_equal(out, baseline[0])
            assert pool.fusion_compiles() == 0  # replacement warmed from store

    def test_drain_and_stats_rollup(self, tmp_path):
        rng = np.random.default_rng(9)
        requests = request_mix(6, rng, kinds=SERVING_KINDS, length=32, width=8)
        store, _ = seed_store(tmp_path, requests)
        with WorkerPool(2, store) as pool:
            futures = [
                pool.submit_to(i % 2, c, inp, tenant=f"t{i % 3}")
                for i, (_, c, inp) in enumerate(requests)
            ]
            pool.drain()
            assert all(f.done() for f in futures)
            stats = pool.stats()
            assert set(stats) == {"w0", "w1"}
            completed = sum(p["serving"]["completed"] for p in stats.values())
            assert completed == len(requests)
            tenants = set()
            for payload in stats.values():
                tenants.update(payload["serving"]["by_tenant"])
            assert tenants == {"t0", "t1", "t2"}

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestRouter:
    def test_sticky_routing_concentrates_one_signature(self, tmp_path):
        cascade = softmax_cascade(1.75)
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        engine.run(cascade, {"x": np.arange(8.0)})
        engine.close()
        with WorkerPool(2, store) as pool:
            router = Router(pool, imbalance=64)
            futures = [
                router.submit(cascade, {"x": np.arange(8.0)}) for _ in range(10)
            ]
            for future in futures:
                future.result(timeout=60)
            snap = router.stats.snapshot()
            assert snap["sticky"] == 10
            assert snap["spilled"] == 0
            home = int(cascade_signature(cascade)[:8], 16) % 2
            assert snap["by_worker"][f"w{home}"] == 10

    def test_failover_reroutes_off_dead_worker(self, tmp_path):
        cascade = softmax_cascade(2.25)
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        reference = engine.run(cascade, {"x": np.arange(12.0)})
        engine.close()
        home = int(cascade_signature(cascade)[:8], 16) % 2
        with WorkerPool(2, store) as pool:
            # supervise=False: this test exercises the manual
            # check_workers() path; the background supervisor would race
            # it to the restart
            router = Router(pool, supervise=False)
            pool._handle(home).process.kill()
            pool._handle(home).process.join(10)
            pool._handle(home).reader.join(10)
            out = router.submit(cascade, {"x": np.arange(12.0)}).result(timeout=60)
            assert_outputs_equal(out, reference)
            assert router.stats.snapshot()["by_worker"][f"w{1 - home}"] == 1
            # health check brings the dead slot back, warm
            alive = router.check_workers(restart=True)
            assert alive == [True, True]
            assert pool.fusion_compiles() == 0

    def test_tenant_priority_deadline_reach_workers(self, tmp_path):
        cascade = softmax_cascade(0.5)
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        engine.run(cascade, {"x": np.arange(8.0)})
        engine.close()
        with WorkerPool(1, store) as pool:
            router = Router(pool)
            future = router.submit(
                cascade, {"x": np.arange(8.0)},
                tenant="gold", priority="interactive", deadline_s=30.0,
            )
            future.result(timeout=60)
            router.drain()
            payload = pool.stats()["w0"]
            assert "gold" in payload["serving"]["by_tenant"]
            assert payload["serving"]["by_class"]["interactive"]["completed"] == 1

    def test_invalid_sla_attributes_raise_synchronously(self, tmp_path):
        # parity with ServingEngine.submit: a bad priority/deadline must
        # raise at the call site, not inside the remote worker's Future
        cascade = softmax_cascade(0.5)
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        engine.run(cascade, {"x": np.arange(8.0)})
        engine.close()
        with WorkerPool(1, store) as pool:
            router = Router(pool)
            with pytest.raises(ValueError, match="priority"):
                router.submit(cascade, {"x": np.arange(8.0)}, priority="vip")
            with pytest.raises(ValueError, match="deadline_s"):
                router.submit(cascade, {"x": np.arange(8.0)}, deadline_s=0.0)
            assert router.stats.snapshot()["routed"] == 0

    def test_describe_aggregates_like_one_engine(self, tmp_path):
        rng = np.random.default_rng(21)
        requests = request_mix(8, rng, kinds=SERVING_KINDS, length=32, width=8)
        store, _ = seed_store(tmp_path, requests)
        with WorkerPool(2, store) as pool:
            router = Router(pool, imbalance=2)
            futures = [router.submit(c, inp) for _, c, inp in requests]
            for future in futures:
                future.result(timeout=60)
            router.drain()
            info = router.describe()
            assert info["serving"]["submitted"] == len(requests)
            assert info["serving"]["completed"] == len(requests)
            assert info["fusion_compiles"] == 0
            assert set(info["workers"]) == {"w0", "w1"}
            assert info["router"]["routed"] == len(requests)
            assert sum(info["backend_executions"].values()) >= 1

    def test_prometheus_scrape_has_router_and_worker_series(self, tmp_path):
        cascade = softmax_cascade(1.1)
        store = PlanStore(tmp_path)
        engine = Engine(plan_store=store)
        engine.run(cascade, {"x": np.arange(8.0)})
        engine.close()
        with WorkerPool(1, store) as pool:
            router = Router(pool)
            router.submit(cascade, {"x": np.arange(8.0)}).result(timeout=60)
            pool.stats()  # refresh the cached payloads the scrape reads
            text = router.render_prometheus()
            assert "router_requests_total 1" in text
            assert 'worker_up{worker="w0"} 1' in text
            assert 'worker="w0"' in text


class TestDescribeByteCompat:
    """Satellite: single-process describe() must not change shape."""

    BASELINE_KEYS = ["cache", "backend_executions", "serving"]

    def test_plain_engine_gains_no_new_sections(self):
        engine = Engine()
        engine.run(softmax_cascade(), {"x": np.arange(8.0)})
        info = engine.stats.describe()
        assert list(info.keys()) == self.BASELINE_KEYS
        json.dumps(info)  # still plain-JSON serializable

    def test_new_sections_append_after_existing_keys(self, tmp_path):
        engine = Engine(plan_store=PlanStore(tmp_path))
        engine.run(softmax_cascade(), {"x": np.arange(8.0)})
        keys = list(engine.stats.describe().keys())
        assert keys[: len(self.BASELINE_KEYS)] == self.BASELINE_KEYS
        assert keys[-1] == "plan_store"

    def test_empty_rollup_adds_nothing(self):
        engine = Engine()
        engine.run(softmax_cascade(), {"x": np.arange(8.0)})
        engine.attach_worker_rollup(dict)  # provider returning {}
        assert "workers" not in engine.stats.describe()

    def test_rollup_section_is_appended_last(self, tmp_path):
        engine = Engine(plan_store=PlanStore(tmp_path))
        engine.run(softmax_cascade(), {"x": np.arange(8.0)})
        engine.attach_worker_rollup(lambda: {"w0": {"alive": True}})
        keys = list(engine.stats.describe().keys())
        assert keys[-2:] == ["plan_store", "workers"]


class TestRouterDifferential:
    """Acceptance: router path is bitwise-identical to in-process serving."""

    @pytest.mark.parametrize("mode", ["auto", "sharded"])
    def test_ragged_sla_traffic_matches_in_process(self, mode, tmp_path):
        rng = np.random.default_rng(37)
        requests = request_mix(
            18, rng, kinds=SERVING_KINDS, length=(17, 48, 96), width=8
        )
        tenants = ("acme", "globex", "initech")
        sla = [
            {
                "tenant": tenants[i % 3],
                "priority": ("interactive", "standard", "batch")[i % 3],
                "deadline_s": 60.0,
            }
            for i in range(len(requests))
        ]

        engine = Engine(plan_store=PlanStore(tmp_path))
        serving = engine.serving(ServingConfig(max_queue_depth=256))
        futures = [
            serving.submit(c, inp, mode, **kw)
            for (_, c, inp), kw in zip(requests, sla)
        ]
        baseline = [f.result(timeout=60) for f in futures]
        engine.close()

        with WorkerPool(2, PlanStore(tmp_path)) as pool:
            router = Router(pool, imbalance=4)
            routed = [
                router.submit(c, inp, mode, **kw)
                for (_, c, inp), kw in zip(requests, sla)
            ]
            for future, reference in zip(routed, baseline):
                assert_outputs_equal(future.result(timeout=120), reference)
            assert pool.fusion_compiles() == 0
