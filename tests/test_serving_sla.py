"""SLA scheduling tests: priorities, quotas, deadlines, drain, shedding.

Covers the multi-tenant scheduler semantics end to end — priority-class
ordering, per-tenant quota enforcement, policy-driven victim eviction,
deadline-bounded batch windows — plus the accounting fixes that came
with them: ``drain()`` waiting out in-flight work, the queue-depth
gauge refreshing on shed, float bucket edges being rejected instead of
silently truncated, and cancelled futures counting exactly once.  The
load-bearing invariant, asserted after every drain here::

    submitted == completed + failed + cancelled + evicted
"""

import threading
import time

import numpy as np
import pytest

from repro.core import Cascade, Reduction, run_unfused
from repro.engine import (
    PRIORITY_CLASSES,
    Engine,
    QueueFullError,
    ServingConfig,
    TenantQuotaError,
    get_backend,
    priority_index,
)
from repro.harness.traffic import (
    TenantProfile,
    adversarial_stream,
    bursty_arrivals,
    poisson_arrivals,
    replay,
    tenant_stream,
)
from repro.symbolic import const, exp, var
from repro.workloads.serving_mix import draw_deadline


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax_sla",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


def assert_invariant(stats) -> None:
    snap = stats.snapshot()
    accounted = (
        snap["completed"] + snap["failed"] + snap["cancelled"] + snap["evicted"]
    )
    assert snap["submitted"] == accounted, snap


class _GatedBackend:
    """Context manager stalling fused_tree execution on an event.

    Patching the backend's single-query path lets a test park the
    scheduler thread inside a dispatch deterministically — requests
    submitted meanwhile stay queued until ``release()``.
    """

    def __init__(self):
        self.gate = threading.Event()
        self.entered = threading.Event()

    def __enter__(self):
        backend_type = type(get_backend("fused_tree"))
        self._type = backend_type
        self._original = backend_type.execute
        gate, entered = self.gate, self.entered

        def gated(backend_self, plan, inputs, **params):
            entered.set()
            assert gate.wait(timeout=30), "test never released the gate"
            return self._original(backend_self, plan, inputs, **params)

        backend_type.execute = gated
        return self

    def release(self) -> None:
        self.gate.set()

    def __exit__(self, *exc):
        self._type.execute = self._original


class TestDrainSemantics:
    def test_drain_waits_for_request_in_batching_window(self):
        """drain() must cover a request held open in _await_window."""
        engine = Engine()
        cascade = softmax_cascade(3.1)
        serving = engine.serving(
            ServingConfig(max_batch=8, batch_window_s=0.25)
        )
        future = serving.submit(cascade, {"x": np.arange(8.0)})
        time.sleep(0.05)  # scheduler picked it up: queue empty, in window
        serving.drain()
        # pre-fix, drain returned as soon as the deque emptied while the
        # request was still forming its batch
        assert future.done()
        assert serving._inflight == 0
        assert_invariant(serving.stats)
        engine.close()

    def test_drain_waits_for_executing_dispatch(self):
        engine = Engine()
        cascade = softmax_cascade(3.2)
        serving = engine.serving(
            ServingConfig(max_batch=1, batch_window_s=0.0)
        )
        with _GatedBackend() as gated:
            future = serving.submit(cascade, {"x": np.arange(8.0)})
            assert gated.entered.wait(timeout=10)

            def release_later():
                time.sleep(0.05)
                gated.release()

            releaser = threading.Thread(target=release_later)
            releaser.start()
            serving.drain()  # must block across the executing dispatch
            releaser.join()
        assert future.done()
        np.testing.assert_allclose(
            future.result()["t"],
            run_unfused(softmax_cascade(3.2), {"x": np.arange(8.0)})["t"],
        )
        assert_invariant(serving.stats)
        engine.close()


class TestShedAccounting:
    def test_shed_refreshes_queue_depth_gauge(self):
        engine = Engine()
        cascade = softmax_cascade(3.3)
        serving = engine.serving(
            ServingConfig(max_queue_depth=2, max_batch=1, batch_window_s=0.0)
        )
        with _GatedBackend() as gated:
            blocker = serving.submit(cascade, {"x": np.arange(8.0)})
            assert gated.entered.wait(timeout=10)
            queued = [
                serving.submit(cascade, {"x": np.arange(8.0)})
                for _ in range(2)
            ]
            # same class + bucket as everything queued: the incoming
            # request is not strictly better than any victim, so it sheds
            with pytest.raises(QueueFullError):
                serving.submit(cascade, {"x": np.arange(8.0)})
            # the gauge reflects the real depth (pre-fix it went stale)
            assert serving.stats.queue_depth == 2
            gated.release()
            serving.drain()
        for future in [blocker, *queued]:
            assert future.result()["t"].shape == (1,)
        snap = serving.stats.snapshot()
        engine.close()
        # a shed request was never submitted: rejected != submitted
        assert snap["submitted"] == 3
        assert snap["shed"] == 1
        assert snap["evicted"] == 0
        assert snap["queue_depth"] == 0
        assert_invariant(serving.stats)


class TestBucketEdgeValidation:
    def test_float_edges_rejected_not_truncated(self):
        # (2.5, 7.9) used to silently truncate to (2, 7)
        with pytest.raises(ValueError, match="integral"):
            ServingConfig(bucket=(2.5, 7.9))

    def test_integral_float_edges_accepted_as_ints(self):
        config = ServingConfig(bucket=(2.0, 8.0))
        assert config.bucket == (2, 8)
        assert all(isinstance(edge, int) for edge in config.bucket)
        assert config.bucket_for(3) == 8

    def test_non_numeric_edges_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            ServingConfig(bucket=(4, "eight"))


class TestCancellationRace:
    def test_cancel_queued_future_while_group_forms(self):
        """Cancelling a request inside a forming batch must not leak.

        The scheduler thread survives, siblings in the same micro-batch
        resolve, and the cancelled request is counted exactly once.
        """
        engine = Engine()
        cascade = softmax_cascade(3.4)
        serving = engine.serving(
            ServingConfig(max_batch=8, batch_window_s=0.3)
        )
        first = serving.submit(cascade, {"x": np.arange(8.0)})
        time.sleep(0.05)  # first is now holding the window open
        victim = serving.submit(cascade, {"x": np.arange(8.0)})
        sibling = serving.submit(cascade, {"x": np.arange(8.0)})
        assert victim.cancel()  # still PENDING: queued or in the group
        serving.drain()
        ref = run_unfused(softmax_cascade(3.4), {"x": np.arange(8.0)})
        np.testing.assert_allclose(first.result()["t"], ref["t"])
        np.testing.assert_allclose(sibling.result()["t"], ref["t"])
        assert victim.cancelled()
        # scheduler thread survived the cancelled sibling
        again = serving.submit(cascade, {"x": np.arange(8.0)})
        np.testing.assert_allclose(again.result(timeout=10)["t"], ref["t"])
        snap = serving.stats.snapshot()
        engine.close()
        assert snap["cancelled"] == 1  # exactly once
        assert snap["submitted"] == 4
        assert snap["completed"] == 3
        assert_invariant(serving.stats)


class TestPriorityScheduling:
    def test_higher_class_served_first(self):
        """An interactive request overtakes earlier-queued batch work."""
        engine = Engine()
        cascade = softmax_cascade(3.5)
        serving = engine.serving(
            ServingConfig(max_batch=1, batch_window_s=0.0)
        )
        order = []
        with _GatedBackend() as gated:
            blocker = serving.submit(cascade, {"x": np.arange(8.0)})
            assert gated.entered.wait(timeout=10)
            low = serving.submit(
                cascade, {"x": np.arange(32.0)}, priority="batch"
            )
            high = serving.submit(
                cascade, {"x": np.arange(64.0)}, priority="interactive"
            )
            low.add_done_callback(lambda f: order.append("batch"))
            high.add_done_callback(lambda f: order.append("interactive"))
            gated.release()
            serving.drain()
        blocker.result()
        engine.close()
        assert order == ["interactive", "batch"]
        assert_invariant(serving.stats)

    def test_same_key_lower_priority_rides_along(self):
        """A batch-class request with the same key joins the micro-batch."""
        engine = Engine()
        cascade = softmax_cascade(3.6)
        serving = engine.serving(
            ServingConfig(max_batch=8, batch_window_s=0.0)
        )
        with _GatedBackend() as gated:
            blocker = serving.submit(cascade, {"x": np.arange(8.0)})
            assert gated.entered.wait(timeout=10)
            high = serving.submit(
                cascade, {"x": np.arange(16.0)}, priority="interactive"
            )
            low = serving.submit(
                cascade, {"x": np.arange(16.0)}, priority="batch"
            )
            gated.release()
            serving.drain()
        blocker.result(), high.result(), low.result()
        snap = serving.stats.snapshot()
        engine.close()
        assert snap["max_batch_size"] >= 2  # they shared one dispatch
        assert_invariant(serving.stats)

    def test_priority_index_validation(self):
        assert priority_index("interactive") == 0
        assert priority_index("batch") == len(PRIORITY_CLASSES) - 1
        assert priority_index(1) == 1
        with pytest.raises(ValueError, match="unknown priority"):
            priority_index("urgent")
        with pytest.raises(ValueError, match="out of range"):
            priority_index(97)
        with pytest.raises(ValueError, match="class name or index"):
            priority_index(object())

    def test_config_validation(self):
        with pytest.raises(ValueError, match="unknown priority"):
            ServingConfig(default_priority="zzz")
        with pytest.raises(ValueError, match="tenant_quota"):
            ServingConfig(tenant_quota=0)

    def test_submit_rejects_unknown_priority(self):
        engine = Engine()
        with pytest.raises(ValueError, match="unknown priority"):
            engine.scheduler.submit(
                softmax_cascade(3.7), {"x": np.arange(4.0)}, priority="vip"
            )
        with pytest.raises(ValueError, match="deadline_s"):
            engine.scheduler.submit(
                softmax_cascade(3.7), {"x": np.arange(4.0)}, deadline_s=0.0
            )


class TestTenantQuota:
    def test_quota_sheds_only_the_offending_tenant(self):
        engine = Engine()
        cascade = softmax_cascade(3.8)
        serving = engine.serving(
            ServingConfig(max_batch=1, batch_window_s=0.0, tenant_quota=2)
        )
        with _GatedBackend() as gated:
            blocker = serving.submit(cascade, {"x": np.arange(8.0)})
            assert gated.entered.wait(timeout=10)
            hog = [
                serving.submit(cascade, {"x": np.arange(8.0)}, tenant="hog")
                for _ in range(2)
            ]
            with pytest.raises(TenantQuotaError):
                serving.submit(cascade, {"x": np.arange(8.0)}, tenant="hog")
            # another tenant is unaffected by the hog's quota
            other = serving.submit(cascade, {"x": np.arange(8.0)}, tenant="web")
            gated.release()
            serving.drain()
        for future in [blocker, *hog, other]:
            assert future.result()["t"].shape == (1,)
        by_tenant = serving.stats.by_tenant()
        engine.close()
        assert by_tenant["hog"]["shed"] == 1
        assert by_tenant["hog"]["completed"] == 2
        assert by_tenant["web"]["shed"] == 0
        assert by_tenant["web"]["completed"] == 1
        assert_invariant(serving.stats)


class TestVictimEviction:
    def test_interactive_displaces_worst_batch_victim(self):
        """Full queue: the lowest-class, longest-bucket request is shed."""
        engine = Engine()
        cascade = softmax_cascade(3.9)
        serving = engine.serving(
            ServingConfig(max_queue_depth=2, max_batch=1, batch_window_s=0.0)
        )
        with _GatedBackend() as gated:
            blocker = serving.submit(cascade, {"x": np.arange(8.0)})
            assert gated.entered.wait(timeout=10)
            short_batch = serving.submit(
                cascade, {"x": np.arange(8.0)}, priority="batch"
            )
            long_batch = serving.submit(
                cascade, {"x": np.arange(64.0)}, priority="batch"
            )
            # queue is full; an interactive arrival displaces the batch
            # request with the longest length bucket, not the newest
            interactive = serving.submit(
                cascade, {"x": np.arange(8.0)}, priority="interactive"
            )
            with pytest.raises(QueueFullError):
                long_batch.result(timeout=10)
            gated.release()
            serving.drain()
        blocker.result(), short_batch.result(), interactive.result()
        snap = serving.stats.snapshot()
        shed_by_class = serving.stats.shed_by_class()
        engine.close()
        assert snap["evicted"] == 1
        assert snap["shed"] == 1
        assert shed_by_class.get("batch") == 1
        assert shed_by_class.get("interactive", 0) == 0
        # the victim *was* submitted, so eviction keeps the invariant
        assert snap["submitted"] == 4
        assert_invariant(serving.stats)

    def test_incoming_sheds_when_nothing_queued_is_worse(self):
        engine = Engine()
        cascade = softmax_cascade(4.0)
        serving = engine.serving(
            ServingConfig(max_queue_depth=2, max_batch=1, batch_window_s=0.0)
        )
        with _GatedBackend() as gated:
            blocker = serving.submit(
                cascade, {"x": np.arange(8.0)}, priority="interactive"
            )
            assert gated.entered.wait(timeout=10)
            queued = [
                serving.submit(
                    cascade, {"x": np.arange(8.0)}, priority="interactive"
                )
                for _ in range(2)
            ]
            with pytest.raises(QueueFullError):
                serving.submit(
                    cascade, {"x": np.arange(64.0)}, priority="batch"
                )
            gated.release()
            serving.drain()
        for future in [blocker, *queued]:
            future.result()
        snap = serving.stats.snapshot()
        engine.close()
        assert snap["evicted"] == 0  # nothing admitted was displaced
        assert snap["shed"] == 1
        assert serving.stats.shed_by_class().get("batch") == 1
        assert_invariant(serving.stats)


class TestDeadlines:
    def test_deadline_bounds_the_batching_window(self):
        """A near-deadline request is not held for batch fill."""
        engine = Engine()
        cascade = softmax_cascade(4.1)
        serving = engine.serving(
            ServingConfig(max_batch=64, batch_window_s=0.5)
        )
        start = time.monotonic()
        future = serving.submit(
            cascade, {"x": np.arange(8.0)}, deadline_s=0.05
        )
        future.result(timeout=10)
        elapsed = time.monotonic() - start
        engine.close()
        # a lone request normally waits out the whole 0.5s window; the
        # deadline cuts the window to ~0.05s
        assert elapsed < 0.3, f"window ignored the deadline ({elapsed:.3f}s)"

    def test_deadline_miss_counted(self):
        engine = Engine()
        cascade = softmax_cascade(4.2)
        serving = engine.serving(
            ServingConfig(max_batch=1, batch_window_s=0.0)
        )
        with _GatedBackend() as gated:
            future = serving.submit(
                cascade, {"x": np.arange(8.0)}, deadline_s=0.01
            )
            assert gated.entered.wait(timeout=10)
            time.sleep(0.05)  # blow well past the deadline mid-dispatch
            gated.release()
            serving.drain()
        future.result()
        snap = serving.stats.snapshot()
        engine.close()
        assert snap["deadline_misses"] == 1
        assert snap["completed"] == 1  # a miss still completes


class TestPerClassStats:
    def test_by_class_by_tenant_and_prometheus(self):
        engine = Engine()
        cascade = softmax_cascade(4.3)
        scheduler = engine.scheduler  # inline: deterministic accounting
        scheduler.run(
            cascade, {"x": np.arange(8.0)},
            tenant="web", priority="interactive",
        )
        scheduler.run(
            cascade, {"x": np.arange(8.0)}, tenant="jobs", priority="batch"
        )
        scheduler.run(cascade, {"x": np.arange(8.0)})  # defaults
        by_class = scheduler.stats.by_class()
        by_tenant = scheduler.stats.by_tenant()
        assert by_class["interactive"]["completed"] == 1
        assert by_class["batch"]["completed"] == 1
        assert by_class["standard"]["completed"] == 1
        assert by_class["interactive"]["p99_latency_s"] > 0
        # classes report best-first
        assert list(by_class) == ["interactive", "standard", "batch"]
        assert by_tenant["web"]["submitted"] == 1
        assert by_tenant["jobs"]["submitted"] == 1
        assert by_tenant["default"]["submitted"] == 1
        scrape = engine.render_prometheus()
        assert 'serving_class_requests_submitted_total{priority="interactive"} 1' in scrape
        assert 'serving_tenant_requests_submitted_total{tenant="jobs"} 1' in scrape
        engine.close()


class TestTrafficHelpers:
    def test_bursty_arrivals_cluster_at_fixed_mean_rate(self):
        rng = np.random.default_rng(7)
        times = bursty_arrivals(rng, 1000.0, 400, burst_factor=8.0)
        assert times.shape == (400,)
        assert np.all(np.diff(times) > 0)
        mean_rate = 400 / times[-1]
        assert 300.0 < mean_rate < 3000.0  # near-nominal mean load
        # burstiness: inter-arrival gaps are far more dispersed than the
        # Poisson process at the same mean rate
        bursty_cv = np.std(np.diff(times)) / np.mean(np.diff(times))
        poisson = poisson_arrivals(np.random.default_rng(7), 1000.0, 400)
        poisson_cv = np.std(np.diff(poisson)) / np.mean(np.diff(poisson))
        assert bursty_cv > 1.5 * poisson_cv

    def test_bursty_arrivals_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="burst_factor"):
            bursty_arrivals(rng, 10.0, 5, burst_factor=0.5)
        with pytest.raises(ValueError, match="duty"):
            bursty_arrivals(rng, 10.0, 5, duty=1.5)
        with pytest.raises(ValueError, match="rate_rps"):
            bursty_arrivals(rng, -1.0, 5)

    def test_draw_deadline_modes(self):
        rng = np.random.default_rng(0)
        assert draw_deadline(rng, None) is None
        assert draw_deadline(rng, 0.25) == 0.25
        assert draw_deadline(rng, (0.05, 0.1)) in (0.05, 0.1)
        with pytest.raises(ValueError, match="non-empty"):
            draw_deadline(rng, ())
        with pytest.raises(ValueError, match="> 0"):
            draw_deadline(rng, -1.0)

    def test_tenant_stream_carries_profile_attribution(self):
        rng = np.random.default_rng(5)
        profile = TenantProfile(
            tenant="web", rate_rps=100.0, count=8, priority="interactive",
            kinds=("mha",), length=64, width=8, deadline_s=(0.05, 0.1),
        )
        stream = tenant_stream(rng, profile)
        assert len(stream) == 8
        for request in stream:
            assert request.tenant == "web"
            assert request.priority == "interactive"
            assert request.deadline_s in (0.05, 0.1)

    def test_adversarial_stream_merges_in_arrival_order(self):
        rng = np.random.default_rng(6)
        profiles = [
            TenantProfile(
                tenant="a", rate_rps=200.0, count=6, kinds=("mha",),
                length=32, width=8,
            ),
            TenantProfile(
                tenant="b", rate_rps=300.0, count=6, kinds=("mha",),
                length=32, width=8, priority="batch", burst_factor=4.0,
            ),
        ]
        stream = adversarial_stream(rng, profiles)
        assert len(stream) == 12
        arrivals = [request.arrival_s for request in stream]
        assert arrivals == sorted(arrivals)
        assert {request.tenant for request in stream} == {"a", "b"}
        with pytest.raises(ValueError, match="tenant profile"):
            adversarial_stream(rng, [])

    def test_replay_reports_tenant_and_class_breakdowns(self):
        rng = np.random.default_rng(8)
        profiles = [
            TenantProfile(
                tenant="web", rate_rps=300.0, count=10,
                priority="interactive", kinds=("mha",), length=64, width=8,
                deadline_s=0.5,
            ),
            TenantProfile(
                tenant="jobs", rate_rps=300.0, count=10, priority="batch",
                kinds=("mha",), length=64, width=8,
            ),
        ]
        stream = adversarial_stream(rng, profiles)
        engine = Engine()
        with engine.serving(
            ServingConfig(max_batch=8, batch_window_s=0.002)
        ) as serving:
            report = replay(serving, stream)
        engine.close()
        assert report.completed == 20
        assert report.completed_by_tenant == {"web": 10, "jobs": 10}
        assert report.tenant_latency_percentile("web", 99.0) > 0
        snapshot = report.snapshot()
        assert set(snapshot["by_tenant"]) == {"web", "jobs"}
        assert snapshot["deadline_misses"] == report.deadline_misses
