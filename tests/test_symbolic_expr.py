"""Unit tests for the symbolic expression trees."""

import numpy as np
import pytest

from repro.symbolic import (
    Binary,
    Const,
    Unary,
    absv,
    as_expr,
    const,
    count_nodes,
    exp,
    log,
    make_evaluator,
    neg,
    recip,
    sgn,
    sqrt,
    var,
    variables,
    vmax,
    vmin,
)


class TestConstruction:
    def test_const_holds_float(self):
        assert const(3).value == 3.0
        assert isinstance(const(3).value, float)

    def test_var_name(self):
        assert var("x").name == "x"

    def test_variables_helper(self):
        x, y, z = variables("x", "y", "z")
        assert (x.name, y.name, z.name) == ("x", "y", "z")

    def test_operator_overloads_build_nodes(self):
        x, y = variables("x", "y")
        assert (x + y).op == "add"
        assert (x - y).op == "sub"
        assert (x * y).op == "mul"
        assert (x / y).op == "div"
        assert (x ** y).op == "pow"
        assert (-x).op == "neg"

    def test_reflected_operators_coerce_numbers(self):
        x = var("x")
        e = 2 + x
        assert isinstance(e.lhs, Const) and e.lhs.value == 2.0
        e = 3 / x
        assert e.op == "div" and e.lhs.value == 3.0

    def test_as_expr_rejects_junk(self):
        with pytest.raises(TypeError):
            as_expr("not an expression")

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            Unary("sin", var("x"))
        with pytest.raises(ValueError):
            Binary("mod", var("x"), var("y"))


class TestEvaluate:
    def test_scalar_arithmetic(self):
        x, y = variables("x", "y")
        e = (x + 2) * y - x / y
        assert e.evaluate({"x": 4.0, "y": 2.0}) == pytest.approx((4 + 2) * 2 - 2)

    def test_unary_functions(self):
        x = var("x")
        env = {"x": 0.25}
        assert exp(x).evaluate(env) == pytest.approx(np.exp(0.25))
        assert log(x).evaluate(env) == pytest.approx(np.log(0.25))
        assert sqrt(x).evaluate(env) == pytest.approx(0.5)
        assert absv(neg(x)).evaluate(env) == pytest.approx(0.25)
        assert sgn(neg(x)).evaluate(env) == -1.0

    def test_max_min(self):
        x, y = variables("x", "y")
        env = {"x": 1.0, "y": -2.0}
        assert vmax(x, y).evaluate(env) == 1.0
        assert vmin(x, y).evaluate(env) == -2.0

    def test_array_broadcasting(self):
        x, y = variables("x", "y")
        env = {"x": np.array([[1.0], [2.0]]), "y": np.array([10.0, 20.0])}
        result = (x * y).evaluate(env)
        np.testing.assert_allclose(result, [[10, 20], [20, 40]])

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_recip(self):
        assert recip(var("x")).evaluate({"x": 4.0}) == 0.25


class TestStructure:
    def test_free_vars(self):
        x, y = variables("x", "y")
        assert (exp(x - y) / x).free_vars() == {"x", "y"}
        assert const(1).free_vars() == frozenset()

    def test_substitute_with_expression(self):
        x, y = variables("x", "y")
        e = (x + y).substitute({"x": y * 2})
        assert e.evaluate({"y": 3.0}) == pytest.approx(9.0)

    def test_substitute_with_number(self):
        e = var("x").substitute({"x": 5})
        assert isinstance(e, Const) and e.value == 5.0

    def test_nodes_hashable_and_equal(self):
        a = exp(var("x") - var("m"))
        b = exp(var("x") - var("m"))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_count_nodes(self):
        x = var("x")
        assert count_nodes(x) == 1
        assert count_nodes(x + 1) == 3

    def test_children(self):
        x, y = variables("x", "y")
        assert (x + y).children() == (x, y)
        assert exp(x).children() == (x,)
        assert x.children() == ()


class TestMakeEvaluator:
    def test_matches_evaluate(self):
        x, m, t = variables("x", "m", "t")
        e = exp(x - m) / t + vmax(x, m)
        f = make_evaluator(e)
        env = {"x": 1.2, "m": 0.3, "t": 2.0}
        assert f(env) == pytest.approx(e.evaluate(env))

    def test_works_on_arrays(self):
        x = var("x")
        f = make_evaluator(exp(x) * 2)
        data = np.linspace(-1, 1, 7)
        np.testing.assert_allclose(f({"x": data}), 2 * np.exp(data))

    def test_constant(self):
        assert make_evaluator(const(7))({}) == 7.0


class TestRepr:
    def test_infix_repr(self):
        x, y = variables("x", "y")
        assert repr(x + y) == "(x + y)"
        assert repr(exp(x)) == "exp(x)"
        assert repr(-x) == "(-x)"
        assert repr(const(2) ** x) == "(2 ** x)"

    def test_const_repr_integral(self):
        assert repr(const(2)) == "2"
        assert repr(const(2.5)) == "2.5"
