"""Unit tests for the baseline compiler models and the harness."""

import numpy as np
import pytest

from repro.baselines import compile_eager, compile_inductor, compile_tvm
from repro.gpusim import A10, H800, program_latency
from repro.harness import (
    fig7_access_counts,
    geomean,
    redfuser_program,
    relative_summary,
    run_workload,
    scale_program,
    series_table,
    speedup_table,
)
from repro.workloads import attention, moe, quant_gemm
from repro.workloads.configs import MHA_CONFIGS, MOE_CONFIGS, QUANT_GEMM_CONFIGS


@pytest.fixture(scope="module")
def mha_graph():
    return attention.op_graph(MHA_CONFIGS[0])


class TestBaselineCompilers:
    def test_eager_one_kernel_per_op(self, mha_graph):
        program = compile_eager(mha_graph)
        assert program.num_kernels == len(mha_graph.ops)

    def test_inductor_fuses_pointwise_chains(self, mha_graph):
        program = compile_inductor(mha_graph)
        # gemm | max | sub_exp+row_sum | normalize | gemm  ->  5 kernels
        assert program.num_kernels < len(mha_graph.ops)
        names = [k.name for k in program.kernels]
        assert any("+" in n for n in names)

    def test_inductor_moves_less_memory_than_eager(self, mha_graph):
        eager = compile_eager(mha_graph)
        inductor = compile_inductor(mha_graph)
        assert inductor.total_bytes < eager.total_bytes

    def test_tvm_has_no_tensor_cores(self, mha_graph):
        program = compile_tvm(mha_graph)
        assert all(not k.tensor_cores for k in program.kernels)

    def test_tvm_gemm_dominates_on_tensor_gpus(self, mha_graph):
        eager = program_latency(A10, compile_eager(mha_graph))
        tvm = program_latency(A10, compile_tvm(mha_graph))
        assert tvm > 0.8 * eager  # FP32 gemms keep TVM near/behind eager

    def test_inductor_fp8_falls_back_to_fp16(self):
        graph = quant_gemm.op_graph(QUANT_GEMM_CONFIGS[0])
        inductor = compile_inductor(graph)
        gemms = [k for k in inductor.kernels if k.tensor_cores]
        assert gemms and all(k.dtype == "fp16" for k in gemms)
        eager = compile_eager(graph)
        assert any(k.dtype == "fp8" for k in eager.kernels)


class TestHarness:
    def test_scale_program(self):
        program = moe.redfuser_program(MOE_CONFIGS[0])
        scaled = scale_program(program, 4)
        assert scaled.kernels[0].grid == 4 * program.kernels[0].grid
        assert scaled.total_bytes == pytest.approx(4 * program.total_bytes)

    def test_run_workload_row_shape(self):
        row = run_workload("moe", MOE_CONFIGS[0], A10)
        assert row["eager_speedup"] == 1.0
        assert row["redfuser_speedup"] > 1.0
        assert {"dynamo_speedup", "tvm_speedup"} <= set(row)

    def test_mha_row_includes_flash_baseline(self):
        row = run_workload("mha", MHA_CONFIGS[3], A10)
        assert "FlashAttention2_speedup" in row

    def test_redfuser_program_kinds(self):
        for kind, config in (
            ("moe", MOE_CONFIGS[0]),
            ("quant_gemm", QUANT_GEMM_CONFIGS[0]),
        ):
            program = redfuser_program(kind, config, H800)
            assert program.num_kernels >= 1
        with pytest.raises(ValueError):
            redfuser_program("conv", MOE_CONFIGS[0], A10)

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert np.isnan(geomean([]))

    def test_relative_summary(self):
        rows = [
            {"a_speedup": 2.0, "b_speedup": 1.0},
            {"a_speedup": 8.0, "b_speedup": 2.0},
        ]
        assert relative_summary(rows, "a", "b") == pytest.approx(
            geomean([2.0, 4.0])
        )

    def test_speedup_table_renders(self):
        rows = [{"config": "X1", "a_speedup": 1.5, "b_speedup": None}]
        text = speedup_table(rows, "title")
        assert "title" in text and "X1" in text and "1.50" in text

    def test_series_table_renders(self):
        rows = fig7_access_counts(1024)
        text = series_table(rows, ["strategy", "dk_loads"], "fig7")
        assert "unfused" in text and "inter-block" in text
