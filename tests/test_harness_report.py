"""Dedicated unit tests for harness/report.py: rendering round-trips."""

import math

import pytest

from repro.harness import geomean
from repro.harness.report import relative_summary, series_table, speedup_table


def runner_rows():
    """Rows shaped exactly like harness.runner.run_workload output."""
    return [
        {
            "config": "H1",
            "gpu": "A10",
            "eager_speedup": 1.0,
            "redfuser_speedup": 2.50,
            "tvm_speedup": 1.25,
        },
        {
            "config": "H2",
            "gpu": "A10",
            "eager_speedup": 1.0,
            "redfuser_speedup": 3.10,
            "tvm_speedup": 0.80,
        },
        {
            "config": "H3",
            "gpu": "A10",
            "eager_speedup": 1.0,
            "redfuser_speedup": 1.75,
            # tvm missing for this config: cell must render blank
        },
    ]


def parse_speedup_table(text: str):
    """Invert speedup_table: title, header columns, per-config values."""
    lines = text.splitlines()
    title, header = lines[0], lines[1].split()
    systems = header[1:]
    body = {}
    for line in lines[2:]:
        cells = line.split()
        label = cells[0]
        body[label] = [float(c) for c in cells[1:]]
    return title, systems, body


class TestSpeedupTable:
    def test_round_trips_runner_rows(self):
        rows = runner_rows()
        title, systems, body = parse_speedup_table(
            speedup_table(rows, "Fig X: demo")
        )
        assert title == "Fig X: demo"
        assert systems == ["eager", "redfuser", "tvm"]  # sorted
        for row in rows:
            rendered = body[row["config"]]
            expected = [
                row[f"{s}_speedup"] for s in systems if f"{s}_speedup" in row
            ]
            assert rendered == pytest.approx(expected, abs=5e-3)

    def test_geomean_row_matches_geomean(self):
        rows = runner_rows()
        _, systems, body = parse_speedup_table(speedup_table(rows, "t"))
        expected = geomean([r["redfuser_speedup"] for r in rows])
        assert body["geomean"][systems.index("redfuser")] == pytest.approx(
            expected, abs=5e-3
        )

    def test_missing_cells_render_blank(self):
        text = speedup_table(runner_rows(), "t")
        h3_line = next(ln for ln in text.splitlines() if ln.lstrip().startswith("H3"))
        assert len(h3_line.split()) == 3  # config + eager + redfuser, no tvm


class TestRelativeSummary:
    def test_geomean_of_ratios(self):
        rows = runner_rows()
        expected = geomean(
            [
                r["redfuser_speedup"] / r["tvm_speedup"]
                for r in rows
                if "tvm_speedup" in r
            ]
        )
        assert relative_summary(rows, "redfuser", "tvm") == pytest.approx(expected)

    def test_rows_missing_either_system_are_skipped(self):
        rows = runner_rows()
        with_all = relative_summary(rows[:2], "redfuser", "tvm")
        with_partial = relative_summary(rows, "redfuser", "tvm")  # H3 skipped
        assert with_partial == pytest.approx(with_all)


class TestSeriesTable:
    def test_round_trips_mixed_value_types(self):
        rows = [
            {"n": 1024, "speedup": 1.5, "note": "ok"},
            {"n": 2048, "speedup": None, "note": "skipped"},
        ]
        text = series_table(rows, ("n", "speedup", "note"), "sweep")
        lines = text.splitlines()
        assert lines[0] == "sweep"
        assert lines[1].split() == ["n", "speedup", "note"]
        first, second = lines[2].split(), lines[3].split()
        assert first == ["1024", "1.500", "ok"]
        assert second == ["2048", "--", "skipped"]

    def test_floats_render_three_decimals(self):
        text = series_table([{"v": 2.0 / 3.0}], ("v",), "t")
        assert "0.667" in text


class TestGeomean:
    def test_matches_closed_form(self):
        values = [1.0, 2.0, 4.0]
        assert geomean(values) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))
