"""Unit tests for the analytical GPU model."""


import pytest

from repro.gpusim import (
    A10,
    A100,
    GPUS,
    H800,
    MI308X,
    KernelSpec,
    Program,
    ResourceError,
    breakdown,
    gpu,
    incremental_sweep,
    kernel_latency,
    level_sizes,
    memory_access_counts,
    occupancy,
    program_latency,
    softmax_fusion_level_latency,
    speedup,
    waves_per_sm,
)


def kernel(**kw):
    base = dict(
        name="k", grid=144, threads_per_cta=256, smem_bytes=32 * 1024,
        bytes_read=1e8, bytes_written=1e7, flops=1e9,
    )
    base.update(kw)
    return KernelSpec(**base)


class TestSpecs:
    def test_registry(self):
        assert gpu("A10") is A10
        assert set(GPUS) == {"A10", "A100", "H800", "MI308X"}
        with pytest.raises(KeyError):
            gpu("V100")

    def test_fp8_paths(self):
        assert H800.has_fp8 and MI308X.has_fp8
        assert not A10.has_fp8 and not A100.has_fp8
        assert H800.peak_flops("fp8", True) > H800.peak_flops("fp16", True)
        # no tensor cores -> CUDA-core FP32 regardless of dtype
        assert H800.peak_flops("fp8", False) == H800.fp32_flops


class TestOccupancy:
    def test_smem_limited(self):
        occ = occupancy(A10, kernel(smem_bytes=60 * 1024))
        assert occ.ctas_per_sm == 1 and occ.limited_by == "smem"

    def test_thread_limited(self):
        occ = occupancy(A10, kernel(smem_bytes=1024, threads_per_cta=512, regs_per_thread=32))
        assert occ.ctas_per_sm == 3 and occ.limited_by == "threads"

    def test_register_limited(self):
        occ = occupancy(A10, kernel(smem_bytes=1024, regs_per_thread=255))
        assert occ.limited_by == "regs"

    def test_infeasible_kernel(self):
        occ = occupancy(A10, kernel(smem_bytes=200 * 1024))
        assert not occ.feasible
        with pytest.raises(ResourceError):
            kernel_latency(A10, kernel(smem_bytes=200 * 1024))

    def test_waves(self):
        k = kernel(grid=A10.num_sms * 2, smem_bytes=60 * 1024)
        assert waves_per_sm(A10, k) == pytest.approx(2.0)


class TestLatency:
    def test_more_bytes_more_time(self):
        assert kernel_latency(A10, kernel(bytes_read=2e8)) > kernel_latency(
            A10, kernel(bytes_read=1e8)
        )

    def test_faster_gpu_wins(self):
        k = kernel()
        assert kernel_latency(H800, k) < kernel_latency(A10, k)

    def test_wave_quantization_penalty(self):
        """grid = sms + 1 costs a whole extra wave."""
        k_full = kernel(grid=72, smem_bytes=60 * 1024)
        k_spill = kernel(grid=73, smem_bytes=60 * 1024)
        # same total work, one extra wave
        ratio = kernel_latency(A10, k_spill) / kernel_latency(A10, k_full)
        assert ratio > 1.5

    def test_overlap_hides_smaller_term(self):
        hidden = kernel_latency(A10, kernel(overlap=1.0))
        exposed = kernel_latency(A10, kernel(overlap=0.0))
        assert hidden < exposed

    def test_launch_factor(self):
        slow = kernel_latency(A10, kernel(grid=1, bytes_read=1e3, flops=1e3, launch_factor=3.0))
        fast = kernel_latency(A10, kernel(grid=1, bytes_read=1e3, flops=1e3, launch_factor=1.0))
        assert slow - fast == pytest.approx(2 * A10.launch_overhead_s)

    def test_underutilized_bw_boost_capped(self):
        """A 1-CTA kernel gets at most ~3x its fair bandwidth share."""
        tiny = kernel(grid=1, smem_bytes=60 * 1024, flops=0.0, bytes_read=1e7)
        latency = kernel_latency(A10, tiny)
        fair_share = 1e7 / (A10.mem_bw * tiny.memory_efficiency / A10.num_sms)
        assert latency > fair_share / 3.5

    def test_program_is_sum(self):
        p = Program("p", [kernel(), kernel()])
        assert program_latency(A10, p) == pytest.approx(
            2 * kernel_latency(A10, kernel())
        )

    def test_speedup_and_breakdown(self):
        fast = Program("f", [kernel(bytes_read=5e7)])
        slow = Program("s", [kernel(), kernel()])
        assert speedup(A10, slow, fast) > 1.0
        rows = breakdown(A10, slow)
        assert len(rows) == 2 and all(r["latency"] > 0 for r in rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel(grid=0)
        with pytest.raises(ValueError):
            kernel(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            kernel(overlap=1.5)


class TestLevels:
    def test_level_sizes_ladder(self):
        sizes = level_sizes(4096)
        assert sizes == {0: 4096, 1: 1024, 2: 32, 3: 4, 4: 1}

    def test_access_counts_match_levels(self):
        assert memory_access_counts(4096, None) == 4096
        assert memory_access_counts(4096, 3) == 4
        with pytest.raises(ValueError):
            memory_access_counts(4096, 5)

    def test_fusion_level_ordering(self):
        results = {
            level: softmax_fusion_level_latency(A10, 4096, fusion_level=level)
            for level in (1, 2, 3, 4)
        }
        unfused = softmax_fusion_level_latency(A10, 4096)
        assert all(r.latency < unfused.latency for r in results.values())
        assert results[3].latency < results[2].latency < results[1].latency
        assert results[3].latency < results[4].latency < results[1].latency

    def test_inter_block_needs_two_kernels(self):
        assert softmax_fusion_level_latency(A10, 4096, fusion_level=4).kernels == 2
        assert softmax_fusion_level_latency(A10, 4096, fusion_level=3).kernels == 1

    def test_incremental_sweep_anchor(self):
        points = incremental_sweep(A10)
        feasible = [p for p in points if p.non_incremental_latency is not None]
        assert all(p.segment_len <= 112 for p in feasible)
        best = min(points, key=lambda p: p.incremental_latency)
        assert best.waves_per_sm == pytest.approx(3.0)
