"""Unit tests for randomized numeric equivalence."""

import pytest

from repro.symbolic import (
    EquivalenceUndecided,
    const,
    depends_on,
    exp,
    is_identically,
    log,
    numeric_equivalent,
    sample_env,
    var,
    variables,
)

import numpy as np


class TestNumericEquivalent:
    def test_true_identity(self):
        x, y = variables("x", "y")
        assert numeric_equivalent(exp(x + y), exp(x) * exp(y))

    def test_false_identity(self):
        x, y = variables("x", "y")
        assert not numeric_equivalent(x + y, x * y)

    def test_fixed_variables(self):
        x, m = variables("x", "m")
        # x * m == x only when m is pinned to 1
        assert numeric_equivalent(x * m, x, fixed={"m": 1.0})
        assert not numeric_equivalent(x * m, x)

    def test_domain_restricted_identity(self):
        # log(x^2)=2log(x) holds only for x>0; invalid samples are skipped
        x = var("x")
        assert numeric_equivalent(log(x * x), log(x) + log(x))

    def test_undecidable_raises(self):
        x = var("x")
        # log(-x^2 - 1) is nowhere defined: every sample is invalid.
        hopeless = log(const(0) - x * x - 1)
        with pytest.raises(EquivalenceUndecided):
            numeric_equivalent(hopeless, hopeless)

    def test_near_miss_detected(self):
        x = var("x")
        assert not numeric_equivalent(x, x * const(1.0 + 1e-3))


class TestIsIdentically:
    def test_zero(self):
        x = var("x")
        assert is_identically(x - x, 0.0)

    def test_one(self):
        x = var("x")
        assert is_identically(exp(x) / exp(x), 1.0)

    def test_not_constant(self):
        assert not is_identically(var("x"), 0.0)


class TestDependsOn:
    def test_syntactic_but_not_semantic(self):
        x, m = variables("x", "m")
        e = x + m - m
        assert "m" in e.free_vars()
        assert not depends_on(e, ["m"])

    def test_real_dependency(self):
        x, m = variables("x", "m")
        assert depends_on(exp(x - m), ["m"])

    def test_absent_variable(self):
        assert not depends_on(var("x"), ["m"])


class TestSampleEnv:
    def test_covers_requested_names(self):
        rng = np.random.default_rng(0)
        env = sample_env(["a", "b"], rng)
        assert set(env) == {"a", "b"}
        assert all(isinstance(v, float) for v in env.values())

    def test_respects_regime_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            env = sample_env(["v"], rng, regime=("uniform", 0.05, 4.0))
            assert 0.05 <= env["v"] <= 4.0
