"""Unit tests for the scalar (TensorIR-like) IR and its interpreter."""

import numpy as np
import pytest

from repro.ir import FunctionBuilder, load, loads_in, run_function
from repro.ir.examples import (
    unfused_attention,
    unfused_quant_gemm,
    unfused_softmax,
    unfused_variance,
)
from repro.ir.scalar import ForLoop, ReduceUpdate
from repro.symbolic import exp, var


class TestLoad:
    def test_evaluate_indexes_array(self):
        arr = np.arange(12.0).reshape(3, 4)
        ld = load("x", var("i"), var("j"))
        assert ld.evaluate({"x": arr, "i": 2, "j": 1}) == 9.0

    def test_free_vars_are_index_vars(self):
        assert load("x", var("i"), 0).free_vars() == {"i"}

    def test_substitute_replaces_whole_load(self):
        ld = load("m", var("r"))
        replaced = ld.substitute({"m": var("d")})
        assert replaced == var("d")

    def test_substitute_rewrites_indices(self):
        ld = load("x", var("i"))
        out = ld.substitute({"i": var("i") + 1})
        assert out.indices[0] == var("i") + 1

    def test_loads_in_collects_nested(self):
        e = exp(load("x", var("i")) - load("m", var("r"))) / load("t", var("r"))
        buffers = [ld.buffer for ld in loads_in(e)]
        assert buffers == ["x", "m", "t"]

    def test_repr(self):
        assert repr(load("x", var("i"), 0)) == "x[i, 0]"


class TestBuilder:
    def test_builds_nested_loops(self):
        fb = FunctionBuilder("f")
        fb.input_buffer("x", (4, 8))
        fb.buffer("m", (4,))
        with fb.loop("r", 4):
            with fb.loop("l", 8):
                fb.reduce("m", (var("r"),), "max", load("x", var("r"), var("l")))
        fn = fb.build()
        assert isinstance(fn.body[0], ForLoop)
        inner = fn.body[0].body[0]
        assert isinstance(inner, ForLoop) and inner.extent == 8
        assert isinstance(inner.body[0], ReduceUpdate)

    def test_loop_start_offset(self):
        fb = FunctionBuilder("f")
        fb.buffer("acc", (1,))
        with fb.loop("l", 5, start=2):
            fb.reduce("acc", (0,), "sum", 1.0)
        out = run_function(fb.build(), {})
        assert out["acc"][0] == 3.0  # iterations 2, 3, 4

    def test_buffer_roles(self):
        fn = unfused_softmax(2, 4)
        assert [b.name for b in fn.inputs] == ["x"]
        assert [b.name for b in fn.outputs] == ["y"]
        with pytest.raises(KeyError):
            fn.buffer("nope")

    def test_unknown_reduce_op_rejected(self):
        with pytest.raises(ValueError):
            ReduceUpdate("m", (var("r"),), "median", var("x"))


class TestInterpreter:
    def test_softmax_matches_numpy(self):
        fn = unfused_softmax(rows=3, length=16)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 16))
        out = run_function(fn, {"x": x})
        expected = np.exp(x - x.max(1, keepdims=True))
        expected /= expected.sum(1, keepdims=True)
        np.testing.assert_allclose(out["y"], expected)

    def test_attention_matches_numpy(self):
        fn = unfused_attention(4, 10, 6)
        rng = np.random.default_rng(1)
        q, k, v = (rng.normal(size=s) for s in ((4, 6), (10, 6), (10, 6)))
        out = run_function(fn, {"Q": q, "K": k, "V": v})
        p = q @ k.T
        s = np.exp(p - p.max(1, keepdims=True))
        s /= s.sum(1, keepdims=True)
        np.testing.assert_allclose(out["o"], s @ v)

    def test_quant_gemm_matches_numpy(self):
        fn = unfused_quant_gemm(3, 12, 4)
        rng = np.random.default_rng(2)
        a = rng.normal(size=(3, 12))
        w = rng.normal(size=(12, 4))
        out = run_function(fn, {"A": a, "W": w})
        expected = (448.0 * a / np.abs(a).max(1, keepdims=True)) @ w
        np.testing.assert_allclose(out["c"], expected)

    def test_variance_matches_numpy(self):
        fn = unfused_variance(2, 32)
        rng = np.random.default_rng(3)
        x = rng.normal(3, 2, size=(2, 32))
        out = run_function(fn, {"x": x})
        np.testing.assert_allclose(out["variance"], x.var(axis=1))

    def test_reduction_buffers_seeded_with_identity(self):
        fn = unfused_softmax(1, 4)
        out = run_function(fn, {"x": -np.ones((1, 4)) * 50})
        assert out["m"][0] == -50.0  # max identity was -inf, not 0

    def test_shape_mismatch_rejected(self):
        fn = unfused_softmax(2, 4)
        with pytest.raises(ValueError):
            run_function(fn, {"x": np.ones((3, 4))})
