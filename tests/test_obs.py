"""Observability tests: tracing, metrics registry, trace-summary CLI."""

import json
import threading

import numpy as np
import pytest

from repro.core import Cascade, Reduction
from repro.engine import Engine, ServingConfig
from repro.obs import (
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
    Sample,
    StreamingHistogram,
    Tracer,
    disable_tracing,
    enable_tracing,
)
from repro.obs import tracing
from repro.obs import trace as trace_cli
from repro.symbolic import const, exp, var


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


def softmax_cascade(scale: float = 1.0) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "softmax",
        ("x",),
        (
            Reduction("m", "max", x * const(scale)),
            Reduction("t", "sum", exp(x * const(scale) - m)),
        ),
    )


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_same_thread(self):
        tracer = Tracer()
        with tracer.span("outer", "a"):
            with tracer.span("inner", "b"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["b"].parent_id == spans["a"].span_id
        assert spans["a"].parent_id is None
        assert spans["a"].start_ns <= spans["b"].start_ns
        assert spans["b"].end_ns <= spans["a"].end_ns

    def test_ring_buffer_evicts_oldest_first(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span("k", f"s{i}"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert len(tracer) == 4

    def test_explicit_parent_for_cross_thread_spans(self):
        tracer = Tracer()
        handle = tracer.start_span("request", "root")
        recorded = []

        def worker():
            with tracer.span("shard", "w", parent_id=handle.span_id) as span:
                recorded.append(span)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.end_span(handle, ok=True)
        spans = {s.name: s for s in tracer.spans()}
        assert spans["w"].parent_id == spans["root"].span_id
        assert spans["root"].attrs["ok"] is True
        assert spans["w"].tid != spans["root"].tid

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("k", "boom"):
                raise RuntimeError("nope")
        (span,) = tracer.spans()
        assert "error" in span.attrs

    def test_chrome_export_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("plan", "compile", hit=False):
            pass
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        (event,) = events
        assert event["cat"] == "plan"
        assert event["name"] == "compile"
        assert event["dur"] >= 0
        assert event["args"]["hit"] is False
        assert any(e["ph"] == "M" for e in doc["traceEvents"])


class TestDisabledMode:
    def test_disabled_span_is_noop_singleton(self):
        first = tracing.span("k", "a")
        second = tracing.span("k", "b")
        assert first is second
        with first as span:
            span.set(anything="goes")  # must not raise
        assert span.span_id is None

    def test_disabled_start_span_returns_none(self):
        assert tracing.start_span("k", "a") is None
        tracing.end_span(None, ok=True)  # must not raise
        assert tracing.current_span_id() is None
        assert tracing.active() is None

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing(capacity=16)
        assert tracing.active() is tracer
        with tracing.span("k", "while-on"):
            pass
        returned = disable_tracing()
        assert returned is tracer
        with tracing.span("k", "while-off"):
            pass
        assert [s.name for s in tracer.spans()] == ["while-on"]

    def test_inflight_handle_survives_disable(self):
        tracer = enable_tracing()
        handle = tracing.start_span("request", "late")
        disable_tracing()
        tracing.end_span(handle, ok=True)
        (span,) = tracer.spans()
        assert span.name == "late" and span.attrs["ok"] is True


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("jobs_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2
        g.set_max(10)
        g.set_max(4)
        assert g.value == 10

    def test_registry_idempotent_declare(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total")
        b = reg.counter("hits_total")
        assert a is b
        with pytest.raises(MetricError):
            reg.gauge("hits_total")

    def test_labeled_family(self):
        reg = MetricsRegistry()
        fam = reg.counter("exec_total", labelnames=("backend",))
        fam.labels(backend="tile_ir").inc(2)
        fam.labels(backend="sharded").inc()
        assert reg.value("exec_total", backend="tile_ir") == 2
        assert reg.value("exec_total", backend="sharded") == 1

    def test_collector_samples_render(self):
        reg = MetricsRegistry()
        reg.register_collector(
            lambda: [Sample("cache_hits_total", 7, kind="counter")]
        )
        text = reg.render_prometheus()
        assert "cache_hits_total 7" in text
        assert "# TYPE cache_hits_total counter" in text

    def test_histogram_quantiles_match_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=-4.0, sigma=1.5, size=20_000)
        hist = StreamingHistogram("latency_seconds")
        for v in values:
            hist.observe(float(v))
        for q in (50.0, 90.0, 99.0, 99.9):
            # inverted_cdf is the histogram's rank convention
            # (smallest value with cumulative count >= ceil(q/100 * n))
            exact = float(np.percentile(values, q, method="inverted_cdf"))
            approx = hist.percentile(q)
            # log-bucketed with growth 2**(1/16) => ~4.4% relative error
            assert approx == pytest.approx(exact, rel=0.06)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(float(values.sum()), rel=1e-9)
        assert hist.percentile(0.0) == pytest.approx(float(values.min()), rel=0.05)
        assert hist.percentile(100.0) == pytest.approx(float(values.max()), rel=0.05)

    def test_histogram_zero_and_empty(self):
        hist = StreamingHistogram("h")
        assert np.isnan(hist.percentile(50.0))
        hist.observe(0.0)
        assert hist.percentile(50.0) == 0.0


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_single_request_trace_has_required_kinds(self, tmp_path):
        tracer = enable_tracing()
        engine = Engine()
        serving = engine.serving(ServingConfig(max_batch=4))
        try:
            inputs = {"x": np.linspace(0.0, 1.0, 32)}
            result = serving.submit(softmax_cascade(), inputs, "tile_ir").result(
                timeout=60
            )
            assert "t" in result
        finally:
            serving.close()
        kinds = {s.kind for s in tracer.spans()}
        # acceptance: >= 6 distinct span kinds through the serving path
        assert {"request", "queue", "batch_form", "plan", "execute", "merge"} <= kinds
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        doc = json.loads(path.read_text())
        assert any(e.get("cat") == "execute" for e in doc["traceEvents"])

    def test_concurrent_submissions_record_consistent_spans(self):
        tracer = enable_tracing()
        engine = Engine()
        serving = engine.serving(ServingConfig(max_batch=8))
        cascade = softmax_cascade()
        errors = []

        def client(seed: int):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(3):
                    fut = serving.submit(cascade, {"x": rng.normal(size=24)})
                    fut.result(timeout=60)
            except Exception as err:  # pragma: no cover
                errors.append(err)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            serving.close()
        assert not errors
        spans = tracer.spans()
        roots = [s for s in spans if s.kind == "request"]
        assert len(roots) == 12
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            assert span.end_ns >= span.start_ns
            if span.parent_id is not None and span.parent_id in by_id:
                parent = by_id[span.parent_id]
                assert span.start_ns >= parent.start_ns
        # every completed request root carries a terminal ok attribute
        assert all(root.attrs.get("ok") is True for root in roots)

    def test_disabled_tracing_records_nothing_through_engine(self):
        engine = Engine()
        serving = engine.serving()
        try:
            serving.submit(
                softmax_cascade(), {"x": np.linspace(0.0, 1.0, 16)}
            ).result(timeout=60)
        finally:
            serving.close()
        assert tracing.active() is None

    def test_unified_registry_covers_all_layers(self):
        engine = Engine()
        engine.run(softmax_cascade(), {"x": np.linspace(0.0, 1.0, 16)})
        text = engine.render_prometheus()
        assert "plan_cache_hits_total" in text
        assert "serving_requests_submitted_total" in text
        assert 'backend_executions_total{backend=' in text
        assert engine.stats.render_prometheus() == text

    def test_serving_stats_latency_percentiles(self):
        engine = Engine()
        for _ in range(5):
            engine.run(softmax_cascade(), {"x": np.linspace(0.0, 1.0, 16)})
        snap = engine.scheduler.stats.snapshot()
        assert snap["completed"] == 5
        assert snap["p50_latency_s"] > 0.0
        assert snap["p99_latency_s"] >= snap["p50_latency_s"]
        assert snap["p99.9_latency_s"] >= snap["p99_latency_s"]

    def test_legacy_stats_attributes_still_read(self):
        engine = Engine()
        engine.run(softmax_cascade(), {"x": np.linspace(0.0, 1.0, 16)})
        stats = engine.scheduler.stats
        assert stats.submitted == 1
        assert stats.completed == 1
        assert stats.shed == 0
        assert stats.queue_depth == 0


# ---------------------------------------------------------------------------
# trace summary CLI
# ---------------------------------------------------------------------------
class TestTraceCLI:
    def _traced_trace_file(self, tmp_path):
        tracer = enable_tracing()
        engine = Engine()
        serving = engine.serving()
        try:
            for _ in range(3):
                serving.submit(
                    softmax_cascade(), {"x": np.linspace(0.0, 1.0, 32)}, "tile_ir"
                ).result(timeout=60)
        finally:
            serving.close()
        disable_tracing()
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        return path

    def test_summarize_and_render(self, tmp_path):
        path = self._traced_trace_file(tmp_path)
        events = trace_cli.load_events(path)
        summary = trace_cli.summarize(events)
        assert summary["num_spans"] == len(events)
        assert any(row["kind"] == "execute" for row in summary["top_spans"])
        assert all(
            row["exclusive_us"] <= row["total_us"] + 1e-9
            for row in summary["top_spans"]
        )
        backend_rows = {row["backend"]: row for row in summary["backends"]}
        assert "tile_ir" in backend_rows
        backend = backend_rows["tile_ir"]
        assert backend["execute_spans"] == 3
        assert 0.0 <= backend["queue_frac"] <= 1.0
        slowest = summary["slowest_request"]
        assert slowest is not None and slowest["kind"] == "request"
        assert slowest["children"]
        text = trace_cli.render(summary)
        assert "slowest request" in text.lower()

    def test_main_exit_codes(self, tmp_path, capsys):
        path = self._traced_trace_file(tmp_path)
        assert trace_cli.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert trace_cli.main([str(tmp_path / "missing.json")]) != 0
