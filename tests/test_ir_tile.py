"""Unit tests for the TileOp IR (Appendix A.3) and its interpreter."""

import numpy as np
import pytest

from repro.ir import (
    Copy,
    Fill,
    ForStage,
    Gemm,
    Parallel,
    Reduce,
    TileBuffer,
    TileInterpreter,
    TileProgram,
    load,
    tile,
)
from repro.symbolic import Const, var


def make_program(buffers, body, grid=(("bx", 1),)):
    return TileProgram("t", tuple(buffers), tuple(grid), tuple(body))


class TestTileBuffer:
    def test_nbytes(self):
        assert TileBuffer("a", (4, 8), "shared", 2).nbytes == 64

    def test_scope_validated(self):
        with pytest.raises(ValueError):
            TileBuffer("a", (4,), "register")

    def test_program_accounting(self):
        prog = make_program(
            [
                TileBuffer("g", (8,), "global"),
                TileBuffer("s", (8,), "shared", 2),
                TileBuffer("f", (8,), "fragment"),
            ],
            [],
        )
        assert prog.shared_bytes() == 16
        assert prog.fragment_bytes() == 32
        assert prog.num_blocks == 1


class TestOps:
    def test_copy_between_scopes(self):
        prog = make_program(
            [TileBuffer("x", (4, 4), "global"), TileBuffer("s", (2, 4), "shared")],
            [
                Copy(tile("x", (1, 2), (0, 4)), tile("s", (0, 2), (0, 4))),
                Copy(tile("s", (0, 2), (0, 4)), tile("x", (0, 2), (0, 4))),
            ],
        )
        x = np.arange(16.0).reshape(4, 4)
        out = TileInterpreter(prog).run({"x": x})
        np.testing.assert_allclose(out["x"][0:2], x[1:3])

    def test_gemm_transpose_semantics(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(4, 3)
        prog = make_program(
            [
                TileBuffer("a", (2, 3), "global"),
                TileBuffer("b", (4, 3), "global"),
                TileBuffer("c", (2, 4), "global"),
            ],
            [Gemm(tile("a", (0, 2), (0, 3)), tile("b", (0, 4), (0, 3)), tile("c", (0, 2), (0, 4)))],
        )
        out = TileInterpreter(prog).run({"a": a, "b": b})
        np.testing.assert_allclose(out["c"], a @ b.T)

    def test_gemm_accumulates(self):
        a = np.ones((2, 2))
        prog = make_program(
            [TileBuffer("a", (2, 2), "global"), TileBuffer("c", (2, 2), "global")],
            [
                Gemm(tile("a", (0, 2), (0, 2)), tile("a", (0, 2), (0, 2)), tile("c", (0, 2), (0, 2))),
                Gemm(tile("a", (0, 2), (0, 2)), tile("a", (0, 2), (0, 2)), tile("c", (0, 2), (0, 2))),
            ],
        )
        out = TileInterpreter(prog).run({"a": a})
        np.testing.assert_allclose(out["c"], 4.0 * np.ones((2, 2)))

    def test_reduce_accumulates_into_dst(self):
        x = np.array([[1.0, 5.0, 2.0], [0.0, -1.0, 3.0]])
        prog = make_program(
            [TileBuffer("x", (2, 3), "global"), TileBuffer("m", (2, 1), "global")],
            [
                Fill(tile("m", (0, 2), (0, 1)), -np.inf),
                Reduce(tile("x", (0, 2), (0, 3)), tile("m", (0, 2), (0, 1)), 1, "max"),
            ],
        )
        out = TileInterpreter(prog).run({"x": x})
        np.testing.assert_allclose(out["m"][:, 0], [5.0, 3.0])

    def test_reduce_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Reduce(tile("x", (0, 2), (0, 3)), tile("m", (0, 2), (0, 1)), 1, "median")

    def test_parallel_assignment(self):
        i, j = var("i"), var("j")
        prog = make_program(
            [TileBuffer("y", (2, 3), "global")],
            [Parallel("y", (i, j), i * 10 + j, ("i", "j"), (2, 3))],
        )
        out = TileInterpreter(prog).run({})
        np.testing.assert_allclose(out["y"], [[0, 1, 2], [10, 11, 12]])

    def test_parallel_reads_other_tiles(self):
        i = var("i")
        prog = make_program(
            [TileBuffer("x", (4,), "global"), TileBuffer("y", (4,), "global")],
            [Parallel("y", (i,), load("x", i) * 2, ("i",), (4,))],
        )
        out = TileInterpreter(prog).run({"x": np.arange(4.0)})
        np.testing.assert_allclose(out["y"], [0, 2, 4, 6])

    def test_parallel_shadowing_rejected(self):
        prog = make_program(
            [TileBuffer("y", (2,), "global")],
            [
                ForStage(
                    "i",
                    2,
                    (Parallel("y", (var("i"),), Const(1.0), ("i",), (2,)),),
                )
            ],
        )
        with pytest.raises(ValueError):
            TileInterpreter(prog).run({})

    def test_for_stage_iterates(self):
        s = var("stage")
        prog = make_program(
            [TileBuffer("y", (4,), "global")],
            [ForStage("stage", 4, (Parallel("y", (s,), s * 1.0, ("__i",), ()),))],
        )
        out = TileInterpreter(prog).run({})
        np.testing.assert_allclose(out["y"], [0, 1, 2, 3])


class TestGrid:
    def test_blocks_partition_rows(self):
        bx, i = var("bx"), var("i")
        prog = make_program(
            [TileBuffer("y", (8,), "global")],
            [Parallel("y", (bx * 4 + i,), bx * 1.0, ("i",), (4,))],
            grid=(("bx", 2),),
        )
        out = TileInterpreter(prog).run({})
        np.testing.assert_allclose(out["y"], [0, 0, 0, 0, 1, 1, 1, 1])

    def test_fragments_are_block_private(self):
        """A fragment written by block 0 must be clean in block 1."""
        bx = var("bx")
        prog = make_program(
            [
                TileBuffer("f", (1,), "fragment"),
                TileBuffer("y", (2,), "global"),
            ],
            [
                Parallel("f", (Const(0.0),), bx + 1.0, ("__i",), ()),
                Parallel("y", (bx,), load("f", Const(0.0)) * 1.0, ("__j",), ()),
            ],
            grid=(("bx", 2),),
        )
        out = TileInterpreter(prog).run({})
        np.testing.assert_allclose(out["y"], [1.0, 2.0])

    def test_input_shape_validated(self):
        prog = make_program([TileBuffer("x", (4,), "global")], [])
        with pytest.raises(ValueError):
            TileInterpreter(prog).run({"x": np.ones(5)})
