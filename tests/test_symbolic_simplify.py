"""Unit tests for the algebraic simplifier."""

import pytest

from repro.symbolic import (
    Const,
    absv,
    const,
    exp,
    log,
    neg,
    numeric_equivalent,
    recip,
    simplify,
    sqrt,
    var,
    variables,
    vmax,
    vmin,
)
from repro.symbolic.expand import expand, expand_terms


def assert_simplifies(expr, expected):
    assert simplify(expr) == expected


class TestBasicIdentities:
    def test_add_zero(self):
        x = var("x")
        assert_simplifies(x + 0, x)
        assert_simplifies(0 + x, x)

    def test_mul_one_and_zero(self):
        x = var("x")
        assert_simplifies(x * 1, x)
        assert_simplifies(1 * x, x)
        assert_simplifies(x * 0, Const(0.0))

    def test_sub_self(self):
        x = var("x")
        assert_simplifies(x - x, Const(0.0))

    def test_div_identities(self):
        x = var("x")
        assert_simplifies(x / 1, x)
        assert_simplifies(x / x, Const(1.0))
        assert_simplifies(const(0) / x, Const(0.0))

    def test_pow_identities(self):
        x = var("x")
        assert_simplifies(x ** 1, x)
        assert_simplifies(x ** 0, Const(1.0))

    def test_double_negation(self):
        x = var("x")
        assert_simplifies(neg(neg(x)), x)

    def test_max_min_self(self):
        x = var("x")
        assert_simplifies(vmax(x, x), x)
        assert_simplifies(vmin(x, x), x)

    def test_constant_folding(self):
        assert_simplifies(const(2) + const(3), Const(5.0))
        assert_simplifies(const(2) * const(3) - const(1), Const(5.0))
        assert_simplifies(vmax(const(2), const(3)), Const(3.0))
        assert_simplifies(exp(const(0)), Const(1.0))
        assert_simplifies(sqrt(const(4)), Const(2.0))

    def test_division_by_zero_not_folded(self):
        e = simplify(const(1) / const(0))
        # stays symbolic rather than becoming inf
        assert e.free_vars() == frozenset() and not isinstance(e, Const)


class TestExpLogRules:
    def test_exp_product_fuses(self):
        a, b = variables("a", "b")
        assert_simplifies(exp(a) * exp(b), exp(a + b))

    def test_exp_quotient_fuses(self):
        a, b = variables("a", "b")
        assert_simplifies(exp(a) / exp(b), exp(a - b))

    def test_recip_of_exp(self):
        a = var("a")
        assert_simplifies(recip(exp(neg(a))), exp(a))

    def test_log_exp_inverse(self):
        x = var("x")
        assert_simplifies(log(exp(x)), x)
        assert_simplifies(exp(log(x)), x)

    def test_online_softmax_correction_shape(self):
        """The H(prev)^-1 * H(new) term must fuse into one exp."""
        mp, mn = variables("m_prev", "m_new")
        ratio = simplify(recip(exp(neg(mp))) * exp(neg(mn)))
        assert ratio == exp(mp - mn)


class TestAdditiveCanonicalization:
    def test_constants_merge_across_chain(self):
        x, m = variables("x", "m")
        e = simplify((x - 1) + (1 - m))
        assert e == x - m

    def test_cancellation(self):
        x, y = variables("x", "y")
        assert_simplifies(x + y - x, var("y"))

    def test_all_constant_chain(self):
        assert_simplifies(const(1) + const(2) - const(3), Const(0.0))

    def test_negative_leading_term(self):
        x = var("x")
        e = simplify(const(0) - x + 1)
        assert numeric_equivalent(e, 1 - x)


class TestMultiplicativeCanonicalization:
    def test_factor_cancellation(self):
        x, y = variables("x", "y")
        assert_simplifies((x * y) / y, x)

    def test_sign_extraction(self):
        x, y = variables("x", "y")
        e = simplify(neg(x) * neg(y))
        assert e == x * y

    def test_constants_collected(self):
        x = var("x")
        e = simplify(const(2) * x * const(3))
        assert e == const(6) * x

    def test_nested_division(self):
        t_prev, t_new, m = variables("t_prev", "t_new", "m")
        e = simplify(recip(exp(neg(m)) / t_prev) * (exp(neg(m)) / t_new))
        assert numeric_equivalent(e, t_prev / t_new)

    def test_abs_rules(self):
        x = var("x")
        assert_simplifies(absv(absv(x)), absv(x))
        assert_simplifies(absv(neg(x)), absv(x))
        assert_simplifies(absv(exp(x)), exp(x))


class TestSemanticsPreserved:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda x, y: exp(x) * exp(y) / exp(x - y),
            lambda x, y: (x + y) * (x - y) / (x + y),
            lambda x, y: neg(x - y) + vmax(x, y) * 1 + 0,
            lambda x, y: sqrt(absv(x)) * recip(exp(neg(y))),
            lambda x, y: (x - 1) + (1 - y) + (y - y),
        ],
    )
    def test_random_equivalence(self, builder):
        x, y = variables("x", "y")
        e = builder(x, y)
        assert numeric_equivalent(e, simplify(e))


class TestExpand:
    def test_square_expansion(self):
        x, m = variables("x", "m")
        terms = expand_terms((x - m) ** 2)
        assert len(terms) == 4
        assert numeric_equivalent(expand((x - m) ** 2), (x - m) ** 2)

    def test_cube_expansion(self):
        x = var("x")
        assert numeric_equivalent(expand((x + 1) ** 3), (x + 1) ** 3)

    def test_distribution_over_sub(self):
        x, y, z = variables("x", "y", "z")
        e = x * (y - z)
        assert numeric_equivalent(expand(e), e)
        assert len(expand_terms(e)) == 2

    def test_division_distributes_over_numerator(self):
        x, y, z = variables("x", "y", "z")
        terms = expand_terms((x + y) / z)
        assert len(terms) == 2

    def test_atomic_passthrough(self):
        x = var("x")
        assert expand_terms(exp(x)) == [exp(x)]
