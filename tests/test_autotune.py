"""Dedicated unit tests for the §4.4 auto-tuner (codegen/autotune.py)."""

import pytest

from repro.codegen import CodegenSpec, ElementLayout, LoweringError, autotune
from repro.codegen.autotune import _divisors_only, _lower_candidate
from repro.core import Cascade, Reduction, fuse
from repro.gpusim import A10
from repro.gpusim.costmodel import ResourceError, kernel_latency
from repro.symbolic import exp, var

SPACE = dict(
    blk_rows=(32, 64, 128),
    blk_len=(16, 32),
    threads=(128, 256),
    pipeline=(1, 2),
    segments=(1, 2, 4),
)


def softmax_spec(rows=64, length=128):
    x, m = var("x"), var("m")
    cascade = Cascade(
        "softmax",
        ("x",),
        (Reduction("m", "max", x), Reduction("t", "sum", exp(x - m))),
    )
    return CodegenSpec(
        fused=fuse(cascade),
        rows=rows,
        length=length,
        layouts=(ElementLayout("x", 1, True),),
    )


def enumerate_candidates(spec, gpu, space, dtype="fp16", instances=1):
    """Mirror of the tuner's loop nest: every feasible (config, n_seg, latency)."""
    from repro.codegen.tensorize import TileConfig

    feasible = []
    for rows_tile in _divisors_only(space["blk_rows"], spec.rows) or [spec.rows]:
        for len_tile in _divisors_only(space["blk_len"], spec.length) or [spec.length]:
            for n_threads in space["threads"]:
                for depth in space["pipeline"]:
                    for n_seg in space["segments"]:
                        if spec.length % (n_seg * len_tile) != 0 and n_seg > 1:
                            continue
                        config = TileConfig(
                            blk_rows=min(rows_tile, spec.rows),
                            blk_len=min(len_tile, spec.length),
                            threads=n_threads,
                            pipeline_depth=depth,
                        )
                        program = _lower_candidate(
                            spec, config, n_seg, dtype, depth, n_threads, instances
                        )
                        if program is None:
                            continue
                        try:
                            latency = sum(
                                kernel_latency(gpu, k) for k in program.kernels
                            )
                        except ResourceError:
                            continue
                        feasible.append((latency, config, n_seg))
    return feasible


class TestSearchIsArgmin:
    def test_returns_minimum_latency_candidate(self):
        spec = softmax_spec()
        result = autotune(spec, A10, **SPACE)
        feasible = enumerate_candidates(spec, A10, SPACE)
        assert feasible, "search space unexpectedly empty"
        best_latency, best_config, best_seg = min(feasible, key=lambda c: c[0])
        assert result.latency == pytest.approx(best_latency)
        assert (result.config, result.num_segments) == (best_config, best_seg)

    def test_candidates_tried_counts_costed_lowerings(self):
        spec = softmax_spec()
        result = autotune(spec, A10, **SPACE)
        lowered = enumerate_candidates(spec, A10, SPACE)
        # every candidate that lowered successfully was tried (ResourceError
        # aborts costing but still counts as tried, so >=)
        assert result.candidates_tried >= len(lowered)

    def test_reported_latency_reproduces_from_program(self):
        result = autotune(softmax_spec(), A10, **SPACE)
        recomputed = sum(kernel_latency(A10, k) for k in result.program.kernels)
        assert result.latency == pytest.approx(recomputed)


class TestDeterminism:
    def test_repeated_searches_agree(self):
        spec = softmax_spec()
        first = autotune(spec, A10, **SPACE)
        second = autotune(spec, A10, **SPACE)
        assert first.config == second.config
        assert first.num_segments == second.num_segments
        assert first.latency == second.latency
        assert first.candidates_tried == second.candidates_tried

    def test_deterministic_across_equivalent_specs(self):
        """Structurally equal cascades (fresh objects) tune identically."""
        first = autotune(softmax_spec(), A10, **SPACE)
        second = autotune(softmax_spec(), A10, **SPACE)
        assert (first.config, first.num_segments, first.latency) == (
            second.config,
            second.num_segments,
            second.latency,
        )


class TestSearchSpaceHandling:
    def test_divisors_only_filters_and_bounds(self):
        assert _divisors_only((16, 32, 48, 128), 96) == [16, 32, 48]
        assert _divisors_only((64, 128), 32) == []

    def test_indivisible_space_falls_back_to_full_extent(self):
        spec = softmax_spec(rows=7, length=13)  # primes: no tile divides
        result = autotune(spec, A10, **SPACE)
        assert result.config.blk_rows == 7
        assert result.config.blk_len == 13
        assert result.num_segments == 1

    def test_no_feasible_configuration_raises(self):
        spec = softmax_spec(rows=64, length=128)
        with pytest.raises(LoweringError):
            autotune(
                spec, A10,
                blk_rows=(64,), blk_len=(32,), threads=(256,),
                pipeline=(1,), segments=(3,),  # 128 % (3*32) != 0 -> nothing lowers
            )

    def test_strategy_label_matches_segments(self):
        result = autotune(softmax_spec(), A10, **SPACE)
        expected = "multi-segment" if result.num_segments > 1 else "single-segment"
        assert result.strategy == expected
