"""One monotonic clock for the whole serving stack.

Before this module existed, timestamps were scattered across
``time.perf_counter()`` call sites (and nothing stopped a future change
from mixing in wall-clock ``time.time()``, which jumps under NTP).  Every
layer that timestamps anything — span recording in
:mod:`repro.obs.tracing`, request latency in
:mod:`repro.engine.serving`, compile timing in
:mod:`repro.engine.plan`, device busy time in
:mod:`repro.engine.backends`, replay pacing in
:mod:`repro.harness.traffic` — now calls these helpers, so trace
timestamps and latency statistics are directly comparable: subtracting a
span's start from a request's submit time is meaningful because both
came from the same monotonic source.

``monotonic_ns`` is the canonical clock (integer nanoseconds from
``time.perf_counter_ns``, immune to float precision loss on long-lived
processes); ``monotonic_s`` is the float-seconds convenience view of the
*same* clock for latency arithmetic.
"""

from __future__ import annotations

import time

#: Nanoseconds per second, for converting between the two views.
NS_PER_S = 1_000_000_000

#: The canonical monotonic clock: integer nanoseconds.
monotonic_ns = time.perf_counter_ns


def monotonic_s() -> float:
    """Float seconds on the same monotonic clock as :func:`monotonic_ns`."""
    return time.perf_counter_ns() / NS_PER_S


def ns_to_s(ns: int) -> float:
    """Convert a :func:`monotonic_ns` reading/delta to float seconds."""
    return ns / NS_PER_S


def ns_to_us(ns: int) -> float:
    """Convert nanoseconds to microseconds (Chrome trace-event unit)."""
    return ns / 1_000.0
