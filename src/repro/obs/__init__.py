"""Observability for the serving stack: tracing, metrics, profiling.

Three pillars, one package:

* :mod:`repro.obs.tracing` — request spans through the whole serving
  lifecycle (admission → queue → batch formation → compile-or-hit →
  execute → shard → merge), recorded in a bounded ring and exportable
  as Chrome trace-event JSON for Perfetto.  Zero-cost when disabled.
* :mod:`repro.obs.metrics` — one registry of counters, gauges, and
  log-bucketed streaming histograms behind every layer's statistics,
  with a Prometheus text exporter.
* :mod:`repro.obs.profile` — gpusim bottleneck attribution: per-engine
  busy/idle time for tile-IR and sharded executions, idle-slot
  histograms, fig5 workload bottleneck rows, padding-waste per bucket.

:mod:`repro.obs.clock` supplies the single monotonic clock all of the
above (and the serving stack's latency stats) share.
"""

from .clock import NS_PER_S, monotonic_ns, monotonic_s, ns_to_s, ns_to_us
from .metrics import (
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
    Sample,
    StreamingHistogram,
)
from .profile import (
    ENGINES,
    ProgramProfile,
    optimization_rows,
    padding_waste_rows,
    profile_plan,
    profile_program,
    workload_bottlenecks,
)
from .tracing import (
    Span,
    SpanHandle,
    Tracer,
    active,
    current_span_id,
    disable_tracing,
    enable_tracing,
    end_span,
    span,
    start_span,
)

__all__ = [
    # clock
    "NS_PER_S",
    "monotonic_ns",
    "monotonic_s",
    "ns_to_s",
    "ns_to_us",
    # metrics
    "Counter",
    "Gauge",
    "MetricError",
    "MetricsRegistry",
    "Sample",
    "StreamingHistogram",
    # profiling
    "ENGINES",
    "ProgramProfile",
    "optimization_rows",
    "padding_waste_rows",
    "profile_plan",
    "profile_program",
    "workload_bottlenecks",
    # tracing
    "Span",
    "SpanHandle",
    "Tracer",
    "active",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "end_span",
    "span",
    "start_span",
]
