"""Trace summary CLI: ``python -m repro.obs.trace <trace.json>``.

Reads a Chrome trace-event file written by
:meth:`repro.obs.tracing.Tracer.export_chrome` and prints three views:

* **top spans by exclusive time** — per (kind, name), total duration
  minus time spent in child spans, so nested wrappers don't double-count;
* **queue-wait vs execute per backend** — where requests spend their
  life once admitted, split by the backend that served them;
* **slowest-request drill-down** — the longest root ``request`` span,
  printed as its full span tree with durations.

All three are also available programmatically (:func:`summarize`) for
tests and benchmark reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence


def load_events(path: str) -> List[Dict[str, Any]]:
    """The complete ("X") events of one Chrome trace file."""
    with open(path) as fh:
        trace = json.load(fh)
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    return [e for e in events if e.get("ph") == "X"]


def _children_index(events: Sequence[Dict[str, Any]]) -> Dict[Any, List[Dict[str, Any]]]:
    children: Dict[Any, List[Dict[str, Any]]] = {}
    for event in events:
        parent = event.get("args", {}).get("parent_id")
        if parent is not None:
            children.setdefault(parent, []).append(event)
    return children


def summarize(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The CLI's three views as plain data."""
    children = _children_index(events)

    # -- exclusive time per (kind, name) ------------------------------------
    exclusive: Dict[tuple, Dict[str, float]] = {}
    for event in events:
        span_id = event.get("args", {}).get("span_id")
        child_time = sum(
            child.get("dur", 0.0) for child in children.get(span_id, ())
        )
        self_time = max(event.get("dur", 0.0) - child_time, 0.0)
        key = (event.get("cat", ""), event.get("name", ""))
        entry = exclusive.setdefault(
            key, {"count": 0, "total_us": 0.0, "exclusive_us": 0.0}
        )
        entry["count"] += 1
        entry["total_us"] += event.get("dur", 0.0)
        entry["exclusive_us"] += self_time
    top_spans = [
        {
            "kind": kind,
            "name": name,
            "count": entry["count"],
            "total_us": entry["total_us"],
            "exclusive_us": entry["exclusive_us"],
        }
        for (kind, name), entry in exclusive.items()
    ]
    top_spans.sort(key=lambda row: -row["exclusive_us"])

    # -- queue wait vs execute per backend ----------------------------------
    backends: Dict[str, Dict[str, float]] = {}
    for event in events:
        cat = event.get("cat", "")
        if cat not in ("queue", "execute"):
            continue
        backend = str(event.get("args", {}).get("backend", "?"))
        entry = backends.setdefault(
            backend,
            {"queue_us": 0.0, "queue_spans": 0, "execute_us": 0.0, "execute_spans": 0},
        )
        entry[f"{cat}_us"] += event.get("dur", 0.0)
        entry[f"{cat}_spans"] += 1
    backend_rows = [
        {
            "backend": backend,
            **entry,
            "queue_frac": (
                entry["queue_us"] / (entry["queue_us"] + entry["execute_us"])
                if entry["queue_us"] + entry["execute_us"] > 0
                else 0.0
            ),
        }
        for backend, entry in sorted(backends.items())
    ]

    # -- slowest request drill-down -----------------------------------------
    requests = [e for e in events if e.get("cat") == "request"]
    slowest: Optional[Dict[str, Any]] = None
    if requests:
        root = max(requests, key=lambda e: e.get("dur", 0.0))

        def _tree(event: Dict[str, Any]) -> Dict[str, Any]:
            span_id = event.get("args", {}).get("span_id")
            kids = sorted(
                children.get(span_id, ()), key=lambda e: e.get("ts", 0.0)
            )
            return {
                "kind": event.get("cat", ""),
                "name": event.get("name", ""),
                "dur_us": event.get("dur", 0.0),
                "args": {
                    k: v
                    for k, v in event.get("args", {}).items()
                    if k not in ("span_id", "parent_id")
                },
                "children": [_tree(kid) for kid in kids],
            }

        slowest = _tree(root)

    return {
        "num_spans": len(events),
        "top_spans": top_spans,
        "backends": backend_rows,
        "slowest_request": slowest,
    }


def _format_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.3f}ms"
    return f"{us:.1f}us"


def render(summary: Dict[str, Any], top: int = 10) -> str:
    lines: List[str] = [f"spans: {summary['num_spans']}", ""]

    lines.append("top spans by exclusive time")
    lines.append(
        f"{'kind':>12}  {'name':>16}  {'count':>7}  {'exclusive':>12}  {'total':>12}"
    )
    for row in summary["top_spans"][:top]:
        lines.append(
            f"{row['kind']:>12}  {row['name']:>16}  {row['count']:>7}  "
            f"{_format_us(row['exclusive_us']):>12}  {_format_us(row['total_us']):>12}"
        )

    if summary["backends"]:
        lines.append("")
        lines.append("queue wait vs execute per backend")
        lines.append(
            f"{'backend':>12}  {'queue':>12}  {'execute':>12}  {'queue frac':>10}"
        )
        for row in summary["backends"]:
            lines.append(
                f"{row['backend']:>12}  {_format_us(row['queue_us']):>12}  "
                f"{_format_us(row['execute_us']):>12}  {row['queue_frac']:>10.1%}"
            )

    slowest = summary["slowest_request"]
    if slowest is not None:
        lines.append("")
        lines.append("slowest request")

        def _walk(node: Dict[str, Any], depth: int) -> None:
            label = f"{node['kind']}:{node['name']}" if node["name"] != node["kind"] else node["kind"]
            detail = ""
            interesting = {
                k: v for k, v in node["args"].items() if k in (
                    "backend", "kind", "batch", "hit", "bucket", "device", "ok",
                )
            }
            if interesting:
                detail = "  " + " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
            lines.append(
                f"  {'  ' * depth}{label:<{max(28 - 2 * depth, 1)}} {_format_us(node['dur_us']):>12}{detail}"
            )
            for child in node["children"]:
                _walk(child, depth + 1)

        _walk(slowest, 0)

    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Summarize a Chrome trace-event file recorded by repro.obs",
    )
    parser.add_argument("trace", help="path to a trace JSON file")
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the exclusive-time table"
    )
    args = parser.parse_args(argv)
    try:
        events = load_events(args.trace)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"error: cannot read trace {args.trace!r}: {err}", file=sys.stderr)
        return 2
    print(render(summarize(events), top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
