"""Bottleneck profiler: attribute simulated time to gpusim engines.

The analytical cost model (:mod:`repro.gpusim.costmodel`) prices each
kernel as waves of resident CTAs whose compute and memory times overlap
partially.  This module decomposes that price back into *per-engine busy
time* — how many of the modeled seconds the tensor cores, CUDA cores,
and DRAM system were actually doing work, versus idling behind the
critical path — the "cycles lost per engine / idle-slot histogram"
attribution the ROADMAP's schedule optimizer needs as its input signal.

Attribution per kernel (exactly the cost model's quantities, via
:func:`repro.gpusim.costmodel.kernel_times`):

* the compute engine (``tensor_core`` when the kernel uses tensor-core
  math, else ``cuda_core``) is busy ``ceil(waves) * compute_time``;
* ``dram`` is busy ``ceil(waves) * memory_time``;
* the kernel's critical path is ``ceil(waves) * wave_time`` plus the
  fixed ``launch``/``ramp`` overhead;
* each engine's *idle* time is the critical path minus its busy time —
  slots where it waited on the other engine (or on overhead).

Entry points:

* :func:`profile_program` — any :class:`~repro.gpusim.kernel.Program`;
* :func:`profile_plan` — a served :class:`FusionPlan`: rebuilds the
  kernels the ``tile_ir`` backend tuned (or the ``sharded`` backend's
  traffic kernel) from the plan's cached compilation state;
* :func:`workload_bottlenecks` — the fig5 workloads, one row per
  workload naming its bottleneck engine (rendered by
  ``repro.harness.report.bottleneck_table``);
* :func:`padding_waste_rows` — padding-waste attribution per serving
  bucket, from the metrics registry's labeled counters.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..gpusim.costmodel import kernel_times
from ..gpusim.kernel import Program
from ..gpusim.specs import GPUSpec, gpu as gpu_by_name

#: Engines the model distinguishes. ``overhead`` (launch + ramp) is
#: tracked separately: it is serial time no engine can be blamed for.
ENGINES = ("tensor_core", "cuda_core", "dram")

#: fig5 device defaults (the paper's per-workload evaluation platforms).
FIG5_DEVICES = {"mha": "A10", "mla": "H800", "moe": "A10", "quant_gemm": "H800"}

#: Decile edges of the idle-slot histogram (fraction of a kernel's
#: critical path one engine spent idle).
IDLE_HISTOGRAM_BUCKETS = 10


@dataclass
class ProgramProfile:
    """Per-engine attribution of one program's modeled execution."""

    name: str
    gpu: str
    busy_seconds: Dict[str, float]
    idle_seconds: Dict[str, float]
    critical_seconds: float
    overhead_seconds: float
    latency_seconds: float
    bottleneck: str
    #: Decile histogram over (kernel, engine) idle fractions: how often
    #: an engine sat idle for 0-10%, 10-20%, ... of a kernel's critical
    #: path.  A mass near the right edge means whole engines are parked.
    idle_slot_histogram: List[int]
    kernels: List[Dict[str, object]] = field(default_factory=list)

    def busy_fraction(self, engine: str) -> float:
        if self.critical_seconds <= 0.0:
            return 0.0
        return self.busy_seconds.get(engine, 0.0) / self.critical_seconds

    def snapshot(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def to_row(self, **extra) -> Dict[str, object]:
        """Flat row for ``repro.harness.report.bottleneck_table``."""
        row: Dict[str, object] = dict(extra)
        row.update(
            gpu=self.gpu,
            bottleneck=self.bottleneck,
            latency_seconds=self.latency_seconds,
            overhead_frac=(
                self.overhead_seconds / self.latency_seconds
                if self.latency_seconds > 0
                else 0.0
            ),
        )
        for engine in ENGINES:
            row[f"{engine}_busy_frac"] = self.busy_fraction(engine)
        row["bottleneck_idle_frac"] = (
            self.idle_seconds.get(self.bottleneck, 0.0) / self.critical_seconds
            if self.critical_seconds > 0
            else 0.0
        )
        return row


def _resolve_gpu(gpu) -> GPUSpec:
    if isinstance(gpu, GPUSpec):
        return gpu
    return gpu_by_name(str(gpu))


def profile_program(gpu, program: Program) -> ProgramProfile:
    """Decompose a kernel program into per-engine busy/idle time."""
    gpu_spec = _resolve_gpu(gpu)
    busy = {engine: 0.0 for engine in ENGINES}
    critical = 0.0
    overhead = 0.0
    histogram = [0] * IDLE_HISTOGRAM_BUCKETS
    kernel_rows: List[Dict[str, object]] = []
    for kernel in program.kernels:
        kt = kernel_times(gpu_spec, kernel)
        waves = math.ceil(kt.waves)
        kernel_critical = waves * kt.wave_time
        if kt.engine_times is not None:
            # schedule-aware kernels split CUDA-core from tensor-core
            # work exactly; use the cost model's own decomposition
            engine_busy = {
                engine: waves * seconds
                for engine, seconds in kt.engine_times.items()
            }
        else:
            engine_busy = {
                kt.compute_engine: waves * kt.compute_time,
                "dram": waves * kt.memory_time,
            }
        for engine, seconds in engine_busy.items():
            busy[engine] += seconds
        critical += kernel_critical
        overhead += kt.launch_s + kt.ramp_s
        for engine in ENGINES:
            if kernel_critical <= 0.0:
                continue
            idle_frac = 1.0 - engine_busy.get(engine, 0.0) / kernel_critical
            idle_frac = min(max(idle_frac, 0.0), 1.0)
            index = min(
                int(idle_frac * IDLE_HISTOGRAM_BUCKETS),
                IDLE_HISTOGRAM_BUCKETS - 1,
            )
            histogram[index] += 1
        kernel_rows.append(
            {
                "kernel": kernel.name,
                "waves": waves,
                "compute_engine": kt.compute_engine,
                "compute_seconds": engine_busy.get(kt.compute_engine, 0.0),
                "dram_seconds": engine_busy.get("dram", 0.0),
                "critical_seconds": kernel_critical,
                "overhead_seconds": kt.launch_s + kt.ramp_s,
                "limited_by": kt.occupancy.limited_by,
            }
        )
    idle = {
        engine: max(critical - seconds, 0.0) for engine, seconds in busy.items()
    }
    bottleneck = max(ENGINES, key=lambda engine: busy[engine])
    return ProgramProfile(
        name=program.name,
        gpu=gpu_spec.name,
        busy_seconds=busy,
        idle_seconds=idle,
        critical_seconds=critical,
        overhead_seconds=overhead,
        latency_seconds=critical + overhead,
        bottleneck=bottleneck,
        idle_slot_histogram=histogram,
        kernels=kernel_rows,
    )


# ---------------------------------------------------------------------------
# plan-level profiling: rebuild what the backends actually ran
# ---------------------------------------------------------------------------
def _tile_ir_program(plan, gpu_spec: GPUSpec) -> Optional[Program]:
    """The kernels of the plan's latest tile_ir compilation on this GPU.

    Compilations carry the kernel descriptors they were costed with
    (``_TileCompilation.kernel_program`` — schedule-annotated at
    ``opt_level >= 1``); older state without them falls back to
    re-estimating from the stored config exactly as the tuner lowered it
    (multi-segment combine kernels always run at pipeline depth 1).
    """
    from ..codegen.kernels import estimate_kernel
    from ..engine.backends import get_backend

    backend = get_backend("tile_ir")
    state = backend._state_snapshot(plan)
    for key, compilation in reversed(list(state.items())):
        _rows, _length, _widths, gpu_name, _variant, _opt_level = key
        if gpu_name != gpu_spec.name:
            continue
        program = Program(name=f"{plan.cascade.name}[tile_ir]")
        stored = getattr(compilation, "kernel_program", None)
        if stored is not None:
            for kernel in stored.kernels:
                program.add(kernel)
            return program
        estimate = compilation.estimate
        kernels = [
            estimate_kernel(
                compilation.programs[0],
                estimate.threads,
                estimate.pipeline_depth,
                "fp16",
            )
        ]
        if len(compilation.programs) > 1:
            kernels.append(
                estimate_kernel(
                    compilation.programs[1], estimate.threads, 1, "fp16"
                )
            )
        for kernel in kernels:
            program.add(kernel)
        return program
    return None


def _sharded_program(plan, gpu_spec: GPUSpec) -> Optional[Program]:
    """The traffic kernel of the plan's latest sharded dispatch."""
    from ..engine.backends import get_backend

    backend = get_backend("sharded")
    with plan._state_lock:
        state = plan.backend_state.get("sharded")
        geometry = state.get("last_geometry") if state else None
    if geometry is None:
        return None
    queries, length, widths = geometry
    kernel = backend.shard_kernel(plan, queries, length, widths)
    program = Program(name=f"{plan.cascade.name}[sharded]")
    program.add(kernel)
    return program


def profile_plan(plan, gpu="A10", backend: str = "tile_ir") -> Optional[ProgramProfile]:
    """Engine attribution for what a backend actually ran on this plan.

    Returns ``None`` when the plan has no recorded execution state for
    the backend on the requested GPU (nothing ran yet, or a different
    device served it).
    """
    gpu_spec = _resolve_gpu(gpu)
    if backend == "tile_ir":
        program = _tile_ir_program(plan, gpu_spec)
    elif backend == "sharded":
        program = _sharded_program(plan, gpu_spec)
    else:
        raise ValueError(
            f"profiling covers the simulated backends ('tile_ir', 'sharded'); "
            f"got {backend!r}"
        )
    if program is None:
        return None
    return profile_program(gpu_spec, program)


# ---------------------------------------------------------------------------
# per-pass optimizer delta report
# ---------------------------------------------------------------------------
def optimization_rows(plan, gpu="A10") -> List[Dict[str, object]]:
    """Per-pass optimizer deltas for the plan's latest tile_ir variant.

    One row per pipeline pass (``repro.codegen.opt``): the modeled
    latency before/after the pass landed, the speedup it contributed,
    how many idle seconds of each engine it reclaimed, and the pass's
    own counters (ops removed, buffers renamed, loops pipelined, ops
    reordered).  Picks the plan's newest ``tile_ir`` variant on this GPU
    that carries a pass report, so an interleaved ``opt_level=0``
    execution does not shadow an optimized one.  Empty when every
    variant on this GPU was compiled at ``opt_level=0`` (or the plan
    never executed on ``tile_ir`` here).  Rendered by
    ``repro.harness.report.optimization_table``.
    """
    from ..engine.backends import get_backend

    gpu_spec = _resolve_gpu(gpu)
    backend = get_backend("tile_ir")
    passes = None
    for key, compilation in reversed(
        list(backend._state_snapshot(plan).items())
    ):
        if key[3] == gpu_spec.name and compilation.estimate.opt_passes:
            passes = compilation.estimate.opt_passes
            break
    if not passes:
        return []
    rows: List[Dict[str, object]] = []
    for entry in passes:
        before = float(entry["latency_before_s"])  # type: ignore[arg-type]
        after = float(entry["latency_after_s"])  # type: ignore[arg-type]
        row: Dict[str, object] = {
            "pass": entry["pass"],
            "latency_before_s": before,
            "latency_after_s": after,
            "speedup": before / after if after > 0.0 else 1.0,
        }
        idle_before = entry.get("idle_before_s", {})
        idle_after = entry.get("idle_after_s", {})
        for engine in ENGINES:
            row[f"{engine}_idle_reclaimed_s"] = idle_before.get(
                engine, 0.0
            ) - idle_after.get(engine, 0.0)
        for key, value in entry.items():
            if isinstance(value, int):
                row[key] = value
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# fig5 workload bottleneck report
# ---------------------------------------------------------------------------
def workload_bottlenecks(
    kinds: Sequence[str] = ("mha", "mla", "moe", "quant_gemm"),
    config_index: int = 0,
    devices: Optional[Mapping[str, str]] = None,
) -> List[Dict[str, object]]:
    """One bottleneck row per fig5 workload (tuned RedFuser program).

    This is the report that seeds the ROADMAP's schedule-optimizer work:
    it names the engine that bounds each workload on its paper device,
    and how much of the critical path the other engines idle through.
    """
    from ..harness.runner import redfuser_program
    from ..workloads.configs import (
        MHA_CONFIGS,
        MLA_CONFIGS,
        MOE_CONFIGS,
        QUANT_GEMM_CONFIGS,
    )

    configs = {
        "mha": MHA_CONFIGS,
        "mla": MLA_CONFIGS,
        "moe": MOE_CONFIGS,
        "quant_gemm": QUANT_GEMM_CONFIGS,
    }
    device_names = dict(FIG5_DEVICES)
    if devices:
        device_names.update(devices)
    rows: List[Dict[str, object]] = []
    for kind in kinds:
        device = gpu_by_name(device_names[kind])
        config = configs[kind][config_index]
        program = redfuser_program(kind, config, device)
        profile = profile_program(device, program)
        rows.append(profile.to_row(workload=kind, config=config.name))
    return rows


# ---------------------------------------------------------------------------
# padding-waste attribution per serving bucket
# ---------------------------------------------------------------------------
def padding_waste_rows(serving_stats) -> List[Dict[str, object]]:
    """Padding overhead per bucket, from ``ServingStats`` labeled counters.

    Each row attributes the ragged batcher's waste to one padded-length
    bucket: ``waste_frac`` is the fraction of executed positions that
    were padding — the quantity a bucket-edge retune would reclaim.
    """
    rows = []
    for bucket, counts in sorted(serving_stats.padding_by_bucket().items()):
        useful = counts["useful"]
        padded = counts["padded"]
        total = useful + padded
        rows.append(
            {
                "bucket": bucket,
                "useful_positions": useful,
                "padded_positions": padded,
                "waste_frac": padded / total if total else 0.0,
            }
        )
    return rows
