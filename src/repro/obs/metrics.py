"""Unified metrics registry: counters, gauges, streaming histograms.

One registry per engine (plus private registries for standalone
components) replaces the previous patchwork of ad-hoc counter classes —
``ServingStats`` deques, ``CacheStats`` ints, per-device ``DeviceStats``
dataclasses, per-plan padding dicts — with three instrument types behind
one consistent, thread-safe API:

* :class:`Counter` — monotonic totals (requests served, positions
  padded).  Optional label dimensions (``labelnames``) give per-backend
  / per-bucket / per-device breakdowns without inventing a new class
  each time.
* :class:`Gauge` — last-write-wins values (queue depth) plus
  ``set_max`` for peak tracking (peak queue depth, max batch size).
* :class:`StreamingHistogram` — log-bucketed streaming quantiles.
  Observations land in geometric buckets (``growth`` per step, default
  2^(1/16) ≈ 4.4% relative resolution), so p50/p99/p999 are available
  over the *whole* run in O(buckets) memory — unlike a bounded
  reservoir, the tail is never under-represented on long runs.

Existing structures that already have a natural owner (the plan cache's
``CacheStats``, per-plan padding counts) join the registry through
*collectors*: callbacks sampled at collection time, so hot paths keep
their current representation while the registry stays the single export
surface.  :meth:`MetricsRegistry.render_prometheus` renders everything
in the Prometheus text exposition format (histograms as summaries).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple


class MetricError(ValueError):
    """Invalid metric declaration or use (name clash, bad labels)."""


@dataclass(frozen=True)
class Sample:
    """One exported time-series point: a name, labels, and a value."""

    name: str
    value: object
    labels: Tuple[Tuple[str, str], ...] = ()
    kind: str = "gauge"  # "counter" | "gauge" | "summary"
    help: str = ""


def relabel(sample: Sample, **labels) -> Sample:
    """A copy of ``sample`` with extra label dimensions appended.

    Used by rollups that re-export another process's samples under an
    identifying dimension — e.g. the worker pool tags every worker
    engine's samples with ``worker="w0"`` before the router's Prometheus
    scrape.  Existing labels are preserved; a clashing name raises so
    one worker's series can never silently overwrite another's.
    """
    existing = {name for name, _ in sample.labels}
    clash = existing & set(labels)
    if clash:
        raise MetricError(f"sample {sample.name!r} already has labels {sorted(clash)}")
    extra = tuple((name, str(labels[name])) for name in sorted(labels))
    return Sample(sample.name, sample.value, sample.labels + extra,
                  sample.kind, sample.help)


def _label_items(labelnames: Sequence[str], labels: Mapping[str, object]):
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Tuple = ()) -> None:
        self.name = name
        self.help = help
        self.label_items = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def samples(self) -> Iterable[Sample]:
        yield Sample(self.name, self.value, self.label_items, self.kind, self.help)


class Gauge:
    """A value that can move both ways, with peak-tracking support."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Tuple = ()) -> None:
        self.name = name
        self.help = help
        self.label_items = labels
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value) -> None:
        """Raise the gauge to ``value`` if it is a new peak (never lowers)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self):
        with self._lock:
            return self._value

    def samples(self) -> Iterable[Sample]:
        yield Sample(self.name, self.value, self.label_items, self.kind, self.help)


class StreamingHistogram:
    """Log-bucketed streaming histogram with bounded-error quantiles.

    Values map to geometric buckets: index ``floor(log(v / min_value) /
    log(growth))``.  A quantile query walks the cumulative counts and
    returns the geometric midpoint of the target bucket, clamped to the
    exact observed min/max — so the relative error is bounded by the
    bucket width (``growth - 1``) regardless of how many observations
    streamed through, in O(occupied buckets) memory.  Non-positive
    observations (latencies are positive; zero can appear from clock
    granularity) collapse into a dedicated zero bucket.
    """

    kind = "summary"

    #: Default quantiles rendered by the Prometheus exporter.
    export_quantiles = (50.0, 90.0, 99.0, 99.9)

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Tuple = (),
        min_value: float = 1e-9,
        growth: float = 2.0 ** (1.0 / 16.0),
    ) -> None:
        if min_value <= 0:
            raise MetricError("min_value must be > 0")
        if growth <= 1.0:
            raise MetricError("growth must be > 1")
        self.name = name
        self.help = help
        self.label_items = labels
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._lock = threading.Lock()
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _index(self, value: float) -> int:
        return math.floor(math.log(value / self.min_value) / self._log_growth)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= 0.0:
                self._zero += 1
            else:
                index = self._index(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (``q`` in [0, 100]) of all observations."""
        return self.percentiles((q,))[0]

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        """Several percentiles from one consistent snapshot of the buckets."""
        with self._lock:
            count = self._count
            if count == 0:
                return [math.nan for _ in qs]
            zero = self._zero
            buckets = sorted(self._buckets.items())
            lo, hi = self._min, self._max
        out = []
        for q in qs:
            target = max(1, math.ceil(q / 100.0 * count))
            cumulative = zero
            if cumulative >= target:
                out.append(min(max(0.0, lo), hi))
                continue
            value = hi
            for index, bucket_count in buckets:
                cumulative += bucket_count
                if cumulative >= target:
                    value = self.min_value * self.growth ** (index + 0.5)
                    break
            out.append(min(max(value, lo), hi))
        return out

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if count else math.nan
            hi = self._max if count else math.nan
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else math.nan,
            "min": lo,
            "max": hi,
        }

    def samples(self) -> Iterable[Sample]:
        values = self.percentiles(self.export_quantiles)
        for q, value in zip(self.export_quantiles, values):
            yield Sample(
                self.name,
                value,
                self.label_items + (("quantile", f"{q / 100.0:g}"),),
                self.kind,
                self.help,
            )
        yield Sample(self.name + "_sum", self.sum, self.label_items, self.kind, self.help)
        yield Sample(self.name + "_count", self.count, self.label_items, self.kind, self.help)


class _Family:
    """Labeled variant of one instrument: a child per label-value tuple."""

    def __init__(self, factory, name: str, help: str, labelnames: Sequence[str]) -> None:
        self._factory = factory
        self.name = name
        self.help = help
        self.kind = factory.kind
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple, object] = {}

    def labels(self, **labels):
        """The child instrument for one label-value combination."""
        items = _label_items(self.labelnames, labels)
        with self._lock:
            child = self._children.get(items)
            if child is None:
                child = self._factory(self.name, self.help, items)
                self._children[items] = child
            return child

    def children(self) -> Dict[Tuple, object]:
        with self._lock:
            return dict(self._children)

    def samples(self) -> Iterable[Sample]:
        for child in self.children().values():
            yield from child.samples()


class MetricsRegistry:
    """Thread-safe home for every instrument of one subsystem.

    Declaring the same name twice returns the existing instrument when
    the type and labels match (so layered components can share one
    registry without ownership protocols) and raises
    :class:`MetricError` when they conflict.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[str, object]" = {}
        self._collectors: List[Callable[[], Iterable[Sample]]] = []

    def _declare(self, factory, name: str, help: str, labelnames: Sequence[str], **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                wanted_family = bool(labelnames)
                is_family = isinstance(existing, _Family)
                if (
                    existing.kind != factory.kind
                    or is_family != wanted_family
                    or (is_family and existing.labelnames != tuple(labelnames))
                ):
                    raise MetricError(
                        f"metric {name!r} is already registered with a "
                        "different type or label set"
                    )
                return existing
            if labelnames:
                instrument = _Family(factory, name, help, labelnames)
            else:
                instrument = factory(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        min_value: float = 1e-9,
        growth: float = 2.0 ** (1.0 / 16.0),
    ):
        if labelnames:
            # labeled histogram children share the family's bucket policy
            factory = lambda n, h, labels=(): StreamingHistogram(  # noqa: E731
                n, h, labels, min_value=min_value, growth=growth
            )
            factory.kind = StreamingHistogram.kind
            return self._declare(factory, name, help, labelnames)
        return self._declare(
            StreamingHistogram, name, help, (), min_value=min_value, growth=growth
        )

    def register_collector(self, collector: Callable[[], Iterable[Sample]]) -> None:
        """Attach a callback sampled at collection time.

        Collectors adapt structures that keep their own representation
        (``CacheStats`` ints, per-plan padding counts) into registry
        exports without forcing a rewrite of their hot paths.
        """
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(
        self, collector: Callable[[], Iterable[Sample]]
    ) -> bool:
        """Detach a collector; returns False when it was not registered.

        Lets a closed component (a router's degraded engine, a stopped
        supervisor) stop contributing stale series to future scrapes.
        """
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                return False
            return True

    def instruments(self) -> Dict[str, object]:
        with self._lock:
            return dict(self._instruments)

    def collect(self) -> List[Sample]:
        """Every sample from every instrument and collector, point in time."""
        samples: List[Sample] = []
        for instrument in self.instruments().values():
            samples.extend(instrument.samples())
        with self._lock:
            collectors = tuple(self._collectors)
        for collector in collectors:
            samples.extend(collector())
        return samples

    def value(self, name: str, **labels):
        """Convenience lookup of one instrument's current value."""
        instrument = self.instruments()[name]
        if isinstance(instrument, _Family):
            instrument = instrument.labels(**labels)
        return instrument.value

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Counters keep their declared names (callers choose ``_total``
        suffixes); histograms render as summaries (quantile series plus
        ``_sum`` / ``_count``), which keeps the export O(metrics) rather
        than O(occupied buckets).
        """
        samples = self.collect()
        by_name: "Dict[str, List[Sample]]" = {}
        order: List[str] = []
        for sample in samples:
            base = sample.name
            for suffix in ("_sum", "_count"):
                if sample.kind == "summary" and base.endswith(suffix):
                    base = base[: -len(suffix)]
            if base not in by_name:
                by_name[base] = []
                order.append(base)
            by_name[base].append(sample)
        lines: List[str] = []
        for base in order:
            group = by_name[base]
            head = group[0]
            if head.help:
                lines.append(f"# HELP {base} {head.help}")
            prom_type = {"counter": "counter", "gauge": "gauge", "summary": "summary"}[
                head.kind
            ]
            lines.append(f"# TYPE {base} {prom_type}")
            for sample in group:
                if sample.labels:
                    rendered = ",".join(
                        f'{k}="{v}"' for k, v in sample.labels
                    )
                    lines.append(f"{sample.name}{{{rendered}}} {sample.value}")
                else:
                    lines.append(f"{sample.name} {sample.value}")
        return "\n".join(lines) + ("\n" if lines else "")
