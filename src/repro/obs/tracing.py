"""Low-overhead request tracing: spans in a thread-safe ring buffer.

A *span* is a named, timed interval of one request's life — admission,
queue wait, batch formation, plan compile, backend execute, per-device
shard, merge.  Spans carry monotonic ``perf_counter_ns`` timestamps (see
:mod:`repro.obs.clock`) and nest two ways:

* **implicitly** within one thread, via a thread-local span stack (the
  ``plan`` span recorded inside ``PlanCache.get_or_compile`` nests under
  whatever span the caller has open), and
* **explicitly** across threads, via ``parent_id`` (the scheduler
  thread's ``execute`` span parents ``shard`` spans recorded on device
  worker threads; a request's root span is opened on the client thread
  and closed on the scheduler thread).

Completed spans land in a bounded ``deque`` ring (completion order, old
spans evicted first) so tracing never grows without bound.  The whole
recorder is gated on one module-level reference: when tracing is
disabled every instrumentation helper is a single attribute load and a
``None`` check, so the instrumented hot paths stay effectively free
(the benched budget is <3% serving throughput delta with tracing off).

:meth:`Tracer.export_chrome` writes the Chrome trace-event JSON format:
open the file at https://ui.perfetto.dev (or ``chrome://tracing``) to
see the request timeline per thread.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .clock import monotonic_ns, ns_to_us

__all__ = [
    "Span",
    "SpanHandle",
    "Tracer",
    "enable_tracing",
    "disable_tracing",
    "active",
    "span",
    "start_span",
    "end_span",
    "current_span_id",
]


@dataclass(frozen=True)
class Span:
    """One completed interval. Timestamps are monotonic nanoseconds."""

    span_id: int
    parent_id: Optional[int]
    kind: str
    name: str
    start_ns: int
    end_ns: int
    tid: int
    thread_name: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class SpanHandle:
    """An in-flight span, explicitly managed via ``start_span``/``end_span``.

    The handle pins its tracer, so a span started before
    ``disable_tracing()`` still records into the ring it began in.
    Explicit handles never touch the thread-local nesting stack — they
    exist precisely for spans whose start and end happen on different
    threads, where a stack discipline cannot hold.
    """

    tracer: "Tracer"
    span_id: int
    parent_id: Optional[int]
    kind: str
    name: str
    start_ns: int
    attrs: Dict[str, Any]


class _NoopSpan:
    """Singleton stand-in when tracing is disabled: every op is a no-op."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _ThreadState:
    """Per-thread tracer state, fetched once per span enter/exit."""

    __slots__ = ("stack", "tid", "thread_name")

    def __init__(self) -> None:
        thread = threading.current_thread()
        self.stack: List[int] = []
        self.tid = thread.ident or 0
        self.thread_name = thread.name


class _SpanCtx:
    """Context-manager span: pushes onto the thread-local nesting stack."""

    __slots__ = ("_tracer", "span_id", "_parent_id", "_kind", "_name",
                 "_attrs", "_start_ns", "_state")

    def __init__(self, tracer: "Tracer", kind: str, name: str,
                 parent_id: Optional[int], attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span_id = tracer._next_id()
        self._parent_id = parent_id
        self._kind = kind
        self._name = name
        self._attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_SpanCtx":
        state = self._state = self._tracer._thread_state()
        stack = state.stack
        if self._parent_id is None and stack:
            self._parent_id = stack[-1]
        stack.append(self.span_id)
        self._start_ns = monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = monotonic_ns()
        state = self._state
        stack = state.stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc is not None:
            self._attrs["error"] = repr(exc)
        # CPython deque.append is atomic; see Tracer._ring
        self._tracer._ring.append(
            (self.span_id, self._parent_id, self._kind, self._name,
             self._start_ns, end_ns, state.tid, state.thread_name, self._attrs)
        )
        return False


class Tracer:
    """Thread-safe span recorder over a bounded completion-order ring."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        # Ring of raw span tuples, oldest evicted first.  The hot path
        # appends without a lock: CPython's ``deque.append`` with maxlen
        # is atomic, and ``Span`` objects only materialize lazily in
        # ``spans()`` — recording costs one tuple build plus the append.
        self._ring: "deque[tuple]" = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- id + nesting plumbing ---------------------------------------------
    def _next_id(self) -> int:
        return next(self._ids)

    def _thread_state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = _ThreadState()
        return state

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open context-manager span on this thread."""
        stack = self._thread_state().stack
        return stack[-1] if stack else None

    # -- recording ----------------------------------------------------------
    def _record(self, span_id, parent_id, kind, name, start_ns, end_ns, attrs) -> None:
        state = self._thread_state()
        self._ring.append(
            (span_id, parent_id, kind, name, start_ns, end_ns,
             state.tid, state.thread_name, attrs)
        )

    def span(self, kind: str, name: Optional[str] = None,
             parent_id: Optional[int] = None, **attrs) -> _SpanCtx:
        """A context-manager span (same-thread start/end, implicit nesting)."""
        return _SpanCtx(self, kind, name or kind, parent_id, attrs)

    def start_span(self, kind: str, name: Optional[str] = None,
                   parent_id: Optional[int] = None, **attrs) -> SpanHandle:
        """Open a span that may be closed on a different thread."""
        return SpanHandle(
            tracer=self,
            span_id=self._next_id(),
            parent_id=parent_id,
            kind=kind,
            name=name or kind,
            start_ns=monotonic_ns(),
            attrs=attrs,
        )

    def end_span(self, handle: SpanHandle, **attrs) -> None:
        if attrs:
            handle.attrs.update(attrs)
        self._record(
            handle.span_id, handle.parent_id, handle.kind, handle.name,
            handle.start_ns, monotonic_ns(), handle.attrs,
        )

    # -- inspection / export ------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of completed spans, oldest first (post-eviction)."""
        while True:
            try:
                # lock-free writers: retry if an append lands mid-copy
                raw = list(self._ring)
                break
            except RuntimeError:
                continue
        return [Span(*item) for item in raw]

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def to_chrome(self) -> Dict[str, Any]:
        """The completed spans as a Chrome trace-event JSON object.

        Complete (``ph: "X"``) events carry microsecond timestamps and
        durations; ``args`` keeps the span/parent ids so tools (and the
        ``repro.obs.trace`` CLI) can rebuild the request tree exactly.
        Thread-name metadata events make Perfetto label each track.
        """
        import os

        pid = os.getpid()
        events: List[Dict[str, Any]] = []
        thread_names: Dict[int, str] = {}
        for s in self.spans():
            thread_names.setdefault(s.tid, s.thread_name)
            args = {str(k): v for k, v in s.attrs.items()}
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.kind,
                    "ts": ns_to_us(s.start_ns),
                    "dur": ns_to_us(s.duration_ns),
                    "pid": pid,
                    "tid": s.tid,
                    "args": args,
                }
            )
        for tid, name in thread_names.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Chrome trace-event JSON; written to ``path`` when given."""
        trace = self.to_chrome()
        if path is not None:
            with open(path, "w") as fh:
                json.dump(trace, fh, default=str)
        return trace


# ---------------------------------------------------------------------------
# module-level gate: one attribute load decides enabled vs. disabled
# ---------------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def enable_tracing(capacity: int = 65536) -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _ACTIVE
    _ACTIVE = Tracer(capacity)
    return _ACTIVE


def disable_tracing() -> Optional[Tracer]:
    """Stop recording new spans; returns the tracer that was active.

    Spans already started via :func:`start_span` keep their handle's
    tracer and still record when ended — in-flight requests at the
    moment of disablement are not lost.
    """
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def span(kind: str, name: Optional[str] = None,
         parent_id: Optional[int] = None, **attrs):
    """Context-manager span on the active tracer; no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(kind, name, parent_id, **attrs)


def start_span(kind: str, name: Optional[str] = None,
               parent_id: Optional[int] = None, **attrs) -> Optional[SpanHandle]:
    """Cross-thread span start on the active tracer; ``None`` when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.start_span(kind, name, parent_id, **attrs)


def end_span(handle: Optional[SpanHandle], **attrs) -> None:
    """Close a handle from :func:`start_span`; accepts ``None`` silently."""
    if handle is not None:
        handle.tracer.end_span(handle, **attrs)


def current_span_id() -> Optional[int]:
    """Innermost open span id on this thread, or ``None``."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.current_span_id()
