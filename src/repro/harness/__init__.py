"""Experiment harness: paper figure runners + serving traffic replay."""

from .report import relative_summary, series_table, speedup_table
from .traffic import (
    ReplayReport,
    TrafficRequest,
    build_request_stream,
    poisson_arrivals,
    replay,
    sweep_offered_load,
)
from .runner import (
    fig5a_mha,
    fig5b_mla,
    fig5c_moe,
    fig5d_quant_gemm,
    fig6a_fusion_levels,
    fig6b_incremental,
    fig7_access_counts,
    fig8_nonml,
    fig9_multiplatform,
    geomean,
    redfuser_program,
    run_workload,
    run_workload_suite,
    scale_program,
)

__all__ = [
    "ReplayReport",
    "TrafficRequest",
    "build_request_stream",
    "poisson_arrivals",
    "replay",
    "sweep_offered_load",
    "relative_summary",
    "series_table",
    "speedup_table",
    "fig5a_mha",
    "fig5b_mla",
    "fig5c_moe",
    "fig5d_quant_gemm",
    "fig6a_fusion_levels",
    "fig6b_incremental",
    "fig7_access_counts",
    "fig8_nonml",
    "fig9_multiplatform",
    "geomean",
    "redfuser_program",
    "run_workload",
    "run_workload_suite",
    "scale_program",
]
