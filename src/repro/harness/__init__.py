"""Experiment harness: one runner per paper table/figure."""

from .report import relative_summary, series_table, speedup_table
from .runner import (
    fig5a_mha,
    fig5b_mla,
    fig5c_moe,
    fig5d_quant_gemm,
    fig6a_fusion_levels,
    fig6b_incremental,
    fig7_access_counts,
    fig8_nonml,
    fig9_multiplatform,
    geomean,
    redfuser_program,
    run_workload,
    run_workload_suite,
    scale_program,
)

__all__ = [
    "relative_summary",
    "series_table",
    "speedup_table",
    "fig5a_mha",
    "fig5b_mla",
    "fig5c_moe",
    "fig5d_quant_gemm",
    "fig6a_fusion_levels",
    "fig6b_incremental",
    "fig7_access_counts",
    "fig8_nonml",
    "fig9_multiplatform",
    "geomean",
    "redfuser_program",
    "run_workload",
    "run_workload_suite",
    "scale_program",
]
