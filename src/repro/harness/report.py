"""Plain-text report formatting for experiment rows."""

from __future__ import annotations

from typing import Dict, Sequence

from .runner import geomean


def speedup_table(rows: Sequence[Dict[str, object]], title: str) -> str:
    """Render a Fig. 5-style table: speedup over Eager per system."""
    systems = sorted(
        {
            key[: -len("_speedup")]
            for row in rows
            for key in row
            if key.endswith("_speedup")
        }
    )
    header = ["config"] + systems
    lines = [title, "  ".join(f"{h:>14}" for h in header)]
    for row in rows:
        cells = [f"{row['config']:>14}"]
        for system in systems:
            value = row.get(f"{system}_speedup")
            cells.append(f"{value:>14.2f}" if value is not None else " " * 14)
        lines.append("  ".join(cells))
    summary = ["geomean".rjust(14)]
    for system in systems:
        values = [
            row[f"{system}_speedup"]
            for row in rows
            if row.get(f"{system}_speedup") is not None
        ]
        summary.append(f"{geomean(values):>14.2f}" if values else " " * 14)
    lines.append("  ".join(summary))
    return "\n".join(lines)


def relative_summary(
    rows: Sequence[Dict[str, object]], numerator: str, denominator: str
) -> float:
    """Geomean of numerator-system speedup over denominator-system."""
    ratios = [
        row[f"{numerator}_speedup"] / row[f"{denominator}_speedup"]
        for row in rows
        if row.get(f"{numerator}_speedup") and row.get(f"{denominator}_speedup")
    ]
    return geomean(ratios)


def bottleneck_table(rows: Sequence[Dict[str, object]], title: str) -> str:
    """Render the gpusim bottleneck report (one row per profiled program).

    ``rows`` come from :meth:`repro.obs.ProgramProfile.to_row` /
    :func:`repro.obs.workload_bottlenecks`: each names the dominant
    engine for one workload and gives per-engine busy fractions of the
    modeled critical path, so the table reads as "what would you have to
    speed up to make this workload faster".
    """
    from ..obs.profile import ENGINES

    id_columns = [
        c for c in ("workload", "config", "gpu") if any(c in r for r in rows)
    ]
    busy_columns = [f"{engine}_busy_frac" for engine in ENGINES]
    header = id_columns + ["bottleneck", "latency_us"] + busy_columns + [
        "overhead_frac",
        "idle_frac",
    ]
    lines = [title, "  ".join(f"{h:>16}" for h in header)]
    for row in rows:
        cells = [f"{str(row.get(c, '--')):>16}" for c in id_columns]
        cells.append(f"{str(row.get('bottleneck', '--')):>16}")
        latency = row.get("latency_seconds")
        cells.append(
            f"{latency * 1e6:>16.2f}" if latency is not None else " " * 14 + "--"
        )
        for column in busy_columns:
            value = row.get(column)
            cells.append(f"{value:>16.3f}" if value is not None else " " * 14 + "--")
        for column in ("overhead_frac", "bottleneck_idle_frac"):
            value = row.get(column)
            cells.append(f"{value:>16.3f}" if value is not None else " " * 14 + "--")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def optimization_table(rows: Sequence[Dict[str, object]], title: str) -> str:
    """Render the tile-IR optimizer's per-pass delta report.

    ``rows`` come from :func:`repro.obs.optimization_rows`: one row per
    pipeline pass with the modeled latency before/after, the speedup the
    pass contributed, and the idle engine-seconds it reclaimed — the
    profiler-side answer to "which rewrite bought what".
    """
    from ..obs.profile import ENGINES

    reclaimed_columns = [f"{engine}_idle_reclaimed_s" for engine in ENGINES]
    header = ["pass", "before_us", "after_us", "speedup"] + [
        c.replace("_idle_reclaimed_s", "_reclaimed_us") for c in reclaimed_columns
    ]
    lines = [title, "  ".join(f"{h:>20}" for h in header)]
    for row in rows:
        cells = [f"{str(row.get('pass', '--')):>20}"]
        for column in ("latency_before_s", "latency_after_s"):
            value = row.get(column)
            cells.append(
                f"{value * 1e6:>20.3f}" if value is not None else " " * 18 + "--"
            )
        speedup = row.get("speedup")
        cells.append(
            f"{speedup:>20.3f}" if speedup is not None else " " * 18 + "--"
        )
        for column in reclaimed_columns:
            value = row.get(column)
            cells.append(
                f"{value * 1e6:>20.3f}" if value is not None else " " * 18 + "--"
            )
        lines.append("  ".join(cells))
    return "\n".join(lines)


def series_table(
    rows: Sequence[Dict[str, object]], columns: Sequence[str], title: str
) -> str:
    """Render a Fig. 6-style series (one row per sweep point)."""
    lines = [title, "  ".join(f"{c:>18}" for c in columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column)
            if value is None:
                cells.append(" " * 16 + "--")
            elif isinstance(value, float):
                cells.append(f"{value:>18.3f}")
            else:
                cells.append(f"{value:>18}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
