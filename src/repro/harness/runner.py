"""Experiment runners: one entry point per paper table/figure.

Every runner returns plain row dictionaries so benchmarks and tests can
assert on them and :mod:`repro.harness.report` can print them in the
paper's normalized form (all latencies relative to PyTorch Eager).
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines import (
    compile_eager,
    compile_inductor,
    compile_tvm,
    expert_fused_program,
)
from ..codegen import TileConfig, autotune, estimate_kernel, tensorize_single_segment
from ..gpusim import GPUSpec, Program, gpu as gpu_by_name, program_latency
from ..gpusim.levels import (
    incremental_sweep,
    memory_access_counts,
    softmax_fusion_level_latency,
)
from ..workloads import attention, mla, moe, nonml, quant_gemm
from ..workloads.configs import (
    INERTIA_CONFIGS,
    MHA_CONFIGS,
    MLA_CONFIGS,
    MOE_CONFIGS,
    QUANT_GEMM_CONFIGS,
    VARIANCE_CONFIGS,
)
from ..workloads.serving_mix import SERVING_KINDS

#: Workloads with an engine-level single-query wrapper (``engine_query``)
#: usable by every execution backend, including ``tile_ir``; one source
#: of truth with the serving traffic mix.
ENGINE_WORKLOADS = SERVING_KINDS

#: Reduced tuner search space used by the harness (fast, still real).
TUNE_SPACE = dict(
    blk_rows=(32, 64, 128),
    blk_len=(16, 32, 64, 128),
    threads=(256,),
    pipeline=(1, 2, 3),
    segments=(1, 2, 4, 8, 16, 32, 64),
)


def scale_program(program: Program, instances: int) -> Program:
    """Replicate a per-instance kernel across batch/head instances."""
    scaled = Program(name=program.name)
    for kernel in program.kernels:
        scaled.add(
            kernel.with_(
                grid=kernel.grid * instances,
                bytes_read=kernel.bytes_read * instances,
                bytes_written=kernel.bytes_written * instances,
                flops=kernel.flops * instances,
            )
        )
    return scaled


def redfuser_program(kind: str, config, device: GPUSpec) -> Program:
    """RedFuser's tuned fused program for one workload config."""
    if kind == "mha":
        spec, instances = attention.fused_spec(config)
        return autotune(
            spec, device, dtype="fp16", instances=instances, **TUNE_SPACE
        ).program
    if kind == "mla":
        spec, instances = mla.fused_spec(config)
        tuned = autotune(
            spec, device, dtype="fp16", instances=instances, **TUNE_SPACE
        ).program
        return _alias_mla_latent(tuned, config)
    if kind == "quant_gemm":
        return quant_gemm.redfuser_program(config, device.has_fp8)
    if kind == "moe":
        return moe.redfuser_program(config)
    if kind == "variance":
        return nonml.variance_redfuser_program(config)
    if kind == "inertia":
        return nonml.inertia_redfuser_program(config)
    raise ValueError(f"unknown workload kind {kind!r}")


_GRAPH_BUILDERS: Dict[str, Callable] = {
    "mha": attention.op_graph,
    "mla": mla.op_graph,
    "moe": moe.op_graph,
    "quant_gemm": quant_gemm.op_graph,
    "variance": nonml.variance_op_graph,
    "inertia": nonml.inertia_op_graph,
}

#: Which workloads have a hand-optimized library baseline (§5.1).
_EXPERT_NAMES = {"mha": "FlashAttention2", "mla": "FlashMLA"}


def expert_program_for(kind: str, config, device: GPUSpec) -> Program:
    """Hand-written library kernel: fixed (128, 128) tile, no tuning.

    The hand-written kernels fall back to smaller static tiles when the
    preferred one exceeds the device's shared memory (FlashAttention's
    head-dim-dependent tile table); they never search.
    """
    from ..gpusim import occupancy

    if kind == "mla":
        spec, instances = mla.fused_spec(config)
        tuned = autotune(
            spec, gpu_by_name(device.name), dtype="fp16", instances=instances,
            **TUNE_SPACE,
        ).program
        tuned = _alias_mla_latent(tuned, config)
        program = Program(name="mla_expert")
        for kernel in tuned.kernels:
            program.add(
                kernel.with_(
                    memory_efficiency=min(1.0, kernel.memory_efficiency * 1.03),
                    compute_efficiency=min(1.0, kernel.compute_efficiency * 1.03),
                )
            )
        return program

    spec, instances = attention.fused_spec(config)
    for rows_t, len_t, depth in ((128, 128, 2), (128, 128, 1), (128, 64, 2), (64, 64, 2), (64, 64, 1), (64, 32, 1)):
        cfg = TileConfig(
            blk_rows=min(rows_t, spec.rows),
            blk_len=min(len_t, spec.length),
            threads=256,
            pipeline_depth=depth,
        )
        if spec.rows % cfg.blk_rows or spec.length % cfg.blk_len:
            continue
        tp = tensorize_single_segment(spec, cfg)
        kernel = estimate_kernel(tp, cfg.threads, cfg.pipeline_depth, "fp16")
        if occupancy(device, kernel).feasible:
            program = Program(name=f"{kind}_expert")
            program.add(kernel)
            return scale_program(program, instances)
    raise ValueError(f"no feasible expert tile for {kind}/{config.name}")


def _alias_mla_latent(program: Program, config) -> Program:
    """Correct for latent-KV aliasing the tensorizer cannot express.

    In MLA the value vectors are the first hd dims of the same latent
    rows the keys use; a real fused kernel loads the latent once.  The
    tile IR models K and V as separate buffers, so the estimator counts
    the value bytes twice; subtract the duplicated V traffic.
    """
    duplicated = float(config.bs) * config.kv * config.hd * 2
    adjusted = Program(name=program.name + "_aliased")
    for kernel in program.kernels:
        if "partial" in kernel.name or "single" in kernel.name:
            kernel = kernel.with_(
                bytes_read=max(kernel.bytes_read - duplicated, 0.0)
            )
        adjusted.add(kernel)
    return adjusted


def run_workload(kind: str, config, device: GPUSpec) -> Dict[str, object]:
    """Latency of every system on one config; speedups vs Eager."""
    graph = _GRAPH_BUILDERS[kind](config)
    fused = redfuser_program(kind, config, device)
    latencies = {
        "eager": program_latency(device, compile_eager(graph)),
        "dynamo": program_latency(device, compile_inductor(graph)),
        "tvm": program_latency(device, compile_tvm(graph)),
        "redfuser": program_latency(device, fused),
    }
    expert = _EXPERT_NAMES.get(kind)
    if expert is not None:
        program = expert_fused_program(expert, expert_program_for(kind, config, device))
        latencies[expert] = program_latency(device, program)
    row: Dict[str, object] = {"config": config.name, "gpu": device.name}
    row.update({f"{k}_latency": v for k, v in latencies.items()})
    for system, latency in latencies.items():
        row[f"{system}_speedup"] = latencies["eager"] / latency
    return row


def run_workload_suite(
    kind: str, configs: Sequence, device: GPUSpec
) -> List[Dict[str, object]]:
    return [run_workload(kind, c, device) for c in configs]


def geomean(values: Sequence[float]) -> float:
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ---------------------------------------------------------------------------
# execution-backend comparison (engine-level, all registered backends)
# ---------------------------------------------------------------------------
def engine_workload(
    kind: str, rng, *, length: int = 256, width: int = 16
) -> tuple:
    """(cascade, single-query inputs) for one engine-servable workload.

    Thin wrapper over :func:`repro.workloads.serving_mix.query_for`
    (the request generators live with the workloads so the serving
    traffic driver and this comparison share one definition).
    """
    from ..workloads.serving_mix import query_for

    return query_for(kind, rng, length=length, width=width)


def time_best(fn: Callable, repeats: int = 5) -> float:
    """Best-of-N wall-clock seconds for one call of ``fn``.

    Shared with the benchmark suite (``benchmarks/_bench_util.py``
    re-exports this) so there is exactly one timing convention.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_backend_comparison(
    workloads: Sequence[str] = ENGINE_WORKLOADS,
    backends: Optional[Sequence[str]] = None,
    *,
    length: int = 256,
    width: int = 16,
    device_name: str = "A10",
    repeats: int = 3,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Execute each workload on every registered backend; one row each.

    Rows carry wall-clock seconds, the max abs deviation from the
    ``unfused`` reference, and — for simulated backends (``tile_ir``) —
    the GPU cost model's latency estimate for the tuned tile program.
    Backends that do not support a workload's plan (e.g. ``tile_ir`` on
    top-k cascades) are reported with ``supported: False``.
    """
    from ..engine import Engine
    from ..engine.backends import available_backends, get_backend

    names = tuple(backends) if backends is not None else available_backends()
    rows: List[Dict[str, object]] = []
    rng_master = np.random.default_rng(seed)
    for kind in workloads:
        cascade, inputs = engine_workload(
            kind, rng_master, length=length, width=width
        )
        engine = Engine()
        plan = engine.plan_for(cascade)
        reference = plan.execute(inputs, mode="unfused")
        for name in names:
            backend = get_backend(name)
            row: Dict[str, object] = {
                "workload": kind,
                "backend": name,
                "gpu": device_name,
                "length": length,
                "width": width,
            }
            if not backend.supports(plan):
                row["supported"] = False
                rows.append(row)
                continue
            options = {"gpu": device_name} if backend.capabilities.simulated else {}
            out = plan.execute(inputs, mode=name, **options)
            deviation = max(
                float(abs(out[k] - reference[k]).max()) for k in reference
            )
            row.update(
                supported=True,
                max_abs_error=deviation,
                seconds=time_best(
                    lambda: plan.execute(inputs, mode=name, **options), repeats
                ),
            )
            if backend.capabilities.simulated:
                estimate = backend.estimate_for(plan, device_name)
                if estimate is not None:
                    row["simulated_latency_seconds"] = estimate.latency_seconds
                    if hasattr(estimate, "blk_rows"):  # tile-program estimates
                        row["tile_config"] = {
                            "blk_rows": estimate.blk_rows,
                            "blk_len": estimate.blk_len,
                            "threads": estimate.threads,
                            "pipeline_depth": estimate.pipeline_depth,
                            "num_segments": estimate.num_segments,
                            "strategy": estimate.strategy,
                        }
            rows.append(row)
        counts = plan.execution_counts
        for row in rows:
            if row["workload"] == kind and row.get("supported"):
                row["executions_recorded"] = counts.get(row["backend"], 0)
    return rows


# ---------------------------------------------------------------------------
# figure entry points
# ---------------------------------------------------------------------------
def fig5a_mha(device_name: str = "A10") -> List[Dict[str, object]]:
    """Figure 5a: MHA subgraph performance on A10."""
    return run_workload_suite("mha", MHA_CONFIGS, gpu_by_name(device_name))


def fig5b_mla(device_name: str = "H800") -> List[Dict[str, object]]:
    """Figure 5b: MLA subgraph performance on H800."""
    return run_workload_suite("mla", MLA_CONFIGS, gpu_by_name(device_name))


def fig5c_moe(device_name: str = "A10") -> List[Dict[str, object]]:
    """Figure 5c: MoE routing performance on A10."""
    return run_workload_suite("moe", MOE_CONFIGS, gpu_by_name(device_name))


def fig5d_quant_gemm(device_name: str = "H800") -> List[Dict[str, object]]:
    """Figure 5d: FP8 PerToken Quant+GEMM performance on H800."""
    return run_workload_suite(
        "quant_gemm", QUANT_GEMM_CONFIGS, gpu_by_name(device_name)
    )


def fig6a_fusion_levels(
    device_name: str = "A10", sizes: Sequence[int] = (1024, 2048, 4096, 8192)
) -> List[Dict[str, object]]:
    """Figure 6a: safe-softmax latency by fusion level, vs unfused."""
    device = gpu_by_name(device_name)
    rows = []
    for n in sizes:
        unfused = softmax_fusion_level_latency(device, n)
        row: Dict[str, object] = {"n": n, "unfused_latency": unfused.latency}
        for level in (1, 2, 3, 4):
            result = softmax_fusion_level_latency(device, n, fusion_level=level)
            row[f"{result.strategy}_speedup"] = unfused.latency / result.latency
        rows.append(row)
    return rows


def fig6b_incremental(device_name: str = "A10") -> List[Dict[str, object]]:
    """Figure 6b: incremental vs non-incremental across waves/SM."""
    device = gpu_by_name(device_name)
    points = incremental_sweep(device)
    baseline = max(p.incremental_latency for p in points)
    rows = []
    for p in points:
        rows.append(
            {
                "segment_len": p.segment_len,
                "waves_per_sm": p.waves_per_sm,
                "incremental_perf": baseline / p.incremental_latency,
                "non_incremental_perf": (
                    None
                    if p.non_incremental_latency is None
                    else baseline / p.non_incremental_latency
                ),
            }
        )
    return rows


def fig7_access_counts(n: int = 4096) -> List[Dict[str, object]]:
    """Figure 7: how many times d_K is loaded, by fusion level."""
    rows = [{"strategy": "unfused", "dk_loads": memory_access_counts(n, None)}]
    names = {1: "intra-thread", 2: "intra-warp", 3: "intra-block", 4: "inter-block"}
    for level, name in names.items():
        rows.append({"strategy": name, "dk_loads": memory_access_counts(n, level)})
    return rows


def fig8_nonml(
    device_names: Sequence[str] = ("A10", "A100", "H800", "MI308X"),
) -> Dict[str, List[Dict[str, object]]]:
    """Figure 8: variance + moment-of-inertia across platforms."""
    out: Dict[str, List[Dict[str, object]]] = {}
    for name in device_names:
        device = gpu_by_name(name)
        out[f"variance/{name}"] = run_workload_suite(
            "variance", VARIANCE_CONFIGS, device
        )
        out[f"inertia/{name}"] = run_workload_suite(
            "inertia", INERTIA_CONFIGS, device
        )
    return out


def fig9_multiplatform(
    device_names: Sequence[str] = ("A100", "H800", "MI308X"),
) -> Dict[str, List[Dict[str, object]]]:
    """Figure 9: MoE routing + MHA (+ Quant on MI308X) across platforms."""
    out: Dict[str, List[Dict[str, object]]] = {}
    for name in device_names:
        device = gpu_by_name(name)
        out[f"moe/{name}"] = run_workload_suite("moe", MOE_CONFIGS, device)
        out[f"mha/{name}"] = run_workload_suite("mha", MHA_CONFIGS, device)
    out["quant_gemm/MI308X"] = run_workload_suite(
        "quant_gemm", QUANT_GEMM_CONFIGS, gpu_by_name("MI308X")
    )
    return out
