"""Fault injection for the multi-process serving tier.

A :class:`ChaosPolicy` is a timed schedule of worker faults —
``kill`` (SIGKILL), ``hang`` (the worker stops draining its pipe),
``delay`` (a bounded recv-loop stall), ``crash_after`` (``os._exit``
on the N-th subsequent request) — injected into a live
:class:`~repro.engine.pool.WorkerPool` while traffic replays through
the :class:`~repro.engine.router.Router` on top of it.  Schedules are
seeded (:meth:`ChaosPolicy.seeded`), so a chaos run replays the exact
same fault sequence every time: CI gates on deterministic scenarios,
not on luck.

For every *disruptive* fault (everything but ``delay``) the run probes
the slot until it holds a **new** live process that answers pings —
that span is the recovery time the chaos report aggregates (p50/p99).
A slot that never recovers inside ``recovery_timeout_s`` counts as
lost, which fails the bench gate.

Typical use (see ``benchmarks/bench_serving.py``)::

    policy = ChaosPolicy.seeded(7, num_workers=2, horizon_s=3.0, kills=2)
    with WorkerPool(2, store) as pool:
        router = Router(pool, max_retries=3)
        run = policy.start(pool)
        report = replay(router, stream, collect_results=True)
        chaos = run.finish()
    assert report.failed == 0 and chaos.lost == 0
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.pool import WorkerError, WorkerPool
from ..obs.clock import monotonic_s

#: fault kinds the worker loop understands (see ``pool._worker_main``).
CHAOS_KINDS = ("kill", "hang", "delay", "crash_after")
#: kinds that take the worker out (and should therefore recover).
DISRUPTIVE_KINDS = ("kill", "hang", "crash_after")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: at ``at_s`` into the run, hit ``worker``.

    ``arg`` parameterizes the kind: hang duration (None = forever),
    delay seconds, or the crash countdown for ``crash_after``.
    """

    at_s: float
    worker: int
    kind: str
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"kind must be one of {CHAOS_KINDS}, got {self.kind!r}"
            )

    @property
    def disruptive(self) -> bool:
        return self.kind in DISRUPTIVE_KINDS


def seeded_schedule(
    rng: np.random.Generator,
    num_workers: int,
    horizon_s: float,
    *,
    count: int = 2,
    kinds: Sequence[str] = ("kill",),
    window: Tuple[float, float] = (0.2, 0.8),
) -> List[ChaosEvent]:
    """Draw ``count`` events uniformly inside ``window`` of the horizon.

    Events spread over workers round-robin from a random offset so a
    2-event schedule on 2 workers hits both; times sort ascending.
    Deterministic for a given generator state — pass a freshly seeded
    ``np.random.default_rng(seed)`` for replayable schedules.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    lo, hi = window
    if not 0 <= lo < hi <= 1:
        raise ValueError("window must satisfy 0 <= lo < hi <= 1")
    times = np.sort(rng.uniform(lo * horizon_s, hi * horizon_s, size=count))
    offset = int(rng.integers(num_workers))
    return [
        ChaosEvent(
            at_s=float(t),
            worker=(offset + i) % num_workers,
            kind=kinds[i % len(kinds)],
        )
        for i, t in enumerate(times)
    ]


@dataclass
class ChaosReport:
    """Outcome of one chaos run, aggregated for gates and artifacts."""

    events: List[Dict[str, object]]
    injected: int
    skipped: int
    disruptive: int
    recovered: int
    recovery_times_s: List[float]

    @property
    def lost(self) -> int:
        """Disruptive faults whose slot never came back — must be 0."""
        return self.disruptive - self.recovered

    def recovery_percentile(self, q: float) -> float:
        if not self.recovery_times_s:
            return float("nan")
        return float(np.percentile(np.asarray(self.recovery_times_s), q))

    def snapshot(self) -> Dict[str, object]:
        return {
            "injected": self.injected,
            "skipped": self.skipped,
            "disruptive": self.disruptive,
            "recovered": self.recovered,
            "lost": self.lost,
            "recovery_p50_s": self.recovery_percentile(50.0),
            "recovery_p99_s": self.recovery_percentile(99.0),
            "events": list(self.events),
        }


class ChaosPolicy:
    """A replayable fault schedule plus the recovery-probe parameters."""

    def __init__(
        self,
        events: Sequence[ChaosEvent],
        *,
        recovery_timeout_s: float = 30.0,
        probe_interval_s: float = 0.02,
    ) -> None:
        if recovery_timeout_s <= 0:
            raise ValueError("recovery_timeout_s must be > 0")
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be > 0")
        self.events = sorted(events, key=lambda e: e.at_s)
        self.recovery_timeout_s = recovery_timeout_s
        self.probe_interval_s = probe_interval_s

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_workers: int,
        horizon_s: float,
        *,
        count: int = 2,
        kinds: Sequence[str] = ("kill",),
        window: Tuple[float, float] = (0.2, 0.8),
        recovery_timeout_s: float = 30.0,
    ) -> "ChaosPolicy":
        """Deterministic schedule from a seed (same seed → same faults)."""
        rng = np.random.default_rng(seed)
        return cls(
            seeded_schedule(
                rng, num_workers, horizon_s,
                count=count, kinds=kinds, window=window,
            ),
            recovery_timeout_s=recovery_timeout_s,
        )

    @staticmethod
    def inject(pool: WorkerPool, event: ChaosEvent) -> None:
        """Apply one fault to the pool right now.

        ``kill`` SIGKILLs the slot's process; the other kinds ride the
        pool's chaos wire op.  Raises :class:`WorkerError` when the
        target slot is already dead (nothing to disturb).
        """
        if event.kind == "kill":
            if not pool.alive()[event.worker]:
                raise WorkerError(f"worker w{event.worker} is not alive")
            pool.kill(event.worker)
        else:
            pool.inject(event.worker, event.kind, event.arg)

    def start(self, pool: WorkerPool) -> "ChaosRun":
        """Begin injecting this schedule against ``pool`` (background)."""
        return ChaosRun(self, pool)


class ChaosRun:
    """One in-flight execution of a :class:`ChaosPolicy` against a pool."""

    def __init__(self, policy: ChaosPolicy, pool: WorkerPool) -> None:
        self.policy = policy
        self.pool = pool
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._recovery_times: List[float] = []
        self._probes: List[threading.Thread] = []
        self._counts = {"injected": 0, "skipped": 0,
                        "disruptive": 0, "recovered": 0}
        self._start = monotonic_s()
        self._injector = threading.Thread(
            target=self._inject_loop, name="repro-chaos-injector", daemon=True
        )
        self._injector.start()

    def _inject_loop(self) -> None:
        for event in self.policy.events:
            delay = self._start + event.at_s - monotonic_s()
            if delay > 0:
                time.sleep(delay)
            if self.pool.closed:
                break
            old_pid = self.pool.pids()[event.worker]
            entry: Dict[str, object] = {
                "at_s": event.at_s, "worker": f"w{event.worker}",
                "kind": event.kind, "arg": event.arg,
            }
            try:
                ChaosPolicy.inject(self.pool, event)
            except WorkerError:
                entry["status"] = "skipped"  # slot already down
                with self._lock:
                    self._counts["skipped"] += 1
                    self._events.append(entry)
                continue
            entry["status"] = "injected"
            with self._lock:
                self._counts["injected"] += 1
                if event.disruptive:
                    self._counts["disruptive"] += 1
                self._events.append(entry)
            if event.disruptive:
                probe = threading.Thread(
                    target=self._probe_recovery,
                    args=(event, old_pid, entry, monotonic_s()),
                    name=f"repro-chaos-probe-w{event.worker}", daemon=True,
                )
                probe.start()
                with self._lock:
                    self._probes.append(probe)

    def _probe_recovery(self, event: ChaosEvent, old_pid: Optional[int],
                        entry: Dict[str, object], injected_at: float) -> None:
        """Wait for the slot to hold a *new*, live, pingable process.

        Uniform recovery signal across kill / hang / crash_after: the
        supervisor replaces the process (pid changes) and the
        replacement answers a ping.  The measured span is what the
        ``fault_recovery`` bench section reports as recovery time.
        """
        deadline = injected_at + self.policy.recovery_timeout_s
        while monotonic_s() < deadline and not self.pool.closed:
            pid = self.pool.pids()[event.worker]
            if (pid is not None and pid != old_pid
                    and self.pool.alive()[event.worker]
                    and self.pool.ping_one(event.worker, timeout=1.0)
                    is not None):
                elapsed = monotonic_s() - injected_at
                with self._lock:
                    self._counts["recovered"] += 1
                    self._recovery_times.append(elapsed)
                    entry["recovered_s"] = elapsed
                return
            time.sleep(self.policy.probe_interval_s)
        entry["recovered_s"] = None  # lost: slot never came back

    def finish(self, timeout: Optional[float] = None) -> ChaosReport:
        """Join the injector and every recovery probe; build the report.

        Call after the traffic replay completes — the recovery probes
        bound themselves by ``recovery_timeout_s``, so this returns even
        when a slot is genuinely lost.
        """
        budget = (self.policy.recovery_timeout_s + 5.0
                  if timeout is None else timeout)
        deadline = monotonic_s() + budget
        self._injector.join(budget)
        with self._lock:
            probes = list(self._probes)
        for probe in probes:
            probe.join(max(0.0, deadline - monotonic_s()))
        with self._lock:
            return ChaosReport(
                events=[dict(e) for e in self._events],
                injected=self._counts["injected"],
                skipped=self._counts["skipped"],
                disruptive=self._counts["disruptive"],
                recovered=self._counts["recovered"],
                recovery_times_s=list(self._recovery_times),
            )
