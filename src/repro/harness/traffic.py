"""Traffic replay: Poisson arrivals driven against the serving runtime.

The driver models an open-loop client population: request arrival times
are drawn from a Poisson process at a configured offered load, the
request payloads are a mixed blend of engine-servable workloads
(:func:`repro.workloads.serving_mix.request_mix`), and replay submits
each request to a :class:`~repro.engine.serving.ServingEngine` at its
arrival time, collecting per-request latency (arrival → completion) and
shed counts.  The report carries throughput and p50/p99 latency — per
tenant and per priority class as well as overall — the numbers
``benchmarks/bench_serving.py`` sweeps against offered load into
``BENCH_serving.json``.

Adversarial multi-tenant traffic composes from :class:`TenantProfile`
shapes: each profile is one tenant's rate, priority class, geometry,
deadline distribution, and burstiness (:func:`bursty_arrivals` models
an on/off process whose arrivals cluster while the mean load stays
fixed).  :func:`adversarial_stream` merges the per-tenant streams in
arrival order — e.g. one background hog saturating the queue against
many interactive clients with tight deadlines, the scenario the SLA
bench gates on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.serving import (
    PRIORITY_CLASSES,
    AdmissionError,
    ServingEngine,
    priority_index,
)
from ..obs.clock import monotonic_s
from ..workloads.serving_mix import (
    SERVING_KINDS,
    draw_deadline,
    request_mix,
)


@dataclass(frozen=True)
class TrafficRequest:
    """One replayable request: payload plus its scheduled arrival time.

    ``tenant`` / ``priority`` / ``deadline_s`` pass straight through to
    ``ServingEngine.submit``; None means "use the serving defaults".
    """

    kind: str
    cascade: object
    inputs: Dict[str, np.ndarray]
    arrival_s: float
    tenant: Optional[str] = None
    priority: Optional[object] = None
    deadline_s: Optional[float] = None


def poisson_arrivals(
    rng: np.random.Generator, rate_rps: float, count: int
) -> np.ndarray:
    """Cumulative arrival times (seconds) of a Poisson process."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=count))


def bursty_arrivals(
    rng: np.random.Generator,
    rate_rps: float,
    count: int,
    *,
    burst_factor: float = 8.0,
    duty: float = 0.25,
    cycle_s: float = 0.05,
) -> np.ndarray:
    """Cumulative arrival times of an on/off (bursty) Poisson process.

    The process alternates phases over a ``cycle_s`` period: an "on"
    phase lasting ``duty`` of the cycle at ``burst_factor`` times the
    nominal rate, and an "off" phase at whatever trickle keeps the mean
    offered load at ``rate_rps``.  Arrivals cluster adversarially — the
    queue sees deep spikes — while a load sweep still reads the same
    average rate.  ``burst_factor=1`` degenerates to plain Poisson.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    if burst_factor < 1:
        raise ValueError("burst_factor must be >= 1")
    if not 0 < duty < 1:
        raise ValueError("duty must be in (0, 1)")
    if cycle_s <= 0:
        raise ValueError("cycle_s must be > 0")
    if burst_factor == 1:
        return poisson_arrivals(rng, rate_rps, count)
    on_rate = rate_rps * burst_factor
    # cap the duty cycle so the on phase never carries more than the
    # whole mean load; duty*on + (1-duty)*off = rate fixes the off-phase
    # trickle (floored so the off phase is never fully silent)
    duty = min(duty, 1.0 / burst_factor)
    off_rate = max(
        rate_rps * 1e-2,
        rate_rps * (1.0 - duty * burst_factor) / (1.0 - duty),
    )
    # inhomogeneous Poisson via time rescaling: each arrival consumes one
    # unit-exponential mass, advanced piecewise through the on/off phases
    # (a long off-phase gap must not leap over the bursts in between)
    masses = rng.exponential(1.0, size=count)
    times = np.empty(count)
    t = 0.0
    on = True
    phase_left = duty * cycle_s  # explicit phase state: no float-modulo
    for i in range(count):
        mass = masses[i]
        while True:
            rate = on_rate if on else off_rate
            if mass <= phase_left * rate:
                step = mass / rate
                t += step
                phase_left -= step
                break
            t += phase_left
            mass -= phase_left * rate
            on = not on
            phase_left = (duty if on else 1.0 - duty) * cycle_s
        times[i] = t
    return times


def build_request_stream(
    rng: np.random.Generator,
    count: int,
    rate_rps: float,
    *,
    kinds: Sequence[str] = SERVING_KINDS,
    weights: Optional[Sequence[float]] = None,
    length=256,
    width: int = 16,
) -> List[TrafficRequest]:
    """Poisson-timed mixed-workload request stream, ready to replay.

    ``length`` may be an int or a sequence of KV lengths to draw from
    per request (mixed-length traffic); see
    :func:`repro.workloads.serving_mix.request_mix`.
    """
    arrivals = poisson_arrivals(rng, rate_rps, count)
    mix = request_mix(
        count, rng, kinds=kinds, weights=weights, length=length, width=width
    )
    return [
        TrafficRequest(kind=kind, cascade=cascade, inputs=inputs, arrival_s=t)
        for (kind, cascade, inputs), t in zip(mix, arrivals)
    ]


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape for adversarial multi-tenant replay.

    ``deadline_s`` follows :func:`repro.workloads.serving_mix.draw_deadline`
    (None | fixed | per-request choice set); ``burst_factor > 1`` makes
    the tenant's arrivals bursty (:func:`bursty_arrivals`).
    """

    tenant: str
    rate_rps: float
    count: int
    priority: object = "standard"
    kinds: Sequence[str] = SERVING_KINDS
    weights: Optional[Sequence[float]] = None
    length: object = 256
    width: int = 16
    deadline_s: object = None
    burst_factor: float = 1.0


def tenant_stream(
    rng: np.random.Generator, profile: TenantProfile
) -> List[TrafficRequest]:
    """One tenant's timed request stream from its :class:`TenantProfile`."""
    if profile.burst_factor > 1:
        arrivals = bursty_arrivals(
            rng, profile.rate_rps, profile.count,
            burst_factor=profile.burst_factor,
        )
    else:
        arrivals = poisson_arrivals(rng, profile.rate_rps, profile.count)
    mix = request_mix(
        profile.count, rng, kinds=profile.kinds, weights=profile.weights,
        length=profile.length, width=profile.width,
    )
    return [
        TrafficRequest(
            kind=kind, cascade=cascade, inputs=inputs, arrival_s=t,
            tenant=profile.tenant, priority=profile.priority,
            deadline_s=draw_deadline(rng, profile.deadline_s),
        )
        for (kind, cascade, inputs), t in zip(mix, arrivals)
    ]


def adversarial_stream(
    rng: np.random.Generator, profiles: Sequence[TenantProfile]
) -> List[TrafficRequest]:
    """Merge per-tenant streams into one arrival-ordered replay stream.

    This is how the adversarial scenarios compose: a hog profile
    (high rate, long lengths, ``priority="batch"``) merged with
    interactive profiles (tight deadlines, ``priority="interactive"``)
    hits the scheduler exactly as concurrent tenants would.
    """
    if not profiles:
        raise ValueError("need at least one tenant profile")
    merged: List[TrafficRequest] = []
    for profile in profiles:
        merged.extend(tenant_stream(rng, profile))
    merged.sort(key=lambda request: request.arrival_s)
    return merged


def _class_name(priority: Optional[object]) -> str:
    """Priority-class label a request's outcome is attributed under.

    ``None`` reports as ``"standard"`` — the serving default class —
    so unattributed legacy streams keep aggregating somewhere sensible.
    """
    if priority is None:
        return PRIORITY_CLASSES[priority_index("standard")]
    return PRIORITY_CLASSES[priority_index(priority)]


@dataclass
class ReplayReport:
    """Outcome of one traffic replay at a fixed offered load.

    Alongside the aggregate counters, latencies and sheds break down by
    tenant and by priority class (client-side, from future outcomes),
    so a scenario can gate on e.g. "the interactive tenant's p99 stayed
    flat and every shed came from the batch class" without trusting the
    server's own accounting.
    """

    offered_rps: float
    requests: int
    completed: int
    shed: int
    failed: int
    duration_s: float
    latencies_s: List[float] = field(default_factory=list)
    by_kind: Dict[str, int] = field(default_factory=dict)
    latencies_by_tenant: Dict[str, List[float]] = field(default_factory=dict)
    completed_by_tenant: Dict[str, int] = field(default_factory=dict)
    shed_by_class: Dict[str, int] = field(default_factory=dict)
    deadline_misses: int = 0
    #: execution failures by exception class name (chaos/differential
    #: runs gate on "zero client-visible errors" per failure type)
    failures: Dict[str, int] = field(default_factory=dict)
    #: per-request outputs in stream order (only with
    #: ``replay(..., collect_results=True)``); non-completed slots are
    #: None — this is what bitwise differential comparisons consume
    results: Optional[List[object]] = None

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def tenant_latency_percentile(self, tenant: str, q: float) -> float:
        latencies = self.latencies_by_tenant.get(tenant)
        if not latencies:
            return float("nan")
        return float(np.percentile(np.asarray(latencies), q))

    def snapshot(self) -> Dict[str, object]:
        by_tenant = {
            tenant: {
                "completed": self.completed_by_tenant.get(tenant, 0),
                "p50_latency_s": self.tenant_latency_percentile(tenant, 50.0),
                "p99_latency_s": self.tenant_latency_percentile(tenant, 99.0),
            }
            for tenant in sorted(self.latencies_by_tenant)
        }
        return {
            "offered_rps": self.offered_rps,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_latency_s": self.latency_percentile(50.0),
            "p99_latency_s": self.latency_percentile(99.0),
            "by_kind": dict(self.by_kind),
            "by_tenant": by_tenant,
            "shed_by_class": dict(self.shed_by_class),
            "deadline_misses": self.deadline_misses,
            "failures": dict(self.failures),
        }


def replay(
    serving,
    requests: Sequence[TrafficRequest],
    *,
    mode: str = "auto",
    offered_rps: Optional[float] = None,
    collect_results: bool = False,
) -> ReplayReport:
    """Submit a timed request stream; block until every future resolves.

    ``serving`` is any front end with the
    :meth:`~repro.engine.serving.ServingEngine.submit` surface
    (``submit(cascade, inputs, mode, *, tenant=, priority=,
    deadline_s=) -> Future``) — an in-process
    :class:`~repro.engine.serving.ServingEngine` or a multi-process
    :class:`~repro.engine.router.Router`; the same stream drives both,
    which is how the differential and scaling benchmarks compare them.

    The submitting thread paces itself to each request's ``arrival_s``
    (open loop: a slow scheduler does not slow arrivals down, it grows
    the queue until admission control sheds).  Per-request latency is
    measured from the *scheduled arrival* to future completion, so
    queueing delay — including time spent waiting for a micro-batch
    window — is part of the number, exactly as a client would see it.

    ``collect_results=True`` additionally keeps every completed
    request's outputs (in stream order, None where not completed) on
    ``report.results`` so chaos/differential runs can compare replayed
    outputs bitwise against an undisturbed reference replay.
    """
    if not requests:
        raise ValueError("need at least one request to replay")
    if offered_rps is None:
        horizon = requests[-1].arrival_s
        offered_rps = len(requests) / horizon if horizon > 0 else float("inf")

    lock = threading.Lock()
    latencies: List[float] = []
    outcomes = {"completed": 0, "shed": 0, "failed": 0, "deadline_misses": 0}
    by_kind: Dict[str, int] = {}
    latencies_by_tenant: Dict[str, List[float]] = {}
    completed_by_tenant: Dict[str, int] = {}
    shed_by_class: Dict[str, int] = {}
    failures: Dict[str, int] = {}
    results: Optional[List[object]] = (
        [None] * len(requests) if collect_results else None
    )
    pending: List = []

    # One monotonic clock for the whole repo (repro.obs.clock): replay
    # pacing, client-observed latency, and the engine's span/latency
    # instrumentation all share the same timebase, so a replayed trace
    # lines up with the serving stats it produced.
    start = monotonic_s()

    def on_done(arrival_abs: float, index: int,
                request: TrafficRequest, future) -> None:
        latency = monotonic_s() - arrival_abs
        tenant = request.tenant if request.tenant is not None else "default"
        with lock:
            error = future.exception()
            if error is None:
                outcomes["completed"] += 1
                latencies.append(latency)
                by_kind[request.kind] = by_kind.get(request.kind, 0) + 1
                latencies_by_tenant.setdefault(tenant, []).append(latency)
                completed_by_tenant[tenant] = completed_by_tenant.get(tenant, 0) + 1
                if request.deadline_s is not None and latency > request.deadline_s:
                    outcomes["deadline_misses"] += 1
                if results is not None:
                    results[index] = future.result()
            elif isinstance(error, AdmissionError):
                # admitted then evicted by the shed policy: still a shed,
                # not an execution failure
                outcomes["shed"] += 1
                cls = _class_name(request.priority)
                shed_by_class[cls] = shed_by_class.get(cls, 0) + 1
            else:
                outcomes["failed"] += 1
                name = type(error).__name__
                failures[name] = failures.get(name, 0) + 1

    for index, request in enumerate(requests):
        now = monotonic_s() - start
        if request.arrival_s > now:
            time.sleep(request.arrival_s - now)
        arrival_abs = start + request.arrival_s
        try:
            future = serving.submit(
                request.cascade, request.inputs, mode,
                tenant=request.tenant, priority=request.priority,
                deadline_s=request.deadline_s,
            )
        except AdmissionError:
            with lock:
                outcomes["shed"] += 1
                cls = _class_name(request.priority)
                shed_by_class[cls] = shed_by_class.get(cls, 0) + 1
            continue
        future.add_done_callback(
            lambda f, a=arrival_abs, i=index, r=request: on_done(a, i, r, f)
        )
        pending.append(future)

    for future in pending:
        try:
            future.result()
        except Exception:
            pass  # counted via the done callback
    duration = monotonic_s() - start

    with lock:
        return ReplayReport(
            offered_rps=float(offered_rps),
            requests=len(requests),
            completed=outcomes["completed"],
            shed=outcomes["shed"],
            failed=outcomes["failed"],
            duration_s=duration,
            latencies_s=list(latencies),
            by_kind=dict(by_kind),
            latencies_by_tenant={
                tenant: list(values)
                for tenant, values in latencies_by_tenant.items()
            },
            completed_by_tenant=dict(completed_by_tenant),
            shed_by_class=dict(shed_by_class),
            deadline_misses=outcomes["deadline_misses"],
            failures=dict(failures),
            results=list(results) if results is not None else None,
        )


def sweep_offered_load(
    serving: ServingEngine,
    rates_rps: Sequence[float],
    count: int,
    *,
    seed: int = 0,
    length=256,
    width: int = 16,
    kinds: Sequence[str] = SERVING_KINDS,
) -> List[Tuple[float, ReplayReport]]:
    """Replay the same-sized stream at each offered load, low to high."""
    reports = []
    for rate in sorted(rates_rps):
        rng = np.random.default_rng(seed)
        stream = build_request_stream(
            rng, count, rate, kinds=kinds, length=length, width=width
        )
        reports.append((rate, replay(serving, stream, offered_rps=rate)))
    return reports
