"""Traffic replay: Poisson arrivals driven against the serving runtime.

The driver models an open-loop client population: request arrival times
are drawn from a Poisson process at a configured offered load, the
request payloads are a mixed blend of engine-servable workloads
(:func:`repro.workloads.serving_mix.request_mix`), and replay submits
each request to a :class:`~repro.engine.serving.ServingEngine` at its
arrival time, collecting per-request latency (arrival → completion) and
shed counts.  The report carries throughput and p50/p99 latency, the
numbers ``benchmarks/bench_serving.py`` sweeps against offered load
into ``BENCH_serving.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.serving import AdmissionError, ServingEngine
from ..obs.clock import monotonic_s
from ..workloads.serving_mix import SERVING_KINDS, request_mix


@dataclass(frozen=True)
class TrafficRequest:
    """One replayable request: payload plus its scheduled arrival time."""

    kind: str
    cascade: object
    inputs: Dict[str, np.ndarray]
    arrival_s: float


def poisson_arrivals(
    rng: np.random.Generator, rate_rps: float, count: int
) -> np.ndarray:
    """Cumulative arrival times (seconds) of a Poisson process."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=count))


def build_request_stream(
    rng: np.random.Generator,
    count: int,
    rate_rps: float,
    *,
    kinds: Sequence[str] = SERVING_KINDS,
    weights: Optional[Sequence[float]] = None,
    length=256,
    width: int = 16,
) -> List[TrafficRequest]:
    """Poisson-timed mixed-workload request stream, ready to replay.

    ``length`` may be an int or a sequence of KV lengths to draw from
    per request (mixed-length traffic); see
    :func:`repro.workloads.serving_mix.request_mix`.
    """
    arrivals = poisson_arrivals(rng, rate_rps, count)
    mix = request_mix(
        count, rng, kinds=kinds, weights=weights, length=length, width=width
    )
    return [
        TrafficRequest(kind=kind, cascade=cascade, inputs=inputs, arrival_s=t)
        for (kind, cascade, inputs), t in zip(mix, arrivals)
    ]


@dataclass
class ReplayReport:
    """Outcome of one traffic replay at a fixed offered load."""

    offered_rps: float
    requests: int
    completed: int
    shed: int
    failed: int
    duration_s: float
    latencies_s: List[float] = field(default_factory=list)
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def snapshot(self) -> Dict[str, object]:
        return {
            "offered_rps": self.offered_rps,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_latency_s": self.latency_percentile(50.0),
            "p99_latency_s": self.latency_percentile(99.0),
            "by_kind": dict(self.by_kind),
        }


def replay(
    serving: ServingEngine,
    requests: Sequence[TrafficRequest],
    *,
    mode: str = "auto",
    offered_rps: Optional[float] = None,
) -> ReplayReport:
    """Submit a timed request stream; block until every future resolves.

    The submitting thread paces itself to each request's ``arrival_s``
    (open loop: a slow scheduler does not slow arrivals down, it grows
    the queue until admission control sheds).  Per-request latency is
    measured from the *scheduled arrival* to future completion, so
    queueing delay — including time spent waiting for a micro-batch
    window — is part of the number, exactly as a client would see it.
    """
    if not requests:
        raise ValueError("need at least one request to replay")
    if offered_rps is None:
        horizon = requests[-1].arrival_s
        offered_rps = len(requests) / horizon if horizon > 0 else float("inf")

    lock = threading.Lock()
    latencies: List[float] = []
    outcomes = {"completed": 0, "shed": 0, "failed": 0}
    by_kind: Dict[str, int] = {}
    pending: List = []

    # One monotonic clock for the whole repo (repro.obs.clock): replay
    # pacing, client-observed latency, and the engine's span/latency
    # instrumentation all share the same timebase, so a replayed trace
    # lines up with the serving stats it produced.
    start = monotonic_s()

    def on_done(arrival_abs: float, kind: str, future) -> None:
        latency = monotonic_s() - arrival_abs
        with lock:
            if future.exception() is None:
                outcomes["completed"] += 1
                latencies.append(latency)
                by_kind[kind] = by_kind.get(kind, 0) + 1
            else:
                outcomes["failed"] += 1

    for request in requests:
        now = monotonic_s() - start
        if request.arrival_s > now:
            time.sleep(request.arrival_s - now)
        arrival_abs = start + request.arrival_s
        try:
            future = serving.submit(request.cascade, request.inputs, mode)
        except AdmissionError:
            with lock:
                outcomes["shed"] += 1
            continue
        future.add_done_callback(
            lambda f, a=arrival_abs, k=request.kind: on_done(a, k, f)
        )
        pending.append(future)

    for future in pending:
        try:
            future.result()
        except Exception:
            pass  # counted via the done callback
    duration = monotonic_s() - start

    with lock:
        return ReplayReport(
            offered_rps=float(offered_rps),
            requests=len(requests),
            completed=outcomes["completed"],
            shed=outcomes["shed"],
            failed=outcomes["failed"],
            duration_s=duration,
            latencies_s=list(latencies),
            by_kind=dict(by_kind),
        )


def sweep_offered_load(
    serving: ServingEngine,
    rates_rps: Sequence[float],
    count: int,
    *,
    seed: int = 0,
    length=256,
    width: int = 16,
    kinds: Sequence[str] = SERVING_KINDS,
) -> List[Tuple[float, ReplayReport]]:
    """Replay the same-sized stream at each offered load, low to high."""
    reports = []
    for rate in sorted(rates_rps):
        rng = np.random.default_rng(seed)
        stream = build_request_stream(
            rng, count, rate, kinds=kinds, length=length, width=width
        )
        reports.append((rate, replay(serving, stream, offered_rps=rate)))
    return reports
