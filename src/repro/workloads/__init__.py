"""The paper's evaluation workloads with configs, references and graphs."""

from . import attention, mla, moe, nonml, quant_gemm, serving_mix
from .serving_mix import SERVING_KINDS, query_for, request_mix
from .configs import (
    INERTIA_CONFIGS,
    MHA_CONFIGS,
    MLA_CONFIGS,
    MOE_CONFIGS,
    QUANT_GEMM_CONFIGS,
    VARIANCE_CONFIGS,
    InertiaConfig,
    MHAConfig,
    MLAConfig,
    MoEConfig,
    QuantGemmConfig,
    VarianceConfig,
)
from .opgraph import KernelGroup, LogicalOp, OpGraph, TensorInfo

__all__ = [
    "attention",
    "mla",
    "moe",
    "nonml",
    "quant_gemm",
    "serving_mix",
    "SERVING_KINDS",
    "query_for",
    "request_mix",
    "INERTIA_CONFIGS",
    "MHA_CONFIGS",
    "MLA_CONFIGS",
    "MOE_CONFIGS",
    "QUANT_GEMM_CONFIGS",
    "VARIANCE_CONFIGS",
    "InertiaConfig",
    "MHAConfig",
    "MLAConfig",
    "MoEConfig",
    "QuantGemmConfig",
    "VarianceConfig",
    "KernelGroup",
    "LogicalOp",
    "OpGraph",
    "TensorInfo",
]
