"""MoE routing workload (Table 2c; §2.2; Appendix A.2.2).

Router = scores GEMM + softmax statistics + top-k expert selection.
The cascade per token:  m = max x,  t = Σ exp(x−m),  s = TopK(x);
the selected gates are s_normalized = exp(s − m)/t (softmax preserves
ordering, so top-k runs on raw scores — Eq. 34/35).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core import Cascade, Reduction, TopKState
from ..gpusim.kernel import KernelSpec, Program
from ..symbolic import exp, var
from .configs import MoEConfig
from .opgraph import LogicalOp, OpGraph, TensorInfo

FP16 = 2


def cascade(k: int) -> Cascade:
    x, m = var("x"), var("m")
    return Cascade(
        "moe_routing",
        ("x",),
        (
            Reduction("m", "max", x),
            Reduction("t", "sum", exp(x - m)),
            Reduction("s", "topk", x, topk=k),
        ),
    )


def reference(
    hidden: np.ndarray, router_w: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Returns (top-k gate weights, top-k expert ids) per token."""
    scores = hidden @ router_w
    order = np.argsort(scores, axis=-1, kind="stable")[:, ::-1][:, :k]
    m = scores.max(-1, keepdims=True)
    t = np.exp(scores - m).sum(-1, keepdims=True)
    gates = np.exp(np.take_along_axis(scores, order, -1) - m) / t
    return gates, order


def make_inputs(config: MoEConfig, rng: np.random.Generator):
    return (
        rng.normal(size=(config.s, config.hd)),
        rng.normal(size=(config.hd, config.en)) / np.sqrt(config.hd),
    )


def gates_from_state(state: Dict[str, object]) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize a fused-executor output into (gates, expert ids)."""
    s: TopKState = state["s"]
    m = np.asarray(state["m"]).reshape(())
    t = np.asarray(state["t"]).reshape(())
    return np.exp(s.values - m) / t, s.indices


def op_graph(config: MoEConfig) -> OpGraph:
    s, hd, en = config.s, config.hd, config.en
    h_t = TensorInfo("hidden", s * hd, FP16)
    w_t = TensorInfo("router_w", hd * en, FP16)
    x_t = TensorInfo("scores", s * en, FP16)
    m_t = TensorInfo("m", s, FP16)
    e_t = TensorInfo("E", s * en, FP16)
    t_t = TensorInfo("t", s, FP16)
    g_t = TensorInfo("gates", s * en, FP16)
    k_t = TensorInfo("topk", s * config.topk * 2, 4)
    return OpGraph(
        name=f"moe_{config.name}",
        ops=(
            LogicalOp("score_gemm", "gemm", (h_t, w_t), (x_t,), 2.0 * s * hd * en),
            LogicalOp("row_max", "reduction", (x_t,), (m_t,), float(s * en)),
            LogicalOp("sub_exp", "elementwise", (x_t, m_t), (e_t,), 2.0 * s * en),
            LogicalOp("row_sum", "reduction", (e_t,), (t_t,), float(s * en)),
            LogicalOp("normalize", "elementwise", (e_t, t_t), (g_t,), float(s * en)),
            LogicalOp("topk", "topk", (g_t,), (k_t,), 2.0 * s * en),
        ),
    )


def redfuser_program(config: MoEConfig) -> Program:
    """The fused router kernel RedFuser generates.

    The tile backend hosts the scalar chain; the top-k carrier keeps its
    per-thread candidate lists in registers (Eq. 37's incremental TopK),
    so the whole router is one kernel reading the hidden states and the
    router weights once and writing only the selected experts.
    """
    s, hd, en = config.s, config.hd, config.en
    bytes_read = (s * hd + hd * en) * FP16
    bytes_written = s * config.topk * 2 * 4 + 2 * s * FP16
    flops = 2.0 * s * hd * en + 6.0 * s * en
    blk_rows = 16  # tall-skinny router GEMM: small row tiles keep the grid wide
    return Program(
        name=f"moe_{config.name}_redfuser",
        kernels=[
            KernelSpec(
                name="fused_router",
                grid=max(1, s // blk_rows),
                threads_per_cta=256,
                smem_bytes=(blk_rows * en + 2 * 64) * FP16 + 16 * 1024,
                bytes_read=bytes_read,
                bytes_written=bytes_written,
                flops=flops,
                tensor_cores=True,
                compute_efficiency=0.7,
                memory_efficiency=0.85,
                overlap=0.85,
            )
        ],
    )
