"""Non-ML workloads (Appendix A.6): variance, moment of inertia, sum+sum.

All three are cascaded reductions outside deep learning:

* variance (Eq. 44) — mean then centered second moment; ACRF needs the
  multi-term extension (``(x − m)²`` expands distributively);
* moment of inertia (Eq. 45) — total mass, center of mass, then the
  mass-weighted second moment about it (per spatial dimension);
* sum+sum (A.2.3) — an internal-model pattern with a
  ``1/sqrt(max(m − 10, 1))`` dependency (the inner max made explicit,
  see DESIGN.md).
"""

from __future__ import annotations


import numpy as np

from ..core import Cascade, Reduction
from ..gpusim.kernel import KernelSpec, Program
from ..symbolic import const, sqrt, var, vmax
from .configs import InertiaConfig, VarianceConfig
from .opgraph import LogicalOp, OpGraph, TensorInfo

FP32 = 4


# ---------------------------------------------------------------------------
# variance
# ---------------------------------------------------------------------------
def variance_cascade(length: int) -> Cascade:
    x, mean = var("x"), var("mean")
    inv_n = const(1.0 / length)
    return Cascade(
        "variance",
        ("x",),
        (
            Reduction("mean", "sum", x * inv_n),
            Reduction("var", "sum", (x - mean) ** 2 * inv_n),
        ),
    )


def variance_reference(x: np.ndarray) -> np.ndarray:
    return x.var(axis=-1)


def variance_op_graph(config: VarianceConfig) -> OpGraph:
    n = config.bs * config.length
    x_t = TensorInfo("x", n, FP32)
    m_t = TensorInfo("mean", config.bs, FP32)
    d_t = TensorInfo("centered_sq", n, FP32)
    v_t = TensorInfo("var", config.bs, FP32)
    return OpGraph(
        name=f"variance_{config.name}",
        ops=(
            LogicalOp("mean", "reduction", (x_t,), (m_t,), float(n)),
            LogicalOp("center_square", "elementwise", (x_t, m_t), (d_t,), 2.0 * n),
            LogicalOp("second_moment", "reduction", (d_t,), (v_t,), float(n)),
        ),
    )


def variance_redfuser_program(config: VarianceConfig) -> Program:
    """One fused pass: running Σx and Σx² accumulators, O(1) state."""
    # Multi-Segment strategy: each CTA streams a 4K-element segment and
    # the O(1) partial states merge via Eq. 11 (combine cost negligible).
    n = config.bs * config.length
    grid = max(1, n // 4096)
    return Program(
        name=f"variance_{config.name}_redfuser",
        kernels=[
            KernelSpec(
                name="fused_variance",
                grid=grid,
                threads_per_cta=256,
                smem_bytes=8 * 1024,
                bytes_read=n * FP32,
                bytes_written=config.bs * FP32,
                flops=4.0 * n,
                compute_efficiency=0.6,
                memory_efficiency=0.85,
                overlap=0.9,
            )
        ],
    )


# ---------------------------------------------------------------------------
# moment of inertia
# ---------------------------------------------------------------------------
def inertia_cascade() -> Cascade:
    """Eq. 45 for one spatial dimension (dimensions sum independently).

    mass_total = Σ m_l;  weighted = Σ m_l·x_l  (center c = weighted /
    mass_total is an epilogue);  I_dim = Σ m_l·(x_l − c)², written with
    c inlined so the cascade is self-contained.
    """
    mass, x = var("mass"), var("x")
    mass_total, weighted = var("mass_total"), var("weighted")
    c = weighted / mass_total
    return Cascade(
        "inertia",
        ("mass", "x"),
        (
            Reduction("mass_total", "sum", mass),
            Reduction("weighted", "sum", mass * x),
            Reduction("inertia", "sum", mass * (x - c) ** 2),
        ),
    )


def inertia_reference(mass: np.ndarray, pos: np.ndarray) -> np.ndarray:
    """I = Σ m ‖x − c‖² with c the center of mass; pos is (..., n, dim)."""
    total = mass.sum(-1, keepdims=True)
    center = (mass[..., None] * pos).sum(-2, keepdims=True) / total[..., None]
    sq = ((pos - center) ** 2).sum(-1)
    return (mass * sq).sum(-1)


def inertia_op_graph(config: InertiaConfig) -> OpGraph:
    n = config.bs * config.n
    m_t = TensorInfo("mass", n, FP32)
    p_t = TensorInfo("pos", n * config.dim, FP32)
    tot_t = TensorInfo("mass_total", config.bs, FP32)
    w_t = TensorInfo("weighted", config.bs * config.dim, FP32)
    c_t = TensorInfo("center", config.bs * config.dim, FP32)
    d_t = TensorInfo("weighted_sq", n, FP32)
    i_t = TensorInfo("inertia", config.bs, FP32)
    return OpGraph(
        name=f"inertia_{config.name}",
        ops=(
            LogicalOp("mass_sum", "reduction", (m_t,), (tot_t,), float(n)),
            LogicalOp("weighted_sum", "reduction", (m_t, p_t), (w_t,), 2.0 * n * config.dim),
            LogicalOp("center", "elementwise", (w_t, tot_t), (c_t,), float(config.bs * config.dim)),
            LogicalOp(
                "center_square",
                "elementwise",
                (p_t, c_t, m_t),
                (d_t,),
                4.0 * n * config.dim,
            ),
            LogicalOp("moment", "reduction", (d_t,), (i_t,), float(n)),
        ),
    )


def inertia_redfuser_program(config: InertiaConfig) -> Program:
    n = config.bs * config.n
    grid = max(1, n // 4096)
    read = (n + n * config.dim) * FP32
    return Program(
        name=f"inertia_{config.name}_redfuser",
        kernels=[
            KernelSpec(
                name="fused_inertia",
                grid=grid,
                threads_per_cta=256,
                smem_bytes=8 * 1024,
                bytes_read=read,
                bytes_written=config.bs * FP32,
                flops=8.0 * n * config.dim,
                compute_efficiency=0.6,
                memory_efficiency=0.85,
                overlap=0.9,
            )
        ],
    )


# ---------------------------------------------------------------------------
# sum + sum (Appendix A.2.3)
# ---------------------------------------------------------------------------
def sum_sum_cascade() -> Cascade:
    x1, x2, m = var("x1"), var("x2"), var("m")
    return Cascade(
        "sum_sum",
        ("x1", "x2"),
        (
            Reduction("m", "sum", x1 * x1),
            Reduction("s", "sum", x1 * x2 / sqrt(vmax(m - 10, 1))),
        ),
    )


def sum_sum_reference(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    m = (x1 * x1).sum(-1, keepdims=True)
    return (x1 * x2 / np.sqrt(np.maximum(m - 10, 1))).sum(-1)
