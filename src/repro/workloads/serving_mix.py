"""Request generators for the serving runtime's mixed traffic.

One entry point per engine-servable workload kind: given an RNG and an
interactive geometry, :func:`query_for` returns ``(cascade, inputs)``
exactly as a client of :class:`~repro.engine.serving.ServingEngine`
would submit them.  :func:`request_mix` draws a whole stream of mixed
attention / MLA-decode / FP8-quant-GEMM requests, the workload blend the
traffic-replay benchmark (:mod:`repro.harness.traffic`) drives against
the scheduler.

The geometry defaults are serving-scale, not paper-scale: single-query
rows with a ``length``-long reduction axis, which is what the engine's
per-request path actually sees in a decode loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import attention, mla, quant_gemm
from .configs import MHAConfig, MLAConfig, QuantGemmConfig

#: Workloads with an engine-level single-query wrapper usable by every
#: execution backend, including ``tile_ir`` and ``sharded``.
SERVING_KINDS = ("mha", "mla", "quant_gemm")


def query_for(
    kind: str, rng: np.random.Generator, *, length: int = 256, width: int = 16
) -> Tuple[object, Dict[str, np.ndarray]]:
    """(cascade, single-query inputs) for one engine-servable workload.

    ``length``/``width`` override the paper-scale table dims so requests
    run at interactive sizes (the tile interpreter executes generated
    programs element-by-element).
    """
    if kind == "mha":
        cfg = MHAConfig("bench", 1, 1, 1, length, width, "bench")
        return attention.cascade(), attention.engine_query(cfg, rng)
    if kind == "mla":
        cfg = MLAConfig("bench", 1, 1, length, width, max(1, width // 4))
        return mla.cascade(), mla.engine_query(cfg, rng)
    if kind == "quant_gemm":
        cfg = QuantGemmConfig("bench", 1, width, length, "bench")
        return quant_gemm.cascade(), quant_gemm.engine_query(cfg, rng)
    raise ValueError(
        f"unknown serving workload {kind!r}; expected one of {SERVING_KINDS}"
    )


def draw_length(rng: np.random.Generator, length: Union[int, Sequence[int]]) -> int:
    """One KV length for a request: fixed, or drawn from a choice set.

    Serving traffic rarely arrives at one uniform length; passing a
    sequence here models a decode population with mixed KV depths — the
    workload the scheduler's ragged micro-batching exists for.
    """
    if isinstance(length, (int, np.integer)):
        return int(length)
    choices = list(length)
    if not choices:
        raise ValueError("length choices must be non-empty")
    return int(choices[int(rng.integers(len(choices)))])


def draw_deadline(
    rng: np.random.Generator,
    deadline_s: Union[None, float, Sequence[float]],
) -> Optional[float]:
    """One relative deadline (seconds) for a request.

    ``None`` means no deadline, a scalar is a fixed budget, and a
    sequence models a deadline *distribution* — each request draws one
    choice, the way real traffic mixes tight interactive SLOs with lax
    background budgets.  The scheduler's batching window respects the
    drawn value (``submit(deadline_s=...)``).
    """
    if deadline_s is None:
        return None
    if isinstance(deadline_s, (int, float, np.integer, np.floating)):
        value = float(deadline_s)
    else:
        choices = list(deadline_s)
        if not choices:
            raise ValueError("deadline choices must be non-empty")
        value = float(choices[int(rng.integers(len(choices)))])
    if value <= 0:
        raise ValueError(f"deadlines must be > 0, got {value}")
    return value


def request_mix(
    count: int,
    rng: np.random.Generator,
    *,
    kinds: Sequence[str] = SERVING_KINDS,
    weights: Optional[Sequence[float]] = None,
    length: Union[int, Sequence[int]] = 256,
    width: int = 16,
) -> List[Tuple[str, object, Dict[str, np.ndarray]]]:
    """Draw ``count`` mixed requests: ``[(kind, cascade, inputs), ...]``.

    ``weights`` biases the blend (uniform by default).  ``length`` may
    be a single KV length or a sequence of lengths to draw from per
    request (mixed-length traffic).  All requests of one kind share a
    cascade structure, so the scheduler's plan cache sees exactly
    ``len(kinds)`` signatures regardless of ``count``.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    probabilities = None
    if weights is not None:
        total = float(sum(weights))
        probabilities = [w / total for w in weights]
    drawn = rng.choice(len(kinds), size=count, p=probabilities)
    requests = []
    for index in drawn:
        kind = kinds[int(index)]
        cascade, inputs = query_for(
            kind, rng, length=draw_length(rng, length), width=width
        )
        requests.append((kind, cascade, inputs))
    return requests
