"""Multi-Latent Attention workload (Table 2b; DeepSeek-style decode).

Decode-phase MLA: every head's query attends over a *shared* latent KV
cache of dim ``hd`` (+ ``ped`` RoPE dims on the q/k side), with q = 1.
The cascade is the same chain as MHA; only the geometry changes — which
is exactly the generality claim of the paper (one framework, many
shapes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..codegen import CodegenSpec, ElementLayout, GemmProducer
from ..engine import fused_for
from .attention import cascade
from .configs import MLAConfig
from .opgraph import LogicalOp, OpGraph, TensorInfo

FP16 = 2


def reference(q: np.ndarray, kv: np.ndarray) -> np.ndarray:
    """Decode MLA: q (bs, hn, hd+ped), latent kv (bs, kv, hd+ped).

    Scores use the full (hd+ped) dim; the output contracts only the
    first hd dims of the latent cache (the value part).
    """
    bs, hn, qdim = q.shape
    kv_len = kv.shape[1]
    hd = qdim - 0  # scores over the full dim
    scale = 1.0 / np.sqrt(qdim)
    scores = np.einsum("bhd,bkd->bhk", q, kv) * scale
    weights = np.exp(scores - scores.max(-1, keepdims=True))
    weights /= weights.sum(-1, keepdims=True)
    return np.einsum("bhk,bkd->bhd", weights, kv)


def engine_query(config: MLAConfig, rng: np.random.Generator):
    """Engine-level inputs for one decode head of the shared cascade.

    One head's query attends over the latent cache: scores contract the
    full ``hd + ped`` dim, the value contribution reuses the first
    ``hd`` dims of the same latent rows (the MLA aliasing).
    """
    qdim = config.hd + config.ped
    latent = rng.normal(size=(config.kv, qdim))
    q = rng.normal(size=qdim)
    scale = 1.0 / np.sqrt(qdim)
    return {"P": (latent @ q * scale)[:, None], "V": latent[:, : config.hd]}


def make_inputs(config: MLAConfig, rng: np.random.Generator):
    qdim = config.hd + config.ped
    return (
        rng.normal(size=(config.bs, config.hn, qdim)),
        rng.normal(size=(config.bs, config.kv, qdim)),
    )


def op_graph(config: MLAConfig) -> OpGraph:
    bs, hn, kv = config.bs, config.hn, config.kv
    qdim = config.hd + config.ped
    q_t = TensorInfo("Q", bs * hn * qdim, FP16)
    kv_t = TensorInfo("KV", bs * kv * qdim, FP16)
    p_t = TensorInfo("P", bs * hn * kv, FP16)
    m_t = TensorInfo("m", bs * hn, FP16)
    e_t = TensorInfo("E", bs * hn * kv, FP16)
    t_t = TensorInfo("t", bs * hn, FP16)
    s_t = TensorInfo("S", bs * hn * kv, FP16)
    o_t = TensorInfo("O", bs * hn * config.hd, FP16)
    score_flops = 2.0 * bs * hn * kv * qdim
    out_flops = 2.0 * bs * hn * kv * config.hd
    n_scores = bs * hn * kv
    return OpGraph(
        name=f"mla_{config.name}",
        ops=(
            LogicalOp("qk_gemm", "gemm", (q_t, kv_t), (p_t,), score_flops),
            LogicalOp("row_max", "reduction", (p_t,), (m_t,), n_scores),
            LogicalOp("sub_exp", "elementwise", (p_t, m_t), (e_t,), 2.0 * n_scores),
            LogicalOp("row_sum", "reduction", (e_t,), (t_t,), n_scores),
            LogicalOp("normalize", "elementwise", (e_t, t_t), (s_t,), n_scores),
            LogicalOp("pv_gemm", "gemm", (s_t, kv_t), (o_t,), out_flops),
        ),
    )


def fused_spec(config: MLAConfig) -> Tuple[CodegenSpec, int]:
    """One batch element: all hn heads share the latent KV tile.

    rows = hn query heads; the producer contracts over hd+ped; the value
    contraction uses the hd-dim latent (modelled as width hd).
    """
    qdim = config.hd + config.ped
    spec = CodegenSpec(
        fused=fused_for(cascade()),
        rows=config.hn,
        length=config.kv,
        layouts=(
            ElementLayout("P", 1, True),
            ElementLayout("V", config.hd, False),
        ),
        producer=GemmProducer("P", "Q", "K", qdim),
    )
    return spec, config.bs
