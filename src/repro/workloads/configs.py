"""Workload configuration tables from the paper's Appendix A.5/A.6.

Tables 2a–2d (MHA, MLA, MoE routing, Quant+GEMM) and 3a–3b (variance,
moment of inertia), verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class MHAConfig:
    """Table 2a row: multi-head attention."""

    name: str
    bs: int
    hn: int
    q: int
    kv: int
    hd: int
    model: str


MHA_CONFIGS: Tuple[MHAConfig, ...] = (
    MHAConfig("H1", 32, 8, 512, 512, 64, "BERT-Small"),
    MHAConfig("H2", 32, 12, 512, 512, 64, "BERT-Base"),
    MHAConfig("H3", 32, 16, 512, 512, 64, "BERT-Large"),
    MHAConfig("H4", 32, 12, 256, 256, 64, "ViT-Base"),
    MHAConfig("H5", 32, 16, 256, 256, 64, "ViT-Large"),
    MHAConfig("H6", 32, 16, 256, 256, 80, "ViT-Huge"),
    MHAConfig("H7", 32, 64, 1, 1024, 128, "LLaMA-65B"),
    MHAConfig("H8", 32, 64, 1, 2048, 128, "LLaMA-65B"),
    MHAConfig("H9", 32, 64, 1, 4096, 128, "LLaMA-65B"),
)


@dataclass(frozen=True)
class MLAConfig:
    """Table 2b row: multi-latent attention (decode, q = 1)."""

    name: str
    bs: int
    hn: int
    kv: int
    hd: int
    ped: int  # RoPE embedding extension of the q/k hidden dim


MLA_CONFIGS: Tuple[MLAConfig, ...] = (
    MLAConfig("L1", 32, 128, 1024, 512, 64),
    MLAConfig("L2", 32, 128, 2048, 512, 64),
    MLAConfig("L3", 32, 128, 4096, 512, 64),
    MLAConfig("L4", 16, 128, 1024, 512, 64),
    MLAConfig("L5", 16, 128, 2048, 512, 64),
    MLAConfig("L6", 16, 128, 4096, 512, 64),
    MLAConfig("L7", 1, 128, 1024, 512, 64),
    MLAConfig("L8", 1, 128, 2048, 512, 64),
    MLAConfig("L9", 1, 128, 4096, 512, 64),
)


@dataclass(frozen=True)
class MoEConfig:
    """Table 2c row: MoE routing (GEMM + softmax + top-k)."""

    name: str
    s: int  # sequence length
    hd: int  # hidden dim
    en: int  # number of experts
    topk: int
    model: str


MOE_CONFIGS: Tuple[MoEConfig, ...] = (
    MoEConfig("R1", 2048, 768, 128, 1, "switch-base-128"),
    MoEConfig("R2", 2048, 1024, 128, 1, "switch-large-128"),
    MoEConfig("R3", 2048, 4096, 128, 1, "switch-xxl-128"),
    MoEConfig("R4", 2048, 2560, 64, 6, "ERNIE-21B-A3B"),
    MoEConfig("R5", 2048, 8192, 64, 8, "ERNIE-300B-A47B"),
    MoEConfig("R6", 2048, 2048, 64, 6, "DeepSeek-V2-Lite"),
    MoEConfig("R7", 2048, 2048, 128, 8, "Qwen3-30B-A3B"),
    MoEConfig("R8", 2048, 4096, 128, 8, "Qwen3-235B-A30B"),
)


@dataclass(frozen=True)
class QuantGemmConfig:
    """Table 2d row: FP8 per-token quantization + GEMM."""

    name: str
    m: int
    n: int
    k: int
    model: str


QUANT_GEMM_CONFIGS: Tuple[QuantGemmConfig, ...] = (
    QuantGemmConfig("Q1", 4096, 1536, 2560, "ERNIE-21B-A3B"),
    QuantGemmConfig("Q2", 4096, 2560, 1536, "ERNIE-21B-A3B"),
    QuantGemmConfig("Q3", 4096, 3584, 8192, "ERNIE-300B-A47B"),
    QuantGemmConfig("Q4", 4096, 8192, 3584, "ERNIE-300B-A47B"),
    QuantGemmConfig("Q5", 4096, 7168, 2048, "DeepSeek-R1"),
    QuantGemmConfig("Q6", 4096, 2048, 7168, "DeepSeek-R1"),
    QuantGemmConfig("Q7", 4096, 2048, 768, "Qwen3-30B-A3B"),
    QuantGemmConfig("Q8", 4096, 768, 2048, "Qwen3-30B-A3B"),
    QuantGemmConfig("Q9", 4096, 4096, 1536, "Qwen3-235B-A30B"),
    QuantGemmConfig("Q10", 4096, 1536, 4096, "Qwen3-235B-A30B"),
)


@dataclass(frozen=True)
class VarianceConfig:
    """Table 3a row: batched variance."""

    name: str
    bs: int
    length: int


VARIANCE_CONFIGS: Tuple[VarianceConfig, ...] = (
    VarianceConfig("V1", 1, 8192),
    VarianceConfig("V2", 1, 32768),
    VarianceConfig("V3", 128, 8192),
    VarianceConfig("V4", 128, 32768),
    VarianceConfig("V5", 512, 8192),
    VarianceConfig("V6", 512, 32768),
    VarianceConfig("V7", 1024, 8192),
    VarianceConfig("V8", 1024, 32768),
)


@dataclass(frozen=True)
class InertiaConfig:
    """Table 3b row: moment of inertia about the center of mass."""

    name: str
    bs: int
    n: int
    dim: int = 3


INERTIA_CONFIGS: Tuple[InertiaConfig, ...] = (
    InertiaConfig("I1", 1, 8192),
    InertiaConfig("I2", 1, 32768),
    InertiaConfig("I3", 128, 8192),
    InertiaConfig("I4", 128, 32768),
    InertiaConfig("I5", 512, 8192),
    InertiaConfig("I6", 512, 32768),
    InertiaConfig("I7", 1024, 8192),
    InertiaConfig("I8", 1024, 32768),
)
