"""Multi-Head Attention workload (Table 2a; §2.2; Appendix A.2.1).

The cascade is the per-query-row chain  m = max P,  t = Σ exp(P−m),
O = Σ exp(P−m)/t · V  with the QKᵀ GEMM as fused producer — the exact
structure of Fig. 11.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..codegen import CodegenSpec, ElementLayout, GemmProducer
from ..core import Cascade, Reduction
from ..engine import fused_for
from ..symbolic import exp, var
from .configs import MHAConfig
from .opgraph import LogicalOp, OpGraph, TensorInfo

FP16 = 2


def cascade() -> Cascade:
    P, V, m, t = var("P"), var("V"), var("m"), var("t")
    return Cascade(
        "mha",
        ("P", "V"),
        (
            Reduction("m", "max", P),
            Reduction("t", "sum", exp(P - m)),
            Reduction("O", "sum", exp(P - m) / t * V),
        ),
    )


def reference(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """NumPy attention: softmax(QKᵀ/√d)·V over trailing (seq, hd) dims."""
    scale = 1.0 / np.sqrt(q.shape[-1])
    scores = (q @ np.swapaxes(k, -1, -2)) * scale
    weights = np.exp(scores - scores.max(-1, keepdims=True))
    weights /= weights.sum(-1, keepdims=True)
    return weights @ v


def engine_query(
    config: MHAConfig, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Engine-level inputs for one query row of :func:`cascade`.

    Materializes the scores ``P = K q / sqrt(hd)`` for a single query
    against a ``kv``-long cache, plus the value rows ``V`` — the element
    arrays every execution backend (``unfused`` ... ``tile_ir``)
    consumes directly.
    """
    q = rng.normal(size=config.hd)
    k = rng.normal(size=(config.kv, config.hd))
    v = rng.normal(size=(config.kv, config.hd))
    scale = 1.0 / np.sqrt(config.hd)
    return {"P": (k @ q * scale)[:, None], "V": v}


def make_inputs(config: MHAConfig, rng: np.random.Generator):
    shape_q = (config.bs, config.hn, config.q, config.hd)
    shape_kv = (config.bs, config.hn, config.kv, config.hd)
    return (
        rng.normal(size=shape_q),
        rng.normal(size=shape_kv),
        rng.normal(size=shape_kv),
    )


def op_graph(config: MHAConfig) -> OpGraph:
    """The frontend operator sequence: GEMM, max, sub+exp, sum, div, GEMM."""
    b = config.bs * config.hn
    q_t = TensorInfo("Q", b * config.q * config.hd, FP16)
    k_t = TensorInfo("K", b * config.kv * config.hd, FP16)
    v_t = TensorInfo("V", b * config.kv * config.hd, FP16)
    p_t = TensorInfo("P", b * config.q * config.kv, FP16)
    m_t = TensorInfo("m", b * config.q, FP16)
    e_t = TensorInfo("E", b * config.q * config.kv, FP16)
    t_t = TensorInfo("t", b * config.q, FP16)
    s_t = TensorInfo("S", b * config.q * config.kv, FP16)
    o_t = TensorInfo("O", b * config.q * config.hd, FP16)
    gemm_flops = 2.0 * b * config.q * config.kv * config.hd
    n_scores = b * config.q * config.kv
    return OpGraph(
        name=f"mha_{config.name}",
        ops=(
            LogicalOp("qk_gemm", "gemm", (q_t, k_t), (p_t,), gemm_flops),
            LogicalOp("row_max", "reduction", (p_t,), (m_t,), n_scores),
            LogicalOp("sub_exp", "elementwise", (p_t, m_t), (e_t,), 2.0 * n_scores),
            LogicalOp("row_sum", "reduction", (e_t,), (t_t,), n_scores),
            LogicalOp("normalize", "elementwise", (e_t, t_t), (s_t,), n_scores),
            LogicalOp("pv_gemm", "gemm", (s_t, v_t), (o_t,), gemm_flops),
        ),
    )


def fused_spec(config: MHAConfig) -> Tuple[CodegenSpec, int]:
    """CodegenSpec for one (batch, head) instance + the instance count."""
    spec = CodegenSpec(
        fused=fused_for(cascade()),
        rows=config.q,
        length=config.kv,
        layouts=(
            ElementLayout("P", 1, True),
            ElementLayout("V", config.hd, False),
        ),
        producer=GemmProducer("P", "Q", "K", config.hd),
    )
    return spec, config.bs * config.hn
