"""Logical operator graphs: the frontend view that baselines compile.

Each workload lowers to a dependent list of :class:`LogicalOp` — the
tensor-program the PyTorch/TVM frontends would see.  Baseline compiler
models differ only in how they group these ops into kernels and with
what code quality; the byte/flop accounting is shared and exact:
a kernel reads each external input tensor once and writes each external
output tensor once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

OP_KINDS = ("gemm", "reduction", "elementwise", "topk")


@dataclass(frozen=True)
class TensorInfo:
    """A logical tensor: element count and dtype width."""

    name: str
    elems: float
    dtype_bytes: int = 2

    @property
    def nbytes(self) -> float:
        return self.elems * self.dtype_bytes


@dataclass(frozen=True)
class LogicalOp:
    """One frontend operator."""

    name: str
    kind: str
    reads: Tuple[TensorInfo, ...]
    writes: Tuple[TensorInfo, ...]
    flops: float = 0.0
    fp8: bool = False  # gemm executes on the FP8 tensor-core path

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")


@dataclass(frozen=True)
class OpGraph:
    """A dependent op sequence with its terminal outputs."""

    name: str
    ops: Tuple[LogicalOp, ...]

    def external_outputs(self) -> Set[str]:
        """Tensors never consumed by a later op (must reach memory)."""
        produced: Dict[str, int] = {}
        for i, op in enumerate(self.ops):
            for t in op.writes:
                produced[t.name] = i
        consumed: Set[str] = set()
        for i, op in enumerate(self.ops):
            for t in op.reads:
                if t.name in produced and produced[t.name] < i:
                    consumed.add(t.name)
        return {t.name for op in self.ops for t in op.writes} - consumed

    def tensor(self, name: str) -> TensorInfo:
        for op in self.ops:
            for t in list(op.reads) + list(op.writes):
                if t.name == name:
                    return t
        raise KeyError(name)


@dataclass
class KernelGroup:
    """A set of fused ops destined for one kernel launch."""

    ops: List[LogicalOp] = field(default_factory=list)

    @property
    def kinds(self) -> List[str]:
        return [op.kind for op in self.ops]

    def io(self, graph: OpGraph) -> Tuple[List[TensorInfo], List[TensorInfo]]:
        """External reads/writes once intra-group temporaries cancel."""
        written_here = {t.name for op in self.ops for t in op.writes}
        externals = graph.external_outputs()
        group_out_names = set()
        later_ops = [op for op in graph.ops if op not in self.ops]
        consumed_later = {
            t.name for op in later_ops for t in op.reads
        }
        reads: Dict[str, TensorInfo] = {}
        for op in self.ops:
            for t in op.reads:
                if t.name not in written_here:
                    reads.setdefault(t.name, t)
        writes: Dict[str, TensorInfo] = {}
        for op in self.ops:
            for t in op.writes:
                if t.name in externals or t.name in consumed_later:
                    writes.setdefault(t.name, t)
        return list(reads.values()), list(writes.values())

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.ops)

    @property
    def has_gemm(self) -> bool:
        return any(op.kind == "gemm" for op in self.ops)

    @property
    def fp8(self) -> bool:
        return any(op.fp8 for op in self.ops)
