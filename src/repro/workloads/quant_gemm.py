"""FP8 per-token Quant + GEMM workload (Table 2d; §3.4, Eq. 17–22).

Per output row:  m = max |A[l]|,  c = Σ_l (MAX · A[l] / m) · W[l]  — the
abs-max reduction cascaded into the scaled GEMM.  The repo also provides
a *rounded* reference that pushes the scaled activations through an
FP8-E4M3 grid, quantifying the quantization error the formula abstracts
away.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..codegen import CodegenSpec, ElementLayout
from ..core import Cascade, Reduction
from ..engine import fused_for
from ..symbolic import absv, const, var
from .configs import QuantGemmConfig
from .opgraph import LogicalOp, OpGraph, TensorInfo

FP16 = 2
FP8 = 1
FP8_MAX = 448.0  # largest normal value of E4M3


def cascade() -> Cascade:
    A, W, m = var("A"), var("W"), var("m")
    return Cascade(
        "quant_gemm",
        ("A", "W"),
        (
            Reduction("m", "max", absv(A)),
            Reduction("c", "sum", const(FP8_MAX) * A / m * W),
        ),
    )


def reference(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Eq. 17 exactly: c = (MAX · A / m) @ W with per-row abs-max m."""
    m = np.abs(a).max(axis=-1, keepdims=True)
    return (FP8_MAX * a / m) @ w


def quantize_fp8(x: np.ndarray) -> np.ndarray:
    """Round to the E4M3 representable grid (no NaN/inf handling)."""
    clipped = np.clip(x, -FP8_MAX, FP8_MAX)
    mantissa_bits = 3
    with np.errstate(divide="ignore", invalid="ignore"):
        exponent = np.floor(np.log2(np.maximum(np.abs(clipped), 2.0 ** -6)))
    step = 2.0 ** (exponent - mantissa_bits)
    return np.round(clipped / step) * step


def reference_rounded(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Eq. 17 with actual FP8 rounding of the scaled activations."""
    m = np.abs(a).max(axis=-1, keepdims=True)
    return quantize_fp8(FP8_MAX * a / m) @ w


def engine_query(config: QuantGemmConfig, rng: np.random.Generator):
    """Engine-level inputs for one activation row of :func:`cascade`.

    ``A`` is one token's ``k`` activations, ``W`` the shared
    ``(k, n)`` weight matrix — the per-row abs-max + scaled-GEMM chain
    every execution backend consumes directly.
    """
    a = rng.normal(size=config.k)
    w = rng.normal(size=(config.k, config.n)) / np.sqrt(config.k)
    return {"A": a[:, None], "W": w}


def make_inputs(config: QuantGemmConfig, rng: np.random.Generator):
    return (
        rng.normal(size=(config.m, config.k)),
        rng.normal(size=(config.k, config.n)) / np.sqrt(config.k),
    )


def op_graph(config: QuantGemmConfig) -> OpGraph:
    m, n, k = config.m, config.n, config.k
    a_t = TensorInfo("A", m * k, FP16)
    w_t = TensorInfo("W8", k * n, FP8)
    amax_t = TensorInfo("amax", m, 4)
    a8_t = TensorInfo("A8", m * k, FP8)
    c_t = TensorInfo("C", m * n, FP16)
    return OpGraph(
        name=f"quant_{config.name}",
        ops=(
            LogicalOp("abs_max", "reduction", (a_t,), (amax_t,), float(m * k)),
            LogicalOp(
                "quantize", "elementwise", (a_t, amax_t), (a8_t,), 2.0 * m * k
            ),
            LogicalOp(
                "fp8_gemm",
                "gemm",
                (a8_t, w_t, amax_t),
                (c_t,),
                2.0 * m * n * k,
                fp8=True,
            ),
        ),
    )


def redfuser_program(config: QuantGemmConfig, has_fp8: bool):
    """The fused quant+GEMM kernel (abs-max prologue inside the GEMM).

    Built analytically rather than through the tile backend: the weight
    matrix needs an N-axis tiling the generic tensorizer does not emit
    (each CTA owns an (M-tile, N-tile) output block and streams K).
    Reads A once in fp16 and the fp8 weights once; writes C.
    """
    from ..gpusim.kernel import KernelSpec, Program

    m, n, k = config.m, config.n, config.k
    blk_m, blk_n, blk_k = 64, 128, 64
    grid = (m // blk_m) * max(1, n // blk_n)
    smem = (blk_m * blk_k * FP16 + blk_k * blk_n * FP8) * 2 + 4 * 1024
    return Program(
        name=f"quant_{config.name}_redfuser",
        kernels=[
            KernelSpec(
                name="fused_quant_gemm",
                grid=grid,
                threads_per_cta=256,
                smem_bytes=smem,
                bytes_read=float(m * k * FP16 + k * n * FP8),
                bytes_written=float(m * n * FP16),
                flops=2.0 * m * n * k + 4.0 * m * k,
                tensor_cores=True,
                dtype="fp8" if has_fp8 else "fp16",
                compute_efficiency=0.70,
                memory_efficiency=0.85,
                overlap=0.9,
            )
        ],
    )


def fused_spec(config: QuantGemmConfig) -> Tuple[CodegenSpec, int]:
    spec = CodegenSpec(
        fused=fused_for(cascade()),
        rows=config.m,
        length=config.k,
        layouts=(
            ElementLayout("A", 1, True),
            ElementLayout("W", config.n, False),
        ),
    )
    return spec, 1
