"""Tensorization: fused cascades → tile-level IR (paper §4.4).

The three stages of §4.4 are realized as:

* **Blockization** — the row axis splits into ``blk_rows`` tiles bound
  to ``blockIdx.x``; the cascade axis streams through a ``ForStage``
  software-pipeline loop of ``blk_len`` elements per stage;
* **Block-level buffer management** — global inputs are staged into
  ``shared`` tiles via explicit ``copy``; accumulator state lives in
  ``fragment`` tiles compacted to the block's footprint;
* **Conversion to TileOp** — each reduction's three-step template maps
  onto ``copy`` (store previous), ``parallel`` (apply correction) and
  ``reduce``/``gemm`` (perform reduction).  A vector-valued reduction
  whose fresh contribution factors as ``weight(x, d) * V`` lowers to
  ``parallel`` (weights tile) + ``gemm`` — which is exactly how
  FlashAttention's PV product appears in Fig. 12b.

``tensorize_multi_segment`` adds the ``blockIdx.y`` split dimension and
emits the separate combine kernel of Fig. 13b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.fused import NEW_SUFFIX, PREV_SUFFIX, FusedReduction
from ..ir.scalar import load
from ..ir.tile import (
    Copy,
    Fill,
    ForStage,
    Gemm,
    Parallel,
    Reduce,
    TileBuffer,
    TileOp,
    TileProgram,
    tile,
)
from ..symbolic import Binary, Const, Expr, Var, var
from .lower import CodegenSpec, LoweringError, _reused_by_later

_STATE_INITS = {"sum": 0.0, "max": -np.inf, "min": np.inf, "prod": 1.0}

#: Loop variable of the emitted segment loop.  The schedule optimizer
#: (:mod:`repro.codegen.opt`) keys its software-pipelining transform on
#: this name when unrolling ``ForStage`` bodies.
STAGE_VAR = "stage"


@dataclass(frozen=True)
class TileConfig:
    """Auto-tunable tile parameters (§4.4's search space)."""

    blk_rows: int = 128
    blk_len: int = 128
    threads: int = 256
    pipeline_depth: int = 2

    def __post_init__(self) -> None:
        if self.blk_rows < 1 or self.blk_len < 1:
            raise ValueError("tile sizes must be positive")


def _seed_init(spec: CodegenSpec, fr: FusedReduction) -> float:
    """Identity seed for a state fragment.

    Abs-max style reductions (G >= 0 everywhere) seed with 0 instead of
    -inf so that the very first correction ratio is well defined — the
    tile template, like Fig. 12b, does not peel the first stage.
    """
    init = _STATE_INITS[fr.reduction.op_name]
    if fr.reduction.op_name == "max" and _is_nonnegative(fr.gh):
        return 0.0
    return init


def _is_nonnegative(e: Expr) -> bool:
    from ..symbolic.expr import Unary

    if isinstance(e, Unary) and e.op in ("abs", "exp", "sqrt"):
        return True
    if isinstance(e, Binary) and e.op == "mul" and e.lhs == e.rhs:
        return True
    return False


def _split_vector_factor(gh: Expr, vector_name: str) -> Optional[Expr]:
    """If ``gh == weight * Var(vector)``, return the weight expression."""
    from ..symbolic.simplify import _split_factors, _product
    from ..symbolic import simplify

    num, den = _split_factors(gh)
    target = Var(vector_name)
    if num.count(target) != 1 or target in den:
        return None
    num = [f for f in num if f != target]
    weight = _product(num)  # Const(1.0) when no other factors remain
    if den:
        weight = Binary("div", weight, _product(den))
    return simplify(weight)


class _TileEmitter:
    """Shared machinery for single- and multi-segment tile programs."""

    def __init__(self, spec: CodegenSpec, config: TileConfig, splits: int = 1):
        if spec.rows % config.blk_rows != 0:
            raise LoweringError("rows must divide into blk_rows tiles")
        seg_len = spec.length // splits
        if spec.length % splits != 0 or seg_len % config.blk_len != 0:
            raise LoweringError("length must divide into splits * blk_len tiles")
        for fr in spec.fused:
            if fr.is_topk or fr.is_multi_term:
                raise LoweringError(
                    "the tile backend lowers single-term scalar chains "
                    "(attention / softmax / quant class)"
                )
        self.spec = spec
        self.config = config
        self.splits = splits
        self.seg_len = seg_len
        self.stages = seg_len // config.blk_len
        self.row_blocks = spec.rows // config.blk_rows
        self.buffers: List[TileBuffer] = []
        self.body: List[TileOp] = []

    # -- buffer declaration -------------------------------------------------
    def declare(self) -> None:
        spec, cfg = self.spec, self.config
        producer = spec.producer
        for lay in spec.layouts:
            if producer is not None and lay.name == producer.target:
                continue  # produced on-chip, never touches global memory
            shape = (
                (spec.rows, spec.length)
                if lay.per_row
                else (spec.length, lay.width)
            )
            self.buffers.append(TileBuffer(lay.name, shape, "global", 2))
            shared_shape = (
                (cfg.blk_rows, cfg.blk_len)
                if lay.per_row
                else (cfg.blk_len, lay.width)
            )
            self.buffers.append(
                TileBuffer(lay.name + "_shared", shared_shape, "shared", 2)
            )
        if producer is not None:
            self.buffers.append(
                TileBuffer(producer.lhs, (spec.rows, producer.inner_dim), "global", 2)
            )
            self.buffers.append(
                TileBuffer(producer.rhs, (spec.length, producer.inner_dim), "global", 2)
            )
            self.buffers.append(
                TileBuffer(
                    producer.lhs + "_shared",
                    (cfg.blk_rows, producer.inner_dim),
                    "shared",
                    2,
                )
            )
            self.buffers.append(
                TileBuffer(
                    producer.rhs + "_shared",
                    (cfg.blk_len, producer.inner_dim),
                    "shared",
                    2,
                )
            )
            self.buffers.append(
                TileBuffer(
                    producer.target + "_frag", (cfg.blk_rows, cfg.blk_len), "fragment"
                )
            )
        for index, fr in enumerate(spec.fused):
            name = fr.reduction.name
            width = spec.reduction_width(fr)
            self.buffers.append(
                TileBuffer(f"{name}_frag", (cfg.blk_rows, width), "fragment")
            )
            if _reused_by_later(spec, index):
                self.buffers.append(
                    TileBuffer(f"{name}_frag_prev", (cfg.blk_rows, 1), "fragment")
                )
            if self._weight_tile_needed(fr):
                self.buffers.append(
                    TileBuffer(
                        f"{name}_w", (cfg.blk_rows, cfg.blk_len), "fragment"
                    )
                )

    def _weight_tile_needed(self, fr: FusedReduction) -> bool:
        if self.spec.reduction_width(fr) > 1:
            return True
        return fr.gh != Var(self._per_row_element())

    def _per_row_element(self) -> str:
        for lay in self.spec.layouts:
            if lay.per_row:
                return lay.name
        raise LoweringError("the tile backend needs one per-row element var")

    # -- body ---------------------------------------------------------------
    def emit_body(self, bx: Expr, stage_offset: Expr) -> None:
        spec, cfg = self.spec, self.config
        producer = spec.producer
        for fr in spec.fused:
            self.body.append(
                Fill(
                    tile(
                        f"{fr.reduction.name}_frag",
                        (0, cfg.blk_rows),
                        (0, spec.reduction_width(fr)),
                    ),
                    _seed_init(spec, fr),
                )
            )
        if producer is not None:
            self.body.append(
                Copy(
                    tile(
                        producer.lhs,
                        (bx * cfg.blk_rows, cfg.blk_rows),
                        (0, producer.inner_dim),
                    ),
                    tile(
                        producer.lhs + "_shared",
                        (0, cfg.blk_rows),
                        (0, producer.inner_dim),
                    ),
                )
            )

        stage = var(STAGE_VAR)
        offset = stage_offset + stage * cfg.blk_len
        stage_body: List[TileOp] = []
        for lay in spec.layouts:
            if producer is not None and lay.name == producer.target:
                continue
            if lay.per_row:
                stage_body.append(
                    Copy(
                        tile(
                            lay.name,
                            (bx * cfg.blk_rows, cfg.blk_rows),
                            (offset, cfg.blk_len),
                        ),
                        tile(
                            lay.name + "_shared", (0, cfg.blk_rows), (0, cfg.blk_len)
                        ),
                    )
                )
            else:
                stage_body.append(
                    Copy(
                        tile(lay.name, (offset, cfg.blk_len), (0, lay.width)),
                        tile(
                            lay.name + "_shared", (0, cfg.blk_len), (0, lay.width)
                        ),
                    )
                )
        if producer is not None:
            stage_body.append(
                Copy(
                    tile(producer.rhs, (offset, cfg.blk_len), (0, producer.inner_dim)),
                    tile(
                        producer.rhs + "_shared",
                        (0, cfg.blk_len),
                        (0, producer.inner_dim),
                    ),
                )
            )
            stage_body.append(
                Fill(
                    tile(
                        producer.target + "_frag", (0, cfg.blk_rows), (0, cfg.blk_len)
                    ),
                    0.0,
                )
            )
            stage_body.append(
                Gemm(
                    tile(
                        producer.lhs + "_shared",
                        (0, cfg.blk_rows),
                        (0, producer.inner_dim),
                    ),
                    tile(
                        producer.rhs + "_shared",
                        (0, cfg.blk_len),
                        (0, producer.inner_dim),
                    ),
                    tile(
                        producer.target + "_frag", (0, cfg.blk_rows), (0, cfg.blk_len)
                    ),
                )
            )
        for index, fr in enumerate(spec.fused):
            stage_body.extend(self._reduction_ops(fr, index))
        self.body.append(ForStage(STAGE_VAR, self.stages, tuple(stage_body)))

    def _element_tile_load(self, name: str, i: Expr, j: Expr, d: Expr) -> Expr:
        lay = self.spec.layout(name)
        producer = self.spec.producer
        if producer is not None and name == producer.target:
            return load(producer.target + "_frag", i, j)
        if lay.per_row:
            return load(name + "_shared", i, j)
        if lay.width == 1:
            return load(name + "_shared", j, 0)
        return load(name + "_shared", j, d)

    def _contrib_expr(self, fr: FusedReduction, i: Expr, j: Expr, d: Expr) -> Expr:
        mapping: Dict[str, Expr] = {}
        for lay in self.spec.layouts:
            mapping[lay.name] = self._element_tile_load(lay.name, i, j, d)
        for dep in fr.dep_names:
            mapping[dep] = load(dep + "_frag", i, 0)
        return fr.gh.substitute(mapping)

    def _ratio_expr(self, fr: FusedReduction, i: Expr) -> Expr:
        mapping: Dict[str, Expr] = {}
        for dep in fr.dep_names:
            mapping[dep + PREV_SUFFIX] = load(dep + "_frag_prev", i, 0)
            mapping[dep + NEW_SUFFIX] = load(dep + "_frag", i, 0)
        return fr.h_ratio.substitute(mapping)

    def _reduction_ops(self, fr: FusedReduction, index: int) -> List[TileOp]:
        spec, cfg = self.spec, self.config
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        i, j, d = var("i"), var("j"), var("d")
        ops: List[TileOp] = []

        if _reused_by_later(spec, index):
            ops.append(
                Copy(
                    tile(f"{name}_frag", (0, cfg.blk_rows), (0, 1)),
                    tile(f"{name}_frag_prev", (0, cfg.blk_rows), (0, 1)),
                )
            )
        if fr.needs_correction:
            ratio = self._ratio_expr(fr, i)
            target_width = width
            value = _apply(fr, load(f"{name}_frag", i, d), ratio)
            ops.append(
                Parallel(
                    f"{name}_frag",
                    (i, d),
                    value,
                    ("i", "d"),
                    (cfg.blk_rows, target_width),
                )
            )

        if width > 1:
            vector_name = self._vector_element(fr)
            weight = _split_vector_factor(fr.gh, vector_name)
            if weight is None:
                raise LoweringError(
                    f"vector reduction {name!r} does not factor as weight * "
                    f"{vector_name}"
                )
            mapping: Dict[str, Expr] = {}
            for lay in spec.layouts:
                mapping[lay.name] = self._element_tile_load(lay.name, i, j, d)
            for dep in fr.dep_names:
                mapping[dep] = load(dep + "_frag", i, 0)
            ops.append(
                Parallel(
                    f"{name}_w",
                    (i, j),
                    weight.substitute(mapping),
                    ("i", "j"),
                    (cfg.blk_rows, cfg.blk_len),
                )
            )
            ops.append(
                Gemm(
                    tile(f"{name}_w", (0, cfg.blk_rows), (0, cfg.blk_len)),
                    tile(vector_name + "_shared", (0, cfg.blk_len), (0, width)),
                    tile(f"{name}_frag", (0, cfg.blk_rows), (0, width)),
                    transpose_b=False,
                )
            )
            return ops

        if self._weight_tile_needed(fr):
            ops.append(
                Parallel(
                    f"{name}_w",
                    (i, j),
                    self._contrib_expr(fr, i, j, d),
                    ("i", "j"),
                    (cfg.blk_rows, cfg.blk_len),
                )
            )
            src = tile(f"{name}_w", (0, cfg.blk_rows), (0, cfg.blk_len))
        else:
            producer = spec.producer
            src_name = (
                producer.target + "_frag"
                if producer is not None and self._per_row_element() == producer.target
                else self._per_row_element() + "_shared"
            )
            src = tile(src_name, (0, cfg.blk_rows), (0, cfg.blk_len))
        ops.append(
            Reduce(
                src,
                tile(f"{name}_frag", (0, cfg.blk_rows), (0, 1)),
                axis=1,
                op=fr.reduction.op_name,
            )
        )
        return ops

    def _vector_element(self, fr: FusedReduction) -> str:
        names = fr.reduction.fn.free_vars()
        for lay in self.spec.layouts:
            if lay.width > 1 and lay.name in names:
                return lay.name
        raise LoweringError("vector reduction without a wide element var")


def _apply(fr: FusedReduction, a: Expr, b: Expr) -> Expr:
    return fr.otimes.apply_sym(a, b)


def tensorize_single_segment(
    spec: CodegenSpec, config: TileConfig = TileConfig()
) -> TileProgram:
    """Single-Segment strategy as a tile program (Fig. 12b)."""
    emitter = _TileEmitter(spec, config, splits=1)
    emitter.declare()
    bx = var("bx")
    for fr in spec.fused:
        width = spec.reduction_width(fr)
        emitter.buffers.append(
            TileBuffer(fr.reduction.name, (spec.rows, width), "global", 2)
        )
    emitter.emit_body(bx, stage_offset=Const(0.0))
    cfg = config
    for fr in spec.fused:
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        emitter.body.append(
            Copy(
                tile(f"{name}_frag", (0, cfg.blk_rows), (0, width)),
                tile(name, (bx * cfg.blk_rows, cfg.blk_rows), (0, width)),
            )
        )
    return TileProgram(
        name=f"{spec.fused.cascade.name}_tile_single",
        buffers=tuple(emitter.buffers),
        grid=(("bx", emitter.row_blocks),),
        body=tuple(emitter.body),
    )


def tensorize_multi_segment(
    spec: CodegenSpec, config: TileConfig = TileConfig(), splits: int = 2
) -> Tuple[TileProgram, TileProgram]:
    """Multi-Segment strategy: partial + combine kernels (Fig. 13b)."""
    if splits < 2:
        raise LoweringError("multi-segment needs splits >= 2")
    emitter = _TileEmitter(spec, config, splits=splits)
    emitter.declare()
    bx, by = var("bx"), var("by")
    for fr in spec.fused:
        width = spec.reduction_width(fr)
        emitter.buffers.append(
            TileBuffer(
                fr.reduction.name + "_part", (spec.rows, width, splits), "global"
            )
        )
    emitter.emit_body(bx, stage_offset=by * emitter.seg_len)
    cfg = config
    for fr in spec.fused:
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        i, d = var("i"), var("d")
        emitter.body.append(
            Parallel(
                name + "_part",
                (bx * cfg.blk_rows + i, d, by),
                load(name + "_frag", i, d),
                ("i", "d"),
                (cfg.blk_rows, width),
            )
        )
    partial = TileProgram(
        name=f"{spec.fused.cascade.name}_tile_partial",
        buffers=tuple(emitter.buffers),
        grid=(("bx", emitter.row_blocks), ("by", splits)),
        body=tuple(emitter.body),
    )

    # -- combine kernel (Fig. 13b) ------------------------------------------
    # The combine reads small per-split partials; fine row tiles keep its
    # grid wide enough to matter on the occupancy model.
    combine_rows = cfg.blk_rows
    for candidate in (16, 32, 64):
        if candidate <= cfg.blk_rows and spec.rows % candidate == 0:
            combine_rows = candidate
            break
    buffers: List[TileBuffer] = []
    body: List[TileOp] = []
    i, d, k = var("i"), var("d"), var("k")
    for index, fr in enumerate(spec.fused):
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        buffers.append(
            TileBuffer(name + "_part", (spec.rows, width, splits), "global")
        )
        buffers.append(TileBuffer(name, (spec.rows, width), "global"))
        buffers.append(
            TileBuffer(name + "_pfrag", (combine_rows, width, splits), "fragment")
        )
        if fr.needs_correction:
            # corrected partials live in their own tile: later reductions'
            # ratios must read the *original* partial dependency values
            buffers.append(
                TileBuffer(name + "_cfrag", (combine_rows, width, splits), "fragment")
            )
        buffers.append(TileBuffer(name + "_frag", (combine_rows, width), "fragment"))
    for fr in spec.fused:
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        body.append(
            Copy(
                tile(
                    name + "_part",
                    (bx * combine_rows, combine_rows),
                    (0, width),
                    (0, splits),
                ),
                tile(name + "_pfrag", (0, combine_rows), (0, width), (0, splits)),
            )
        )
        body.append(
            Fill(
                tile(name + "_frag", (0, combine_rows), (0, width)),
                _STATE_INITS[fr.reduction.op_name],
            )
        )
    for fr in spec.fused:
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        reduce_src = name + "_pfrag"
        if fr.needs_correction:
            mapping: Dict[str, Expr] = {}
            for dep in fr.dep_names:
                mapping[dep + PREV_SUFFIX] = load(dep + "_pfrag", i, 0, k)
                mapping[dep + NEW_SUFFIX] = load(dep + "_frag", i, 0)
            ratio = fr.h_ratio.substitute(mapping)
            body.append(
                Parallel(
                    name + "_cfrag",
                    (i, d, k),
                    _apply(fr, load(name + "_pfrag", i, d, k), ratio),
                    ("i", "d", "k"),
                    (combine_rows, width, splits),
                )
            )
            reduce_src = name + "_cfrag"
        body.append(
            Reduce(
                tile(reduce_src, (0, combine_rows), (0, width), (0, splits)),
                tile(name + "_frag", (0, combine_rows), (0, width)),
                axis=2,
                op=fr.reduction.op_name,
            )
        )
        body.append(
            Copy(
                tile(name + "_frag", (0, combine_rows), (0, width)),
                tile(name, (bx * combine_rows, combine_rows), (0, width)),
            )
        )
    combine = TileProgram(
        name=f"{spec.fused.cascade.name}_tile_combine",
        buffers=tuple(buffers),
        grid=(("bx", spec.rows // combine_rows),),
        body=tuple(body),
    )
    return partial, combine
