"""Lowering of fused cascades to scalar IR (paper §4.3, Fig. 12a/13a).

The emitter realizes the three-step reduction template of Appendix A.4:

1. **store previous result** — only for reductions whose output is
   reused by a later correction (``pmax_prev``/``psum_prev``);
2. **apply correction** — multiply/add the accumulated partial by
   ``H(prev deps)^-1 ⊗ H(new deps)`` — only for reductions with
   dependencies;
3. **perform reduction** — fold in the fresh contribution G ⊗ H.

Two strategies (paper §4.3):

* **Single-Segment** — the whole axis streams through one incremental
  loop; O(1) state, no inter-block combine.
* **Multi-Segment** — the axis splits into ``num_segments`` parts
  processed independently (extra ``split`` grid dimension in the partial
  kernel), then a combine kernel merges partials with Eq. 11 (Fig. 13a).

The first loop iteration is peeled as the seed step: it performs step 3
only, because before any element has been processed every accumulator
holds the ⊕-identity and H of it may be non-invertible (Appendix A.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.fused import NEW_SUFFIX, PREV_SUFFIX, FusedCascade, FusedReduction
from ..ir.scalar import Function, FunctionBuilder, load
from ..symbolic import Const, Expr, var


class LoweringError(RuntimeError):
    """The cascade is outside the class supported by the scalar emitter."""


@dataclass(frozen=True)
class ElementLayout:
    """How one element variable is stored in memory.

    * ``per_row=True`` — shape (rows, length): a distinct stream per
      output row (attention's P, quant's A rows, softmax's x);
    * ``per_row=False`` — shape (length, width): shared across rows
      (attention's V, quant's W).
    """

    name: str
    width: int = 1
    per_row: bool = True


@dataclass(frozen=True)
class GemmProducer:
    """A prologue GEMM producing one element variable.

    ``target[r, l] = sum_d lhs[r, d] * rhs[l, d]`` — the QK^T of
    attention (Fig. 11 reduction 1), fused into the main loop.
    """

    target: str
    lhs: str
    rhs: str
    inner_dim: int


@dataclass(frozen=True)
class CodegenSpec:
    """Everything the emitter needs besides the fused cascade."""

    fused: FusedCascade
    rows: int
    length: int
    layouts: Tuple[ElementLayout, ...]
    producer: Optional[GemmProducer] = None

    def layout(self, name: str) -> ElementLayout:
        for lay in self.layouts:
            if lay.name == name:
                return lay
        raise KeyError(name)

    def reduction_width(self, fr: FusedReduction) -> int:
        """Output width of a reduction = widest element var in its F."""
        names = fr.reduction.fn.free_vars()
        widths = [
            lay.width for lay in self.layouts if lay.name in names
        ]
        return max(widths, default=1)


def _check_supported(spec: CodegenSpec) -> None:
    multi_term_names = set()
    for fr in spec.fused:
        if fr.is_topk:
            raise LoweringError(
                "top-k carriers are lowered by the tile backend, not the "
                "scalar emitter"
            )
        if fr.is_multi_term:
            multi_term_names.add(fr.reduction.name)
        elif multi_term_names & set(fr.dep_names):
            raise LoweringError(
                "a single-term reduction cannot depend on a multi-term "
                "output (it is only materialized in the epilogue)"
            )
    for lay in spec.layouts:
        if lay.per_row and lay.width != 1:
            raise LoweringError("per-row element vars must have width 1")


def _element_load(spec: CodegenSpec, name: str, r: Expr, el: Expr, d: Expr) -> Expr:
    lay = spec.layout(name)
    if lay.per_row:
        return load(name, r, el)
    if lay.width == 1:
        return load(name, el, 0)
    return load(name, el, d)


def _reused_by_later(spec: CodegenSpec, index: int) -> bool:
    """Does any later reduction's H reference this output? (step-1 test)."""
    name = spec.fused.reductions[index].reduction.name
    for later in spec.fused.reductions[index + 1 :]:
        if later.h is not None and name in later.h.free_vars():
            return True
        for term in later.terms:
            if name in term.h.free_vars():
                return True
    return False


class _ChainEmitter:
    """Emits the per-element seed / update statement groups."""

    def __init__(self, spec: CodegenSpec, fb: FunctionBuilder, row: Expr):
        self.spec = spec
        self.fb = fb
        self.row = row

    def state_ref(self, fr: FusedReduction, d: Expr) -> Tuple[str, tuple]:
        name = fr.reduction.name
        if self.spec.reduction_width(fr) > 1:
            return name, (self.row, d)
        return name, (self.row,)

    def _subst_contrib(self, fr: FusedReduction, el: Expr, d: Expr) -> Expr:
        """gh with element vars → loads and deps → state buffers."""
        mapping: Dict[str, Expr] = {}
        for lay in self.spec.layouts:
            mapping[lay.name] = _element_load(self.spec, lay.name, self.row, el, d)
        for dep in fr.dep_names:
            mapping[dep] = load(dep, self.row)
        return fr.gh.substitute(mapping)

    def _subst_ratio(self, fr: FusedReduction) -> Expr:
        mapping: Dict[str, Expr] = {}
        for dep in fr.dep_names:
            mapping[dep + PREV_SUFFIX] = load(dep + "_prev", self.row)
            mapping[dep + NEW_SUFFIX] = load(dep, self.row)
        return fr.h_ratio.substitute(mapping)

    def emit_seed(self, el: Expr) -> None:
        """Step 3 only — the peeled first iteration (Appendix A.1: H of
        an identity-valued state may be non-invertible, so the seed
        carries no correction)."""
        for fr in self.spec.fused:
            self._emit_reduce_step(fr, el)

    def emit_update(self, el: Expr) -> None:
        """Full three-step template for one element (Fig. 12a)."""
        for index, fr in enumerate(self.spec.fused):
            name = fr.reduction.name
            if _reused_by_later(self.spec, index):
                # step 1: store previous result
                self.fb.store(name + "_prev", (self.row,), load(name, self.row))
            if fr.needs_correction:
                # step 2: apply correction
                ratio = self._subst_ratio(fr)
                width = self.spec.reduction_width(fr)
                if width > 1:
                    d = var("d")
                    with self.fb.loop("d", width):
                        target = load(name, self.row, d)
                        self.fb.store(
                            name,
                            (self.row, d),
                            fr.otimes.apply_sym(target, ratio),
                        )
                else:
                    self.fb.store(
                        name,
                        (self.row,),
                        fr.otimes.apply_sym(load(name, self.row), ratio),
                    )
            # step 3: perform reduction
            self._emit_reduce_step(fr, el)

    def _emit_reduce_step(self, fr: FusedReduction, el: Expr) -> None:
        name = fr.reduction.name
        width = self.spec.reduction_width(fr)
        if fr.is_multi_term:
            # dependency-free running accumulators; materialization is a
            # final epilogue handled by the caller.
            for j, term in enumerate(fr.terms):
                mapping = {
                    lay.name: _element_load(self.spec, lay.name, self.row, el, var("d"))
                    for lay in self.spec.layouts
                }
                self.fb.reduce(
                    f"{name}_acc{j}", (self.row,), "sum", term.g.substitute(mapping)
                )
            return
        if width > 1:
            d = var("d")
            with self.fb.loop("d", width):
                self.fb.reduce(
                    name,
                    (self.row, d),
                    fr.reduction.op_name,
                    self._subst_contrib(fr, el, d),
                )
        else:
            self.fb.reduce(
                name,
                (self.row,),
                fr.reduction.op_name,
                self._subst_contrib(fr, el, var("d")),
            )


def _declare_buffers(spec: CodegenSpec, fb: FunctionBuilder) -> None:
    producer = spec.producer
    for lay in spec.layouts:
        if producer is not None and lay.name == producer.target:
            fb.buffer(lay.name, (spec.rows, spec.length))
            continue
        if lay.per_row:
            fb.input_buffer(lay.name, (spec.rows, spec.length))
        else:
            fb.input_buffer(lay.name, (spec.length, lay.width))
    if producer is not None:
        fb.input_buffer(producer.lhs, (spec.rows, producer.inner_dim))
        fb.input_buffer(producer.rhs, (spec.length, producer.inner_dim))


def _declare_state(spec: CodegenSpec, fb: FunctionBuilder) -> None:
    for index, fr in enumerate(spec.fused):
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        if fr.is_multi_term:
            for j, _ in enumerate(fr.terms):
                fb.buffer(f"{name}_acc{j}", (spec.rows,))
            fb.output_buffer(name, (spec.rows,))
            continue
        shape = (spec.rows, width) if width > 1 else (spec.rows,)
        fb.output_buffer(name, shape)
        if _reused_by_later(spec, index):
            fb.buffer(name + "_prev", (spec.rows,))


def _emit_producer(spec: CodegenSpec, fb: FunctionBuilder, r: Expr, el: Expr) -> None:
    producer = spec.producer
    if producer is None:
        return
    d = var("pd")
    with fb.loop("pd", producer.inner_dim):
        fb.reduce(
            producer.target,
            (r, el),
            "sum",
            load(producer.lhs, r, d) * load(producer.rhs, el, d),
        )


def _emit_multi_term_epilogue(spec: CodegenSpec, fb: FunctionBuilder, r: Expr) -> None:
    """Materialize multi-term outputs d = Σ_j h_j(D) * ĝ_j."""
    for fr in spec.fused:
        if not fr.is_multi_term:
            continue
        name = fr.reduction.name
        total: Optional[Expr] = None
        for j, term in enumerate(fr.terms):
            dep_map = {dep: load(dep, r) for dep in fr.dep_names}
            piece = term.h.substitute(dep_map) * load(f"{name}_acc{j}", r)
            total = piece if total is None else total + piece
        fb.store(name, (r,), total)


def lower_single_segment(spec: CodegenSpec) -> Function:
    """Emit the Single-Segment strategy (incremental, Fig. 12a)."""
    _check_supported(spec)
    fb = FunctionBuilder(f"{spec.fused.cascade.name}_single_segment")
    _declare_buffers(spec, fb)
    _declare_state(spec, fb)
    r, el = var("r"), var("l")
    zero = Const(0.0)

    with fb.loop("r", spec.rows):
        emitter = _ChainEmitter(spec, fb, r)
        # peeled seed iteration (l = 0)
        _emit_producer(spec, fb, r, zero)
        emitter.emit_seed(zero)
        with fb.loop("l", spec.length, start=1):
            _emit_producer(spec, fb, r, el)
            emitter.emit_update(el)
        _emit_multi_term_epilogue(spec, fb, r)
    return fb.build()


def lower_multi_segment(
    spec: CodegenSpec, num_segments: int
) -> Tuple[Function, Function]:
    """Emit the Multi-Segment strategy: partial + combine (Fig. 13a)."""
    _check_supported(spec)
    for fr in spec.fused:
        if fr.is_multi_term:
            raise LoweringError(
                "multi-term reductions use the single-segment emitter "
                "(their accumulators already combine without correction)"
            )
    if num_segments < 2:
        raise LoweringError("multi-segment strategy needs num_segments >= 2")
    if spec.length % num_segments != 0:
        raise LoweringError("length must divide evenly into segments")
    seg_len = spec.length // num_segments

    # ---- partial kernel --------------------------------------------------
    fb = FunctionBuilder(f"{spec.fused.cascade.name}_partial")
    _declare_buffers(spec, fb)
    r, s, el = var("r"), var("split"), var("l")
    for index, fr in enumerate(spec.fused):
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        shape = (
            (spec.rows, num_segments, width)
            if width > 1
            else (spec.rows, num_segments)
        )
        fb.output_buffer(name + "_part", shape)
        if _reused_by_later(spec, index):
            fb.buffer(name + "_part_prev", (spec.rows, num_segments))

    with fb.loop("r", spec.rows):
        with fb.loop("split", num_segments):
            emitter = _PartialEmitter(spec, fb, r, s, seg_len)
            offset0 = s * seg_len
            _emit_producer_at(spec, fb, r, offset0)
            emitter.emit_seed(offset0)
            with fb.loop("l", seg_len, start=1):
                offset = s * seg_len + el
                _emit_producer_at(spec, fb, r, offset)
                emitter.emit_update(offset)
    partial = fb.build()

    # ---- combine kernel (Eq. 11 / Fig. 13a) ------------------------------
    cb = FunctionBuilder(f"{spec.fused.cascade.name}_combine")
    for fr in spec.fused:
        name = fr.reduction.name
        width = spec.reduction_width(fr)
        shape = (
            (spec.rows, num_segments, width)
            if width > 1
            else (spec.rows, num_segments)
        )
        cb.input_buffer(name + "_part", shape)
        cb.output_buffer(name, (spec.rows, width) if width > 1 else (spec.rows,))
    with cb.loop("r", spec.rows):
        for fr in spec.fused:
            name = fr.reduction.name
            width = spec.reduction_width(fr)
            with cb.loop("split", num_segments):
                ratio = _combine_ratio(fr, r, s)
                if width > 1:
                    d = var("d")
                    with cb.loop("d", width):
                        child = load(name + "_part", r, s, d)
                        value = (
                            child
                            if ratio is None
                            else fr.otimes.apply_sym(child, ratio)
                        )
                        cb.reduce(name, (r, d), fr.reduction.op_name, value)
                else:
                    child = load(name + "_part", r, s)
                    value = (
                        child if ratio is None else fr.otimes.apply_sym(child, ratio)
                    )
                    cb.reduce(name, (r,), fr.reduction.op_name, value)
    combine = cb.build()
    return partial, combine


def _combine_ratio(fr: FusedReduction, r: Expr, s: Expr) -> Optional[Expr]:
    """Child correction H(child deps)^-1 ⊗ H(final deps) for Eq. 11."""
    if not fr.needs_correction:
        return None
    mapping: Dict[str, Expr] = {}
    for dep in fr.dep_names:
        mapping[dep + PREV_SUFFIX] = load(dep + "_part", r, s)
        mapping[dep + NEW_SUFFIX] = load(dep, r)
    return fr.h_ratio.substitute(mapping)


def _emit_producer_at(spec: CodegenSpec, fb: FunctionBuilder, r: Expr, offset: Expr):
    producer = spec.producer
    if producer is None:
        return
    d = var("pd")
    with fb.loop("pd", producer.inner_dim):
        fb.reduce(
            producer.target,
            (r, offset),
            "sum",
            load(producer.lhs, r, d) * load(producer.rhs, offset, d),
        )


class _PartialEmitter(_ChainEmitter):
    """Chain emitter writing per-(row, split) partial state buffers."""

    def __init__(self, spec, fb, row, split, seg_len):
        super().__init__(spec, fb, row)
        self.split = split
        self.seg_len = seg_len

    def _subst_contrib(self, fr, el, d):
        mapping: Dict[str, Expr] = {}
        for lay in self.spec.layouts:
            mapping[lay.name] = _element_load(self.spec, lay.name, self.row, el, d)
        for dep in fr.dep_names:
            mapping[dep] = load(dep + "_part", self.row, self.split)
        return fr.gh.substitute(mapping)

    def _subst_ratio(self, fr):
        mapping: Dict[str, Expr] = {}
        for dep in fr.dep_names:
            mapping[dep + PREV_SUFFIX] = load(
                dep + "_part_prev", self.row, self.split
            )
            mapping[dep + NEW_SUFFIX] = load(dep + "_part", self.row, self.split)
        return fr.h_ratio.substitute(mapping)

    def emit_update(self, el):
        for index, fr in enumerate(self.spec.fused):
            name = fr.reduction.name
            if _reused_by_later(self.spec, index):
                self.fb.store(
                    name + "_part_prev",
                    (self.row, self.split),
                    load(name + "_part", self.row, self.split),
                )
            if fr.needs_correction:
                ratio = self._subst_ratio(fr)
                width = self.spec.reduction_width(fr)
                if width > 1:
                    d = var("d")
                    with self.fb.loop("d", width):
                        target = load(name + "_part", self.row, self.split, d)
                        self.fb.store(
                            name + "_part",
                            (self.row, self.split, d),
                            fr.otimes.apply_sym(target, ratio),
                        )
                else:
                    target = load(name + "_part", self.row, self.split)
                    self.fb.store(
                        name + "_part",
                        (self.row, self.split),
                        fr.otimes.apply_sym(target, ratio),
                    )
            self._emit_reduce_step(fr, el)

    def _emit_reduce_step(self, fr, el):
        name = fr.reduction.name
        width = self.spec.reduction_width(fr)
        if width > 1:
            d = var("d")
            with self.fb.loop("d", width):
                self.fb.reduce(
                    name + "_part",
                    (self.row, self.split, d),
                    fr.reduction.op_name,
                    self._subst_contrib(fr, el, d),
                )
        else:
            self.fb.reduce(
                name + "_part",
                (self.row, self.split),
                fr.reduction.op_name,
                self._subst_contrib(fr, el, var("d")),
            )
