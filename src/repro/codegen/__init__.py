"""Code generation: lowering, tensorization, kernel profiling, tuning."""

from .autotune import TuneResult, autotune
from .kernels import estimate_kernel
from .lower import (
    CodegenSpec,
    ElementLayout,
    GemmProducer,
    LoweringError,
    lower_multi_segment,
    lower_single_segment,
)
from .tensorize import (
    TileConfig,
    tensorize_multi_segment,
    tensorize_single_segment,
)

__all__ = [
    "TuneResult",
    "autotune",
    "estimate_kernel",
    "CodegenSpec",
    "ElementLayout",
    "GemmProducer",
    "LoweringError",
    "lower_multi_segment",
    "lower_single_segment",
    "TileConfig",
    "tensorize_multi_segment",
    "tensorize_single_segment",
    "estimate_kernel",
]
