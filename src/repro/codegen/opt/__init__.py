"""Profiler-guided tile-IR schedule optimizer.

A pass pipeline over :class:`~repro.ir.tile.TileProgram` running between
tensorization and the analytical cost model / NumPy interpreter: slot
scheduling against gpusim's per-engine model, temp-buffer renaming to
break false serial chains, software pipelining of segment loops, and
dead-copy elimination — every pass bitwise-preserving under
:class:`~repro.ir.tile.TileInterpreter`.
"""

from .deps import (
    OpDag,
    build_dag,
    carried_buffers,
    full_cover_write,
    ops_conflict,
    privatizable_buffers,
    refs_disjoint,
)
from .passes import (
    dead_code,
    pipeline_loops,
    rename_op,
    rename_temps,
    substitute_op,
)
from .pipeline import (
    OPT_LEVELS,
    PASS_NAMES,
    OptResult,
    optimize_programs,
    passes_for_level,
)
from .schedule import (
    ENGINES,
    EngineRates,
    OpCost,
    ProgramSchedule,
    RegionSchedule,
    carried_chain,
    engine_rates,
    list_schedule,
    op_cost,
    schedule_program,
)

__all__ = [
    "OpDag",
    "build_dag",
    "carried_buffers",
    "full_cover_write",
    "ops_conflict",
    "privatizable_buffers",
    "refs_disjoint",
    "dead_code",
    "pipeline_loops",
    "rename_op",
    "rename_temps",
    "substitute_op",
    "OPT_LEVELS",
    "PASS_NAMES",
    "OptResult",
    "optimize_programs",
    "passes_for_level",
    "ENGINES",
    "EngineRates",
    "OpCost",
    "ProgramSchedule",
    "RegionSchedule",
    "carried_chain",
    "engine_rates",
    "list_schedule",
    "op_cost",
    "schedule_program",
]
