"""Per-engine slot model and list scheduler over tile-op regions.

The model mirrors :mod:`repro.gpusim.costmodel`'s engine split: every
tile op issues on exactly one of the three simulated engine slots —
``gemm`` on the tensor cores, ``parallel``/``reduce``/``fill`` and
on-chip copies on the CUDA cores, global-memory copies on the DRAM
system — with a device-independent work amount (flops or bytes) priced
against the engine's per-SM throughput share.  The greedy list scheduler
issues ops in critical-path-priority order against one slot per engine,
which is how idle-engine cycles get filled: while the tensor cores chew
on one reduction's GEMM, the DRAM slot streams the next stage's tiles
and the CUDA cores run corrections whose inputs are ready.

``ForStage`` regions get software-pipelining accounting: a pipelined
loop's steady-state initiation interval is bound by its busiest engine
or by the loop-carried dependence chain (the accumulator recurrence),
whichever is longer — the standard modulo-scheduling II bound.

Everything rolls up into a :class:`~repro.gpusim.kernel.ScheduleProfile`
(total + critical-path work per engine, per CTA) that
:func:`repro.gpusim.costmodel.kernel_times` prices on any device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...gpusim.kernel import ScheduleProfile
from ...gpusim.specs import GPUSpec
from ...ir.tile import (
    Copy,
    Fill,
    ForStage,
    Gemm,
    Parallel,
    Reduce,
    TileOp,
    TileProgram,
)
from ..kernels import (
    REDFUSER_COMPUTE_EFF,
    REDFUSER_MEMORY_EFF,
    _expr_flops,
    _tile_elems,
)
from .deps import OpDag, build_dag, carried_buffers, op_accesses

ENGINES = ("tensor_core", "cuda_core", "dram")


@dataclass(frozen=True)
class OpCost:
    """Device-independent work of one op, split by engine."""

    tensor_flops: float = 0.0
    cuda_flops: float = 0.0
    dram_bytes: float = 0.0

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            self.tensor_flops + other.tensor_flops,
            self.cuda_flops + other.cuda_flops,
            self.dram_bytes + other.dram_bytes,
        )

    def scaled(self, factor: float) -> "OpCost":
        return OpCost(
            self.tensor_flops * factor,
            self.cuda_flops * factor,
            self.dram_bytes * factor,
        )


ZERO_COST = OpCost()


@dataclass(frozen=True)
class EngineRates:
    """One CTA's share of each engine's throughput on a device."""

    tensor: float  # flop/s
    cuda: float  # flop/s
    dram: float  # byte/s

    def duration(self, cost: OpCost) -> float:
        return (
            cost.tensor_flops / self.tensor
            + cost.cuda_flops / self.cuda
            + cost.dram_bytes / self.dram
        )

    def engine(self, cost: OpCost) -> str:
        times = {
            "tensor_core": cost.tensor_flops / self.tensor,
            "cuda_core": cost.cuda_flops / self.cuda,
            "dram": cost.dram_bytes / self.dram,
        }
        best = max(times.values())
        for engine in ("tensor_core", "dram", "cuda_core"):
            if times[engine] == best:
                return engine
        return "cuda_core"

    def busy(self, cost: OpCost) -> Dict[str, float]:
        return {
            "tensor_core": cost.tensor_flops / self.tensor,
            "cuda_core": cost.cuda_flops / self.cuda,
            "dram": cost.dram_bytes / self.dram,
        }


def engine_rates(
    gpu: GPUSpec,
    dtype: str = "fp16",
    compute_efficiency: float = REDFUSER_COMPUTE_EFF,
    memory_efficiency: float = REDFUSER_MEMORY_EFF,
) -> EngineRates:
    return EngineRates(
        tensor=gpu.peak_flops(dtype, True) * compute_efficiency / gpu.num_sms,
        cuda=gpu.fp32_flops * compute_efficiency / gpu.num_sms,
        dram=gpu.mem_bw * memory_efficiency / gpu.num_sms,
    )


def op_cost(op: TileOp, program: TileProgram) -> OpCost:
    """Engine-work decomposition of one op (per block)."""
    scopes = {b.name: b.scope for b in program.buffers}
    dtypes = {b.name: b.dtype_bytes for b in program.buffers}
    return _op_cost(op, scopes, dtypes)


def _op_cost(op: TileOp, scopes, dtypes) -> OpCost:
    if isinstance(op, Copy):
        elems = _tile_elems(op.src.lengths)
        bytes_ = 0.0
        if scopes.get(op.src.buffer) == "global":
            bytes_ += elems * dtypes.get(op.src.buffer, 4)
        if scopes.get(op.dst.buffer) == "global":
            bytes_ += elems * dtypes.get(op.dst.buffer, 4)
        if bytes_ > 0.0:
            return OpCost(dram_bytes=bytes_)
        return OpCost(cuda_flops=float(elems))  # on-chip move
    if isinstance(op, Gemm):
        m, k = op.a.lengths
        n = op.b.lengths[0] if op.transpose_b else op.b.lengths[1]
        return OpCost(tensor_flops=2.0 * m * n * k)
    if isinstance(op, Reduce):
        return OpCost(cuda_flops=float(_tile_elems(op.src.lengths)))
    if isinstance(op, Parallel):
        elems = _tile_elems(op.extents)
        cost = OpCost(cuda_flops=elems * _expr_flops(op.value))
        if scopes.get(op.buffer) == "global":
            cost = cost + OpCost(dram_bytes=elems * dtypes.get(op.buffer, 4))
        return cost
    if isinstance(op, Fill):
        return OpCost(cuda_flops=float(_tile_elems(op.ref.lengths)))
    if isinstance(op, ForStage):
        total = ZERO_COST
        for inner in op.body:
            total = total + _op_cost(inner, scopes, dtypes)
        return total.scaled(float(op.extent))
    raise TypeError(f"unknown tile op {op!r}")


@dataclass
class RegionSchedule:
    """Scheduling result for one straight-line op region."""

    order: List[int]  # issue order (a topological order of the DAG)
    span: float  # makespan, seconds per block
    busy: Dict[str, float]  # per-engine busy seconds
    units: OpCost  # total work
    cp_units: OpCost  # work along the schedule's critical path


def list_schedule(
    ops: Sequence[TileOp],
    costs: Sequence[OpCost],
    rates: EngineRates,
    dag: Optional[OpDag] = None,
    reorder: bool = True,
) -> RegionSchedule:
    """Schedule a straight-line region against one slot per engine.

    ``reorder=False`` models in-order issue: the serial chain is the
    critical path and every second an engine is not executing its own
    ops is idle — the ``opt_level=0`` accounting.
    """
    n = len(ops)
    durations = [rates.duration(c) for c in costs]
    total = ZERO_COST
    busy = {engine: 0.0 for engine in ENGINES}
    for cost in costs:
        total = total + cost
        for engine, seconds in rates.busy(cost).items():
            busy[engine] += seconds
    if not reorder or n <= 1:
        return RegionSchedule(
            order=list(range(n)),
            span=sum(durations),
            busy=busy,
            units=total,
            cp_units=total,  # serial: everything is on the chain
        )

    if dag is None:
        dag = build_dag(ops)
    # critical-path priority: longest downstream chain including self
    priority = [0.0] * n
    for i in range(n - 1, -1, -1):
        below = max((priority[j] for j in dag.succs[i]), default=0.0)
        priority[i] = durations[i] + below

    engines = [rates.engine(c) for c in costs]
    finish = [0.0] * n
    critical_parent: List[Optional[int]] = [None] * n
    engine_free = {engine: 0.0 for engine in ENGINES}
    engine_last: Dict[str, Optional[int]] = {engine: None for engine in ENGINES}
    remaining_preds = [len(dag.preds[i]) for i in range(n)]
    ready = [i for i in range(n) if remaining_preds[i] == 0]
    order: List[int] = []
    while ready:
        ready.sort(key=lambda i: (-priority[i], i))
        op_index = ready.pop(0)
        engine = engines[op_index]
        start = engine_free[engine]
        parent = engine_last[engine] if start > 0.0 else None
        for pred in dag.preds[op_index]:
            if finish[pred] >= start:
                start = finish[pred]
                parent = pred
        finish[op_index] = start + durations[op_index]
        critical_parent[op_index] = parent
        engine_free[engine] = finish[op_index]
        engine_last[engine] = op_index
        order.append(op_index)
        for succ in dag.succs[op_index]:
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)
    span = max(finish, default=0.0)
    # walk the chain that produced the makespan, summing its work
    cp_units = ZERO_COST
    cursor: Optional[int] = max(range(n), key=lambda i: finish[i]) if n else None
    while cursor is not None:
        cp_units = cp_units + costs[cursor]
        cursor = critical_parent[cursor]
    return RegionSchedule(
        order=order, span=span, busy=busy, units=total, cp_units=cp_units
    )


def carried_chain(
    ops: Sequence[TileOp],
    costs: Sequence[OpCost],
    rates: EngineRates,
    dag: OpDag,
    carried: frozenset,
) -> Tuple[float, OpCost]:
    """Longest dependence path from a carried-buffer read to a write.

    This is the loop's recurrence bound: work that must serialize
    between consecutive iterations no matter how the rest of the body
    overlaps.  Returns ``(seconds, work-units-along-the-chain)``.
    """
    n = len(ops)
    if not carried or n == 0:
        return 0.0, ZERO_COST
    reads_carried = []
    writes_carried = []
    for op in ops:
        accs = op_accesses(op)
        reads_carried.append(
            any(not a.is_write and a.buffer in carried for a in accs)
        )
        writes_carried.append(
            any(a.is_write and a.buffer in carried for a in accs)
        )
    durations = [rates.duration(c) for c in costs]
    best = [-1.0] * n  # longest source-rooted path ending at i, seconds
    parent: List[Optional[int]] = [None] * n
    for i in range(n):
        if reads_carried[i]:
            best[i] = durations[i]
        for p in dag.preds[i]:
            if best[p] >= 0.0 and best[p] + durations[i] > best[i]:
                best[i] = best[p] + durations[i]
                parent[i] = p
    chain_time = 0.0
    chain_end: Optional[int] = None
    for i in range(n):
        if writes_carried[i] and best[i] > chain_time:
            chain_time = best[i]
            chain_end = i
    units = ZERO_COST
    cursor = chain_end
    while cursor is not None:
        units = units + costs[cursor]
        cursor = parent[cursor]
    return chain_time, units


@dataclass
class ProgramSchedule:
    """Full-program scheduling result on one device."""

    program: TileProgram  # body materialized in issue order
    profile: ScheduleProfile  # per-CTA work for the cost model
    span: float  # per-block seconds on the scheduling device
    busy: Dict[str, float] = field(
        default_factory=lambda: {engine: 0.0 for engine in ENGINES}
    )
    reordered_ops: int = 0
    pipelined_loops: int = 0


def _regions(body: Sequence[TileOp]):
    """Split a body into straight-line runs and loop regions."""
    run: List[TileOp] = []
    for op in body:
        if isinstance(op, ForStage):
            if run:
                yield ("line", run)
                run = []
            yield ("loop", op)
        else:
            run.append(op)
    if run:
        yield ("line", run)


def schedule_program(
    program: TileProgram,
    gpu: GPUSpec,
    *,
    dtype: str = "fp16",
    reorder: bool = True,
    pipeline: bool = False,
    compute_efficiency: float = REDFUSER_COMPUTE_EFF,
    memory_efficiency: float = REDFUSER_MEMORY_EFF,
) -> ProgramSchedule:
    """Schedule every region of a program; loops are barriers.

    ``reorder`` materializes list-scheduled issue order inside each
    region; ``pipeline`` additionally credits ``ForStage`` loops with
    software-pipelined II accounting (used at ``opt_level >= 2``, after
    the unroll + privatization passes have made overlap legal).
    """
    rates = engine_rates(gpu, dtype, compute_efficiency, memory_efficiency)
    scopes = {b.name: b.scope for b in program.buffers}
    dtypes = {b.name: b.dtype_bytes for b in program.buffers}
    new_body: List[TileOp] = []
    span = 0.0
    busy = {engine: 0.0 for engine in ENGINES}
    units = ZERO_COST
    cp_units = ZERO_COST
    reordered = 0
    pipelined = 0
    for kind, region in _regions(program.body):
        if kind == "line":
            ops = list(region)
            costs = [_op_cost(op, scopes, dtypes) for op in ops]
            rs = list_schedule(ops, costs, rates, reorder=reorder)
            new_body.extend(ops[i] for i in rs.order)
            reordered += sum(
                1 for pos, i in enumerate(rs.order) if pos != i
            )
            span += rs.span
            units = units + rs.units
            cp_units = cp_units + rs.cp_units
            for engine in ENGINES:
                busy[engine] += rs.busy[engine]
            continue
        loop: ForStage = region
        ops = list(loop.body)
        costs = [_op_cost(op, scopes, dtypes) for op in ops]
        dag = build_dag(ops)
        rs = list_schedule(ops, costs, rates, dag=dag, reorder=reorder)
        new_body.append(ForStage(loop.var, loop.extent, tuple(ops[i] for i in rs.order)))
        reordered += sum(1 for pos, i in enumerate(rs.order) if pos != i)
        extent = float(loop.extent)
        units = units + rs.units.scaled(extent)
        for engine in ENGINES:
            busy[engine] += rs.busy[engine] * extent
        if pipeline and loop.extent >= 2:
            carried = carried_buffers(ops, program.buffers)
            chain_time, chain_units = carried_chain(
                ops, costs, rates, dag, carried
            )
            ii = max(max(rs.busy.values()), chain_time)
            span += rs.span + (extent - 1.0) * ii
            cp_units = cp_units + rs.cp_units + chain_units.scaled(extent - 1.0)
            pipelined += 1
        else:
            span += rs.span * extent
            cp_units = cp_units + rs.cp_units.scaled(extent)
    profile = ScheduleProfile(
        tensor_flops=units.tensor_flops,
        cuda_flops=units.cuda_flops,
        dram_bytes=units.dram_bytes,
        cp_tensor_flops=cp_units.tensor_flops,
        cp_cuda_flops=cp_units.cuda_flops,
        cp_dram_bytes=cp_units.dram_bytes,
    )
    scheduled = TileProgram(
        name=program.name,
        buffers=program.buffers,
        grid=program.grid,
        body=tuple(new_body),
    )
    return ProgramSchedule(
        program=scheduled,
        profile=profile,
        span=span,
        busy=busy,
        reordered_ops=reordered,
        pipelined_loops=pipelined,
    )
