"""Semantics-preserving rewrites over :class:`TileProgram`.

Four passes, run by :mod:`repro.codegen.opt.pipeline` in this order:

1. ``dead_code`` — drop ops whose only effect is writing non-global
   buffers nobody reads (cleanup for the templates' defensive fills and
   for copies orphaned by other rewrites).
2. ``pipeline_loops`` — unroll every segment loop (``ForStage``) by two.
   On its own this changes nothing observable: the iteration sequence is
   identical, only expressed as two body copies per trip.  Its job is to
   give the renamer *two* staging writes per trip to privatize, which is
   what makes cross-iteration overlap expressible in a loop whose body
   the scheduler treats as a unit.
3. ``rename_temps`` — split the live ranges of non-global temp buffers
   at full-covering writes, giving every range but the last a private
   clone.  This deletes the false WAR/WAW chains that serialize the
   unrolled halves (and any same-buffer reuse inside a straight-line
   region) without touching a single data value: clones are non-global,
   so the interpreter allocates them per block like any other temp.
4. ``slot_schedule`` — materialize the list scheduler's issue order into
   the program body (see :mod:`repro.codegen.opt.schedule`).

Every pass preserves the :class:`~repro.ir.tile.TileInterpreter`'s
output bitwise: reorderings respect the conservative dependence DAG,
renames only relabel dead-above/fully-overwritten storage, and the
unroll substitutes the exact iteration indices the loop would produce.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ...ir.scalar import Load
from ...ir.tile import (
    Copy,
    Fill,
    ForStage,
    Gemm,
    Parallel,
    Reduce,
    TileBuffer,
    TileOp,
    TileProgram,
    TileRef,
    op_accesses,
)
from ...symbolic import Const, Expr, Var
from ...symbolic.expr import Binary, Unary
from .deps import full_cover_write, reads_anywhere

PassStats = Dict[str, int]


# ---------------------------------------------------------------------------
# rewrite helpers
# ---------------------------------------------------------------------------
def _subst_ref(ref: TileRef, mapping: Mapping[str, Expr]) -> TileRef:
    return TileRef(
        ref.buffer,
        tuple(off.substitute(mapping) for off in ref.offsets),
        ref.lengths,
    )


def substitute_op(op: TileOp, mapping: Mapping[str, Expr]) -> TileOp:
    """Substitute loop/grid variables inside an op's index expressions."""
    if isinstance(op, Copy):
        return Copy(_subst_ref(op.src, mapping), _subst_ref(op.dst, mapping))
    if isinstance(op, Gemm):
        return Gemm(
            _subst_ref(op.a, mapping),
            _subst_ref(op.b, mapping),
            _subst_ref(op.c, mapping),
            op.transpose_b,
        )
    if isinstance(op, Reduce):
        return Reduce(
            _subst_ref(op.src, mapping),
            _subst_ref(op.dst, mapping),
            op.axis,
            op.op,
        )
    if isinstance(op, Fill):
        return Fill(_subst_ref(op.ref, mapping), op.value)
    if isinstance(op, Parallel):
        inner = {k: v for k, v in mapping.items() if k not in op.iter_vars}
        if not inner:
            return op
        return Parallel(
            op.buffer,
            tuple(i.substitute(inner) for i in op.indices),
            op.value.substitute(inner),
            op.iter_vars,
            op.extents,
        )
    if isinstance(op, ForStage):
        inner = {k: v for k, v in mapping.items() if k != op.var}
        return ForStage(
            op.var, op.extent, tuple(substitute_op(b, inner) for b in op.body)
        )
    raise TypeError(f"unknown tile op {op!r}")


def _rename_expr(e: Expr, names: Mapping[str, str]) -> Expr:
    """Rename buffer references inside a value expression.

    ``Expr.substitute`` cannot do this: it substitutes *variables*, and
    replacing a ``Load`` wholesale would drop its indices.  This walker
    rebuilds the tree relabeling ``Load.buffer`` only.
    """
    if isinstance(e, Load):
        return Load(
            names.get(e.buffer, e.buffer),
            tuple(_rename_expr(i, names) for i in e.indices),
        )
    if isinstance(e, Unary):
        return Unary(e.op, _rename_expr(e.arg, names))
    if isinstance(e, Binary):
        return Binary(e.op, _rename_expr(e.lhs, names), _rename_expr(e.rhs, names))
    return e  # Const / Var carry no buffer references


def _rename_ref(ref: TileRef, names: Mapping[str, str]) -> TileRef:
    return TileRef(
        names.get(ref.buffer, ref.buffer),
        tuple(_rename_expr(off, names) for off in ref.offsets),
        ref.lengths,
    )


def rename_op(op: TileOp, names: Mapping[str, str]) -> TileOp:
    """Relabel every reference to the given buffers inside one op."""
    if isinstance(op, Copy):
        return Copy(_rename_ref(op.src, names), _rename_ref(op.dst, names))
    if isinstance(op, Gemm):
        return Gemm(
            _rename_ref(op.a, names),
            _rename_ref(op.b, names),
            _rename_ref(op.c, names),
            op.transpose_b,
        )
    if isinstance(op, Reduce):
        return Reduce(
            _rename_ref(op.src, names),
            _rename_ref(op.dst, names),
            op.axis,
            op.op,
        )
    if isinstance(op, Fill):
        return Fill(_rename_ref(op.ref, names), op.value)
    if isinstance(op, Parallel):
        return Parallel(
            names.get(op.buffer, op.buffer),
            tuple(_rename_expr(i, names) for i in op.indices),
            _rename_expr(op.value, names),
            op.iter_vars,
            op.extents,
        )
    if isinstance(op, ForStage):
        return ForStage(
            op.var, op.extent, tuple(rename_op(b, names) for b in op.body)
        )
    raise TypeError(f"unknown tile op {op!r}")


# ---------------------------------------------------------------------------
# pass 1: dead copy/fill elimination
# ---------------------------------------------------------------------------
def dead_code(program: TileProgram) -> Tuple[TileProgram, PassStats]:
    """Remove ops whose writes reach no global buffer and no later read.

    Backward liveness sweep.  Loop bodies are handled conservatively:
    every buffer read anywhere in a body is live throughout it (reads of
    the *next* iteration happen after writes of this one), and kills at
    full-covering writes remain sound because a value overwritten before
    the body's end is unobservable from any later iteration position.
    """
    global_names = {b.name for b in program.buffers if b.scope == "global"}
    by_name = {b.name: b for b in program.buffers}
    removed = 0

    def sweep(ops: Sequence[TileOp], live: set) -> List[TileOp]:
        nonlocal removed
        out: List[TileOp] = []
        for op in reversed(list(ops)):
            if isinstance(op, ForStage):
                body_reads = set(reads_anywhere(op.body))
                new_body = sweep(op.body, live | body_reads)
                live |= body_reads
                if new_body:
                    out.append(ForStage(op.var, op.extent, tuple(new_body)))
                else:
                    removed += 1  # the whole loop was dead
                continue
            accs = op_accesses(op)
            writes = {a.buffer for a in accs if a.is_write}
            reads = {a.buffer for a in accs if not a.is_write}
            if writes and not (writes & global_names) and not (writes & live):
                removed += 1
                continue
            for name in writes:
                buf = by_name.get(name)
                if buf is not None and full_cover_write(op, buf):
                    live.discard(name)
            live |= reads
            out.append(op)
        out.reverse()
        return out

    new_body = sweep(program.body, set(global_names))
    rewritten = TileProgram(
        name=program.name,
        buffers=program.buffers,
        grid=program.grid,
        body=tuple(new_body),
    )
    return rewritten, {"ops_removed": removed}


# ---------------------------------------------------------------------------
# pass 2: segment-loop pipelining (unroll-by-two)
# ---------------------------------------------------------------------------
def pipeline_loops(program: TileProgram) -> Tuple[TileProgram, PassStats]:
    """Unroll every top-level ``ForStage`` by two (plus odd epilogue).

    ``for s in range(n): B(s)`` becomes
    ``for s in range(n // 2): B(2s); B(2s + 1)`` followed by
    ``B(n - 1)`` when ``n`` is odd; single-trip loops are flattened.
    The iteration sequence — and hence the interpreter output — is
    identical; the doubled body is what gives ``rename_temps`` a second
    staging generation to privatize.
    """
    new_body: List[TileOp] = []
    unrolled = 0
    flattened = 0
    for op in program.body:
        if not isinstance(op, ForStage):
            new_body.append(op)
            continue
        if op.extent == 1:
            zero = Const(0)
            new_body.extend(substitute_op(b, {op.var: zero}) for b in op.body)
            flattened += 1
            continue
        stage = Var(op.var)
        even = Binary("mul", Const(2), stage)
        odd = Binary("add", even, Const(1))
        half_body = [substitute_op(b, {op.var: even}) for b in op.body] + [
            substitute_op(b, {op.var: odd}) for b in op.body
        ]
        new_body.append(ForStage(op.var, op.extent // 2, tuple(half_body)))
        if op.extent % 2:
            last = Const(op.extent - 1)
            new_body.extend(
                substitute_op(b, {op.var: last}) for b in op.body
            )
        unrolled += 1
    rewritten = TileProgram(
        name=program.name,
        buffers=program.buffers,
        grid=program.grid,
        body=tuple(new_body),
    )
    return rewritten, {"loops_unrolled": unrolled, "loops_flattened": flattened}


# ---------------------------------------------------------------------------
# pass 3: temp-buffer renaming (live-range splitting)
# ---------------------------------------------------------------------------
def _split_region(
    ops: List[TileOp],
    program_buffers: Sequence[TileBuffer],
    clones: List[TileBuffer],
    counters: Dict[str, int],
) -> Tuple[List[TileOp], int]:
    """Split live ranges of non-global buffers inside one region.

    A full-covering write starts a fresh live range.  With ``n >= 2``
    covering writes, ranges ``0 .. n-2`` each get a private clone; the
    *last* range keeps the original name so live-out readers (later
    regions, later iterations of a surrounding loop) still see the final
    value, and ops before the first covering write keep reading the
    live-in value under the original name.
    """
    by_name = {b.name: b for b in program_buffers}
    renamed = 0
    for buf in program_buffers:
        if buf.scope == "global":
            continue
        cover_at = [i for i, op in enumerate(ops) if full_cover_write(op, buf)]
        if len(cover_at) < 2:
            continue
        for k in range(len(cover_at) - 1):
            counters[buf.name] = counters.get(buf.name, 0) + 1
            clone_name = f"{buf.name}__r{counters[buf.name]}"
            clones.append(
                TileBuffer(clone_name, buf.shape, buf.scope, buf.dtype_bytes)
            )
            mapping = {buf.name: clone_name}
            for i in range(cover_at[k], cover_at[k + 1]):
                ops[i] = rename_op(ops[i], mapping)
            renamed += 1
    return ops, renamed


def rename_temps(program: TileProgram) -> Tuple[TileProgram, PassStats]:
    """Break false WAR/WAW chains by cloning reused temp buffers.

    Applied independently to every straight-line region and every loop
    body; clones inherit scope, so the interpreter's per-block allocation
    of non-global buffers makes them private automatically.
    """
    clones: List[TileBuffer] = []
    counters: Dict[str, int] = {}
    renamed = 0
    new_body: List[TileOp] = []
    run: List[TileOp] = []

    def flush() -> None:
        nonlocal renamed
        if not run:
            return
        ops, n = _split_region(list(run), program.buffers, clones, counters)
        renamed += n
        new_body.extend(ops)
        run.clear()

    for op in program.body:
        if isinstance(op, ForStage):
            flush()
            body, n = _split_region(
                list(op.body), program.buffers, clones, counters
            )
            renamed += n
            new_body.append(ForStage(op.var, op.extent, tuple(body)))
        else:
            run.append(op)
    flush()
    rewritten = TileProgram(
        name=program.name,
        buffers=program.buffers + tuple(clones),
        grid=program.grid,
        body=tuple(new_body),
    )
    return rewritten, {"buffers_renamed": renamed}
