"""Dependence analysis over straight-line tile-op regions.

The schedule optimizer's legality layer.  Everything here is
conservative: two accesses conflict unless the rectangles are *provably*
disjoint (constant-comparable offsets), and data-dependent accesses
(``Parallel`` targets, ``Load``s inside value expressions) are treated
as whole-buffer.  Reordering ops that the resulting DAG leaves unordered
is therefore bitwise-safe for the NumPy interpreter: no write of one op
can touch data another reads or writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...ir.tile import (
    Copy,
    Fill,
    ForStage,
    Parallel,
    TileAccess,
    TileBuffer,
    TileOp,
    TileRef,
    op_accesses,
)
from ...symbolic import Const, Var


def _const_gap(a, b) -> Optional[int]:
    """``b - a`` when the offsets are statically comparable, else None.

    Structurally equal expressions (e.g. both ``bx * 128``) have gap 0
    regardless of the runtime value of their variables.
    """
    if a == b:
        return 0
    if isinstance(a, Const) and isinstance(b, Const):
        return int(b.value - a.value)
    return None


def refs_disjoint(a: TileRef, b: TileRef) -> bool:
    """Provably non-overlapping rectangles of the same buffer."""
    if len(a.offsets) != len(b.offsets):
        return False
    for off_a, off_b, len_a, len_b in zip(
        a.offsets, b.offsets, a.lengths, b.lengths
    ):
        gap = _const_gap(off_a, off_b)
        if gap is None:
            continue  # cannot separate along this dim; try another
        if gap >= len_a or -gap >= len_b:
            return True
    return False


def accesses_conflict(a: TileAccess, b: TileAccess) -> bool:
    """Do two accesses order the ops that perform them?"""
    if a.buffer != b.buffer:
        return False
    if not (a.is_write or b.is_write):
        return False  # read-read never orders
    if a.ref is None or b.ref is None:
        return True  # data-dependent access: whole buffer
    return not refs_disjoint(a.ref, b.ref)


def ops_conflict(
    a: Sequence[TileAccess], b: Sequence[TileAccess]
) -> bool:
    return any(accesses_conflict(x, y) for x in a for y in b)


@dataclass
class OpDag:
    """Dependence DAG over one straight-line op region.

    Edges always point from a lower to a higher original index, so the
    original order is a topological order.
    """

    ops: List[TileOp]
    preds: List[List[int]]
    succs: List[List[int]]


def build_dag(ops: Sequence[TileOp]) -> OpDag:
    accesses = [op_accesses(op) for op in ops]
    n = len(ops)
    preds: List[List[int]] = [[] for _ in range(n)]
    succs: List[List[int]] = [[] for _ in range(n)]
    for j in range(n):
        for i in range(j):
            if ops_conflict(accesses[i], accesses[j]):
                preds[j].append(i)
                succs[i].append(j)
    return OpDag(list(ops), preds, succs)


def full_cover_write(op: TileOp, buf: TileBuffer) -> bool:
    """Does ``op`` overwrite every element of ``buf`` without reading it?

    This is the predicate behind both temp renaming (a covering write
    starts a fresh live range) and loop privatization (a buffer whose
    first in-body access is a covering write carries nothing across
    iterations).
    """
    if isinstance(op, (Copy, Fill)):
        ref = op.dst if isinstance(op, Copy) else op.ref
        if ref.buffer != buf.name or len(ref.lengths) != len(buf.shape):
            return False
        if isinstance(op, Copy) and op.src.buffer == buf.name:
            return False
        return all(
            isinstance(off, Const) and off.value == 0 and length == dim
            for off, length, dim in zip(ref.offsets, ref.lengths, buf.shape)
        )
    if isinstance(op, Parallel):
        if op.buffer != buf.name:
            return False
        if any(
            acc.buffer == buf.name
            for acc in op_accesses(op)
            if not acc.is_write
        ):
            return False  # reads its own target: prior values survive
        if len(op.indices) != len(buf.shape) or len(op.extents) != len(
            buf.shape
        ):
            return False
        return tuple(op.extents) == tuple(buf.shape) and all(
            idx == Var(iv) for idx, iv in zip(op.indices, op.iter_vars)
        )
    return False


def _buffers_by_name(buffers: Sequence[TileBuffer]) -> Dict[str, TileBuffer]:
    return {b.name: b for b in buffers}


def carried_buffers(
    body: Sequence[TileOp], buffers: Sequence[TileBuffer]
) -> FrozenSet[str]:
    """Non-global buffers carrying a dependence across loop iterations.

    A buffer written inside the body is *privatizable* (not carried) when
    its first in-body access is a full-covering write — each iteration
    starts from scratch, so an unrolled copy may use a private clone.
    Anything else written in the body (accumulators read before written,
    partial writes) is loop-carried.  Global buffers are always treated
    as carried: the interpreter persists them across blocks and the
    optimizer never clones them.
    """
    by_name = _buffers_by_name(buffers)
    written = set()
    for op in body:
        for acc in op_accesses(op):
            if acc.is_write:
                written.add(acc.buffer)
    carried = set()
    decided = set()
    for op in body:
        covering = {
            name
            for name in written
            if name in by_name and full_cover_write(op, by_name[name])
        }
        for acc in op_accesses(op):
            name = acc.buffer
            if name not in written or name in decided or name in carried:
                continue
            buf = by_name.get(name)
            if buf is None or buf.scope == "global":
                carried.add(name)
                continue
            if acc.is_write and name in covering:
                decided.add(name)  # privatizable
            else:
                carried.add(name)  # first access reads or partially writes
    return frozenset(carried)


def privatizable_buffers(
    body: Sequence[TileOp], buffers: Sequence[TileBuffer]
) -> Tuple[str, ...]:
    """Buffers an unroll may clone per copy, in declaration order."""
    carried = carried_buffers(body, buffers)
    written = set()
    for op in body:
        for acc in op_accesses(op):
            if acc.is_write:
                written.add(acc.buffer)
    return tuple(
        b.name
        for b in buffers
        if b.scope != "global" and b.name in written and b.name not in carried
    )


def reads_anywhere(ops: Sequence[TileOp]) -> FrozenSet[str]:
    """Buffers read (including transitively inside loops) by a region."""
    read = set()
    for op in ops:
        if isinstance(op, ForStage):
            read |= reads_anywhere(op.body)
            continue
        for acc in op_accesses(op):
            if not acc.is_write:
                read.add(acc.buffer)
    return frozenset(read)
