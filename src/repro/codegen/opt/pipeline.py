"""The tile-IR optimization pipeline (profiler-guided, per level).

Runs between :mod:`repro.codegen.tensorize` and the cost-model /
interpreter consumers inside the ``tile_ir`` backend:

* ``opt_level=0`` — no rewrites.  Programs still get a *serial*
  :class:`~repro.gpusim.kernel.ScheduleProfile` (critical path == all
  work), so level 0 and level 2 are priced by the same engine-slot
  model and their ratio isolates what scheduling reclaimed.
* ``opt_level=1`` — dead-code elimination + slot scheduling (reorder
  within regions; loops stay serial barriers).
* ``opt_level=2`` — the full pipeline: dead code, segment-loop
  unroll-by-two, temp renaming (which makes the unrolled halves
  independent), slot scheduling with software-pipelined loop
  accounting.

Each pass is re-costed through :func:`repro.gpusim.costmodel.kernel_times`
as it lands, producing the per-pass delta report surfaced in
``FusionPlan.describe()["tile_ir"]`` and ``repro.obs.profile``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...gpusim.costmodel import kernel_times
from ...gpusim.kernel import Program
from ...gpusim.specs import GPUSpec
from ...ir.tile import TileProgram
from ..kernels import estimate_kernel
from .passes import dead_code, pipeline_loops, rename_temps
from .schedule import ENGINES, schedule_program

#: Pass names in pipeline order (level 2 runs all of them).
PASS_NAMES = ("dead_code", "pipeline_loops", "rename_temps", "slot_schedule")

OPT_LEVELS = (0, 1, 2)

#: Costing flags (reorder, pipeline) that apply once a pass has landed.
#: Reordering credit starts with the first scheduling-aware level; the
#: pipelining credit starts at ``rename_temps`` because privatization is
#: what makes cross-iteration overlap legal — the unroll alone leaves
#: the halves chained through their shared staging buffers.
_STAGE_FLAGS = {
    "dead_code": lambda level: (level >= 1, False),
    "pipeline_loops": lambda level: (True, False),
    "rename_temps": lambda level: (True, True),
    "slot_schedule": lambda level: (True, level >= 2),
}

_PASS_FNS = {
    "dead_code": dead_code,
    "pipeline_loops": pipeline_loops,
    "rename_temps": rename_temps,
}


def passes_for_level(opt_level: int) -> Tuple[str, ...]:
    if opt_level <= 0:
        return ()
    if opt_level == 1:
        return ("dead_code", "slot_schedule")
    return PASS_NAMES


@dataclass(frozen=True)
class OptResult:
    """Everything the backend keeps from one optimizer run."""

    opt_level: int
    programs: Tuple[TileProgram, ...]  # optimized tile programs
    kernels: Program  # gpusim kernels with schedules attached
    latency_seconds: float  # estimate at the compiled level
    baseline_seconds: float  # serial (level-0 accounting) estimate
    passes: Tuple[Dict[str, object], ...]  # per-pass delta report

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / max(self.latency_seconds, 1e-30)


def _cost(
    programs: Sequence[TileProgram],
    gpu: GPUSpec,
    *,
    threads: int,
    pipeline_depth: int,
    dtype: str,
    reorder: bool,
    pipeline: bool,
) -> Tuple[Program, float, Dict[str, float]]:
    """Price a program sequence under the given scheduling flags.

    Returns the gpusim program (schedules attached), its latency, and
    per-engine idle seconds under the quantized-wave critical path.
    """
    gprog = Program(name=programs[0].name if programs else "empty")
    busy = {engine: 0.0 for engine in ENGINES}
    critical = 0.0
    latency = 0.0
    for i, tp in enumerate(programs):
        ps = schedule_program(
            tp, gpu, dtype=dtype, reorder=reorder, pipeline=pipeline
        )
        depth = pipeline_depth if i == 0 else 1  # combine kernels: depth 1
        kernel = estimate_kernel(tp, threads, depth, dtype, schedule=ps.profile)
        gprog.add(kernel)
        kt = kernel_times(gpu, kernel)
        whole_waves = math.ceil(kt.waves)
        critical += whole_waves * kt.wave_time
        for engine in ENGINES:
            busy[engine] += whole_waves * (kt.engine_times or {}).get(engine, 0.0)
        latency += kt.latency
    idle = {
        engine: max(0.0, critical - busy[engine]) for engine in ENGINES
    }
    return gprog, latency, idle


def optimize_programs(
    programs: Sequence[TileProgram],
    gpu: GPUSpec,
    *,
    opt_level: int = 2,
    dtype: str = "fp16",
    threads: int = 256,
    pipeline_depth: int = 2,
) -> OptResult:
    """Run the pass pipeline over a kernel sequence and re-cost it.

    ``programs`` is the tensorizer's output for one compiled variant —
    one program for single-segment, ``(partial, combine)`` for
    multi-segment.  The per-pass report attributes latency deltas to the
    pass that physically enabled them (see ``_STAGE_FLAGS``).
    """
    if opt_level not in OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {OPT_LEVELS}, got {opt_level!r}")
    progs: List[TileProgram] = list(programs)
    _, baseline, idle = _cost(
        progs,
        gpu,
        threads=threads,
        pipeline_depth=pipeline_depth,
        dtype=dtype,
        reorder=False,
        pipeline=False,
    )
    reports: List[Dict[str, object]] = []
    current_latency = baseline
    current_idle = idle
    for name in passes_for_level(opt_level):
        detail: Dict[str, int] = {}
        if name == "slot_schedule":
            scheduled: List[TileProgram] = []
            reordered = pipelined = 0
            for tp in progs:
                ps = schedule_program(
                    tp,
                    gpu,
                    dtype=dtype,
                    reorder=True,
                    pipeline=opt_level >= 2,
                )
                scheduled.append(ps.program)
                reordered += ps.reordered_ops
                pipelined += ps.pipelined_loops
            detail = {"ops_reordered": reordered, "loops_pipelined": pipelined}
            progs = scheduled
        else:
            rewritten: List[TileProgram] = []
            for tp in progs:
                tp, stats = _PASS_FNS[name](tp)
                rewritten.append(tp)
                for key, value in stats.items():
                    detail[key] = detail.get(key, 0) + value
            progs = rewritten
        reorder, pipe = _STAGE_FLAGS[name](opt_level)
        _, after_latency, after_idle = _cost(
            progs,
            gpu,
            threads=threads,
            pipeline_depth=pipeline_depth,
            dtype=dtype,
            reorder=reorder,
            pipeline=pipe,
        )
        report: Dict[str, object] = {
            "pass": name,
            "latency_before_s": current_latency,
            "latency_after_s": after_latency,
            "idle_before_s": dict(current_idle),
            "idle_after_s": dict(after_idle),
        }
        report.update(detail)
        reports.append(report)
        current_latency = after_latency
        current_idle = after_idle
    kernels, final_latency, _ = _cost(
        progs,
        gpu,
        threads=threads,
        pipeline_depth=pipeline_depth,
        dtype=dtype,
        reorder=opt_level >= 1,
        pipeline=opt_level >= 2,
    )
    return OptResult(
        opt_level=opt_level,
        programs=tuple(progs),
        kernels=kernels,
        latency_seconds=final_latency,
        baseline_seconds=baseline,
        passes=tuple(reports),
    )
