"""Kernel-profile estimation: tile programs → :class:`KernelSpec`.

The estimator walks a tile program and counts, from first principles:

* global-memory traffic — every ``copy``/``parallel`` whose source or
  destination buffer has global scope, times the enclosing stage loops,
  times the grid size;
* floating-point work — ``gemm`` tiles contribute 2·m·n·k, ``parallel``
  and ``reduce`` contribute per-element costs weighted by expression
  size (``exp`` is charged several flop-equivalents);
* the shared-memory footprint (occupancy input) straight from the
  buffer declarations.

This is the link between generated code and the analytical GPU model:
auto-tuning evaluates real generated programs, not hand-waved numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..gpusim.kernel import KernelSpec, ScheduleProfile
from ..ir.tile import (
    Copy,
    Fill,
    ForStage,
    Gemm,
    Parallel,
    Reduce,
    TileProgram,
)
from ..symbolic import Expr
from ..symbolic.expr import Unary

#: Flop-equivalents charged per expression node; transcendental unaries
#: are charged extra (SFU throughput is a fraction of FMA throughput).
_NODE_FLOPS = 1.0
_TRANSCENDENTAL_FLOPS = 8.0

#: RedFuser's generated code quality (tuned pipelines, cp.async/TMA
#: copies, MMA/WGMMA gemms — §4.4 "hardware-aware implementations").
REDFUSER_COMPUTE_EFF = 0.70
REDFUSER_MEMORY_EFF = 0.85

#: Name marker of temp-clone buffers minted by the schedule optimizer's
#: renaming pass (``repro.codegen.opt.passes.rename_temps``).  Clones
#: are not extra allocations in a real kernel — they name the rotating
#: slots of the multi-buffered staging allocation this estimator already
#: charges via ``(pipeline_depth - 1) * _streamed_shared_bytes`` — so
#: footprint accounting skips them.  This also guarantees the optimizer
#: never pushes a tuner-validated configuration out of feasibility.
TEMP_CLONE_MARKER = "__r"


def _expr_flops(e: Expr) -> float:
    cost = 0.0
    stack = [e]
    while stack:
        node = stack.pop()
        if isinstance(node, Unary) and node.op in ("exp", "log", "sqrt"):
            cost += _TRANSCENDENTAL_FLOPS
        else:
            cost += _NODE_FLOPS
        stack.extend(node.children())
    return cost


@dataclass
class _Tally:
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    gemm_flops: float = 0.0


def _tile_elems(lengths: Tuple[int, ...]) -> int:
    n = 1
    for length in lengths:
        n *= length
    return n


def _walk(program: TileProgram, ops, tally: _Tally, multiplier: float) -> None:
    scopes: Dict[str, str] = {b.name: b.scope for b in program.buffers}
    dtypes: Dict[str, int] = {b.name: b.dtype_bytes for b in program.buffers}
    for op in ops:
        if isinstance(op, ForStage):
            _walk(program, op.body, tally, multiplier * op.extent)
        elif isinstance(op, Copy):
            elems = _tile_elems(op.src.lengths)
            if scopes[op.src.buffer] == "global":
                tally.bytes_read += elems * dtypes[op.src.buffer] * multiplier
            if scopes[op.dst.buffer] == "global":
                tally.bytes_written += elems * dtypes[op.dst.buffer] * multiplier
            tally.flops += 0.0  # copies are pure traffic
        elif isinstance(op, Gemm):
            m, k = op.a.lengths
            n = op.b.lengths[0] if op.transpose_b else op.b.lengths[1]
            tally.gemm_flops += 2.0 * m * n * k * multiplier
        elif isinstance(op, Reduce):
            tally.flops += _tile_elems(op.src.lengths) * multiplier
        elif isinstance(op, Parallel):
            elems = _tile_elems(op.extents)
            tally.flops += elems * _expr_flops(op.value) * multiplier
            if scopes.get(op.buffer) == "global":
                tally.bytes_written += elems * dtypes[op.buffer] * multiplier
        elif isinstance(op, Fill):
            pass
        else:
            raise TypeError(f"unknown tile op {op!r}")


def _streamed_shared_bytes(program: TileProgram) -> int:
    """Shared buffers refilled every pipeline stage (double-buffered)."""
    streamed = set()

    def walk(ops, inside_stage):
        for op in ops:
            if isinstance(op, ForStage):
                walk(op.body, True)
            elif inside_stage and isinstance(op, Copy):
                streamed.add(op.dst.buffer)

    walk(program.body, False)
    return sum(
        b.nbytes
        for b in program.buffers
        if b.scope == "shared"
        and b.name in streamed
        and TEMP_CLONE_MARKER not in b.name
    )


def _footprint_bytes(program: TileProgram, scope: str) -> int:
    """Allocated bytes of one scope, excluding optimizer temp clones."""
    return sum(
        b.nbytes
        for b in program.buffers
        if b.scope == scope and TEMP_CLONE_MARKER not in b.name
    )


def estimate_kernel(
    program: TileProgram,
    threads: int = 256,
    pipeline_depth: int = 2,
    dtype: str = "fp16",
    compute_efficiency: float = REDFUSER_COMPUTE_EFF,
    memory_efficiency: float = REDFUSER_MEMORY_EFF,
    schedule: Optional[ScheduleProfile] = None,
) -> KernelSpec:
    """Derive a cost-model kernel descriptor from a generated program."""
    tally = _Tally()
    _walk(program, program.body, tally, 1.0)
    blocks = program.num_blocks
    uses_tensor_cores = tally.gemm_flops > 0
    # Deeper software pipelines hide more of min(Tc, Tm) (§4.4); only the
    # per-stage staging tiles are double-buffered.
    overlap = min(0.95, 0.45 + 0.2 * pipeline_depth)
    smem = _footprint_bytes(program, "shared") + (
        pipeline_depth - 1
    ) * _streamed_shared_bytes(program)
    return KernelSpec(
        name=program.name,
        grid=blocks,
        threads_per_cta=threads,
        smem_bytes=max(smem, 1024),
        regs_per_thread=min(
            255,
            40 + _footprint_bytes(program, "fragment") // max(threads, 1) // 4,
        ),
        bytes_read=tally.bytes_read * blocks,
        bytes_written=tally.bytes_written * blocks,
        flops=(tally.flops + tally.gemm_flops) * blocks,
        tensor_cores=uses_tensor_cores,
        dtype=dtype,
        compute_efficiency=compute_efficiency,
        memory_efficiency=memory_efficiency,
        overlap=overlap,
        schedule=schedule,
    )
