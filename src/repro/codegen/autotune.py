"""Auto-tuning (paper §4.4): empirical search over tile parameters.

RedFuser tunes block tile sizes, threads per block, software-pipeline
depth, and (for the Multi-Segment strategy) the number of segments.  The
search space is enumerated, each candidate is lowered to real tile
programs, profiled by :mod:`repro.codegen.kernels`, and costed on the
target GPU; the fastest feasible configuration wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..gpusim.costmodel import ResourceError, kernel_latency
from ..gpusim.kernel import Program
from ..gpusim.specs import GPUSpec
from .kernels import estimate_kernel
from .lower import CodegenSpec, LoweringError
from .tensorize import TileConfig, tensorize_multi_segment, tensorize_single_segment

DEFAULT_BLK_ROWS = (64, 128, 256)
DEFAULT_BLK_LEN = (32, 64, 128)
DEFAULT_THREADS = (128, 256)
DEFAULT_PIPELINE = (1, 2, 3)
DEFAULT_SEGMENTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class TuneResult:
    """Best configuration found by the tuner."""

    config: TileConfig
    num_segments: int
    latency: float
    program: Program
    candidates_tried: int
    #: Schedule-optimizer result for the winner when ``autotune`` was
    #: called with ``opt_level > 0`` (``None`` otherwise).  Ranking is
    #: always done with the legacy cost model; the optimizer re-costs
    #: the winning candidate only.
    opt: Optional[object] = None

    @property
    def strategy(self) -> str:
        return "multi-segment" if self.num_segments > 1 else "single-segment"


def _divisors_only(values: Sequence[int], bound: int) -> List[int]:
    return [v for v in values if v <= bound and bound % v == 0]


def autotune(
    spec: CodegenSpec,
    gpu: GPUSpec,
    blk_rows: Sequence[int] = DEFAULT_BLK_ROWS,
    blk_len: Sequence[int] = DEFAULT_BLK_LEN,
    threads: Sequence[int] = DEFAULT_THREADS,
    pipeline: Sequence[int] = DEFAULT_PIPELINE,
    segments: Sequence[int] = DEFAULT_SEGMENTS,
    dtype: str = "fp16",
    instances: int = 1,
    opt_level: int = 0,
) -> TuneResult:
    """Search the §4.4 parameter space; return the fastest candidate.

    ``instances`` replicates the kernel across independent problem
    instances (batch * heads) so candidates are ranked at the grid scale
    they will actually run at — tile choices that only pay off at full
    occupancy are invisible at instance scale.

    ``opt_level > 0`` additionally runs the tile-IR schedule optimizer
    (:mod:`repro.codegen.opt`) over the *winning* candidate and replaces
    the reported latency/kernels with the schedule-aware re-cost.  The
    search ranking itself stays on the legacy cost model so the argmin
    is unchanged.
    """
    best: Optional[TuneResult] = None
    tried = 0
    for rows_tile in _divisors_only(blk_rows, spec.rows) or [spec.rows]:
        for len_tile in _divisors_only(blk_len, spec.length) or [spec.length]:
            for n_threads in threads:
                for depth in pipeline:
                    for n_seg in segments:
                        if spec.length % (n_seg * len_tile) != 0 and n_seg > 1:
                            continue
                        config = TileConfig(
                            blk_rows=min(rows_tile, spec.rows),
                            blk_len=min(len_tile, spec.length),
                            threads=n_threads,
                            pipeline_depth=depth,
                        )
                        program = _lower_candidate(
                            spec, config, n_seg, dtype, depth, n_threads, instances
                        )
                        if program is None:
                            continue
                        tried += 1
                        try:
                            latency = sum(
                                kernel_latency(gpu, k) for k in program.kernels
                            )
                        except ResourceError:
                            continue
                        if best is None or latency < best.latency:
                            best = TuneResult(
                                config=config,
                                num_segments=n_seg,
                                latency=latency,
                                program=program,
                                candidates_tried=tried,
                            )
    if best is None:
        raise LoweringError("no feasible configuration found")
    latency = best.latency
    program = best.program
    opt = None
    if opt_level > 0:
        from .opt import optimize_programs

        if best.num_segments == 1:
            tile_programs = (tensorize_single_segment(spec, best.config),)
        else:
            tile_programs = tensorize_multi_segment(
                spec, best.config, best.num_segments
            )
        opt = optimize_programs(
            tile_programs,
            gpu,
            opt_level=opt_level,
            dtype=dtype,
            threads=best.config.threads,
            pipeline_depth=best.config.pipeline_depth,
        )
        program = Program(name=best.program.name)
        for kernel in opt.kernels.kernels:
            if instances > 1:
                # ScheduleProfile units are per CTA, so instance scaling
                # only multiplies the grid-level totals.
                kernel = kernel.with_(
                    grid=kernel.grid * instances,
                    bytes_read=kernel.bytes_read * instances,
                    bytes_written=kernel.bytes_written * instances,
                    flops=kernel.flops * instances,
                )
            program.add(kernel)
        latency = sum(kernel_latency(gpu, k) for k in program.kernels)
    return TuneResult(
        config=best.config,
        num_segments=best.num_segments,
        latency=latency,
        program=program,
        candidates_tried=tried,
        opt=opt,
    )


def _lower_candidate(
    spec: CodegenSpec,
    config: TileConfig,
    n_seg: int,
    dtype: str,
    depth: int,
    n_threads: int,
    instances: int = 1,
) -> Optional[Program]:
    try:
        if n_seg == 1:
            tp = tensorize_single_segment(spec, config)
            kernels = [
                estimate_kernel(tp, n_threads, depth, dtype)
            ]
        else:
            partial, combine = tensorize_multi_segment(spec, config, n_seg)
            kernels = [
                estimate_kernel(partial, n_threads, depth, dtype),
                estimate_kernel(combine, n_threads, 1, dtype),
            ]
    except (LoweringError, ValueError):
        return None
    program = Program(
        name=f"{spec.fused.cascade.name}[{config.blk_rows}x{config.blk_len}/{n_seg}]"
    )
    for kernel in kernels:
        if instances > 1:
            kernel = kernel.with_(
                grid=kernel.grid * instances,
                bytes_read=kernel.bytes_read * instances,
                bytes_written=kernel.bytes_written * instances,
                flops=kernel.flops * instances,
            )
        program.add(kernel)
    return program
