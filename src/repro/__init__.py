"""repro — a from-scratch reproduction of RedFuser (ASPLOS 2026).

RedFuser is an automatic operator-fusion framework for *cascaded
reductions*: chains of data-dependent reductions such as safe softmax,
attention (GEMM + softmax + GEMM), MoE routing (softmax + top-k) and
FP8 per-token quantization + GEMM.

Public API tour:

* :mod:`repro.symbolic` — expression engine used by the fusion analysis.
* :mod:`repro.core` — cascade specifications, the ACRF decomposition
  algorithm, fused/incremental forms, and reference executors.
* :mod:`repro.engine` — the compile-once/execute-many serving layer:
  cached :class:`FusionPlan` objects, the async request scheduler with
  admission control, and batched / streaming / sharded execution.
* :mod:`repro.ir` — scalar (TensorIR-like) and tile-level (TileLang-like)
  IRs, with the cascaded-reduction detector.
* :mod:`repro.codegen` — lowering, Single/Multi-Segment strategies,
  tensorization and auto-tuning.
* :mod:`repro.gpusim` — the analytical GPU model standing in for real
  A10/A100/H800/MI308X hardware.
* :mod:`repro.baselines` — PyTorch Eager / Dynamo-Inductor / TVM /
  FlashAttention2 / FlashMLA compiler models.
* :mod:`repro.obs` — observability: request tracing (Chrome trace
  export), the unified metrics registry (Prometheus text), and the
  gpusim bottleneck profiler.
* :mod:`repro.workloads` — the paper's evaluation workloads and configs.
* :mod:`repro.harness` — experiment runners for every table and figure.
"""

from .core import (
    Cascade,
    FusedCascade,
    NotFusableError,
    Reduction,
    fuse,
    run_fused_tree,
    run_incremental,
    run_unfused,
)
from .engine import (
    BatchExecutor,
    Engine,
    FusionPlan,
    PlanCache,
    QueueFullError,
    ServingConfig,
    ServingEngine,
    StreamSession,
    cascade_signature,
    default_engine,
    plan_for,
)

__version__ = "0.2.0"

__all__ = [
    "Cascade",
    "FusedCascade",
    "NotFusableError",
    "Reduction",
    "fuse",
    "run_fused_tree",
    "run_incremental",
    "run_unfused",
    "BatchExecutor",
    "Engine",
    "FusionPlan",
    "PlanCache",
    "QueueFullError",
    "ServingConfig",
    "ServingEngine",
    "StreamSession",
    "cascade_signature",
    "default_engine",
    "plan_for",
    "__version__",
]
