"""Reference executors for cascaded reductions.

Three execution modes, matching §3 of the paper:

* :func:`run_unfused` — the chain of reduction trees (Eq. 1): each
  reduction makes a full pass over the inputs using the *final* outputs
  of its predecessors.
* :func:`run_fused_tree` — the fused reduction tree (Eq. 6 + Eq. 11):
  the input is partitioned into segments; each segment computes local
  partials in one pass, and partials are merged level by level with the
  correction factors H(prev)^-1 ⊗ H(new).
* :func:`run_incremental` — the incremental computation form
  (Eq. 15/16): partials are updated in a stream, one chunk at a time,
  with O(1) state.

All three are numerically comparable; the fused/incremental modes use
the simplified combined terms from :mod:`repro.core.fused`, so they are
*more* numerically robust than naive evaluation would be (this is the
online-softmax property).

The ``*_impl`` functions in this module are the numeric kernels behind
the engine's ``unfused`` / ``fused_tree`` / ``incremental`` execution
backends (:mod:`repro.engine.backends`); the ``run_*`` entry points are
thin wrappers that dispatch through a :class:`~repro.engine.plan.FusionPlan`
so library callers share the serving engine's plan cache and backend
registry.

The merge of two partial states (:func:`merge_states`) is the single
primitive from which both the tree combine and the streaming update are
built — folding it left-to-right gives Eq. 15/16, folding it over a
balanced tree gives Eq. 11; associativity of the underlying monoids
makes every fold shape agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from .fused import FusedCascade
from .ops import TopKState
from .spec import Cascade, normalize_inputs

Value = Union[np.ndarray, TopKState]


@dataclass
class ScalarState:
    """Partial result of a single-term reduction: just its value d̂."""

    value: np.ndarray


@dataclass
class MultiTermState:
    """Partial result of a multi-term reduction.

    Carries the dependency-free running accumulators ĝ_j together with
    the materialized value d̂ (recomputed whenever dependencies change).
    """

    accumulators: List[np.ndarray]
    value: np.ndarray


State = Union[ScalarState, MultiTermState, TopKState]


def _value_of(state: State) -> Value:
    if isinstance(state, (ScalarState, MultiTermState)):
        return state.value
    return state


def state_values(states: Mapping[str, State]) -> Dict[str, Value]:
    """Plain output values (d_i) of a partial-state dictionary."""
    return {name: _value_of(state) for name, state in states.items()}


def _elementwise(expr, values, length: int, element_vars) -> np.ndarray:
    """Normalize an evaluated mapping function to shape (length, w).

    Expressions that reference no element variable (e.g. a constant g_j
    term of a multi-term decomposition) evaluate to a scalar or (w,)
    vector; they contribute the same value at every position, so they
    are broadcast across the rows before reduction.
    """
    arr = np.asarray(values, dtype=float)
    if not (expr.free_vars() & set(element_vars)):
        arr = np.atleast_1d(arr)
        arr = np.broadcast_to(arr, (length, arr.shape[-1]))
    return arr


# ---------------------------------------------------------------------------
# unfused chain (Eq. 1)
# ---------------------------------------------------------------------------
def run_unfused(
    cascade: Cascade,
    inputs: Mapping[str, np.ndarray],
    base_index: int = 0,
) -> Dict[str, Value]:
    """Execute the cascade as a chain of full-pass reductions.

    Thin wrapper over the serving engine: the cascade's cached
    :class:`~repro.engine.plan.FusionPlan` dispatches to
    :func:`unfused_impl`.  Unfused execution needs no fusion artifacts,
    so this never triggers symbolic work.
    """
    from ..engine import plan_for  # deferred: engine builds on core

    return plan_for(cascade).execute(inputs, mode="unfused", base_index=base_index)


def unfused_impl(
    cascade: Cascade,
    inputs: Mapping[str, np.ndarray],
    base_index: int = 0,
) -> Dict[str, Value]:
    """The unfused chain itself (plan execution target)."""
    arrays = normalize_inputs(cascade, dict(inputs))
    length = next(iter(arrays.values())).shape[0]
    env: Dict[str, np.ndarray] = dict(arrays)
    outputs: Dict[str, Value] = {}
    for red in cascade.reductions:
        values = _elementwise(red.fn, red.fn.evaluate(env), length, cascade.element_vars)
        if red.is_topk:
            values = np.asarray(values, dtype=float)
            if values.ndim == 2:
                if values.shape[1] != 1:
                    raise ValueError("top-k reductions require width-1 inputs")
                values = values[:, 0]
            outputs[red.name] = red.op.from_array(values, base_index)
        else:
            result = np.atleast_1d(np.asarray(red.op.reduce(values, 0)))
            outputs[red.name] = result
            env[red.name] = result
    return outputs


# ---------------------------------------------------------------------------
# segment-local partials (Eq. 6)
# ---------------------------------------------------------------------------
def compute_segment_state(
    fused: FusedCascade,
    inputs: Mapping[str, np.ndarray],
    base_index: int = 0,
) -> Dict[str, State]:
    """First-level partials d̂¹ for one contiguous segment.

    Per Eq. 6 the segment runs the chain locally, with every mapping
    function already in its G ⊗ H form and dependencies taken from the
    *segment-local* outputs of preceding reductions.
    """
    arrays = normalize_inputs(fused.cascade, dict(inputs))
    length = next(iter(arrays.values())).shape[0]
    element_vars = fused.cascade.element_vars
    env: Dict[str, np.ndarray] = dict(arrays)
    states: Dict[str, State] = {}
    for fr in fused:
        red = fr.reduction
        if fr.is_topk:
            values = np.asarray(red.fn.evaluate(env), dtype=float)
            if values.ndim == 2:
                values = values[:, 0]
            states[red.name] = red.op.from_array(values, base_index)
            continue
        if fr.is_multi_term:
            accumulators = [
                np.atleast_1d(
                    np.sum(
                        _elementwise(term.g, term.eval_g(env), length, element_vars),
                        axis=0,
                    )
                )
                for term in fr.terms
            ]
            value = np.atleast_1d(fr.multi_term_value(accumulators, env))
            states[red.name] = MultiTermState(accumulators=accumulators, value=value)
            env[red.name] = value
            continue
        values = _elementwise(fr.gh, fr.eval_gh(env), length, element_vars)
        value = np.atleast_1d(np.asarray(red.op.reduce(values, 0)))
        states[red.name] = ScalarState(value=value)
        env[red.name] = value
    return states


# ---------------------------------------------------------------------------
# partial-state merge (Eq. 11 for one child / Eq. 15)
# ---------------------------------------------------------------------------
def merge_states(
    fused: FusedCascade,
    left: Mapping[str, State],
    right: Mapping[str, State],
) -> Dict[str, State]:
    """Merge two partial states into one.

    For each reduction in dependency order:

    * top-k carriers merge by the TopK monoid (no correction, H = e);
    * multi-term accumulators add; the value is re-materialized with
      the *new* dependency values;
    * single-term reductions apply Eq. 15:
      ``d̂_new = (d̂_left ⊗ ratio_left) ⊕ (d̂_right ⊗ ratio_right)``
      where ``ratio_side = H(deps_side)^-1 ⊗ H(deps_new)``.
    """
    left_vals = state_values(left)
    right_vals = state_values(right)
    new_states: Dict[str, State] = {}
    new_vals: Dict[str, Value] = {}
    for fr in fused:
        name = fr.reduction.name
        if fr.is_topk:
            merged = fr.reduction.op.combine(left[name], right[name])
            new_states[name] = merged
            new_vals[name] = merged
            continue
        if fr.is_multi_term:
            accumulators = [
                la + ra
                for la, ra in zip(left[name].accumulators, right[name].accumulators)
            ]
            value = np.atleast_1d(fr.multi_term_value(accumulators, new_vals))
            new_states[name] = MultiTermState(accumulators=accumulators, value=value)
            new_vals[name] = value
            continue

        lv, rv = left_vals[name], right_vals[name]
        if fr.needs_correction:
            lv = fr.otimes.apply_num(lv, fr.eval_ratio(left_vals, new_vals))
            rv = fr.otimes.apply_num(rv, fr.eval_ratio(right_vals, new_vals))
        value = np.atleast_1d(fr.reduction.op.combine(lv, rv))
        new_states[name] = ScalarState(value=value)
        new_vals[name] = value
    return new_states


def segment_bounds(length: int, num_segments: int) -> List[range]:
    """Split ``length`` positions into ``num_segments`` contiguous ranges."""
    if num_segments < 1:
        raise ValueError("num_segments must be >= 1")
    num_segments = min(num_segments, length)
    bounds = np.linspace(0, length, num_segments + 1).astype(int)
    return [range(bounds[i], bounds[i + 1]) for i in range(num_segments)]


def _slice_inputs(
    cascade: Cascade, arrays: Mapping[str, np.ndarray], rows: range
) -> Dict[str, np.ndarray]:
    return {name: arrays[name][rows.start : rows.stop] for name in cascade.element_vars}


# ---------------------------------------------------------------------------
# fused reduction tree (Eq. 6 + Eq. 11)
# ---------------------------------------------------------------------------
def run_fused_tree(
    fused: FusedCascade,
    inputs: Mapping[str, np.ndarray],
    num_segments: int = 4,
    branching: Optional[int] = 2,
) -> Dict[str, Value]:
    """Execute the fused cascade as a reduction tree.

    The input is split into ``num_segments`` contiguous segments whose
    local partials (Eq. 6) are merged up a ``branching``-ary tree
    (Eq. 11).  ``branching=None`` merges all segments in one level, the
    inter-block combine of the Multi-Segment strategy.

    Thin wrapper over plan execution: the given artifacts are wrapped in
    a :class:`~repro.engine.plan.FusionPlan` (no recompile, no cache
    interaction) which dispatches to :func:`fused_tree_impl`.
    """
    from ..engine.plan import FusionPlan  # deferred: engine builds on core

    return FusionPlan.from_fused(fused).execute(
        inputs, mode="fused_tree", num_segments=num_segments, branching=branching
    )


def fused_tree_impl(
    fused: FusedCascade,
    inputs: Mapping[str, np.ndarray],
    num_segments: int = 4,
    branching: Optional[int] = 2,
) -> Dict[str, Value]:
    """The fused reduction tree itself (plan execution target)."""
    arrays = normalize_inputs(fused.cascade, dict(inputs))
    length = next(iter(arrays.values())).shape[0]
    segments = segment_bounds(length, num_segments)
    states = [
        compute_segment_state(
            fused, _slice_inputs(fused.cascade, arrays, rows), rows.start
        )
        for rows in segments
    ]
    if branching is None or branching < 2:
        branching = len(states)
    while len(states) > 1:
        grouped: List[Dict[str, State]] = []
        for start in range(0, len(states), branching):
            group = states[start : start + branching]
            merged = group[0]
            for other in group[1:]:
                merged = merge_states(fused, merged, other)
            grouped.append(merged)
        states = grouped
    return state_values(states[0])


# ---------------------------------------------------------------------------
# incremental streaming (Eq. 15/16)
# ---------------------------------------------------------------------------
def run_incremental(
    fused: FusedCascade,
    inputs: Mapping[str, np.ndarray],
    chunk_len: int = 1,
) -> Dict[str, Value]:
    """Execute the fused cascade as a stream with O(1) state.

    Each chunk seeds a local partial (Eq. 6) that is folded into the
    running state (Eq. 15; chunk_len=1 gives exactly Eq. 16).

    Thin wrapper over plan execution (see :func:`run_fused_tree`); the
    stateful client-facing counterpart is
    :class:`~repro.engine.batch.StreamSession`.
    """
    from ..engine.plan import FusionPlan  # deferred: engine builds on core

    return FusionPlan.from_fused(fused).execute(
        inputs, mode="incremental", chunk_len=chunk_len
    )


def incremental_impl(
    fused: FusedCascade,
    inputs: Mapping[str, np.ndarray],
    chunk_len: int = 1,
) -> Dict[str, Value]:
    """The incremental fold itself (plan execution target)."""
    if chunk_len < 1:
        raise ValueError("chunk_len must be >= 1")
    arrays = normalize_inputs(fused.cascade, dict(inputs))
    length = next(iter(arrays.values())).shape[0]
    state: Optional[Dict[str, State]] = None
    for start in range(0, length, chunk_len):
        rows = range(start, min(start + chunk_len, length))
        chunk = compute_segment_state(
            fused, _slice_inputs(fused.cascade, arrays, rows), rows.start
        )
        state = chunk if state is None else merge_states(fused, state, chunk)
    return state_values(state)
