"""Formal specification of cascaded reductions (paper §3.1, Eq. 1).

A :class:`Cascade` is *I* reduction operations over per-position inputs
X[l] (the ``element_vars``): the i-th reduction computes

    d_i = R_i over l of F_i(X[l], D_i)

where ``D_i`` are the outputs of the preceding i-1 reductions.  F_i is a
symbolic expression over the element variables and previous output
names; the reduction operator R_i is one of Table 1 (sum/prod/max/min)
or top-k with its (values, indices) carrier.

Conventions used by all executors:

* every element-variable array is 2-D of shape ``(L0, w)`` where ``w``
  is the per-position width (1 for scalars, e.g. head_dim for the V rows
  of attention); 1-D arrays are auto-promoted to ``(L0, 1)``;
* reduction outputs are 1-D of shape ``(w,)`` (top-k outputs are
  :class:`~repro.core.ops.TopKState`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..symbolic import Expr
from .ops import TopK, reduce_op

SCALAR_REDUCTIONS = ("sum", "prod", "max", "min")


class SpecError(ValueError):
    """Raised when a cascade specification is malformed."""


@dataclass(frozen=True)
class Reduction:
    """One reduction stage: output name, R_i, and mapping function F_i."""

    name: str
    op_name: str
    fn: Expr
    topk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op_name == "topk":
            if not self.topk or self.topk < 1:
                raise SpecError(f"reduction {self.name!r}: topk requires k >= 1")
        elif self.op_name not in SCALAR_REDUCTIONS:
            raise SpecError(
                f"reduction {self.name!r}: unknown operator {self.op_name!r}"
            )

    @property
    def is_topk(self) -> bool:
        return self.op_name == "topk"

    @property
    def op(self):
        """The ⊕ monoid (a :class:`ReduceOp`, or :class:`TopK` carrier)."""
        if self.is_topk:
            return TopK(self.topk)
        return reduce_op(self.op_name)


@dataclass(frozen=True)
class Cascade:
    """An ordered chain of data-dependent reductions over shared inputs."""

    name: str
    element_vars: Tuple[str, ...]
    reductions: Tuple[Reduction, ...]

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        if not self.reductions:
            raise SpecError("cascade needs at least one reduction")
        seen = set(self.element_vars)
        if len(seen) != len(self.element_vars):
            raise SpecError("duplicate element variable names")
        outputs = []
        for red in self.reductions:
            if red.name in seen or red.name in outputs:
                raise SpecError(f"duplicate name {red.name!r}")
            allowed = seen | set(outputs)
            extra = red.fn.free_vars() - allowed
            if extra:
                raise SpecError(
                    f"reduction {red.name!r} uses undefined names {sorted(extra)}"
                )
            topk_deps = {
                r.name for r in self.reductions if r.is_topk
            } & red.fn.free_vars()
            if topk_deps:
                raise SpecError(
                    f"reduction {red.name!r} depends on top-k output(s) "
                    f"{sorted(topk_deps)}; top-k carriers are terminal"
                )
            outputs.append(red.name)

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.reductions)

    def deps_of(self, index: int) -> Tuple[str, ...]:
        """Names of earlier outputs that reduction ``index`` references."""
        fn_vars = self.reductions[index].fn.free_vars()
        return tuple(
            r.name for r in self.reductions[:index] if r.name in fn_vars
        )

    def reduction(self, name: str) -> Reduction:
        for red in self.reductions:
            if red.name == name:
                return red
        raise KeyError(name)

    def depth(self) -> int:
        """Length of the longest dependency chain among the reductions."""
        depths: Dict[str, int] = {}
        for i, red in enumerate(self.reductions):
            deps = self.deps_of(i)
            depths[red.name] = 1 + max((depths[d] for d in deps), default=0)
        return max(depths.values())


def normalize_inputs(
    cascade: Cascade, inputs: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Validate and promote element arrays to the canonical (L0, w) shape."""
    missing = set(cascade.element_vars) - set(inputs)
    if missing:
        raise SpecError(f"missing element inputs {sorted(missing)}")
    normalized: Dict[str, np.ndarray] = {}
    length = None
    for name in cascade.element_vars:
        arr = np.asarray(inputs[name], dtype=float)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise SpecError(f"input {name!r} must be 1-D or 2-D, got {arr.ndim}-D")
        if length is None:
            length = arr.shape[0]
        elif arr.shape[0] != length:
            raise SpecError(
                f"input {name!r} has length {arr.shape[0]}, expected {length}"
            )
        normalized[name] = arr
    if length == 0:
        raise SpecError("cascade inputs must be non-empty")
    return normalized
