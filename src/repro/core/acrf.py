"""Automatic Cascaded Reductions Fusion (ACRF) — Algorithm 1 of the paper.

Given a reduction's mapping function F_i(x[l], d_i) and its reduction
operator R_i, ACRF:

1. determines the compatible combine operator ⊗_i by Table 1 lookup;
2. selects a fixed point (x0, d0) such that F_i(x0, d0) is invertible
   under ⊗_i;
3. checks the decomposability identity (Eq. 23)
   ``F(x,d) ⊗ F(x0,d0) == F(x,d0) ⊗ F(x0,d)`` by randomized sampling;
4. extracts ``G(x) = F(x, d0)`` (Eq. 24) and
   ``H(d) = F(x0, d) ⊗ F(x0, d0)^-1`` (Eq. 25).

This module also implements a documented extension: when the single-term
decomposition fails but R_i is a summation, F is distributively expanded
into additive terms (e.g. ``(x - m)^2 -> x^2 - 2mx + m^2``) and each
term is decomposed independently; the linear reduction then distributes
over the terms.  This is what makes the paper's variance and
moment-of-inertia workloads (Appendix A.6) fusable.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..symbolic import Const, EquivalenceUndecided, Expr, numeric_equivalent, simplify
from ..symbolic.expand import expand_terms
from .ops import CombineOp, compatible_combine
from .spec import Cascade


class NotFusableError(RuntimeError):
    """Raised when ACRF cannot decompose a reduction's mapping function."""


@dataclass(frozen=True)
class Term:
    """One decomposed product term: F_term(x, d) == g(x) ⊗ h(d)."""

    g: Expr
    h: Expr


@dataclass(frozen=True)
class Decomposition:
    """Result of ACRF for one reduction.

    ``terms`` has exactly one entry for directly-decomposable functions;
    multi-term decompositions (sum reductions only) have several.
    """

    otimes: CombineOp
    terms: Tuple[Term, ...]

    @property
    def g(self) -> Expr:
        if len(self.terms) != 1:
            raise ValueError("multi-term decomposition has no single G")
        return self.terms[0].g

    @property
    def h(self) -> Expr:
        if len(self.terms) != 1:
            raise ValueError("multi-term decomposition has no single H")
        return self.terms[0].h

    @property
    def is_multi_term(self) -> bool:
        return len(self.terms) > 1


#: Fill values tried (in order) when searching for a fixed point.  "Nice"
#: points like 0/1 are tried first so that the extracted G/H come out in
#: their cleanest closed form (e.g. H(m) = exp(-m) for safe softmax).
_X_FILLS = (0.0, 1.0, -1.0, 2.0, 0.5, 1.3717, -0.6181)
_D_FILLS = (0.0, 1.0, -1.0, 2.0, 0.5, 0.7337, -0.4123)


def _check_identity(
    fn: Expr,
    x_vars: Sequence[str],
    d_vars: Sequence[str],
    otimes: CombineOp,
    x0: Dict[str, float],
    d0: Dict[str, float],
) -> bool:
    """Test the Eq. 23 decomposability identity at the given fixed point."""
    f_x_d = fn
    f_x_d0 = fn.substitute({k: Const(v) for k, v in d0.items()})
    f_x0_d = fn.substitute({k: Const(v) for k, v in x0.items()})
    f_x0_d0 = f_x0_d.substitute({k: Const(v) for k, v in d0.items()})
    lhs = otimes.apply_sym(f_x_d, f_x0_d0)
    rhs = otimes.apply_sym(f_x_d0, f_x0_d)
    try:
        return numeric_equivalent(lhs, rhs, rtol=1e-6, atol=1e-8)
    except EquivalenceUndecided:
        return False


def _fixed_point_value(fn: Expr, x0: Dict[str, float], d0: Dict[str, float]):
    env = dict(x0)
    env.update(d0)
    with np.errstate(all="ignore"):
        value = fn.evaluate(env)
    return value


def decompose_single(
    fn: Expr,
    x_vars: Sequence[str],
    d_vars: Sequence[str],
    otimes: CombineOp,
) -> Optional[Term]:
    """Try the single-term (Eq. 23–25) decomposition; None on failure."""
    d_vars = [d for d in d_vars if d in fn.free_vars()]
    if not d_vars:
        # No dependency: F is already G; H is the ⊗-identity.
        return Term(g=simplify(fn), h=otimes.identity_sym())

    x_active = [x for x in x_vars if x in fn.free_vars()]
    candidates = []
    for x_fill in _X_FILLS:
        for d_fill in _D_FILLS:
            x0 = {x: x_fill for x in x_active}
            d0 = {d: d_fill for d in d_vars}
            value = _fixed_point_value(fn, x0, d0)
            if not np.all(np.isfinite(np.asarray(value, dtype=float))):
                continue
            if otimes.name == "mul" and np.any(np.asarray(value) == 0.0):
                continue
            candidates.append((x0, d0, float(np.asarray(value).reshape(-1)[0])))

    for x0, d0, c0 in candidates:
        if not _check_identity(fn, x_active, d_vars, otimes, x0, d0):
            # Eq. 23 is fixed-point independent when F is decomposable;
            # a single well-posed failure is conclusive.  We still allow
            # a couple of retries to guard against degenerate points.
            continue
        g = simplify(fn.substitute({k: Const(v) for k, v in d0.items()}))
        f_x0_d = fn.substitute({k: Const(v) for k, v in x0.items()})
        h = simplify(otimes.apply_sym(f_x0_d, otimes.inverse_sym(Const(c0))))
        if not h.free_vars():
            h = otimes.identity_sym()
        if _verify_term(fn, g, h, otimes):
            return Term(g=g, h=h)
    return None


def _verify_term(fn: Expr, g: Expr, h: Expr, otimes: CombineOp) -> bool:
    """Sanity check G ⊗ H == F on random samples."""
    try:
        return numeric_equivalent(
            otimes.apply_sym(g, h), fn, rtol=1e-6, atol=1e-8, seed=3
        )
    except EquivalenceUndecided:
        return False


#: Memo of per-reduction decompositions.  Expressions are immutable and
#: hashable, so (F, x-vars, d-vars, R) keys the *entire* symbolic result
#: — including the randomized equivalence checks — across every cascade
#: that contains the same reduction.  Failures are cached too: a
#: reduction that is not decomposable stays not decomposable.
_DECOMPOSE_LOCK = threading.Lock()
_DECOMPOSE_CACHE: Dict[tuple, object] = {}
_DECOMPOSE_CACHE_MAX = 4096
_DECOMPOSE_HITS = 0
_DECOMPOSE_MISSES = 0


def decompose_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the decomposition memo."""
    with _DECOMPOSE_LOCK:
        return {
            "hits": _DECOMPOSE_HITS,
            "misses": _DECOMPOSE_MISSES,
            "size": len(_DECOMPOSE_CACHE),
        }


def clear_decompose_cache() -> None:
    with _DECOMPOSE_LOCK:
        _DECOMPOSE_CACHE.clear()


def _decompose_cache_put(key: tuple, value: object) -> None:
    global _DECOMPOSE_MISSES
    with _DECOMPOSE_LOCK:
        _DECOMPOSE_MISSES += 1
        if len(_DECOMPOSE_CACHE) >= _DECOMPOSE_CACHE_MAX:
            _DECOMPOSE_CACHE.clear()
        _DECOMPOSE_CACHE[key] = value


def decompose(
    fn: Expr,
    x_vars: Sequence[str],
    d_vars: Sequence[str],
    reduction_name: str,
    use_cache: bool = True,
) -> Decomposition:
    """Run ACRF on one reduction; raises :class:`NotFusableError`.

    Results (and failures) are memoized per (F, variables, R) so that
    structurally repeated reductions cost symbolic work only once per
    process; pass ``use_cache=False`` to force a fresh analysis.
    """
    global _DECOMPOSE_HITS
    key = (fn, tuple(x_vars), tuple(d_vars), reduction_name)
    if use_cache:
        with _DECOMPOSE_LOCK:
            cached = _DECOMPOSE_CACHE.get(key)
            if cached is not None:
                _DECOMPOSE_HITS += 1
        if isinstance(cached, NotFusableError):
            # Raise a fresh copy: re-raising the cached instance would
            # accumulate traceback frames on (and share mutable state
            # of) one object across callers and threads.
            raise copy.copy(cached).with_traceback(None)
        if cached is not None:
            return cached
    try:
        result = _decompose_uncached(fn, x_vars, d_vars, reduction_name)
    except NotFusableError as err:
        if use_cache:
            _decompose_cache_put(key, err)
        raise
    if use_cache:
        _decompose_cache_put(key, result)
    return result


def _decompose_uncached(
    fn: Expr,
    x_vars: Sequence[str],
    d_vars: Sequence[str],
    reduction_name: str,
) -> Decomposition:
    otimes = compatible_combine(reduction_name)

    term = decompose_single(fn, x_vars, d_vars, otimes)
    if term is not None:
        return Decomposition(otimes=otimes, terms=(term,))

    if reduction_name == "sum":
        terms = _decompose_multi(fn, x_vars, d_vars, otimes)
        if terms is not None:
            return Decomposition(otimes=otimes, terms=tuple(terms))

    raise NotFusableError(
        f"F = {fn!r} is not decomposable as G(x) {otimes.name} H(d)"
    )


def _decompose_multi(
    fn: Expr,
    x_vars: Sequence[str],
    d_vars: Sequence[str],
    otimes: CombineOp,
) -> Optional[List[Term]]:
    raw_terms = expand_terms(fn)
    if len(raw_terms) < 2:
        return None
    terms: List[Term] = []
    for raw in raw_terms:
        term = decompose_single(simplify(raw), x_vars, d_vars, otimes)
        if term is None:
            return None
        terms.append(term)
    return _merge_like_terms(terms)


def _merge_like_terms(terms: List[Term]) -> List[Term]:
    """Merge terms that share the same g (their h factors add)."""
    merged: List[Term] = []
    for term in terms:
        for i, existing in enumerate(merged):
            if existing.g == term.g:
                merged[i] = Term(
                    g=existing.g,
                    h=simplify(Const(0.0) + existing.h + term.h),
                )
                break
        else:
            merged.append(term)
    return merged


def analyze_cascade(cascade: Cascade) -> List[Optional[Decomposition]]:
    """Run ACRF on every reduction of a cascade.

    Returns one :class:`Decomposition` per reduction (``None`` for top-k
    reductions, whose carrier needs no G/H per Eq. 35–38).  Raises
    :class:`NotFusableError` if any scalar reduction fails.
    """
    results: List[Optional[Decomposition]] = []
    for i, red in enumerate(cascade.reductions):
        if red.is_topk:
            results.append(None)
            continue
        deps = cascade.deps_of(i)
        results.append(
            decompose(red.fn, cascade.element_vars, deps, red.op_name)
        )
    return results
