"""Reduction (⊕) and combine (⊗) operators as commutative monoids.

This module encodes Table 1 of the paper: every supported reduction
operation R_i, its underlying associative/commutative operator ⊕_i, and
the compatible combine operator ⊗_i over which ⊕_i distributes.  It also
implements the reversibility repair of Appendix A.1: when an ⊗-inverse
does not exist (e.g. 1/0 under multiplication), the identity element e
is substituted, which keeps the fused expression (Eq. 28) well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from ..symbolic import Binary, Const, Expr, Unary, as_expr


@dataclass(frozen=True)
class CombineOp:
    """A commutative monoid (S, ⊗) with partial inverses.

    Only ``+`` and ``*`` occur in machine-learning reductions (Table 1),
    and both form commutative monoids over the reals with identity 0/1.
    ``*`` has no inverse at 0; :meth:`guarded_inverse_num` applies the
    Appendix A.1 repair there.
    """

    name: str
    identity: float

    def apply_sym(self, a: Expr, b: Expr) -> Expr:
        return Binary("add" if self.name == "add" else "mul", as_expr(a), as_expr(b))

    def inverse_sym(self, e: Expr) -> Expr:
        if self.name == "add":
            return Unary("neg", as_expr(e))
        return Binary("div", Const(1.0), as_expr(e))

    def identity_sym(self) -> Expr:
        return Const(self.identity)

    def apply_num(self, a, b):
        return np.add(a, b) if self.name == "add" else np.multiply(a, b)

    def inverse_num(self, value):
        if self.name == "add":
            return np.negative(value)
        with np.errstate(divide="ignore"):
            return np.divide(1.0, value)

    def guarded_inverse_num(self, value):
        """⊗-inverse with the Appendix A.1 repair at non-invertible points."""
        if self.name == "add":
            return np.negative(value)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.divide(1.0, value)
        return np.where(np.asarray(value) == 0.0, self.identity, inv)

    def is_invertible_num(self, value) -> bool:
        if self.name == "add":
            return bool(np.all(np.isfinite(value)))
        return bool(np.all(np.asarray(value) != 0.0)) and bool(
            np.all(np.isfinite(value))
        )


OTIMES_ADD = CombineOp("add", 0.0)
OTIMES_MUL = CombineOp("mul", 1.0)

_COMBINE_BY_NAME = {"add": OTIMES_ADD, "mul": OTIMES_MUL}


def combine_op(name: str) -> CombineOp:
    """Look up a combine operator by name (``"add"`` or ``"mul"``)."""
    return _COMBINE_BY_NAME[name]


@dataclass(frozen=True)
class ReduceOp:
    """A reduction operation R_i with associative/commutative ⊕_i.

    ``identity`` is the ⊕-identity used to initialize accumulators;
    ``reduce`` collapses an array along an axis; ``combine`` merges two
    partial results (the operation at internal reduction-tree nodes).
    """

    name: str
    identity: float
    combine_num: Callable = field(compare=False)
    reduce_num: Callable = field(compare=False)

    def combine(self, a, b):
        return self.combine_num(a, b)

    def reduce(self, array, axis=0):
        return self.reduce_num(array, axis)


SUM = ReduceOp("sum", 0.0, np.add, lambda a, ax: np.sum(a, axis=ax))
PROD = ReduceOp("prod", 1.0, np.multiply, lambda a, ax: np.prod(a, axis=ax))
MAX = ReduceOp("max", -np.inf, np.maximum, lambda a, ax: np.max(a, axis=ax))
MIN = ReduceOp("min", np.inf, np.minimum, lambda a, ax: np.min(a, axis=ax))

_REDUCE_BY_NAME = {"sum": SUM, "prod": PROD, "max": MAX, "min": MIN}


def reduce_op(name: str) -> ReduceOp:
    """Look up a scalar reduction operator by name."""
    if name == "topk":
        raise ValueError("use TopK(k) for top-k reductions")
    return _REDUCE_BY_NAME[name]


#: Table 1 of the paper: ⊕_i → compatible ⊗_i.
#: max/min-style reductions pair with +, sum/prod-style with *.
TABLE1: Dict[str, CombineOp] = {
    "max": OTIMES_ADD,
    "min": OTIMES_ADD,
    "topk": OTIMES_ADD,
    "argmax": OTIMES_ADD,
    "argmin": OTIMES_ADD,
    "sum": OTIMES_MUL,
    "prod": OTIMES_MUL,
}


def compatible_combine(reduction_name: str) -> CombineOp:
    """Determine ⊗_i from ⊕_i by Table 1 lookup (ACRF step 1)."""
    try:
        return TABLE1[reduction_name]
    except KeyError:
        raise ValueError(
            f"reduction {reduction_name!r} has no Table 1 entry; "
            "cascaded fusion is not supported for it"
        ) from None


def distributes_over(oplus: ReduceOp, otimes: CombineOp) -> bool:
    """Check the distributivity condition (Eq. 5) numerically.

    The Table 1 pairings all satisfy it by construction; this is the
    defensive check RedFuser runs before accepting a fusion.
    """
    rng = np.random.default_rng(7)
    for _ in range(64):
        s1, s2, s3 = rng.uniform(-4, 4, size=3)
        lhs = otimes.apply_num(oplus.combine(s1, s2), s3)
        rhs = oplus.combine(otimes.apply_num(s1, s3), otimes.apply_num(s2, s3))
        if not np.allclose(lhs, rhs, rtol=1e-9, atol=1e-12):
            return False
    return True


@dataclass(frozen=True)
class TopK:
    """Top-k reduction with a (values, indices) carrier.

    The carrier of a top-k reduction is a sorted length-k vector rather
    than a scalar; ⊕ is "merge two candidate lists and keep the k
    largest".  Per Table 1 its compatible ⊗ is ``+`` (shifting every
    candidate by the same amount preserves the selection), and per
    Eq. 35-38 its H is the additive identity, so top-k needs no
    correction terms.
    """

    k: int
    name: str = "topk"
    identity: float = -np.inf

    def empty(self) -> "TopKState":
        return TopKState(
            values=np.full(self.k, -np.inf), indices=np.full(self.k, -1, dtype=np.int64)
        )

    def from_array(self, values: np.ndarray, base_index: int = 0) -> "TopKState":
        """Reduce a 1-D array into a top-k state."""
        values = np.asarray(values, dtype=float)
        k = min(self.k, values.shape[0])
        order = np.argsort(values, kind="stable")[::-1][:k]
        state = self.empty()
        state.values[:k] = values[order]
        state.indices[:k] = order + base_index
        return state

    def combine(self, a: "TopKState", b: "TopKState") -> "TopKState":
        values = np.concatenate([a.values, b.values])
        indices = np.concatenate([a.indices, b.indices])
        order = np.argsort(values, kind="stable")[::-1][: self.k]
        return TopKState(values=values[order], indices=indices[order])

    def shift(self, state: "TopKState", delta: float) -> "TopKState":
        """Apply ⊗=+ to the carrier (shift all candidate values)."""
        return TopKState(values=state.values + delta, indices=state.indices.copy())


@dataclass
class TopKState:
    """Sorted top-k candidates (descending) with their source indices."""

    values: np.ndarray
    indices: np.ndarray

    def valid(self) -> np.ndarray:
        return self.indices >= 0
