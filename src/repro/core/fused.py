"""Fused forms of cascaded reductions (paper §3.2–3.3).

A :class:`FusedCascade` packages, per reduction, everything the fused
executors and the code generator need:

* ``gh`` — the simplified product G(x) ⊗ H(d), i.e. the "fresh
  contribution" term of the incremental update (Eq. 16).  Simplifying
  the product *before* evaluation is what makes the executor
  numerically safe (``exp(P - m̂)`` instead of ``exp(P) * exp(-m̂)``).
* ``h_ratio`` — the correction factor H(d_prev)^-1 ⊗ H(d_new)
  appearing in Eq. 11/15/16, as a single simplified expression over
  ``<dep>__prev`` / ``<dep>__new`` variables (``exp(m̂_prev - m̂_new)``
  for safe softmax — the online-softmax rescale).
* for multi-term decompositions (sum reductions whose F needed
  distributive expansion), the per-term ``g_j``/``h_j`` pairs; their
  accumulators are dependency-free running sums that need no correction.

Numeric evaluation of the correction factor applies the Appendix A.1
reversibility repair: samples where the ratio is undefined (H(prev) not
invertible) fall back to H(new) alone, i.e. H'(prev) = e.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..symbolic import Expr, Var, make_evaluator, simplify
from .acrf import Decomposition, analyze_cascade
from .ops import CombineOp
from .spec import Cascade, Reduction

PREV_SUFFIX = "__prev"
NEW_SUFFIX = "__new"


def _rename(e: Expr, names, suffix: str) -> Expr:
    return e.substitute({n: Var(n + suffix) for n in names})


@dataclass
class FusedTerm:
    """One decomposed term with compiled evaluators."""

    g: Expr
    h: Expr
    eval_g: Callable = field(repr=False)
    eval_h: Callable = field(repr=False)


@dataclass
class FusedReduction:
    """A reduction together with its ACRF decomposition artifacts."""

    reduction: Reduction
    dep_names: Tuple[str, ...]
    decomposition: Optional[Decomposition]
    gh: Optional[Expr] = None
    h: Optional[Expr] = None
    h_ratio: Optional[Expr] = None
    terms: Tuple[FusedTerm, ...] = ()
    _eval_gh: Optional[Callable] = field(default=None, repr=False)
    _eval_h_ratio: Optional[Callable] = field(default=None, repr=False)
    _eval_h_new: Optional[Callable] = field(default=None, repr=False)

    @property
    def is_topk(self) -> bool:
        return self.reduction.is_topk

    @property
    def is_multi_term(self) -> bool:
        return self.decomposition is not None and self.decomposition.is_multi_term

    @property
    def otimes(self) -> Optional[CombineOp]:
        return None if self.decomposition is None else self.decomposition.otimes

    @property
    def needs_correction(self) -> bool:
        """True when merging partials requires a correction factor.

        Dependency-free reductions (H = e) and top-k carriers (H = e per
        Eq. 35–38) combine directly; multi-term accumulators are raw
        running sums that also combine directly.
        """
        if self.is_topk or self.is_multi_term:
            return False
        return bool(self.h is not None and self.h.free_vars())

    def eval_gh(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        """Evaluate G ⊗ H — the fresh-contribution term (Eq. 16)."""
        return self._eval_gh(env)

    def eval_ratio(
        self,
        prev_vals: Mapping[str, np.ndarray],
        new_vals: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Correction factor H(prev)^-1 ⊗ H(new), with A.1 repair."""
        env: Dict[str, np.ndarray] = {}
        for name in self.dep_names:
            env[name + PREV_SUFFIX] = prev_vals[name]
            env[name + NEW_SUFFIX] = new_vals[name]
        with np.errstate(all="ignore"):
            ratio = np.asarray(self._eval_h_ratio(env), dtype=float)
        bad = ~np.isfinite(ratio)
        if np.any(bad):
            with np.errstate(all="ignore"):
                fallback = np.asarray(self._eval_h_new(env), dtype=float)
            ratio = np.where(bad, fallback, ratio)
        return ratio

    def multi_term_value(
        self,
        accumulators: List[np.ndarray],
        dep_vals: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Materialize d̂ = Σ_j h_j(D̂) * ĝ_j from raw accumulators."""
        env = dict(dep_vals)
        total = None
        for term, acc in zip(self.terms, accumulators):
            contribution = np.multiply(term.eval_h(env), acc)
            total = contribution if total is None else total + contribution
        return total


@dataclass
class FusedCascade:
    """All fused reductions of a cascade, in dependency order."""

    cascade: Cascade
    reductions: Tuple[FusedReduction, ...]

    def __iter__(self):
        return iter(self.reductions)

    def __getitem__(self, index: int) -> FusedReduction:
        return self.reductions[index]

    @property
    def needs_correction_count(self) -> int:
        return sum(1 for fr in self.reductions if fr.needs_correction)


def fuse(cascade: Cascade) -> FusedCascade:
    """Fused artifacts for a cascade, via the process-wide plan cache.

    Thin wrapper over the serving engine (:mod:`repro.engine`): the
    cascade's structural signature is looked up in the default engine's
    :class:`~repro.engine.cache.PlanCache`, so repeated calls for the
    same cascade shape skip all symbolic work.  Consequently the
    returned :class:`FusedCascade` is a process-wide shared, read-only
    artifact — callers must not mutate it (use :func:`compile_fused`
    for a private instance).  The raw, uncached compiler is
    :func:`compile_fused`.

    Raises :class:`~repro.core.acrf.NotFusableError` when any scalar
    reduction fails the decomposability analysis.
    """
    from ..engine import fused_for  # deferred: engine builds on core

    return fused_for(cascade)


def compile_fused(cascade: Cascade) -> FusedCascade:
    """Run ACRF on every reduction and build the fused artifacts.

    This is the uncached compile step; serving paths should go through
    :func:`fuse` (or an :class:`~repro.engine.Engine`) instead so the
    result is memoized per cascade structure.

    Raises :class:`~repro.core.acrf.NotFusableError` when any scalar
    reduction fails the decomposability analysis.
    """
    decompositions = analyze_cascade(cascade)
    fused: List[FusedReduction] = []
    for i, (red, decomp) in enumerate(zip(cascade.reductions, decompositions)):
        dep_names = cascade.deps_of(i)
        if decomp is None:  # top-k
            fused.append(
                FusedReduction(reduction=red, dep_names=dep_names, decomposition=None)
            )
            continue
        if decomp.is_multi_term:
            terms = tuple(
                FusedTerm(
                    g=t.g,
                    h=t.h,
                    eval_g=make_evaluator(t.g),
                    eval_h=make_evaluator(t.h),
                )
                for t in decomp.terms
            )
            fused.append(
                FusedReduction(
                    reduction=red,
                    dep_names=dep_names,
                    decomposition=decomp,
                    terms=terms,
                )
            )
            continue

        otimes = decomp.otimes
        h = decomp.h
        active_deps = tuple(n for n in dep_names if n in h.free_vars())
        gh = simplify(otimes.apply_sym(decomp.g, h))
        h_prev = _rename(h, active_deps, PREV_SUFFIX)
        h_new = _rename(h, active_deps, NEW_SUFFIX)
        h_ratio = simplify(otimes.apply_sym(otimes.inverse_sym(h_prev), h_new))
        fused.append(
            FusedReduction(
                reduction=red,
                dep_names=dep_names,
                decomposition=decomp,
                gh=gh,
                h=h,
                h_ratio=h_ratio,
                _eval_gh=make_evaluator(gh),
                _eval_h_ratio=make_evaluator(h_ratio),
                _eval_h_new=make_evaluator(h_new),
            )
        )
    return FusedCascade(cascade=cascade, reductions=tuple(fused))
