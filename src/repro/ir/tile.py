"""Tile-level IR: the TileOp language of Appendix A.3.

Grammar (paper Fig. 10)::

    TileOp ::= copy(tile, tile)
             | gemm(tile, tile, tile)
             | reduce(tile, tile, axis=lit, op)
             | parallel(id[expr+], op(expr*), id+, range+)
             | fill(tile, lit)

Semantics implemented here:

* ``copy(src, dst)`` — element-wise copy between tile views;
* ``gemm(A, B, C)`` — ``C += A @ B^T`` (both operands row-major with the
  contraction over the trailing dim, matching Fig. 12b where K/V tiles
  are stored as [kv, d]); ``transpose_b=False`` gives ``C += A @ B``;
* ``reduce(src, dst, axis, op)`` — ``dst = dst ⊕ reduce(src, axis)``
  (accumulating, as used by the store-previous/correct/reduce template);
* ``parallel(buf[idx+], f(args*), iters+, ranges+)`` — data-parallel
  assignment over an iteration space;
* ``fill(tile, c)`` — constant fill.

A functional NumPy interpreter executes tile programs block by block so
generated kernels can be validated numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..symbolic import Expr, as_expr

SCOPES = ("global", "shared", "fragment")

_REDUCE_FNS = {
    "sum": (np.add, lambda a, ax: a.sum(axis=ax)),
    "max": (np.maximum, lambda a, ax: a.max(axis=ax)),
    "min": (np.minimum, lambda a, ax: a.min(axis=ax)),
    "prod": (np.multiply, lambda a, ax: a.prod(axis=ax)),
}
_REDUCE_INITS = {"sum": 0.0, "max": -np.inf, "min": np.inf, "prod": 1.0}


@dataclass(frozen=True)
class TileBuffer:
    """A buffer with a memory scope (Fig. 12b's shared/fragment split)."""

    name: str
    shape: Tuple[int, ...]
    scope: str = "global"
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if self.scope not in SCOPES:
            raise ValueError(f"unknown scope {self.scope!r}")

    @property
    def nbytes(self) -> int:
        n = self.dtype_bytes
        for dim in self.shape:
            n *= dim
        return n


@dataclass(frozen=True)
class TileRef:
    """A rectangular view ``buffer[off0:off0+len0, ...]``.

    Offsets are expressions over grid/stage variables; lengths are
    static, which is what makes tiles independently schedulable.
    """

    buffer: str
    offsets: Tuple[Expr, ...]
    lengths: Tuple[int, ...]

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{off!r}:{off!r}+{length}" for off, length in zip(self.offsets, self.lengths)
        )
        return f"{self.buffer}[{dims}]"


def tile(buffer: str, *dims) -> TileRef:
    """Build a TileRef from (offset, length) pairs: ``tile("K", (o, 128), (0, 64))``."""
    offsets = tuple(as_expr(o) for o, _ in dims)
    lengths = tuple(int(length) for _, length in dims)
    return TileRef(buffer, offsets, lengths)


class TileOp:
    """Base class for tile-level operations."""


@dataclass(frozen=True)
class Copy(TileOp):
    src: TileRef
    dst: TileRef


@dataclass(frozen=True)
class Gemm(TileOp):
    a: TileRef
    b: TileRef
    c: TileRef
    transpose_b: bool = True


@dataclass(frozen=True)
class Reduce(TileOp):
    src: TileRef
    dst: TileRef
    axis: int
    op: str

    def __post_init__(self) -> None:
        if self.op not in _REDUCE_FNS:
            raise ValueError(f"unknown reduce op {self.op!r}")


@dataclass(frozen=True)
class Parallel(TileOp):
    """``buffer[indices...] = value`` for every point of the iter space."""

    buffer: str
    indices: Tuple[Expr, ...]
    value: Expr
    iter_vars: Tuple[str, ...]
    extents: Tuple[int, ...]


@dataclass(frozen=True)
class Fill(TileOp):
    ref: TileRef
    value: float


@dataclass(frozen=True)
class ForStage(TileOp):
    """The software-pipeline loop over input stages (Fig. 12b)."""

    var: str
    extent: int
    body: Tuple[TileOp, ...]


@dataclass(frozen=True)
class TileProgram:
    """One kernel: a grid of blocks executing the same tile-op body."""

    name: str
    buffers: Tuple[TileBuffer, ...]
    grid: Tuple[Tuple[str, int], ...]  # (axis name, extent), e.g. (("bx", 4),)
    body: Tuple[TileOp, ...]

    def buffer(self, name: str) -> TileBuffer:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise KeyError(name)

    @property
    def num_blocks(self) -> int:
        n = 1
        for _, extent in self.grid:
            n *= extent
        return n

    def shared_bytes(self) -> int:
        return sum(b.nbytes for b in self.buffers if b.scope == "shared")

    def fragment_bytes(self) -> int:
        return sum(b.nbytes for b in self.buffers if b.scope == "fragment")


# ---------------------------------------------------------------------------
# dependence extraction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TileAccess:
    """One buffer access performed by a :class:`TileOp`.

    ``ref is None`` means the op touches the buffer at data-dependent
    positions (a ``Parallel`` write target or a ``Load`` inside a value
    expression); dependence analysis must treat it as the whole buffer.
    """

    buffer: str
    ref: Optional[TileRef]
    is_write: bool


def op_accesses(op: TileOp) -> Tuple[TileAccess, ...]:
    """The buffer accesses of one op, reads before writes.

    Read-modify-write targets (``Gemm`` C, ``Reduce`` dst, a ``Parallel``
    whose value loads its own target) appear as both a read and a write,
    which is what makes accumulation chains loop-carried for the
    schedule optimizer.  ``ForStage`` yields the union of its body.
    """
    from .scalar import loads_in

    if isinstance(op, Copy):
        return (
            TileAccess(op.src.buffer, op.src, False),
            TileAccess(op.dst.buffer, op.dst, True),
        )
    if isinstance(op, Gemm):
        return (
            TileAccess(op.a.buffer, op.a, False),
            TileAccess(op.b.buffer, op.b, False),
            TileAccess(op.c.buffer, op.c, False),  # C += ...: read-modify-write
            TileAccess(op.c.buffer, op.c, True),
        )
    if isinstance(op, Reduce):
        return (
            TileAccess(op.src.buffer, op.src, False),
            TileAccess(op.dst.buffer, op.dst, False),  # accumulating dst
            TileAccess(op.dst.buffer, op.dst, True),
        )
    if isinstance(op, Fill):
        return (TileAccess(op.ref.buffer, op.ref, True),)
    if isinstance(op, Parallel):
        reads = []
        for expr in (op.value,) + op.indices:
            for ld in loads_in(expr):
                reads.append(TileAccess(ld.buffer, None, False))
        return tuple(reads) + (TileAccess(op.buffer, None, True),)
    if isinstance(op, ForStage):
        out = []
        for inner in op.body:
            out.extend(op_accesses(inner))
        return tuple(out)
    raise TypeError(f"unknown tile op {op!r}")


def op_reads(op: TileOp) -> Tuple[TileAccess, ...]:
    return tuple(a for a in op_accesses(op) if not a.is_write)


def op_writes(op: TileOp) -> Tuple[TileAccess, ...]:
    return tuple(a for a in op_accesses(op) if a.is_write)


# ---------------------------------------------------------------------------
# interpreter
# ---------------------------------------------------------------------------
class TileInterpreter:
    """Functional executor for tile programs (NumPy semantics).

    Blocks run sequentially; per-block shared/fragment buffers are
    reallocated for every block, global buffers persist, which mirrors
    the GPU memory model faithfully enough for numerical validation.
    """

    def __init__(self, program: TileProgram):
        self.program = program

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        init_ops: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute all blocks; returns the global buffers.

        ``init_ops`` optionally maps a global buffer name to a reduction
        op whose identity should seed it (outputs default to zeros).
        """
        init_ops = dict(init_ops or {})
        globals_: Dict[str, np.ndarray] = {}
        for buf in self.program.buffers:
            if buf.scope != "global":
                continue
            if buf.name in inputs:
                array = np.asarray(inputs[buf.name], dtype=float)
                if array.shape != buf.shape:
                    raise ValueError(
                        f"{buf.name}: expected {buf.shape}, got {array.shape}"
                    )
                globals_[buf.name] = array.copy()
            else:
                fill = _REDUCE_INITS.get(init_ops.get(buf.name, "sum"), 0.0)
                globals_[buf.name] = np.full(buf.shape, fill)

        for block_index in self._block_indices():
            locals_: Dict[str, np.ndarray] = {}
            for buf in self.program.buffers:
                if buf.scope != "global":
                    locals_[buf.name] = np.zeros(buf.shape)
            env: Dict[str, object] = dict(block_index)
            self._exec_block(self.program.body, globals_, locals_, env)
        return globals_

    def _block_indices(self):
        axes = self.program.grid
        if not axes:
            yield {}
            return
        indices = [0] * len(axes)
        total = self.program.num_blocks
        for flat in range(total):
            rem = flat
            out = {}
            for (name, extent), _ in zip(reversed(axes), range(len(axes))):
                out[name] = rem % extent
                rem //= extent
            yield out

    # -- op execution -------------------------------------------------------
    def _exec_block(self, ops, globals_, locals_, env) -> None:
        for op in ops:
            if isinstance(op, ForStage):
                for i in range(op.extent):
                    env[op.var] = i
                    self._exec_block(op.body, globals_, locals_, env)
                env.pop(op.var, None)
            elif isinstance(op, Copy):
                view = self._view(op.src, globals_, locals_, env)
                self._view(op.dst, globals_, locals_, env)[...] = view
            elif isinstance(op, Fill):
                self._view(op.ref, globals_, locals_, env)[...] = op.value
            elif isinstance(op, Gemm):
                a = self._view(op.a, globals_, locals_, env)
                b = self._view(op.b, globals_, locals_, env)
                c = self._view(op.c, globals_, locals_, env)
                c += a @ (b.T if op.transpose_b else b)
            elif isinstance(op, Reduce):
                src = self._view(op.src, globals_, locals_, env)
                dst = self._view(op.dst, globals_, locals_, env)
                combine, collapse = _REDUCE_FNS[op.op]
                dst[...] = combine(dst, collapse(src, op.axis).reshape(dst.shape))
            elif isinstance(op, Parallel):
                self._exec_parallel(op, globals_, locals_, env)
            else:
                raise TypeError(f"unknown tile op {op!r}")

    def _array(self, name: str, globals_, locals_) -> np.ndarray:
        if name in locals_:
            return locals_[name]
        return globals_[name]

    def _view(self, ref: TileRef, globals_, locals_, env) -> np.ndarray:
        array = self._array(ref.buffer, globals_, locals_)
        slices = []
        for off, length in zip(ref.offsets, ref.lengths):
            start = int(off.evaluate(env))
            slices.append(slice(start, start + length))
        return array[tuple(slices)]

    def _exec_parallel(self, op: Parallel, globals_, locals_, env) -> None:
        target = self._array(op.buffer, globals_, locals_)
        eval_env: Dict[str, object] = dict(env)
        for name in op.iter_vars:
            if name in eval_env:
                raise ValueError(f"iter var {name!r} shadows an outer variable")
        # expose tile arrays to Load nodes inside the value expression
        for name in locals_:
            eval_env.setdefault(name, locals_[name])
        for name in globals_:
            eval_env.setdefault(name, globals_[name])

        shape = tuple(op.extents)
        for flat in range(int(np.prod(shape)) if shape else 1):
            rem = flat
            for name, extent in zip(reversed(op.iter_vars), reversed(shape)):
                eval_env[name] = rem % extent
                rem //= extent
            idx = tuple(int(i.evaluate(eval_env)) for i in op.indices)
            target[idx] = op.value.evaluate(eval_env)
