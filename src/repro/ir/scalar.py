"""Scalar-level IR: a miniature TensorIR.

The paper builds RedFuser on TVM and analyzes TensorIR loop nests
(§4.1).  This module provides the equivalent host IR: buffers, loop
nests, plain stores and reduction updates, plus a reference interpreter.
Value and index expressions reuse :mod:`repro.symbolic` with one extra
node type, :class:`Load`, for indexed buffer reads — so the lifting of
IR reductions into mathematical expressions (§4.1) is a tree rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence, Tuple

import numpy as np

from ..symbolic import Expr, as_expr
from ..symbolic.expr import ExprLike

REDUCE_INITS = {"sum": 0.0, "prod": 1.0, "max": -np.inf, "min": np.inf}
_REDUCE_FNS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


@dataclass(frozen=True)
class Load(Expr):
    """An indexed read ``buffer[indices...]`` inside a value expression."""

    buffer: str
    indices: Tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, object]):
        array = env[self.buffer]
        idx = tuple(int(i.evaluate(env)) for i in self.indices)
        return array[idx]

    def substitute(self, mapping) -> Expr:
        if self.buffer in mapping:
            replacement = mapping[self.buffer]
            if isinstance(replacement, Expr) and not isinstance(replacement, Load):
                return replacement
        return Load(self.buffer, tuple(i.substitute(mapping) for i in self.indices))

    def free_vars(self) -> FrozenSet[str]:
        result = frozenset()
        for index in self.indices:
            result |= index.free_vars()
        return result

    def children(self) -> tuple:
        return self.indices

    def __repr__(self) -> str:
        inner = ", ".join(repr(i) for i in self.indices)
        return f"{self.buffer}[{inner}]"


def load(buffer: str, *indices: ExprLike) -> Load:
    """Build a :class:`Load` node, coercing numeric indices."""
    return Load(buffer, tuple(as_expr(i) for i in indices))


def loads_in(e: Expr) -> List[Load]:
    """All Load nodes in an expression (pre-order)."""
    found: List[Load] = []
    if isinstance(e, Load):
        found.append(e)
    for child in e.children():
        found.extend(loads_in(child))
    return found


@dataclass(frozen=True)
class Buffer:
    """A dense array with a symbolic role in the kernel."""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "fp32"
    is_input: bool = False
    is_output: bool = False


class Stmt:
    """Base class for scalar-IR statements."""


@dataclass(frozen=True)
class Store(Stmt):
    """``buffer[indices] = value``"""

    buffer: str
    indices: Tuple[Expr, ...]
    value: Expr


@dataclass(frozen=True)
class ReduceUpdate(Stmt):
    """``buffer[indices] = buffer[indices] ⊕ value`` with ⊕ named by op.

    This is the IR footprint of one reduction: the loop variables that
    appear in ``value`` (or in the loop nest) but not in ``indices`` are
    the reduction axes.
    """

    buffer: str
    indices: Tuple[Expr, ...]
    op: str
    value: Expr

    def __post_init__(self) -> None:
        if self.op not in REDUCE_INITS:
            raise ValueError(f"unknown reduction op {self.op!r}")


@dataclass(frozen=True)
class ForLoop(Stmt):
    """``for var in range(start, extent): body``

    ``start`` is normally 0; the code generator peels the first
    iteration of incremental loops (the seed step, which has no
    correction terms) and emits the steady-state loop from 1.
    """

    var: str
    extent: int
    body: Tuple[Stmt, ...]
    start: int = 0


@dataclass(frozen=True)
class Function:
    """A scalar kernel: buffers plus a top-level statement list."""

    name: str
    buffers: Tuple[Buffer, ...]
    body: Tuple[Stmt, ...]

    def buffer(self, name: str) -> Buffer:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise KeyError(name)

    @property
    def inputs(self) -> Tuple[Buffer, ...]:
        return tuple(b for b in self.buffers if b.is_input)

    @property
    def outputs(self) -> Tuple[Buffer, ...]:
        return tuple(b for b in self.buffers if b.is_output)


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------
class FunctionBuilder:
    """Fluent construction of scalar-IR functions.

    Example (the unfused safe softmax of Fig. 11, reduced)::

        fb = FunctionBuilder("softmax")
        fb.input_buffer("x", (n,))
        fb.buffer("m", (1,))
        with fb.loop("l", n):
            fb.reduce("m", (0,), "max", load("x", var("l")))
    """

    def __init__(self, name: str):
        self._name = name
        self._buffers: List[Buffer] = []
        self._stack: List[List[Stmt]] = [[]]
        self._loop_frames: List[Tuple[str, int]] = []

    def input_buffer(self, name: str, shape: Sequence[int], dtype: str = "fp32"):
        self._buffers.append(Buffer(name, tuple(shape), dtype, is_input=True))
        return self

    def output_buffer(self, name: str, shape: Sequence[int], dtype: str = "fp32"):
        self._buffers.append(Buffer(name, tuple(shape), dtype, is_output=True))
        return self

    def buffer(self, name: str, shape: Sequence[int], dtype: str = "fp32"):
        self._buffers.append(Buffer(name, tuple(shape), dtype))
        return self

    def loop(self, var: str, extent: int, start: int = 0) -> "_LoopContext":
        return _LoopContext(self, var, extent, start)

    def store(self, buffer: str, indices: Sequence[ExprLike], value: ExprLike):
        self._stack[-1].append(
            Store(buffer, tuple(as_expr(i) for i in indices), as_expr(value))
        )
        return self

    def reduce(
        self, buffer: str, indices: Sequence[ExprLike], op: str, value: ExprLike
    ):
        self._stack[-1].append(
            ReduceUpdate(buffer, tuple(as_expr(i) for i in indices), op, as_expr(value))
        )
        return self

    def build(self) -> Function:
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced loop contexts")
        return Function(self._name, tuple(self._buffers), tuple(self._stack[0]))


class _LoopContext:
    def __init__(self, builder: FunctionBuilder, var: str, extent: int, start: int = 0):
        self._builder = builder
        self._var = var
        self._extent = extent
        self._start = start

    def __enter__(self):
        self._builder._stack.append([])
        self._builder._loop_frames.append((self._var, self._extent))
        return self

    def __exit__(self, exc_type, exc, tb):
        body = tuple(self._builder._stack.pop())
        self._builder._loop_frames.pop()
        if exc_type is None:
            self._builder._stack[-1].append(
                ForLoop(self._var, self._extent, body, self._start)
            )
        return False


# ---------------------------------------------------------------------------
# interpreter
# ---------------------------------------------------------------------------
def run_function(
    fn: Function, inputs: Mapping[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Execute a scalar-IR function with a naive Python interpreter.

    Reduction buffers are initialized to the ⊕-identity of the *first*
    reduction that writes them.  Intended for small validation runs —
    this interpreter favours obvious correctness over speed.
    """
    env: Dict[str, object] = {}
    init_ops = _reduction_inits(fn.body)
    for buf in fn.buffers:
        if buf.is_input:
            array = np.asarray(inputs[buf.name], dtype=float)
            if array.shape != buf.shape:
                raise ValueError(
                    f"input {buf.name!r}: expected shape {buf.shape}, got {array.shape}"
                )
            env[buf.name] = array.copy()
        else:
            fill = REDUCE_INITS.get(init_ops.get(buf.name, "sum"), 0.0)
            env[buf.name] = np.full(buf.shape, fill)
    _exec_block(fn.body, env)
    return {b.name: env[b.name] for b in fn.buffers if not b.is_input}


def _reduction_inits(body: Sequence[Stmt]) -> Dict[str, str]:
    inits: Dict[str, str] = {}

    def walk(stmts):
        for stmt in stmts:
            if isinstance(stmt, ReduceUpdate) and stmt.buffer not in inits:
                inits[stmt.buffer] = stmt.op
            elif isinstance(stmt, ForLoop):
                walk(stmt.body)

    walk(body)
    return inits


def _exec_block(stmts: Sequence[Stmt], env: Dict[str, object]) -> None:
    for stmt in stmts:
        if isinstance(stmt, ForLoop):
            for i in range(stmt.start, stmt.extent):
                env[stmt.var] = i
                _exec_block(stmt.body, env)
            env.pop(stmt.var, None)
        elif isinstance(stmt, Store):
            idx = tuple(int(i.evaluate(env)) for i in stmt.indices)
            env[stmt.buffer][idx] = stmt.value.evaluate(env)
        elif isinstance(stmt, ReduceUpdate):
            idx = tuple(int(i.evaluate(env)) for i in stmt.indices)
            current = env[stmt.buffer][idx]
            env[stmt.buffer][idx] = _REDUCE_FNS[stmt.op](
                current, stmt.value.evaluate(env)
            )
        else:
            raise TypeError(f"unknown statement {stmt!r}")
