"""Cascaded-reduction detection and lifting (paper §4.1).

Given a scalar-IR function, the detector:

1. walks the AST and records every :class:`ReduceUpdate` together with
   its enclosing loop nest;
2. computes each reduction's axes (enclosing loop variables that do not
   appear in the output indices);
3. groups reductions that share a common reduction axis and are linked
   by data dependencies into *cascaded reduction chains* — reductions
   over other axes that feed the chain are classified as *producers*
   (e.g. the QK^T GEMM of attention, Fig. 11's reduction 1);
4. lifts every chain reduction into a formal mathematical expression
   over element variables (chain-axis-indexed buffers) and dependency
   variables (outputs of earlier chain reductions), yielding a
   :class:`~repro.core.spec.Cascade` ready for ACRF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.spec import Cascade, Reduction
from ..symbolic import Expr, Var
from .scalar import ForLoop, Function, Load, ReduceUpdate, Stmt, loads_in


class DetectionError(RuntimeError):
    """The function's reduction structure is outside the supported class."""


@dataclass(frozen=True)
class ReductionSite:
    """One ReduceUpdate with its loop context."""

    stmt: ReduceUpdate
    loop_vars: Tuple[str, ...]  # outer → inner
    loop_extents: Tuple[int, ...]
    order: int  # program order

    @property
    def buffer(self) -> str:
        return self.stmt.buffer

    @property
    def index_vars(self) -> Set[str]:
        names: Set[str] = set()
        for index in self.stmt.indices:
            names |= set(index.free_vars())
        return names

    @property
    def axes(self) -> Tuple[str, ...]:
        """Reduction axes: loop vars not used to index the output."""
        used = self.index_vars
        return tuple(v for v in self.loop_vars if v not in used)

    def extent_of(self, var: str) -> int:
        return self.loop_extents[self.loop_vars.index(var)]


@dataclass
class DetectedCascade:
    """A lifted cascaded-reduction chain plus its context."""

    cascade: Cascade
    axis: str
    axis_extent: int
    row_vars: Tuple[str, ...]
    sites: Tuple[ReductionSite, ...]
    producers: Tuple[ReductionSite, ...]
    element_buffers: Tuple[str, ...]

    @property
    def is_cascaded(self) -> bool:
        """True when the chain has inter-reduction data dependencies."""
        return len(self.cascade.reductions) > 1 and any(
            self.cascade.deps_of(i) for i in range(len(self.cascade.reductions))
        )


def collect_reduction_sites(fn: Function) -> List[ReductionSite]:
    """All ReduceUpdate statements with their enclosing loops."""
    sites: List[ReductionSite] = []

    def walk(stmts: Sequence[Stmt], loops: List[Tuple[str, int]]):
        for stmt in stmts:
            if isinstance(stmt, ForLoop):
                walk(stmt.body, loops + [(stmt.var, stmt.extent)])
            elif isinstance(stmt, ReduceUpdate):
                sites.append(
                    ReductionSite(
                        stmt=stmt,
                        loop_vars=tuple(v for v, _ in loops),
                        loop_extents=tuple(e for _, e in loops),
                        order=len(sites),
                    )
                )

    walk(fn.body, [])
    return sites


def _writers(sites: Sequence[ReductionSite]) -> Dict[str, ReductionSite]:
    writers: Dict[str, ReductionSite] = {}
    for site in sites:
        writers.setdefault(site.buffer, site)
    return writers


def _dependencies(site: ReductionSite, writers: Dict[str, ReductionSite]) -> Set[str]:
    """Buffers written by earlier reductions that this site reads."""
    deps: Set[str] = set()
    for ld in loads_in(site.stmt.value):
        producer = writers.get(ld.buffer)
        if producer is not None and producer.order < site.order:
            deps.add(ld.buffer)
    return deps


def detect_cascades(fn: Function) -> List[DetectedCascade]:
    """Find and lift every cascaded-reduction chain in the function."""
    sites = collect_reduction_sites(fn)
    if not sites:
        return []
    writers = _writers(sites)

    # Group sites by their (innermost-shared) reduction axis name+extent.
    groups: Dict[Tuple[str, int], List[ReductionSite]] = {}
    for site in sites:
        for axis in site.axes:
            key = (axis, site.extent_of(axis))
            groups.setdefault(key, []).append(site)

    results: List[DetectedCascade] = []
    claimed: Set[int] = set()
    # Largest groups first: the cascade axis is the one shared by the
    # most reductions (kvs in Fig. 11), the rest become producers.
    for (axis, extent), members in sorted(
        groups.items(), key=lambda kv: -len(kv[1])
    ):
        members = [m for m in members if m.order not in claimed]
        if len(members) < 2:
            continue
        members.sort(key=lambda s: s.order)
        chain_buffers = {m.buffer for m in members}
        producers = tuple(
            s
            for s in sites
            if s.order not in claimed
            and s.buffer not in chain_buffers
            and any(
                s.buffer == ld.buffer
                for m in members
                for ld in loads_in(m.stmt.value)
            )
        )
        detected = _lift_chain(axis, extent, members, producers)
        if detected is not None:
            results.append(detected)
            claimed.update(m.order for m in members)
            claimed.update(p.order for p in producers)
    results.sort(key=lambda d: d.sites[0].order)
    return results


def _lift_chain(
    axis: str,
    extent: int,
    members: List[ReductionSite],
    producers: Tuple[ReductionSite, ...],
) -> Optional[DetectedCascade]:
    chain_buffers = [m.buffer for m in members]
    element_buffers: List[str] = []
    row_vars: Set[str] = set()
    for m in members:
        row_vars |= m.index_vars

    reductions: List[Reduction] = []
    for site in members:
        lifted = _lift_expr(site.stmt.value, axis, chain_buffers, element_buffers)
        if lifted is None:
            return None
        reductions.append(Reduction(site.buffer, site.stmt.op, lifted))

    cascade = Cascade(
        name=f"detected_{axis}",
        element_vars=tuple(element_buffers),
        reductions=tuple(reductions),
    )
    return DetectedCascade(
        cascade=cascade,
        axis=axis,
        axis_extent=extent,
        row_vars=tuple(sorted(row_vars)),
        sites=tuple(members),
        producers=producers,
        element_buffers=tuple(element_buffers),
    )


def _lift_expr(
    e: Expr,
    axis: str,
    chain_buffers: List[str],
    element_buffers: List[str],
) -> Optional[Expr]:
    """Rewrite buffer loads into element/dependency variables.

    * loads indexed by the chain axis → element variables X[l];
    * loads of earlier chain outputs (no chain-axis index) → dependency
      variables d_i;
    * anything else (an axis-indexed load of a chain output, which would
      mean a non-reduction recurrence) aborts the lift.
    """
    if isinstance(e, Load):
        uses_axis = axis in e.free_vars()
        if e.buffer in chain_buffers:
            if uses_axis:
                return None
            return Var(e.buffer)
        if uses_axis:
            if e.buffer not in element_buffers:
                element_buffers.append(e.buffer)
            return Var(e.buffer)
        # Row-constant load (e.g. a per-row scale): treat as element
        # variable too — it is constant along the axis, which the
        # executors handle by broadcasting.
        if e.buffer not in element_buffers:
            element_buffers.append(e.buffer)
        return Var(e.buffer)

    from ..symbolic.expr import Binary, Const, Unary, Var as SymVar

    if isinstance(e, (Const,)):
        return e
    if isinstance(e, SymVar):
        # A bare loop variable inside the value (rare): not liftable.
        return None
    if isinstance(e, Unary):
        arg = _lift_expr(e.arg, axis, chain_buffers, element_buffers)
        return None if arg is None else Unary(e.op, arg)
    if isinstance(e, Binary):
        lhs = _lift_expr(e.lhs, axis, chain_buffers, element_buffers)
        rhs = _lift_expr(e.rhs, axis, chain_buffers, element_buffers)
        if lhs is None or rhs is None:
            return None
        return Binary(e.op, lhs, rhs)
    return None
