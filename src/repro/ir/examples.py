"""Canonical unfused scalar-IR functions used throughout the repo.

These are the "frontend outputs" a TVM-like stack would produce for the
paper's workloads, written exactly in the shape of Fig. 11 (unfused
attention TIR).  They feed the detector tests, the codegen examples and
the documentation.
"""

from __future__ import annotations

from ..symbolic import absv, exp, var
from .scalar import Function, FunctionBuilder, load


def unfused_attention(q_len: int = 32, kv_len: int = 48, head_dim: int = 8) -> Function:
    """Figure 11: GEMM + max + sum-exp + GEMM, all unfused.

    Four reductions; reductions 2–4 share the kv axis and form the
    cascaded chain, reduction 1 (the QK^T GEMM over the head dim) is the
    producer.
    """
    qs, kvs, d = var("qs"), var("kvs"), var("d")
    fb = FunctionBuilder("unfused_attention")
    fb.input_buffer("Q", (q_len, head_dim))
    fb.input_buffer("K", (kv_len, head_dim))
    fb.input_buffer("V", (kv_len, head_dim))
    fb.buffer("P", (q_len, kv_len))
    fb.buffer("pmax", (q_len,))
    fb.buffer("psum", (q_len,))
    fb.output_buffer("o", (q_len, head_dim))

    with fb.loop("qs", q_len):
        # reduction 1: gemm(Q, K)
        with fb.loop("kvs", kv_len):
            with fb.loop("d", head_dim):
                fb.reduce(
                    "P", (qs, kvs), "sum", load("Q", qs, d) * load("K", kvs, d)
                )
        # reduction 2: max(P)
        with fb.loop("kvs", kv_len):
            fb.reduce("pmax", (qs,), "max", load("P", qs, kvs))
        # reduction 3: sum(exp(P - pmax))
        with fb.loop("kvs", kv_len):
            fb.reduce(
                "psum", (qs,), "sum", exp(load("P", qs, kvs) - load("pmax", qs))
            )
        # reduction 4: gemm(exp(P - pmax) / psum, V)
        with fb.loop("kvs", kv_len):
            with fb.loop("d", head_dim):
                fb.reduce(
                    "o",
                    (qs, d),
                    "sum",
                    exp(load("P", qs, kvs) - load("pmax", qs))
                    / load("psum", qs)
                    * load("V", kvs, d),
                )
    return fb.build()


def unfused_softmax(rows: int = 16, length: int = 64) -> Function:
    """Safe softmax: max + sum-exp reductions plus the normalize store."""
    r, el = var("r"), var("l")
    fb = FunctionBuilder("unfused_softmax")
    fb.input_buffer("x", (rows, length))
    fb.buffer("m", (rows,))
    fb.buffer("t", (rows,))
    fb.output_buffer("y", (rows, length))
    with fb.loop("r", rows):
        with fb.loop("l", length):
            fb.reduce("m", (r,), "max", load("x", r, el))
        with fb.loop("l", length):
            fb.reduce("t", (r,), "sum", exp(load("x", r, el) - load("m", r)))
        with fb.loop("l", length):
            fb.store(
                "y", (r, el), exp(load("x", r, el) - load("m", r)) / load("t", r)
            )
    return fb.build()


def unfused_quant_gemm(
    m_rows: int = 8, k_len: int = 32, n_cols: int = 8, fp8_max: float = 448.0
) -> Function:
    """§3.4: abs-max reduction followed by the scaled GEMM (Eq. 17)."""
    r, el, n = var("r"), var("l"), var("n")
    fb = FunctionBuilder("unfused_quant_gemm")
    fb.input_buffer("A", (m_rows, k_len))
    fb.input_buffer("W", (k_len, n_cols))
    fb.buffer("amax", (m_rows,))
    fb.output_buffer("c", (m_rows, n_cols))
    with fb.loop("r", m_rows):
        with fb.loop("l", k_len):
            fb.reduce("amax", (r,), "max", absv(load("A", r, el)))
        with fb.loop("l", k_len):
            with fb.loop("n", n_cols):
                fb.reduce(
                    "c",
                    (r, n),
                    "sum",
                    fp8_max * load("A", r, el) / load("amax", r) * load("W", el, n),
                )
    return fb.build()


def unfused_variance(rows: int = 8, length: int = 64) -> Function:
    """Appendix A.6 Eq. 44: mean then centered second moment."""
    r, el = var("r"), var("l")
    fb = FunctionBuilder("unfused_variance")
    fb.input_buffer("x", (rows, length))
    fb.buffer("mean", (rows,))
    fb.output_buffer("variance", (rows,))
    inv_n = 1.0 / length
    with fb.loop("r", rows):
        with fb.loop("l", length):
            fb.reduce("mean", (r,), "sum", load("x", r, el) * inv_n)
        with fb.loop("l", length):
            fb.reduce(
                "variance",
                (r,),
                "sum",
                (load("x", r, el) - load("mean", r)) ** 2 * inv_n,
            )
    return fb.build()
