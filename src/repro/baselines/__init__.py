"""Baseline systems: Eager, Dynamo-Inductor, TVM, hand-optimized kernels."""

from .compilers import (
    compile_eager,
    compile_inductor,
    compile_tvm,
    expert_fused_program,
)

__all__ = [
    "compile_eager",
    "compile_inductor",
    "compile_tvm",
    "expert_fused_program",
]
