"""Baseline compiler models (paper §5.1).

Each baseline turns an :class:`OpGraph` into a sequence of simulated
kernels.  The systems differ in exactly the two dimensions that matter
on real hardware — which intermediates round-trip through global memory
(fusion capability) and generated-code quality (efficiency constants):

* **PyTorch Eager** — one library kernel per operator; every
  intermediate is materialized.  GEMMs hit cuBLAS (high efficiency);
  pointwise/reduction kernels are bandwidth-bound ATen kernels.
* **PyTorch Dynamo (Inductor)** — pointwise chains fuse with at most
  one trailing reduction into a Triton kernel; GEMMs stay on cuBLAS.
  This is the documented Inductor fusion model: it cannot fuse *across*
  a reduction boundary, so cascaded reductions still materialize their
  inputs (the limitation §2.3 describes).
* **TVM (default pipeline, no CUTLASS/FlashInfer)** — injective ops
  fuse into their producer; GEMMs come from the default schedule
  templates without tensor cores (the paper disables the CUTLASS
  backend), which is the dominant cost on tensor-core GPUs.
* **Hand-optimized (FlashAttention2 / FlashMLA)** — single fused kernel
  with expert-tuned efficiency, modelled on the same traffic as
  RedFuser's fused kernel.
"""

from __future__ import annotations

import math
from typing import List

from ..gpusim.kernel import KernelSpec, Program
from ..workloads.opgraph import KernelGroup, LogicalOp, OpGraph

#: Efficiency model per system.
EAGER_GEMM = dict(
    compute_efficiency=0.80, memory_efficiency=0.85, overlap=0.9, launch_factor=3.0
)
EAGER_MEM = dict(
    compute_efficiency=0.50, memory_efficiency=0.80, overlap=0.5, launch_factor=3.0
)
INDUCTOR_MEM = dict(
    compute_efficiency=0.50, memory_efficiency=0.75, overlap=0.5, launch_factor=1.5
)
INDUCTOR_GEMM = dict(
    compute_efficiency=0.80, memory_efficiency=0.85, overlap=0.9, launch_factor=1.5
)
TVM_GEMM = dict(
    compute_efficiency=0.40, memory_efficiency=0.70, overlap=0.6, launch_factor=1.2
)
TVM_MEM = dict(
    compute_efficiency=0.40, memory_efficiency=0.55, overlap=0.4, launch_factor=1.2
)

_THREADS = 256
_WORK_PER_THREAD = 8


def _grid_for(elems: float) -> int:
    return max(1, math.ceil(elems / (_THREADS * _WORK_PER_THREAD)))


def _kernel_from_group(
    graph: OpGraph,
    group: KernelGroup,
    name: str,
    quality: dict,
    tensor_gemm: bool,
    fp8_ok: bool = True,
) -> KernelSpec:
    reads, writes = group.io(graph)
    bytes_read = sum(t.nbytes for t in reads)
    bytes_written = sum(t.nbytes for t in writes)
    # kernels parallelize over the largest tensor they touch (reductions
    # read far more elements than they write)
    elems = max(
        (t.elems for t in list(reads) + list(writes)), default=1.0
    )
    dtype = "fp8" if (group.fp8 and tensor_gemm and fp8_ok) else "fp16"
    return KernelSpec(
        name=name,
        grid=_grid_for(elems),
        threads_per_cta=_THREADS,
        smem_bytes=16 * 1024,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        flops=group.flops,
        tensor_cores=group.has_gemm and tensor_gemm,
        dtype=dtype,
        **quality,
    )


def compile_eager(graph: OpGraph) -> Program:
    """One kernel per operator (library dispatch)."""
    program = Program(name=f"{graph.name}_eager")
    for op in graph.ops:
        group = KernelGroup([op])
        quality = EAGER_GEMM if op.kind == "gemm" else EAGER_MEM
        program.add(
            _kernel_from_group(graph, group, op.name, quality, tensor_gemm=True)
        )
    return program


def compile_inductor(graph: OpGraph) -> Program:
    """Pointwise fusion with one trailing reduction (Triton codegen)."""
    program = Program(name=f"{graph.name}_inductor")
    pending: List[LogicalOp] = []

    def flush():
        if not pending:
            return
        group = KernelGroup(list(pending))
        name = "+".join(op.name for op in pending)
        program.add(
            _kernel_from_group(graph, group, name, INDUCTOR_MEM, tensor_gemm=True)
        )
        pending.clear()

    for op in graph.ops:
        if op.kind == "gemm":
            flush()
            # Inductor falls back to fp16 matmul templates for fp8 inputs
            program.add(
                _kernel_from_group(
                    graph,
                    KernelGroup([op]),
                    op.name,
                    INDUCTOR_GEMM,
                    tensor_gemm=True,
                    fp8_ok=False,
                )
            )
        elif op.kind in ("reduction", "topk"):
            # a reduction joins the current pointwise chain, then closes it
            pending.append(op)
            flush()
        else:
            pending.append(op)
    flush()
    return program


def compile_tvm(graph: OpGraph) -> Program:
    """Default TVM pipeline: injective-into-producer fusion, no tensor cores."""
    program = Program(name=f"{graph.name}_tvm")
    pending: List[LogicalOp] = []

    def flush():
        if not pending:
            return
        group = KernelGroup(list(pending))
        name = "+".join(op.name for op in pending)
        quality = TVM_GEMM if group.has_gemm else TVM_MEM
        program.add(
            _kernel_from_group(graph, group, name, quality, tensor_gemm=False)
        )
        pending.clear()

    for op in graph.ops:
        if op.kind in ("gemm", "reduction", "topk"):
            flush()
            pending.append(op)
        else:
            # injective op fuses into its producer's kernel
            pending.append(op)
            flush()
    flush()
    return program


def expert_fused_program(name: str, fused: Program) -> Program:
    """Hand-optimized kernel from a fixed-configuration fused program.

    FlashAttention/FlashMLA are special cases of the fused form (§6):
    expert code quality, but one hand-chosen tile configuration
    ((128, 128) per Appendix A.4) instead of RedFuser's auto-tuning.
    The caller passes the fixed-config program; this stamps the name.
    """
    program = Program(name=name)
    for kernel in fused.kernels:
        program.add(kernel.with_(name=f"{name}:{kernel.name}"))
    return program
