"""Compile-once / execute-many serving engine.

This package turns the per-call fusion library into a serving layer:

1. **compile** — :func:`Engine.plan_for` derives a
   :class:`~repro.engine.plan.FusionPlan` (the frozen ACRF output) for a
   cascade structure;
2. **cache** — plans are keyed by
   :func:`~repro.engine.plan.cascade_signature` in a thread-safe LRU
   :class:`~repro.engine.cache.PlanCache`, so repeated requests for the
   same cascade shape perform zero symbolic work;
3. **schedule** — every execution request flows through the engine's
   request scheduler (:mod:`repro.engine.serving`): synchronous
   ``Engine.run`` / ``run_batch`` are thin inline shims, while
   :meth:`Engine.serving` starts the async runtime — ``submit()``
   futures, continuous micro-batching of compatible requests, and
   bounded-queue admission control with typed load shedding;
4. **execute** — through a pluggable backend registry
   (:mod:`repro.engine.backends`): per-query
   (:meth:`FusionPlan.execute`), vectorized over a leading batch axis
   (:class:`~repro.engine.batch.BatchExecutor`), or streaming with O(1)
   state (:class:`~repro.engine.batch.StreamSession`).  Built-in
   backends are the three NumPy reference paths (``unfused``,
   ``fused_tree``, ``incremental``), ``tile_ir``, which lowers the
   compiled cascade through the codegen/ir stack, executes it with the
   tile interpreter, and annotates plans with analytical GPU latency
   estimates, and ``sharded``, which splits batches across simulated
   devices and merges bitwise-identical results.

The classic ``fuse`` / ``run_*`` entry points in :mod:`repro.core` are
thin wrappers over this lifecycle, sharing the module-level default
engine returned by :func:`default_engine`.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

from ..core.fused import FusedCascade
from ..core.spec import Cascade
from ..obs.metrics import MetricsRegistry, Sample
from .backends import (
    BackendCapabilities,
    BackendError,
    DeviceStats,
    ExecutionBackend,
    ShardEstimate,
    ShardedBackend,
    TileEstimate,
    TileIRBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from .bounded import BoundedCache
from .batch import (
    BatchExecutor,
    BatchTopKState,
    RaggedBatch,
    StreamSession,
    merge_batch_outputs,
    normalize_batch_inputs,
    run_batched_tree,
    run_batched_unfused,
    run_ragged_tree,
    run_ragged_unfused,
    split_batch,
    stack_queries,
)
from .cache import CacheStats, PlanCache
from .plan import (
    EXECUTION_MODES,
    FusionPlan,
    cascade_signature,
    fusion_compile_count,
)
from .store import FORMAT_VERSION, PlanStore, PlanStoreStats, _iter_store_samples
from .pool import RequestSerializationError, WorkerError, WorkerPool
from .router import RetriesExhaustedError, Router, RouterStats, pick_worker
from .serving import (
    PRIORITY_CLASSES,
    AdmissionError,
    DeadlineExceededError,
    QueueFullError,
    ServingClosedError,
    ServingConfig,
    ServingEngine,
    ServingStats,
    TenantQuotaError,
    priority_index,
)
from .supervisor import Supervisor, SupervisorConfig


class EngineStats:
    """Cache counters plus per-backend execution counts for one engine.

    Cache attributes (``hits``/``misses``/``compiles``/``evictions``/
    ``requests``/``hit_rate``) delegate to the underlying
    :class:`~repro.engine.cache.CacheStats`; ``backend_executions``
    totals the executions served by every plan the engine ever compiled
    (plans mirror their counts into the cache via an attached sink, so
    the totals are monotonic across eviction and ``reset()`` and keep
    counting for plans still referenced after eviction), which lets
    benchmarks assert which backend actually served requests.
    """

    def __init__(self, engine: "Engine") -> None:
        object.__setattr__(self, "_engine", engine)

    def __getattr__(self, name: str):
        return getattr(self._engine.cache.stats, name)

    def __setattr__(self, name: str, value) -> None:
        # Writes delegate to the real counters too: the wrapper is a
        # fresh view per access, so shadowing an attribute on it would
        # silently discard the assignment.
        setattr(self._engine.cache.stats, name, value)

    @property
    def backend_executions(self) -> Dict[str, int]:
        return self._engine.cache.execution_totals()

    @property
    def registry(self) -> MetricsRegistry:
        """The engine's unified metrics registry (see ``Engine.metrics``)."""
        return self._engine.metrics

    def render_prometheus(self) -> str:
        """Every layer's metrics in Prometheus text exposition format.

        One scrape covers the whole engine: the scheduler's serving
        instruments live in the registry directly, while cache, padding,
        and simulated-device counters are adapted by collectors at
        render time — so this is always a live snapshot, never a copy
        that can go stale.
        """
        return self._engine.metrics.render_prometheus()

    def snapshot(self) -> Dict[str, object]:
        snap = self._engine.cache.stats.snapshot()
        snap["backend_executions"] = self.backend_executions
        return snap

    def describe(self) -> Dict[str, object]:
        """All engine metrics in one place, grouped by subsystem.

        * ``"cache"`` — the :class:`~repro.engine.cache.PlanCache`
          hit/miss/compile/eviction counters plus the live plan count;
        * ``"backend_executions"`` — per-backend execution totals across
          every plan the engine ever compiled;
        * ``"padding"`` — per-backend ragged padding efficiency
          (useful positions / padded positions executed), summed over
          the currently cached plans; present once any ragged batch ran;
        * ``"serving"`` — the request scheduler's queue/latency/shed/
          padding counters (present once the engine has served any
          request — ``Engine.run`` dispatches through the scheduler, so
          this appears after the first call);
        * ``"plan_store"`` — disk-artifact hit/miss/corrupt counters
          (present only when the engine was built with ``plan_store=``);
        * ``"workers"`` — per-worker stat sections, namespaced by worker
          name (present only when a worker rollup is attached via
          :meth:`Engine.attach_worker_rollup`, i.e. when this engine
          fronts a multi-process tier).

        The last two sections appear strictly *after* the existing keys
        and only when their subsystem is configured, so single-process
        output stays byte-compatible with existing consumers (the
        harness report and the trace CLI).
        """
        engine = self._engine
        cache_info = engine.cache.stats.snapshot()
        cache_info["plans"] = len(engine.cache)
        info: Dict[str, object] = {
            "cache": cache_info,
            "backend_executions": self.backend_executions,
        }
        padding: Dict[str, Dict[str, object]] = {}
        for plan in engine.cache.plans():
            for backend, counts in plan.padding_counts.items():
                entry = padding.setdefault(
                    backend, {"useful_positions": 0, "padded_positions": 0}
                )
                entry["useful_positions"] += counts["useful_positions"]
                entry["padded_positions"] += counts["padded_positions"]
        for entry in padding.values():
            padded = entry["padded_positions"]
            entry["efficiency"] = (
                entry["useful_positions"] / padded if padded else 1.0
            )
        if padding:
            info["padding"] = padding
        scheduler = engine._scheduler
        if scheduler is not None:
            info["serving"] = scheduler.stats.snapshot()
        store = engine.cache.store
        if store is not None:
            info["plan_store"] = store.describe()
        rollup = engine._worker_rollup
        if rollup is not None:
            sections = rollup()
            if sections:
                info["workers"] = sections
        return info


def _collect_device_samples():
    """Registry collector over the sharded backend's simulated devices.

    The backend registry is process-wide, so these samples describe the
    shared ``sharded`` backend rather than one engine — the same way a
    node exporter describes the host every process runs on.  Silently
    yields nothing if the backend was unregistered.
    """
    try:
        backend = get_backend("sharded")
    except BackendError:
        return
    for device in getattr(backend, "devices", ()):
        labels = (("device", str(device.device)),)
        yield Sample("device_batches_total", device.batches, labels,
                     kind="counter", help="Shards executed per device")
        yield Sample("device_queries_total", device.queries, labels,
                     kind="counter", help="Queries executed per device")
        yield Sample("device_busy_seconds_total", device.busy_seconds, labels,
                     kind="counter", help="Wall-clock busy time per device")
        yield Sample("device_simulated_seconds_total", device.simulated_seconds,
                     labels, kind="counter",
                     help="Cost-model attributed time per device")


class Engine:
    """Facade tying the plan cache to the scheduler and execution backends.

    One engine per serving process is the intended deployment; tests and
    benchmarks create private instances to get isolated caches/stats.

    Every execution request — including the synchronous ``run`` /
    ``run_batch`` entry points — flows through the engine's request
    scheduler (:class:`~repro.engine.serving.ServingEngine`).  By
    default the scheduler runs *inline* (no extra thread, requests
    execute on the calling thread); :meth:`serving` starts the async
    runtime, after which concurrent clients get continuous micro-
    batching and admission control on the same engine.
    """

    def __init__(
        self,
        cache_size: int = 256,
        serving_config: Optional["ServingConfig"] = None,
        plan_store=None,
    ) -> None:
        # ``plan_store`` accepts a PlanStore or a directory path; a path
        # builds a store stamped with the current default environment.
        if plan_store is not None and not isinstance(plan_store, PlanStore):
            plan_store = PlanStore(plan_store)
        self.cache = PlanCache(maxsize=cache_size, store=plan_store)
        self._serving_config = serving_config
        self._scheduler: Optional[ServingEngine] = None
        self._scheduler_lock = threading.Lock()
        #: Optional callable returning per-worker stat sections; set by
        #: a fronting worker tier (see ``attach_worker_rollup``).
        self._worker_rollup = None
        #: One metrics registry for every layer of this engine: the
        #: scheduler's ServingStats register their instruments here, and
        #: collectors adapt the structures that keep their own
        #: representation (plan-cache counters, per-plan padding
        #: accounts, simulated-device counters) at collection time.
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(self._collect_cache_samples)
        self.metrics.register_collector(self._collect_padding_samples)
        self.metrics.register_collector(_collect_device_samples)
        if plan_store is not None:
            self.metrics.register_collector(self._collect_store_samples)

    # -- metrics collectors --------------------------------------------------
    def _collect_cache_samples(self):
        stats = self.cache.stats
        yield Sample("plan_cache_hits_total", stats.hits, kind="counter",
                     help="Plan-cache hits")
        yield Sample("plan_cache_misses_total", stats.misses, kind="counter",
                     help="Plan-cache misses")
        yield Sample("plan_cache_compiles_total", stats.compiles, kind="counter",
                     help="Plans compiled")
        yield Sample("plan_cache_evictions_total", stats.evictions, kind="counter",
                     help="Plans evicted (LRU)")
        yield Sample("plan_cache_hit_rate", stats.hit_rate,
                     help="Hits / requests")
        yield Sample("plan_cache_plans", len(self.cache),
                     help="Plans currently cached")
        for name, count in sorted(self.cache.execution_totals().items()):
            yield Sample(
                "backend_executions_total", count, (("backend", name),),
                kind="counter", help="Executions served, per backend",
            )

    def _collect_padding_samples(self):
        for plan in self.cache.plans():
            for backend, counts in plan.padding_counts.items():
                labels = (("backend", backend), ("cascade", plan.cascade.name))
                yield Sample(
                    "plan_padding_useful_positions_total",
                    counts["useful_positions"], labels, kind="counter",
                    help="Real positions executed by ragged batches",
                )
                yield Sample(
                    "plan_padding_padded_positions_total",
                    counts["padded_positions"], labels, kind="counter",
                    help="Positions executed incl. padding",
                )

    def _collect_store_samples(self):
        store = self.cache.store
        if store is not None:
            yield from _iter_store_samples(store)

    def render_prometheus(self) -> str:
        """Every layer's metrics in Prometheus text exposition format."""
        return self.metrics.render_prometheus()

    # -- compile + cache ----------------------------------------------------
    @property
    def plan_store(self) -> Optional[PlanStore]:
        """The disk artifact store behind the plan cache, if configured."""
        return self.cache.store

    def warm_start(self, limit: Optional[int] = None) -> int:
        """Preload plans from the disk store (zero symbolic compiles).

        Returns the number of plans loaded; 0 without a configured
        store.  A forked/restarted worker calls this before serving so
        its first request for every stored cascade shape is a memory
        hit.
        """
        return self.cache.warm_start(limit)

    def attach_worker_rollup(self, provider) -> None:
        """Namespace a worker tier's stats into this engine's describe().

        ``provider()`` returns ``{worker_name: sections}`` (or a falsy
        value when nothing is known yet); it appears under the
        ``"workers"`` key of :meth:`EngineStats.describe`, *after* all
        single-process sections, so existing consumers see unchanged
        output until a tier is attached.
        """
        self._worker_rollup = provider

    def plan_for(self, cascade: Cascade) -> FusionPlan:
        """The cached plan for this cascade shape (compiled at most once)."""
        return self.cache.get_or_compile(cascade)

    def fused_for(self, cascade: Cascade) -> FusedCascade:
        """Cached fused artifacts; raises ``NotFusableError`` if unfusable."""
        return self.plan_for(cascade).fused

    # -- execute ------------------------------------------------------------
    @staticmethod
    def _resolve_mode_alias(mode: Optional[str], backend: Optional[str]) -> str:
        """``backend=`` is an alias for ``mode=``; both set is an error."""
        if backend is not None:
            if mode not in (None, "auto"):
                raise ValueError(
                    f"pass either mode={mode!r} or backend={backend!r}, not both"
                )
            return backend
        return "auto" if mode is None else mode

    # -- scheduling ---------------------------------------------------------
    @property
    def scheduler(self) -> ServingEngine:
        """The engine's request scheduler (created lazily, inline mode).

        ``run`` / ``run_batch`` are thin synchronous shims over this
        object; call :meth:`serving` (or ``scheduler.start()``) to
        switch it to threaded continuous batching.  Closing the serving
        runtime shuts down its thread and sheds its queued clients, but
        never bricks the engine: the next use replaces the closed
        scheduler with a fresh inline one carrying the same counters.
        """
        scheduler = self._scheduler
        if scheduler is None or scheduler._closed:
            with self._scheduler_lock:
                if self._scheduler is None:
                    self._scheduler = ServingEngine(
                        self, config=self._serving_config
                    )
                elif self._scheduler._closed:
                    self._scheduler = ServingEngine(
                        self,
                        config=self._scheduler.config,
                        stats=self._scheduler.stats,
                    )
                scheduler = self._scheduler
        return scheduler

    def serving(self, config: Optional["ServingConfig"] = None) -> ServingEngine:
        """The engine's async serving runtime, started.

        ``config`` may be set any time before the scheduler thread
        starts (inline use doesn't read it); changing the policy of an
        already-started runtime is an error.
        """
        if config is not None:
            with self._scheduler_lock:
                if self._scheduler is None:
                    self._scheduler = ServingEngine(self, config=config)
                elif self._scheduler._closed:
                    # a closed runtime is replaceable, like in `scheduler`
                    self._scheduler = ServingEngine(
                        self, config=config, stats=self._scheduler.stats
                    )
                elif not self._scheduler.started:
                    self._scheduler.config = config
                elif self._scheduler.config != config:
                    raise ValueError(
                        "this engine's serving runtime is already started "
                        "with a different config"
                    )
        return self.scheduler.start()

    def run(
        self,
        cascade: Cascade,
        inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        *,
        backend: Optional[str] = None,
        **kwargs,
    ) -> Dict[str, object]:
        """Single-query execution: a synchronous shim over the scheduler.

        ``mode`` (or its alias ``backend``) names a registered execution
        backend — e.g. ``mode="tile_ir"`` for simulated-kernel execution.
        With the scheduler inline (the default) this executes on the
        calling thread; with :meth:`serving` started, the request queues
        and may be micro-batched with concurrent submissions.
        """
        mode = self._resolve_mode_alias(mode, backend)
        return self.scheduler.run(cascade, inputs, mode, **kwargs)

    def run_batch(
        self,
        cascade: Cascade,
        batch_inputs: Mapping[str, object],
        *,
        mode: Optional[str] = "auto",
        backend: Optional[str] = None,
        **kwargs,
    ) -> Dict[str, object]:
        """Pre-formed batch execution: a synchronous shim over the scheduler."""
        mode = self._resolve_mode_alias(mode, backend)
        return self.scheduler.run_batch(cascade, batch_inputs, mode, **kwargs)

    def submit(
        self,
        cascade: Cascade,
        inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        *,
        backend: Optional[str] = None,
        **kwargs,
    ):
        """Async single query: ``Future`` from the engine's scheduler."""
        mode = self._resolve_mode_alias(mode, backend)
        return self.scheduler.submit(cascade, inputs, mode, **kwargs)

    def stream(self, cascade: Cascade) -> StreamSession:
        """Open a stateful streaming session against the cached plan."""
        return self.plan_for(cascade).stream()

    # -- introspection ------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        return EngineStats(self)

    def reset(self) -> None:
        """Drop all cached plans (stats counters are preserved)."""
        self.cache.clear()

    def close(self) -> None:
        """Shut down the scheduler thread, if one was started."""
        with self._scheduler_lock:
            scheduler = self._scheduler
        if scheduler is not None:
            scheduler.close()


_DEFAULT_ENGINE = Engine()


def default_engine() -> Engine:
    """The process-wide engine behind ``repro.core.fuse`` and ``run_*``."""
    return _DEFAULT_ENGINE


def plan_for(cascade: Cascade) -> FusionPlan:
    """Shorthand for ``default_engine().plan_for(cascade)``."""
    return _DEFAULT_ENGINE.plan_for(cascade)


def fused_for(cascade: Cascade) -> FusedCascade:
    """Shorthand for ``default_engine().fused_for(cascade)``."""
    return _DEFAULT_ENGINE.fused_for(cascade)


__all__ = [
    "AdmissionError",
    "BackendCapabilities",
    "BackendError",
    "BatchExecutor",
    "BatchTopKState",
    "BoundedCache",
    "CacheStats",
    "DeadlineExceededError",
    "DeviceStats",
    "EXECUTION_MODES",
    "Engine",
    "EngineStats",
    "ExecutionBackend",
    "FORMAT_VERSION",
    "FusionPlan",
    "PRIORITY_CLASSES",
    "PlanCache",
    "PlanStore",
    "PlanStoreStats",
    "QueueFullError",
    "RaggedBatch",
    "RequestSerializationError",
    "RetriesExhaustedError",
    "Router",
    "RouterStats",
    "ServingClosedError",
    "ServingConfig",
    "ServingEngine",
    "ServingStats",
    "ShardEstimate",
    "ShardedBackend",
    "StreamSession",
    "Supervisor",
    "SupervisorConfig",
    "TenantQuotaError",
    "TileEstimate",
    "TileIRBackend",
    "WorkerError",
    "WorkerPool",
    "available_backends",
    "cascade_signature",
    "default_engine",
    "fused_for",
    "fusion_compile_count",
    "get_backend",
    "merge_batch_outputs",
    "normalize_batch_inputs",
    "pick_worker",
    "plan_for",
    "priority_index",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "run_batched_tree",
    "run_batched_unfused",
    "run_ragged_tree",
    "run_ragged_unfused",
    "split_batch",
    "stack_queries",
    "unregister_backend",
]
