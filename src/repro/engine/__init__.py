"""Compile-once / execute-many serving engine.

This package turns the per-call fusion library into a serving layer:

1. **compile** — :func:`Engine.plan_for` derives a
   :class:`~repro.engine.plan.FusionPlan` (the frozen ACRF output) for a
   cascade structure;
2. **cache** — plans are keyed by
   :func:`~repro.engine.plan.cascade_signature` in a thread-safe LRU
   :class:`~repro.engine.cache.PlanCache`, so repeated requests for the
   same cascade shape perform zero symbolic work;
3. **execute** — per-query (:meth:`FusionPlan.execute`), vectorized over
   a leading batch axis (:class:`~repro.engine.batch.BatchExecutor`), or
   streaming with O(1) state (:class:`~repro.engine.batch.StreamSession`).

The classic ``fuse`` / ``run_*`` entry points in :mod:`repro.core` are
thin wrappers over this lifecycle, sharing the module-level default
engine returned by :func:`default_engine`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.fused import FusedCascade
from ..core.spec import Cascade
from .batch import (
    BatchExecutor,
    BatchTopKState,
    StreamSession,
    normalize_batch_inputs,
    run_batched_tree,
    run_batched_unfused,
    stack_queries,
)
from .cache import CacheStats, PlanCache
from .plan import (
    EXECUTION_MODES,
    FusionPlan,
    cascade_signature,
    fusion_compile_count,
)


class Engine:
    """Facade tying the plan cache to the execution paths.

    One engine per serving process is the intended deployment; tests and
    benchmarks create private instances to get isolated caches/stats.
    """

    def __init__(self, cache_size: int = 256) -> None:
        self.cache = PlanCache(maxsize=cache_size)

    # -- compile + cache ----------------------------------------------------
    def plan_for(self, cascade: Cascade) -> FusionPlan:
        """The cached plan for this cascade shape (compiled at most once)."""
        return self.cache.get_or_compile(cascade)

    def fused_for(self, cascade: Cascade) -> FusedCascade:
        """Cached fused artifacts; raises ``NotFusableError`` if unfusable."""
        return self.plan_for(cascade).fused

    # -- execute ------------------------------------------------------------
    def run(
        self,
        cascade: Cascade,
        inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        **kwargs,
    ) -> Dict[str, object]:
        """Single-query execution through the cached plan."""
        return self.plan_for(cascade).execute(inputs, mode, **kwargs)

    def run_batch(
        self, cascade: Cascade, batch_inputs: Mapping[str, object], **kwargs
    ) -> Dict[str, object]:
        """Vectorized execution of a batch with a leading batch axis."""
        return self.plan_for(cascade).execute_batch(batch_inputs, **kwargs)

    def stream(self, cascade: Cascade) -> StreamSession:
        """Open a stateful streaming session against the cached plan."""
        return self.plan_for(cascade).stream()

    # -- introspection ------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def reset(self) -> None:
        """Drop all cached plans (stats counters are preserved)."""
        self.cache.clear()


_DEFAULT_ENGINE = Engine()


def default_engine() -> Engine:
    """The process-wide engine behind ``repro.core.fuse`` and ``run_*``."""
    return _DEFAULT_ENGINE


def plan_for(cascade: Cascade) -> FusionPlan:
    """Shorthand for ``default_engine().plan_for(cascade)``."""
    return _DEFAULT_ENGINE.plan_for(cascade)


def fused_for(cascade: Cascade) -> FusedCascade:
    """Shorthand for ``default_engine().fused_for(cascade)``."""
    return _DEFAULT_ENGINE.fused_for(cascade)


__all__ = [
    "BatchExecutor",
    "BatchTopKState",
    "CacheStats",
    "EXECUTION_MODES",
    "Engine",
    "FusionPlan",
    "PlanCache",
    "StreamSession",
    "cascade_signature",
    "default_engine",
    "fused_for",
    "fusion_compile_count",
    "normalize_batch_inputs",
    "plan_for",
    "run_batched_tree",
    "run_batched_unfused",
    "stack_queries",
]
