"""Compile-once / execute-many serving engine.

This package turns the per-call fusion library into a serving layer:

1. **compile** — :func:`Engine.plan_for` derives a
   :class:`~repro.engine.plan.FusionPlan` (the frozen ACRF output) for a
   cascade structure;
2. **cache** — plans are keyed by
   :func:`~repro.engine.plan.cascade_signature` in a thread-safe LRU
   :class:`~repro.engine.cache.PlanCache`, so repeated requests for the
   same cascade shape perform zero symbolic work;
3. **execute** — through a pluggable backend registry
   (:mod:`repro.engine.backends`): per-query
   (:meth:`FusionPlan.execute`), vectorized over a leading batch axis
   (:class:`~repro.engine.batch.BatchExecutor`), or streaming with O(1)
   state (:class:`~repro.engine.batch.StreamSession`).  Built-in
   backends are the three NumPy reference paths (``unfused``,
   ``fused_tree``, ``incremental``) plus ``tile_ir``, which lowers the
   compiled cascade through the codegen/ir stack, executes it with the
   tile interpreter, and annotates plans with analytical GPU latency
   estimates.

The classic ``fuse`` / ``run_*`` entry points in :mod:`repro.core` are
thin wrappers over this lifecycle, sharing the module-level default
engine returned by :func:`default_engine`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.fused import FusedCascade
from ..core.spec import Cascade
from .backends import (
    BackendCapabilities,
    BackendError,
    ExecutionBackend,
    TileEstimate,
    TileIRBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from .bounded import BoundedCache
from .batch import (
    BatchExecutor,
    BatchTopKState,
    StreamSession,
    normalize_batch_inputs,
    run_batched_tree,
    run_batched_unfused,
    stack_queries,
)
from .cache import CacheStats, PlanCache
from .plan import (
    EXECUTION_MODES,
    FusionPlan,
    cascade_signature,
    fusion_compile_count,
)


class EngineStats:
    """Cache counters plus per-backend execution counts for one engine.

    Cache attributes (``hits``/``misses``/``compiles``/``evictions``/
    ``requests``/``hit_rate``) delegate to the underlying
    :class:`~repro.engine.cache.CacheStats`; ``backend_executions``
    totals the executions served by every plan the engine ever compiled
    (plans mirror their counts into the cache via an attached sink, so
    the totals are monotonic across eviction and ``reset()`` and keep
    counting for plans still referenced after eviction), which lets
    benchmarks assert which backend actually served requests.
    """

    def __init__(self, engine: "Engine") -> None:
        object.__setattr__(self, "_engine", engine)

    def __getattr__(self, name: str):
        return getattr(self._engine.cache.stats, name)

    def __setattr__(self, name: str, value) -> None:
        # Writes delegate to the real counters too: the wrapper is a
        # fresh view per access, so shadowing an attribute on it would
        # silently discard the assignment.
        setattr(self._engine.cache.stats, name, value)

    @property
    def backend_executions(self) -> Dict[str, int]:
        return self._engine.cache.execution_totals()

    def snapshot(self) -> Dict[str, object]:
        snap = self._engine.cache.stats.snapshot()
        snap["backend_executions"] = self.backend_executions
        return snap


class Engine:
    """Facade tying the plan cache to the execution backends.

    One engine per serving process is the intended deployment; tests and
    benchmarks create private instances to get isolated caches/stats.
    """

    def __init__(self, cache_size: int = 256) -> None:
        self.cache = PlanCache(maxsize=cache_size)

    # -- compile + cache ----------------------------------------------------
    def plan_for(self, cascade: Cascade) -> FusionPlan:
        """The cached plan for this cascade shape (compiled at most once)."""
        return self.cache.get_or_compile(cascade)

    def fused_for(self, cascade: Cascade) -> FusedCascade:
        """Cached fused artifacts; raises ``NotFusableError`` if unfusable."""
        return self.plan_for(cascade).fused

    # -- execute ------------------------------------------------------------
    @staticmethod
    def _resolve_mode_alias(mode: Optional[str], backend: Optional[str]) -> str:
        """``backend=`` is an alias for ``mode=``; both set is an error."""
        if backend is not None:
            if mode not in (None, "auto"):
                raise ValueError(
                    f"pass either mode={mode!r} or backend={backend!r}, not both"
                )
            return backend
        return "auto" if mode is None else mode

    def run(
        self,
        cascade: Cascade,
        inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        *,
        backend: Optional[str] = None,
        **kwargs,
    ) -> Dict[str, object]:
        """Single-query execution through the cached plan.

        ``mode`` (or its alias ``backend``) names a registered execution
        backend — e.g. ``mode="tile_ir"`` for simulated-kernel execution.
        """
        mode = self._resolve_mode_alias(mode, backend)
        return self.plan_for(cascade).execute(inputs, mode, **kwargs)

    def run_batch(
        self,
        cascade: Cascade,
        batch_inputs: Mapping[str, object],
        *,
        mode: Optional[str] = "auto",
        backend: Optional[str] = None,
        **kwargs,
    ) -> Dict[str, object]:
        """Vectorized execution of a batch with a leading batch axis."""
        mode = self._resolve_mode_alias(mode, backend)
        return self.plan_for(cascade).execute_batch(batch_inputs, mode=mode, **kwargs)

    def stream(self, cascade: Cascade) -> StreamSession:
        """Open a stateful streaming session against the cached plan."""
        return self.plan_for(cascade).stream()

    # -- introspection ------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        return EngineStats(self)

    def reset(self) -> None:
        """Drop all cached plans (stats counters are preserved)."""
        self.cache.clear()


_DEFAULT_ENGINE = Engine()


def default_engine() -> Engine:
    """The process-wide engine behind ``repro.core.fuse`` and ``run_*``."""
    return _DEFAULT_ENGINE


def plan_for(cascade: Cascade) -> FusionPlan:
    """Shorthand for ``default_engine().plan_for(cascade)``."""
    return _DEFAULT_ENGINE.plan_for(cascade)


def fused_for(cascade: Cascade) -> FusedCascade:
    """Shorthand for ``default_engine().fused_for(cascade)``."""
    return _DEFAULT_ENGINE.fused_for(cascade)


__all__ = [
    "BackendCapabilities",
    "BackendError",
    "BatchExecutor",
    "BatchTopKState",
    "BoundedCache",
    "CacheStats",
    "EXECUTION_MODES",
    "Engine",
    "EngineStats",
    "ExecutionBackend",
    "FusionPlan",
    "PlanCache",
    "StreamSession",
    "TileEstimate",
    "TileIRBackend",
    "available_backends",
    "cascade_signature",
    "default_engine",
    "fused_for",
    "fusion_compile_count",
    "get_backend",
    "normalize_batch_inputs",
    "plan_for",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "run_batched_tree",
    "run_batched_unfused",
    "stack_queries",
    "unregister_backend",
]
