"""Background worker supervisor: heartbeats, warm restarts, circuit breakers.

The :class:`Supervisor` watches a :class:`~repro.engine.pool.WorkerPool`
from a daemon thread and keeps its slots serving:

* **heartbeat** — every ``interval_s`` it probes each spawned slot.  A
  slot whose process exited is a *crash*; a slot whose process is alive
  but does not answer :meth:`~repro.engine.pool.WorkerPool.ping_one`
  within ``ping_timeout_s`` is a *hang* (wedged mid-request or no longer
  draining its pipe) — both are unhealthy and get recycled.
* **warm restart** — unhealthy slots are replaced via
  :meth:`~repro.engine.pool.WorkerPool.restart` (hung processes are
  SIGKILLed first so the restart never blocks on a mute worker).  The
  replacement warm-starts from the shared plan store, so recovery costs
  zero symbolic compiles.  Consecutive restarts of one slot back off
  exponentially (``backoff_base_s`` doubling up to ``backoff_max_s``).
* **circuit breaker** — ``breaker_threshold`` restarts of one slot
  within ``breaker_window_s`` seconds park the slot: the supervisor
  stops restarting it and the router stops routing to it.  After
  ``breaker_reset_s`` of quiet the breaker half-opens and allows one
  probation restart; a healthy probe closes it fully.

:meth:`check_once` performs one full sweep synchronously, so tests can
drive the exact same logic deterministically without the thread or any
sleeps (pair with ``backoff_base_s=0``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..obs.clock import monotonic_s
from ..obs.metrics import Sample
from .pool import WorkerError, WorkerPool


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for the health loop, restart backoff, and circuit breaker."""

    #: seconds between background sweeps.
    interval_s: float = 0.25
    #: a live worker that does not answer a ping this fast is hung.
    ping_timeout_s: float = 2.0
    #: first-restart delay after a failure; doubles per consecutive failure.
    backoff_base_s: float = 0.05
    #: backoff ceiling.
    backoff_max_s: float = 2.0
    #: restarts within ``breaker_window_s`` that park the slot.
    breaker_threshold: int = 3
    #: sliding window (seconds) the breaker counts restarts over.
    breaker_window_s: float = 30.0
    #: quiet time after parking before one probation restart is allowed.
    breaker_reset_s: float = 10.0
    #: budget for each restart (shutdown of the old process + spawn).
    restart_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


class _SlotState:
    """Supervisor-side bookkeeping for one worker slot."""

    def __init__(self) -> None:
        self.restart_times: List[float] = []  # breaker sliding window
        self.backoff_s = 0.0
        self.next_restart_at = 0.0
        self.parked = False
        self.parked_at = 0.0
        self.restarts = 0
        self.crashes = 0
        self.hangs = 0


class Supervisor:
    """Self-healing loop over a worker pool (used by the Router).

    ``start()`` launches the daemon thread; ``check_once()`` runs one
    sweep inline (the thread and tests share this method).  The
    supervisor never raises out of its loop and stops by itself when the
    pool closes.
    """

    def __init__(
        self,
        pool: WorkerPool,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.pool = pool
        self.config = config or SupervisorConfig()
        self._slots = [_SlotState() for _ in range(pool.num_workers)]
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._checks = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Supervisor":
        """Launch the background heartbeat thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            if self.pool.closed:
                break
            try:
                self.check_once()
            except Exception:
                # the health loop must outlive any single bad sweep; the
                # next tick re-probes from scratch
                pass

    # -- health sweep -------------------------------------------------------
    def check_once(self) -> List[Optional[str]]:
        """Probe every spawned slot; heal the unhealthy ones.

        Returns the per-slot action taken this sweep: None (healthy or
        skipped), ``"restarted"``, ``"parked"``, or ``"backoff"``
        (unhealthy but still inside its restart-delay window).
        """
        with self._lock:
            self._checks += 1
        actions: List[Optional[str]] = [None] * self.pool.num_workers
        spawned = self.pool.spawned()
        for index in range(self.pool.num_workers):
            if not spawned[index] or self.pool.closed:
                continue
            actions[index] = self._check_slot(index)
        return actions

    def _check_slot(self, index: int) -> Optional[str]:
        cfg = self.config
        slot = self._slots[index]
        now = monotonic_s()

        if slot.parked:
            # half-open: after a quiet period, allow one probation restart
            if now - slot.parked_at < cfg.breaker_reset_s:
                return None
            with self._lock:
                slot.parked = False
                slot.restart_times.clear()  # probation gets a fresh window

        alive = self.pool.alive()[index]
        if alive:
            payload = self.pool.ping_one(index, cfg.ping_timeout_s)
            if payload is not None:
                # healthy: consecutive-failure backoff resets
                slot.backoff_s = 0.0
                slot.next_restart_at = 0.0
                return None
            reason = "hang"
        else:
            reason = "crash"

        with self._lock:
            if reason == "hang":
                slot.hangs += 1
            else:
                slot.crashes += 1

        if now < slot.next_restart_at:
            return "backoff"

        # circuit breaker: too many restarts inside the sliding window
        slot.restart_times = [
            t for t in slot.restart_times if now - t <= cfg.breaker_window_s
        ]
        if len(slot.restart_times) >= cfg.breaker_threshold:
            with self._lock:
                slot.parked = True
                slot.parked_at = now
            return "parked"

        if reason == "hang":
            # a mute worker won't honor "close"; reclaim the slot first
            # so restart never blocks on it
            self.pool.kill(index)
        try:
            self.pool.restart(index, drain=False,
                              timeout=cfg.restart_timeout_s)
        except WorkerError:
            return None  # pool closed mid-sweep
        with self._lock:
            slot.restarts += 1
            slot.restart_times.append(now)
            slot.backoff_s = (
                cfg.backoff_base_s if slot.backoff_s == 0.0
                else min(slot.backoff_s * 2.0, cfg.backoff_max_s)
            )
            slot.next_restart_at = now + slot.backoff_s
        return "restarted"

    # -- state --------------------------------------------------------------
    def parked(self) -> List[bool]:
        """Circuit-breaker state per slot (True = traffic rerouted)."""
        with self._lock:
            return [slot.parked for slot in self._slots]

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "running": self.running,
                "checks": self._checks,
                "restarts": sum(s.restarts for s in self._slots),
                "crashes_detected": sum(s.crashes for s in self._slots),
                "hangs_detected": sum(s.hangs for s in self._slots),
                "parked": [s.parked for s in self._slots],
                "by_worker": {
                    f"w{i}": {
                        "restarts": s.restarts,
                        "crashes": s.crashes,
                        "hangs": s.hangs,
                        "parked": s.parked,
                    }
                    for i, s in enumerate(self._slots)
                },
            }

    # -- observability ------------------------------------------------------
    def collect_samples(self) -> Iterable[Sample]:
        """Registry-collector compatible supervisor series."""
        with self._lock:
            checks = self._checks
            slots = [(f"w{i}", s.restarts, s.crashes, s.hangs, s.parked)
                     for i, s in enumerate(self._slots)]
        yield Sample("supervisor_checks_total", checks, kind="counter",
                     help="Health sweeps performed")
        yield Sample("supervisor_restarts_total",
                     sum(r for _, r, _, _, _ in slots), kind="counter",
                     help="Worker restarts performed by the supervisor")
        yield Sample("supervisor_crashes_detected_total",
                     sum(c for _, _, c, _, _ in slots), kind="counter",
                     help="Dead-worker detections")
        yield Sample("supervisor_hangs_detected_total",
                     sum(h for _, _, _, h, _ in slots), kind="counter",
                     help="Hung-worker detections (alive but mute)")
        for name, restarts, _, _, parked in slots:
            yield Sample("worker_restarts_total", restarts,
                         (("worker", name),), kind="counter",
                         help="Supervisor restarts per worker slot")
            yield Sample("worker_parked", int(parked), (("worker", name),),
                         help="Circuit breaker open for this slot")
