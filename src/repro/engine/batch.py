"""Batched and streaming execution — the execute-many half of the engine.

:class:`BatchExecutor` evaluates many *independent* queries against one
compiled :class:`~repro.engine.plan.FusionPlan` in a single vectorized
pass: every element array gains a leading batch axis, reductions run
along the length axis (``axis=1``), and the per-reduction dependency
values keep a broadcastable ``(B, 1, w)`` shape.  The math is exactly
the per-query fused reduction tree (Eq. 6 + Eq. 11) — only the NumPy
shapes change — so batched results agree with a per-query loop to
floating-point noise while amortizing all Python-side dispatch.

Mixed-length queries share the same vectorized pass through the
:class:`RaggedBatch` carrier: rows are padded to the batch's longest
length and every reduction runs *masked* — padded tail positions
contribute the reduction's monoid identity (0 for sum, -inf for max,
...), so they are absorbed without changing any row's result.  This is
the same trick that makes the fused reduction tree insensitive to
segment count: an identity-valued partial is a no-op under ⊕, and the
correction factors H(identity)^-1 ⊗ H(new) collapse under the Appendix
A.1 repair.  Padded results therefore equal the per-query loop exactly
for order-insensitive monoids (max/min/top-k) and to floating-point
association noise for sum/prod.

:class:`StreamSession` is the stateful counterpart for streaming
clients: it wraps the incremental form (Eq. 15/16) behind a ``feed``
API, holding O(1) state between chunks of one logical query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.executor import (
    MultiTermState,
    ScalarState,
    State,
    compute_segment_state,
    merge_states,
    segment_bounds,
    state_values,
)
from ..core.ops import TopKState
from ..core.spec import Cascade, SpecError, normalize_inputs
from .backends import get_backend, resolve_backend

BatchValue = Union[np.ndarray, "BatchTopKState"]


@dataclass
class BatchTopKState:
    """Top-k carrier for a whole batch: ``values``/``indices`` are (B, k)."""

    values: np.ndarray
    indices: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.values.shape[0]

    def row(self, i: int) -> TopKState:
        """Per-query view, comparable with the scalar executors' output."""
        return TopKState(values=self.values[i].copy(), indices=self.indices[i].copy())


class _BatchTopK:
    """The TopK monoid vectorized over a leading batch axis."""

    def __init__(self, k: int) -> None:
        self.k = k

    def from_batch(
        self,
        values: np.ndarray,
        base_index: int = 0,
        valid: Optional[np.ndarray] = None,
    ) -> BatchTopKState:
        """Per-row top-k; ``valid`` masks padded positions of a ragged batch.

        Masked positions carry the top-k identity (-inf value, -1 index),
        so a padded row's state equals the per-query state at its true
        length: real candidates sort identically, and any slots the valid
        prefix cannot fill come back as the same -inf/-1 padding.
        """
        values = np.asarray(values, dtype=float)
        if valid is not None:
            values = np.where(valid, values, -np.inf)
        batch, length = values.shape
        k = min(self.k, length)
        order = np.argsort(values, axis=1, kind="stable")[:, ::-1][:, :k]
        out_values = np.full((batch, self.k), -np.inf)
        out_indices = np.full((batch, self.k), -1, dtype=np.int64)
        out_values[:, :k] = np.take_along_axis(values, order, axis=1)
        chosen = order + base_index
        if valid is not None:
            chosen = np.where(
                np.take_along_axis(valid, order, axis=1), chosen, -1
            )
        out_indices[:, :k] = chosen
        return BatchTopKState(values=out_values, indices=out_indices)

    def combine(self, a: BatchTopKState, b: BatchTopKState) -> BatchTopKState:
        values = np.concatenate([a.values, b.values], axis=1)
        indices = np.concatenate([a.indices, b.indices], axis=1)
        order = np.argsort(values, axis=1, kind="stable")[:, ::-1][:, : self.k]
        return BatchTopKState(
            values=np.take_along_axis(values, order, axis=1),
            indices=np.take_along_axis(indices, order, axis=1),
        )


def normalize_batch_inputs(
    cascade: Cascade, inputs: Mapping[str, np.ndarray]
) -> Tuple[Dict[str, np.ndarray], int, int]:
    """Validate batched element arrays; promote (B, L) to (B, L, 1).

    Returns the normalized arrays plus the shared batch size B and
    per-query length L.
    """
    missing = set(cascade.element_vars) - set(inputs)
    if missing:
        raise SpecError(f"missing element inputs {sorted(missing)}")
    normalized: Dict[str, np.ndarray] = {}
    batch = length = None
    for name in cascade.element_vars:
        arr = np.asarray(inputs[name], dtype=float)
        if arr.ndim == 2:
            arr = arr[:, :, None]
        if arr.ndim != 3:
            raise SpecError(
                f"batched input {name!r} must be (B, L) or (B, L, w), got {arr.ndim}-D"
            )
        if batch is None:
            batch, length = arr.shape[0], arr.shape[1]
        elif arr.shape[0] != batch or arr.shape[1] != length:
            raise SpecError(
                f"batched input {name!r} has shape {arr.shape[:2]}, "
                f"expected ({batch}, {length})"
            )
        normalized[name] = arr
    if not batch or not length:
        raise SpecError("batched cascade inputs must be non-empty")
    return normalized, batch, length


@dataclass(eq=False)  # dict-of-ndarray fields make generated __eq__ raise
class RaggedBatch:
    """A mixed-length micro-batch: padded arrays plus per-row lengths.

    ``arrays`` maps every element variable to a padded ``(B, L_max, w)``
    array; ``lengths`` is the ``(B,)`` integer vector of true per-row
    lengths.  Positions at or beyond a row's length are *padding*: the
    masked execution paths replace their contributions with the
    reduction's monoid identity, so padded rows compute the same result
    as a per-query run at the true length.

    Padding values are, by convention, replicas of the row's last valid
    element (:meth:`from_queries` pads that way).  The masked NumPy
    paths discard padded contributions regardless of the fill, but
    finite, in-distribution padding keeps intermediate expression
    evaluation (exp/div on padded positions) free of spurious inf/nan —
    which the masked ``tile_ir`` program relies on.
    """

    arrays: Dict[str, np.ndarray]
    lengths: np.ndarray
    _mask: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.arrays:
            raise SpecError("ragged batch needs at least one element input")
        self.arrays = dict(self.arrays)  # never mutate the caller's dict
        self.lengths = np.asarray(self.lengths, dtype=np.int64)
        if self.lengths.ndim != 1 or self.lengths.shape[0] == 0:
            raise SpecError("ragged lengths must be a non-empty 1-D vector")
        batch = self.lengths.shape[0]
        max_length = None
        for name, arr in self.arrays.items():
            arr = np.asarray(arr, dtype=float)
            if arr.ndim == 2:
                arr = arr[:, :, None]
            if arr.ndim != 3:
                raise SpecError(
                    f"ragged input {name!r} must be (B, L_max) or (B, L_max, w), "
                    f"got {arr.ndim}-D"
                )
            if max_length is None:
                max_length = arr.shape[1]
            if arr.shape[0] != batch or arr.shape[1] != max_length:
                raise SpecError(
                    f"ragged input {name!r} has shape {arr.shape[:2]}, "
                    f"expected ({batch}, {max_length})"
                )
            self.arrays[name] = arr
        if not max_length:
            raise SpecError("ragged batch inputs must be non-empty")
        if int(self.lengths.min()) < 1:
            raise SpecError("every ragged row needs at least one valid position")
        if int(self.lengths.max()) > max_length:
            raise SpecError(
                f"ragged lengths reach {int(self.lengths.max())} but the padded "
                f"arrays only hold {max_length} positions"
            )

    @classmethod
    def from_queries(
        cls,
        cascade: Cascade,
        queries: Sequence[Mapping[str, np.ndarray]],
        pad_to: Optional[int] = None,
    ) -> "RaggedBatch":
        """Pad per-query input dicts into one masked batch.

        Rows pad to the longest query (or ``pad_to``, when given) by
        replicating each row's last valid element, keeping padded
        positions in-distribution for downstream expression evaluation.
        """
        if not queries:
            raise SpecError("need at least one query to batch")
        return cls.from_normalized(
            cascade,
            [normalize_inputs(cascade, dict(q)) for q in queries],
            pad_to=pad_to,
        )

    @classmethod
    def from_normalized(
        cls,
        cascade: Cascade,
        per_query: Sequence[Mapping[str, np.ndarray]],
        pad_to: Optional[int] = None,
    ) -> "RaggedBatch":
        """Pad already-normalized ``(L, w)`` query dicts (internal fast path)."""
        lengths = np.array(
            [next(iter(q.values())).shape[0] for q in per_query], dtype=np.int64
        )
        max_length = int(lengths.max())
        if pad_to is not None:
            if pad_to < max_length:
                raise SpecError(
                    f"pad_to={pad_to} is shorter than the longest query "
                    f"({max_length})"
                )
            max_length = int(pad_to)
        arrays: Dict[str, np.ndarray] = {}
        for name in cascade.element_vars:
            width = per_query[0][name].shape[1]
            for i, q in enumerate(per_query):
                if q[name].shape[1] != width:
                    raise SpecError(
                        f"cannot batch queries: input {name!r} has width "
                        f"{q[name].shape[1]} in query {i}, expected {width}"
                    )
            out = np.empty((len(per_query), max_length, width))
            for i, q in enumerate(per_query):
                rows = q[name]
                out[i, : rows.shape[0]] = rows
                out[i, rows.shape[0] :] = rows[-1]  # replicate the last element
            arrays[name] = out
        return cls(arrays=arrays, lengths=lengths)

    # -- geometry -----------------------------------------------------------
    @property
    def batch(self) -> int:
        return self.lengths.shape[0]

    @property
    def max_length(self) -> int:
        return next(iter(self.arrays.values())).shape[1]

    @property
    def mask(self) -> np.ndarray:
        """(B, L_max) validity mask: True where a position is real data."""
        if self._mask is None:
            self._mask = self.lengths[:, None] > np.arange(self.max_length)[None, :]
        return self._mask

    @property
    def is_uniform(self) -> bool:
        """True when every row fills the padded width (no masking needed)."""
        return bool(np.all(self.lengths == self.max_length))

    # -- padding accounting -------------------------------------------------
    @property
    def useful_positions(self) -> int:
        """Positions holding real data: the sum of the true lengths."""
        return int(self.lengths.sum())

    @property
    def padded_positions(self) -> int:
        """Positions the padded execution actually touches: B * L_max."""
        return self.batch * self.max_length

    @property
    def padding_efficiency(self) -> float:
        """useful / padded — 1.0 means no wasted work."""
        return self.useful_positions / self.padded_positions

    # -- row access ---------------------------------------------------------
    def row_inputs(self, i: int) -> Dict[str, np.ndarray]:
        """Query ``i`` trimmed back to its true length (copies)."""
        length = int(self.lengths[i])
        return {name: arr[i, :length].copy() for name, arr in self.arrays.items()}

    def take(self, indices: Sequence[int]) -> "RaggedBatch":
        """Row subset re-padded to the subset's own longest length.

        The length-aware sharded backend uses this to trim per-device
        padding: a shard of short rows does not pay for the batch-global
        ``L_max``.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1 or idx.shape[0] == 0:
            raise SpecError("take() needs at least one row index")
        lengths = self.lengths[idx]
        new_max = int(lengths.max())
        arrays = {
            name: arr[idx, :new_max] for name, arr in self.arrays.items()
        }
        return RaggedBatch(arrays=arrays, lengths=lengths)

    def __repr__(self) -> str:
        return (
            f"RaggedBatch(batch={self.batch}, max_length={self.max_length}, "
            f"efficiency={self.padding_efficiency:.2f})"
        )


def stack_queries(
    cascade: Cascade,
    queries: Sequence[Mapping[str, np.ndarray]],
    allow_ragged: bool = False,
) -> Union[Dict[str, np.ndarray], RaggedBatch]:
    """Stack per-query input dicts into one batched input.

    Equal-length queries stack into a dense dict of ``(B, L, w)`` arrays
    (the strict path, and the default).  Ragged queries are rejected up
    front with the offending input name and lengths — unless the caller
    opts in with ``allow_ragged=True``, in which case they pad into a
    masked :class:`RaggedBatch` that every ragged-capable backend can
    execute as one vectorized micro-batch.
    """
    if not queries:
        raise SpecError("need at least one query to batch")
    per_query = [normalize_inputs(cascade, dict(q)) for q in queries]
    lengths = [next(iter(q.values())).shape[0] for q in per_query]
    if len(set(lengths)) > 1:
        if allow_ragged:
            return RaggedBatch.from_normalized(cascade, per_query)
        # every element var shares its query's length, so the first var
        # names the mismatch precisely enough to act on
        name = cascade.element_vars[0]
        raise SpecError(
            f"cannot batch ragged queries: input {name!r} has lengths "
            f"{lengths}, which differ across queries (pad or group queries "
            "by length, or pass allow_ragged=True to pad into a masked "
            "RaggedBatch)"
        )
    return {
        name: np.stack([q[name] for q in per_query], axis=0)
        for name in cascade.element_vars
    }


def split_batch(
    cascade: Cascade,
    batch_inputs: Mapping[str, np.ndarray],
    parts: int,
) -> List[Tuple[range, Dict[str, np.ndarray]]]:
    """Split a batched input dict into contiguous shards along axis 0.

    Returns ``[(rows, shard_inputs), ...]`` with at most ``parts``
    shards (fewer when the batch is smaller than ``parts``); shards are
    views, not copies.  The sharded execution backend splits work across
    simulated devices with this helper, and because every batched
    backend reduces strictly along the length axis, executing shards
    independently and concatenating is bitwise identical to executing
    the whole batch at once.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    arrays, batch, _length = normalize_batch_inputs(cascade, batch_inputs)
    shards: List[Tuple[range, Dict[str, np.ndarray]]] = []
    for rows in segment_bounds(batch, min(parts, batch)):
        shards.append(
            (
                rows,
                {
                    name: arrays[name][rows.start : rows.stop]
                    for name in cascade.element_vars
                },
            )
        )
    return shards


def merge_batch_outputs(
    outputs: Sequence[Mapping[str, BatchValue]]
) -> Dict[str, BatchValue]:
    """Concatenate per-shard batched outputs back along the batch axis.

    The inverse of :func:`split_batch` on the output side: plain arrays
    concatenate on axis 0, top-k carriers concatenate their
    ``values``/``indices`` pairs.
    """
    if not outputs:
        raise ValueError("need at least one shard output to merge")
    if len(outputs) == 1:
        return dict(outputs[0])
    merged: Dict[str, BatchValue] = {}
    for name in outputs[0]:
        first = outputs[0][name]
        if isinstance(first, BatchTopKState):
            merged[name] = BatchTopKState(
                values=np.concatenate([o[name].values for o in outputs], axis=0),
                indices=np.concatenate([o[name].indices for o in outputs], axis=0),
            )
        else:
            merged[name] = np.concatenate(
                [np.asarray(o[name]) for o in outputs], axis=0
            )
    return merged


def _batched_elementwise(expr, values, batch: int, length: int, element_vars) -> np.ndarray:
    """Normalize an evaluated mapping function to shape (B, L, w).

    Mirrors the scalar executors' broadcast rule: expressions that touch
    no element variable evaluate to a scalar, (w,), or (B, 1, w) value
    and contribute identically at every position of each query.
    """
    arr = np.asarray(values, dtype=float)
    if not (expr.free_vars() & set(element_vars)):
        if arr.ndim == 0:
            arr = arr.reshape(1, 1, 1)
        elif arr.ndim == 1:
            arr = arr[None, None, :]
        arr = np.broadcast_to(arr, (batch, length, arr.shape[-1]))
    return arr


def _slice_batch(
    cascade: Cascade, arrays: Mapping[str, np.ndarray], rows: range
) -> Dict[str, np.ndarray]:
    return {
        name: arrays[name][:, rows.start : rows.stop] for name in cascade.element_vars
    }


def _squeeze_outputs(values: Mapping[str, object]) -> Dict[str, BatchValue]:
    """Collapse internal (B, 1, w) dependency shapes to the public (B, w)."""
    out: Dict[str, BatchValue] = {}
    for name, value in values.items():
        if isinstance(value, BatchTopKState):
            out[name] = value
        else:
            out[name] = np.asarray(value)[:, 0, :]
    return out


# ---------------------------------------------------------------------------
# batched unfused chain (Eq. 1 with a leading batch axis)
# ---------------------------------------------------------------------------
def run_batched_unfused(
    cascade: Cascade, inputs: Mapping[str, np.ndarray], base_index: int = 0
) -> Dict[str, BatchValue]:
    """Batched full-pass chain; works for unfusable cascades too."""
    arrays, batch, length = normalize_batch_inputs(cascade, inputs)
    env: Dict[str, np.ndarray] = dict(arrays)
    outputs: Dict[str, BatchValue] = {}
    for red in cascade.reductions:
        values = _batched_elementwise(
            red.fn, red.fn.evaluate(env), batch, length, cascade.element_vars
        )
        if red.is_topk:
            if values.shape[2] != 1:
                raise SpecError("top-k reductions require width-1 inputs")
            outputs[red.name] = _BatchTopK(red.topk).from_batch(
                values[:, :, 0], base_index
            )
        else:
            result = np.asarray(red.op.reduce(values, 1))[:, None, :]
            outputs[red.name] = result
            env[red.name] = result
    return _squeeze_outputs(outputs)


# ---------------------------------------------------------------------------
# batched fused reduction tree (Eq. 6 + Eq. 11 with a leading batch axis)
# ---------------------------------------------------------------------------
def batched_segment_state(
    fused, inputs: Mapping[str, np.ndarray], base_index: int = 0
) -> Dict[str, State]:
    """Batched first-level partials; shapes are (B, 1, w) per reduction."""
    arrays, batch, length = normalize_batch_inputs(fused.cascade, inputs)
    element_vars = fused.cascade.element_vars
    env: Dict[str, np.ndarray] = dict(arrays)
    states: Dict[str, State] = {}
    for fr in fused:
        red = fr.reduction
        if fr.is_topk:
            values = np.asarray(red.fn.evaluate(env), dtype=float)
            if values.ndim == 3:
                if values.shape[2] != 1:
                    raise SpecError("top-k reductions require width-1 inputs")
                values = values[:, :, 0]
            states[red.name] = _BatchTopK(red.topk).from_batch(values, base_index)
            continue
        if fr.is_multi_term:
            accumulators = [
                np.sum(
                    _batched_elementwise(
                        term.g, term.eval_g(env), batch, length, element_vars
                    ),
                    axis=1,
                    keepdims=True,
                )
                for term in fr.terms
            ]
            value = np.asarray(fr.multi_term_value(accumulators, env))
            states[red.name] = MultiTermState(accumulators=accumulators, value=value)
            env[red.name] = value
            continue
        values = _batched_elementwise(
            fr.gh, fr.eval_gh(env), batch, length, element_vars
        )
        value = np.asarray(red.op.reduce(values, 1))[:, None, :]
        states[red.name] = ScalarState(value=value)
        env[red.name] = value
    return states


def batched_merge_states(
    fused, left: Mapping[str, State], right: Mapping[str, State]
) -> Dict[str, State]:
    """Merge two batched partial states (Eq. 11/15, elementwise over B)."""
    left_vals = state_values(left)
    right_vals = state_values(right)
    new_states: Dict[str, State] = {}
    new_vals: Dict[str, object] = {}
    for fr in fused:
        name = fr.reduction.name
        if fr.is_topk:
            merged = _BatchTopK(fr.reduction.topk).combine(left[name], right[name])
            new_states[name] = merged
            new_vals[name] = merged
            continue
        if fr.is_multi_term:
            accumulators = [
                la + ra
                for la, ra in zip(left[name].accumulators, right[name].accumulators)
            ]
            value = np.asarray(fr.multi_term_value(accumulators, new_vals))
            new_states[name] = MultiTermState(accumulators=accumulators, value=value)
            new_vals[name] = value
            continue
        lv, rv = left_vals[name], right_vals[name]
        if fr.needs_correction:
            lv = fr.otimes.apply_num(lv, fr.eval_ratio(left_vals, new_vals))
            rv = fr.otimes.apply_num(rv, fr.eval_ratio(right_vals, new_vals))
        value = np.asarray(fr.reduction.op.combine(lv, rv))
        new_states[name] = ScalarState(value=value)
        new_vals[name] = value
    return new_states


def run_batched_tree(
    fused,
    inputs: Mapping[str, np.ndarray],
    num_segments: int = 4,
    branching: Optional[int] = 2,
) -> Dict[str, BatchValue]:
    """Batched fused reduction tree; same tree shape as the scalar path."""
    arrays, _, length = normalize_batch_inputs(fused.cascade, inputs)
    segments = segment_bounds(length, num_segments)
    states = [
        batched_segment_state(
            fused, _slice_batch(fused.cascade, arrays, rows), rows.start
        )
        for rows in segments
    ]
    if branching is None or branching < 2:
        branching = len(states)
    while len(states) > 1:
        grouped: List[Dict[str, State]] = []
        for start in range(0, len(states), branching):
            group = states[start : start + branching]
            merged = group[0]
            for other in group[1:]:
                merged = batched_merge_states(fused, merged, other)
            grouped.append(merged)
        states = grouped
    return _squeeze_outputs(state_values(states[0]))


# ---------------------------------------------------------------------------
# masked (ragged) execution: padding contributes the monoid identity
# ---------------------------------------------------------------------------
def _masked(values: np.ndarray, mask: np.ndarray, identity: float) -> np.ndarray:
    """Replace padded positions of (B, L, w) contributions with identity."""
    return np.where(mask[:, :, None], values, identity)


def run_ragged_unfused(
    cascade: Cascade, ragged: RaggedBatch, base_index: int = 0
) -> Dict[str, BatchValue]:
    """Masked full-pass chain over a padded mixed-length batch.

    Identical to :func:`run_batched_unfused` except that every
    reduction's per-position contributions are replaced with the op's
    identity at padded positions before reducing, so each row computes
    the chain over exactly its valid prefix.  Works for unfusable
    cascades too.
    """
    arrays = ragged.arrays
    batch, length = ragged.batch, ragged.max_length
    mask = ragged.mask
    env: Dict[str, np.ndarray] = dict(arrays)
    outputs: Dict[str, BatchValue] = {}
    # padded positions may evaluate to inf/nan (e.g. a division by a
    # masked-out dependency); the np.where discards them, so silence the
    # transient warnings instead of leaking them to callers.
    with np.errstate(all="ignore"):
        for red in cascade.reductions:
            values = _batched_elementwise(
                red.fn, red.fn.evaluate(env), batch, length, cascade.element_vars
            )
            if red.is_topk:
                if values.shape[2] != 1:
                    raise SpecError("top-k reductions require width-1 inputs")
                outputs[red.name] = _BatchTopK(red.topk).from_batch(
                    values[:, :, 0], base_index, valid=mask
                )
            else:
                masked = _masked(values, mask, red.op.identity)
                result = np.asarray(red.op.reduce(masked, 1))[:, None, :]
                outputs[red.name] = result
                env[red.name] = result
    return _squeeze_outputs(outputs)


def ragged_segment_state(
    fused,
    arrays: Mapping[str, np.ndarray],
    mask: np.ndarray,
    base_index: int = 0,
) -> Tuple[Dict[str, State], np.ndarray]:
    """Masked first-level partials for one segment of a padded batch.

    Returns the per-reduction states plus the ``(B,)`` count of valid
    positions each row contributed — rows with zero valid positions in
    this segment hold exact identity partials (0 for sum accumulators,
    -inf for max, empty top-k), which merge as no-ops.
    """
    batch, length = mask.shape
    element_vars = fused.cascade.element_vars
    valid_counts = mask.sum(axis=1)
    empty = valid_counts == 0
    env: Dict[str, np.ndarray] = dict(arrays)
    states: Dict[str, State] = {}
    with np.errstate(all="ignore"):
        for fr in fused:
            red = fr.reduction
            if fr.is_topk:
                values = np.asarray(red.fn.evaluate(env), dtype=float)
                if values.ndim == 3:
                    if values.shape[2] != 1:
                        raise SpecError("top-k reductions require width-1 inputs")
                    values = values[:, :, 0]
                states[red.name] = _BatchTopK(red.topk).from_batch(
                    values, base_index, valid=mask
                )
                continue
            if fr.is_multi_term:
                accumulators = [
                    np.sum(
                        _masked(
                            _batched_elementwise(
                                term.g, term.eval_g(env), batch, length, element_vars
                            ),
                            mask,
                            0.0,
                        ),
                        axis=1,
                        keepdims=True,
                    )
                    for term in fr.terms
                ]
                value = np.asarray(fr.multi_term_value(accumulators, env))
                if np.any(empty):
                    # h_j(identity deps) may be inf/nan; the true value of
                    # an empty multi-term partial is Σ h_j * 0 = 0
                    value = np.where(empty[:, None, None], 0.0, value)
                states[red.name] = MultiTermState(
                    accumulators=accumulators, value=value
                )
                env[red.name] = value
                continue
            values = _batched_elementwise(
                fr.gh, fr.eval_gh(env), batch, length, element_vars
            )
            masked = _masked(values, mask, red.op.identity)
            value = np.asarray(red.op.reduce(masked, 1))[:, None, :]
            states[red.name] = ScalarState(value=value)
            env[red.name] = value
    return states, valid_counts


def ragged_merge_states(
    fused,
    left: Mapping[str, State],
    right: Mapping[str, State],
    left_valid: np.ndarray,
    right_valid: np.ndarray,
) -> Tuple[Dict[str, State], np.ndarray]:
    """Merge masked partial states, tracking per-row valid counts.

    One-side-empty rows need no special handling: an identity-valued
    partial is absorbed by ⊕ and its correction factor collapses to the
    ⊗-identity under the Appendix A.1 repair, so the merged row equals
    the non-empty side exactly.  Rows empty on *both* sides are the one
    case where correction ratios can go indeterminate (identity vs
    identity); their merged values are restored to the exact identity
    afterwards, which is the value an empty partial must carry.
    """
    valid = left_valid + right_valid
    with np.errstate(all="ignore"):
        merged = batched_merge_states(fused, left, right)
    both_empty = valid == 0
    if np.any(both_empty):
        sel = both_empty[:, None, None]
        for fr in fused:
            name = fr.reduction.name
            if fr.is_topk:
                continue  # -inf/-1 carriers combine exactly already
            state = merged[name]
            if fr.is_multi_term:
                state.value = np.where(sel, 0.0, state.value)
            else:
                state.value = np.where(sel, fr.reduction.op.identity, state.value)
    return merged, valid


def run_ragged_tree(
    fused,
    ragged: RaggedBatch,
    num_segments: int = 4,
    branching: Optional[int] = 2,
) -> Dict[str, BatchValue]:
    """Masked fused reduction tree over a padded mixed-length batch.

    The segment/tree shape is derived from the padded length, exactly
    like the dense path at ``L_max``; each segment's partials are masked
    per row, so segments past a short row's length hold identity
    partials that merge as no-ops.
    """
    arrays = ragged.arrays
    mask = ragged.mask
    segments = segment_bounds(ragged.max_length, num_segments)
    states: List[Tuple[Dict[str, State], np.ndarray]] = [
        ragged_segment_state(
            fused,
            _slice_batch(fused.cascade, arrays, rows),
            mask[:, rows.start : rows.stop],
            rows.start,
        )
        for rows in segments
    ]
    if branching is None or branching < 2:
        branching = len(states)
    while len(states) > 1:
        grouped: List[Tuple[Dict[str, State], np.ndarray]] = []
        for start in range(0, len(states), branching):
            group = states[start : start + branching]
            merged, valid = group[0]
            for other_state, other_valid in group[1:]:
                merged, valid = ragged_merge_states(
                    fused, merged, other_state, valid, other_valid
                )
            grouped.append((merged, valid))
        states = grouped
    return _squeeze_outputs(state_values(states[0][0]))


class BatchExecutor:
    """Vectorized many-query executor bound to one :class:`FusionPlan`.

    ``mode`` names any registered batchable execution backend
    (:mod:`repro.engine.backends`); ``"auto"`` runs the batched fused
    tree when the plan is fusable and the batched unfused chain
    otherwise.  All backends accept the same ``(B, L)`` / ``(B, L, w)``
    input convention and return ``(B, w)`` arrays (top-k outputs come
    back as :class:`BatchTopKState`).  Mode names are validated before
    any symbolic work; one-time backend costs (eager fusion compile) are
    paid at construction so ``run`` is hot.
    """

    def __init__(
        self,
        plan,
        mode: str = "auto",
        num_segments: int = 4,
        branching: Optional[int] = 2,
    ) -> None:
        backend = resolve_backend(mode, plan)
        if not backend.capabilities.batchable:
            raise ValueError(
                f"backend {backend.name!r} does not support batched execution"
            )
        backend.prepare(plan)  # e.g. compile eagerly so run() is symbolic-work-free
        self.plan = plan
        self.backend = backend
        self.mode = backend.name
        self.num_segments = num_segments
        self.branching = branching

    def run(
        self,
        batch_inputs: Union[Mapping[str, np.ndarray], RaggedBatch],
        **backend_options,
    ) -> Dict[str, BatchValue]:
        """Execute a batch: dense arrays with a leading batch axis, or a
        :class:`RaggedBatch` of padded mixed-length queries (masked
        execution on every backend that declares the ``ragged``
        capability)."""
        # Re-resolve by name so register_backend(..., replace=True)
        # applies to executors cached before the replacement.
        backend = get_backend(self.mode)
        backend.check_options(backend_options)
        if isinstance(batch_inputs, RaggedBatch):
            if batch_inputs.is_uniform:
                # no masking needed; the dense path is bitwise identical
                batch_inputs = batch_inputs.arrays
            else:
                from .backends import BackendError

                if not backend.capabilities.ragged:
                    raise BackendError(
                        f"backend {backend.name!r} does not support ragged "
                        "(mixed-length) batches; pad or group queries by length"
                    )
                outputs = backend.execute_ragged(
                    self.plan,
                    batch_inputs,
                    num_segments=self.num_segments,
                    branching=self.branching,
                    **backend_options,
                )
                self.plan._record_execution(backend.name)
                return outputs
        outputs = backend.execute_batch(
            self.plan,
            batch_inputs,
            num_segments=self.num_segments,
            branching=self.branching,
            **backend_options,
        )
        self.plan._record_execution(backend.name)
        return outputs

    def run_many(
        self,
        queries: Sequence[Mapping[str, np.ndarray]],
        allow_ragged: bool = False,
        **backend_options,
    ) -> Dict[str, BatchValue]:
        """Stack per-query input dicts, then execute them as one batch.

        With ``allow_ragged=True``, mixed-length queries pad into one
        masked :class:`RaggedBatch` instead of raising.
        """
        return self.run(
            stack_queries(self.plan.cascade, queries, allow_ragged=allow_ragged),
            **backend_options,
        )


class StreamSession:
    """Stateful incremental execution for one streaming client.

    Each ``feed`` folds a chunk into the running partial state via the
    single merge primitive (Eq. 15/16) and returns the outputs as of all
    data seen so far.  State size is O(1) in the stream length.
    """

    def __init__(self, plan) -> None:
        self.plan = plan
        self._fused = plan.fused  # raises NotFusableError for unfusable plans
        self._state: Optional[Dict[str, State]] = None
        self._position = 0

    @property
    def position(self) -> int:
        """Number of positions consumed so far."""
        return self._position

    def feed(self, chunk_inputs: Mapping[str, np.ndarray]) -> Dict[str, object]:
        """Fold one chunk into the session; returns the current outputs."""
        arrays = normalize_inputs(self.plan.cascade, dict(chunk_inputs))
        length = next(iter(arrays.values())).shape[0]
        chunk = compute_segment_state(self._fused, arrays, self._position)
        if self._state is None:
            self._state = chunk
        else:
            self._state = merge_states(self._fused, self._state, chunk)
        self._position += length
        # streaming is the incremental backend's stateful serving path;
        # each folded chunk counts as one incremental execution.
        self.plan._record_execution("incremental")
        return self.values()

    def values(self) -> Dict[str, object]:
        """Outputs over everything fed so far."""
        if self._state is None:
            raise RuntimeError("no data fed to this stream session yet")
        return state_values(self._state)

    def reset(self) -> None:
        """Forget all state; the session can be reused for a new stream."""
        self._state = None
        self._position = 0
