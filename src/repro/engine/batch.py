"""Batched and streaming execution — the execute-many half of the engine.

:class:`BatchExecutor` evaluates many *independent* queries against one
compiled :class:`~repro.engine.plan.FusionPlan` in a single vectorized
pass: every element array gains a leading batch axis, reductions run
along the length axis (``axis=1``), and the per-reduction dependency
values keep a broadcastable ``(B, 1, w)`` shape.  The math is exactly
the per-query fused reduction tree (Eq. 6 + Eq. 11) — only the NumPy
shapes change — so batched results agree with a per-query loop to
floating-point noise while amortizing all Python-side dispatch.

:class:`StreamSession` is the stateful counterpart for streaming
clients: it wraps the incremental form (Eq. 15/16) behind a ``feed``
API, holding O(1) state between chunks of one logical query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.executor import (
    MultiTermState,
    ScalarState,
    State,
    compute_segment_state,
    merge_states,
    segment_bounds,
    state_values,
)
from ..core.ops import TopKState
from ..core.spec import Cascade, SpecError, normalize_inputs
from .backends import get_backend, resolve_backend

BatchValue = Union[np.ndarray, "BatchTopKState"]


@dataclass
class BatchTopKState:
    """Top-k carrier for a whole batch: ``values``/``indices`` are (B, k)."""

    values: np.ndarray
    indices: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.values.shape[0]

    def row(self, i: int) -> TopKState:
        """Per-query view, comparable with the scalar executors' output."""
        return TopKState(values=self.values[i].copy(), indices=self.indices[i].copy())


class _BatchTopK:
    """The TopK monoid vectorized over a leading batch axis."""

    def __init__(self, k: int) -> None:
        self.k = k

    def from_batch(self, values: np.ndarray, base_index: int = 0) -> BatchTopKState:
        values = np.asarray(values, dtype=float)
        batch, length = values.shape
        k = min(self.k, length)
        order = np.argsort(values, axis=1, kind="stable")[:, ::-1][:, :k]
        out_values = np.full((batch, self.k), -np.inf)
        out_indices = np.full((batch, self.k), -1, dtype=np.int64)
        out_values[:, :k] = np.take_along_axis(values, order, axis=1)
        out_indices[:, :k] = order + base_index
        return BatchTopKState(values=out_values, indices=out_indices)

    def combine(self, a: BatchTopKState, b: BatchTopKState) -> BatchTopKState:
        values = np.concatenate([a.values, b.values], axis=1)
        indices = np.concatenate([a.indices, b.indices], axis=1)
        order = np.argsort(values, axis=1, kind="stable")[:, ::-1][:, : self.k]
        return BatchTopKState(
            values=np.take_along_axis(values, order, axis=1),
            indices=np.take_along_axis(indices, order, axis=1),
        )


def normalize_batch_inputs(
    cascade: Cascade, inputs: Mapping[str, np.ndarray]
) -> Tuple[Dict[str, np.ndarray], int, int]:
    """Validate batched element arrays; promote (B, L) to (B, L, 1).

    Returns the normalized arrays plus the shared batch size B and
    per-query length L.
    """
    missing = set(cascade.element_vars) - set(inputs)
    if missing:
        raise SpecError(f"missing element inputs {sorted(missing)}")
    normalized: Dict[str, np.ndarray] = {}
    batch = length = None
    for name in cascade.element_vars:
        arr = np.asarray(inputs[name], dtype=float)
        if arr.ndim == 2:
            arr = arr[:, :, None]
        if arr.ndim != 3:
            raise SpecError(
                f"batched input {name!r} must be (B, L) or (B, L, w), got {arr.ndim}-D"
            )
        if batch is None:
            batch, length = arr.shape[0], arr.shape[1]
        elif arr.shape[0] != batch or arr.shape[1] != length:
            raise SpecError(
                f"batched input {name!r} has shape {arr.shape[:2]}, "
                f"expected ({batch}, {length})"
            )
        normalized[name] = arr
    if not batch or not length:
        raise SpecError("batched cascade inputs must be non-empty")
    return normalized, batch, length


def stack_queries(
    cascade: Cascade, queries: Sequence[Mapping[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Stack per-query input dicts into one batched input dict.

    Every query must share one length: the batch path vectorizes over a
    dense leading axis, so ragged queries are rejected up front with the
    offending lengths instead of a shape error from deep inside
    ``np.stack``.
    """
    if not queries:
        raise SpecError("need at least one query to batch")
    per_query = [normalize_inputs(cascade, dict(q)) for q in queries]
    lengths = [next(iter(q.values())).shape[0] for q in per_query]
    if len(set(lengths)) > 1:
        raise SpecError(
            f"cannot batch ragged queries: lengths {lengths} differ "
            "(pad or group queries by length before batching)"
        )
    return {
        name: np.stack([q[name] for q in per_query], axis=0)
        for name in cascade.element_vars
    }


def split_batch(
    cascade: Cascade,
    batch_inputs: Mapping[str, np.ndarray],
    parts: int,
) -> List[Tuple[range, Dict[str, np.ndarray]]]:
    """Split a batched input dict into contiguous shards along axis 0.

    Returns ``[(rows, shard_inputs), ...]`` with at most ``parts``
    shards (fewer when the batch is smaller than ``parts``); shards are
    views, not copies.  The sharded execution backend splits work across
    simulated devices with this helper, and because every batched
    backend reduces strictly along the length axis, executing shards
    independently and concatenating is bitwise identical to executing
    the whole batch at once.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    arrays, batch, _length = normalize_batch_inputs(cascade, batch_inputs)
    shards: List[Tuple[range, Dict[str, np.ndarray]]] = []
    for rows in segment_bounds(batch, min(parts, batch)):
        shards.append(
            (
                rows,
                {
                    name: arrays[name][rows.start : rows.stop]
                    for name in cascade.element_vars
                },
            )
        )
    return shards


def merge_batch_outputs(
    outputs: Sequence[Mapping[str, BatchValue]]
) -> Dict[str, BatchValue]:
    """Concatenate per-shard batched outputs back along the batch axis.

    The inverse of :func:`split_batch` on the output side: plain arrays
    concatenate on axis 0, top-k carriers concatenate their
    ``values``/``indices`` pairs.
    """
    if not outputs:
        raise ValueError("need at least one shard output to merge")
    if len(outputs) == 1:
        return dict(outputs[0])
    merged: Dict[str, BatchValue] = {}
    for name in outputs[0]:
        first = outputs[0][name]
        if isinstance(first, BatchTopKState):
            merged[name] = BatchTopKState(
                values=np.concatenate([o[name].values for o in outputs], axis=0),
                indices=np.concatenate([o[name].indices for o in outputs], axis=0),
            )
        else:
            merged[name] = np.concatenate(
                [np.asarray(o[name]) for o in outputs], axis=0
            )
    return merged


def _batched_elementwise(expr, values, batch: int, length: int, element_vars) -> np.ndarray:
    """Normalize an evaluated mapping function to shape (B, L, w).

    Mirrors the scalar executors' broadcast rule: expressions that touch
    no element variable evaluate to a scalar, (w,), or (B, 1, w) value
    and contribute identically at every position of each query.
    """
    arr = np.asarray(values, dtype=float)
    if not (expr.free_vars() & set(element_vars)):
        if arr.ndim == 0:
            arr = arr.reshape(1, 1, 1)
        elif arr.ndim == 1:
            arr = arr[None, None, :]
        arr = np.broadcast_to(arr, (batch, length, arr.shape[-1]))
    return arr


def _slice_batch(
    cascade: Cascade, arrays: Mapping[str, np.ndarray], rows: range
) -> Dict[str, np.ndarray]:
    return {
        name: arrays[name][:, rows.start : rows.stop] for name in cascade.element_vars
    }


def _squeeze_outputs(values: Mapping[str, object]) -> Dict[str, BatchValue]:
    """Collapse internal (B, 1, w) dependency shapes to the public (B, w)."""
    out: Dict[str, BatchValue] = {}
    for name, value in values.items():
        if isinstance(value, BatchTopKState):
            out[name] = value
        else:
            out[name] = np.asarray(value)[:, 0, :]
    return out


# ---------------------------------------------------------------------------
# batched unfused chain (Eq. 1 with a leading batch axis)
# ---------------------------------------------------------------------------
def run_batched_unfused(
    cascade: Cascade, inputs: Mapping[str, np.ndarray], base_index: int = 0
) -> Dict[str, BatchValue]:
    """Batched full-pass chain; works for unfusable cascades too."""
    arrays, batch, length = normalize_batch_inputs(cascade, inputs)
    env: Dict[str, np.ndarray] = dict(arrays)
    outputs: Dict[str, BatchValue] = {}
    for red in cascade.reductions:
        values = _batched_elementwise(
            red.fn, red.fn.evaluate(env), batch, length, cascade.element_vars
        )
        if red.is_topk:
            if values.shape[2] != 1:
                raise SpecError("top-k reductions require width-1 inputs")
            outputs[red.name] = _BatchTopK(red.topk).from_batch(
                values[:, :, 0], base_index
            )
        else:
            result = np.asarray(red.op.reduce(values, 1))[:, None, :]
            outputs[red.name] = result
            env[red.name] = result
    return _squeeze_outputs(outputs)


# ---------------------------------------------------------------------------
# batched fused reduction tree (Eq. 6 + Eq. 11 with a leading batch axis)
# ---------------------------------------------------------------------------
def batched_segment_state(
    fused, inputs: Mapping[str, np.ndarray], base_index: int = 0
) -> Dict[str, State]:
    """Batched first-level partials; shapes are (B, 1, w) per reduction."""
    arrays, batch, length = normalize_batch_inputs(fused.cascade, inputs)
    element_vars = fused.cascade.element_vars
    env: Dict[str, np.ndarray] = dict(arrays)
    states: Dict[str, State] = {}
    for fr in fused:
        red = fr.reduction
        if fr.is_topk:
            values = np.asarray(red.fn.evaluate(env), dtype=float)
            if values.ndim == 3:
                if values.shape[2] != 1:
                    raise SpecError("top-k reductions require width-1 inputs")
                values = values[:, :, 0]
            states[red.name] = _BatchTopK(red.topk).from_batch(values, base_index)
            continue
        if fr.is_multi_term:
            accumulators = [
                np.sum(
                    _batched_elementwise(
                        term.g, term.eval_g(env), batch, length, element_vars
                    ),
                    axis=1,
                    keepdims=True,
                )
                for term in fr.terms
            ]
            value = np.asarray(fr.multi_term_value(accumulators, env))
            states[red.name] = MultiTermState(accumulators=accumulators, value=value)
            env[red.name] = value
            continue
        values = _batched_elementwise(
            fr.gh, fr.eval_gh(env), batch, length, element_vars
        )
        value = np.asarray(red.op.reduce(values, 1))[:, None, :]
        states[red.name] = ScalarState(value=value)
        env[red.name] = value
    return states


def batched_merge_states(
    fused, left: Mapping[str, State], right: Mapping[str, State]
) -> Dict[str, State]:
    """Merge two batched partial states (Eq. 11/15, elementwise over B)."""
    left_vals = state_values(left)
    right_vals = state_values(right)
    new_states: Dict[str, State] = {}
    new_vals: Dict[str, object] = {}
    for fr in fused:
        name = fr.reduction.name
        if fr.is_topk:
            merged = _BatchTopK(fr.reduction.topk).combine(left[name], right[name])
            new_states[name] = merged
            new_vals[name] = merged
            continue
        if fr.is_multi_term:
            accumulators = [
                la + ra
                for la, ra in zip(left[name].accumulators, right[name].accumulators)
            ]
            value = np.asarray(fr.multi_term_value(accumulators, new_vals))
            new_states[name] = MultiTermState(accumulators=accumulators, value=value)
            new_vals[name] = value
            continue
        lv, rv = left_vals[name], right_vals[name]
        if fr.needs_correction:
            lv = fr.otimes.apply_num(lv, fr.eval_ratio(left_vals, new_vals))
            rv = fr.otimes.apply_num(rv, fr.eval_ratio(right_vals, new_vals))
        value = np.asarray(fr.reduction.op.combine(lv, rv))
        new_states[name] = ScalarState(value=value)
        new_vals[name] = value
    return new_states


def run_batched_tree(
    fused,
    inputs: Mapping[str, np.ndarray],
    num_segments: int = 4,
    branching: Optional[int] = 2,
) -> Dict[str, BatchValue]:
    """Batched fused reduction tree; same tree shape as the scalar path."""
    arrays, _, length = normalize_batch_inputs(fused.cascade, inputs)
    segments = segment_bounds(length, num_segments)
    states = [
        batched_segment_state(
            fused, _slice_batch(fused.cascade, arrays, rows), rows.start
        )
        for rows in segments
    ]
    if branching is None or branching < 2:
        branching = len(states)
    while len(states) > 1:
        grouped: List[Dict[str, State]] = []
        for start in range(0, len(states), branching):
            group = states[start : start + branching]
            merged = group[0]
            for other in group[1:]:
                merged = batched_merge_states(fused, merged, other)
            grouped.append(merged)
        states = grouped
    return _squeeze_outputs(state_values(states[0]))


class BatchExecutor:
    """Vectorized many-query executor bound to one :class:`FusionPlan`.

    ``mode`` names any registered batchable execution backend
    (:mod:`repro.engine.backends`); ``"auto"`` runs the batched fused
    tree when the plan is fusable and the batched unfused chain
    otherwise.  All backends accept the same ``(B, L)`` / ``(B, L, w)``
    input convention and return ``(B, w)`` arrays (top-k outputs come
    back as :class:`BatchTopKState`).  Mode names are validated before
    any symbolic work; one-time backend costs (eager fusion compile) are
    paid at construction so ``run`` is hot.
    """

    def __init__(
        self,
        plan,
        mode: str = "auto",
        num_segments: int = 4,
        branching: Optional[int] = 2,
    ) -> None:
        backend = resolve_backend(mode, plan)
        if not backend.capabilities.batchable:
            raise ValueError(
                f"backend {backend.name!r} does not support batched execution"
            )
        backend.prepare(plan)  # e.g. compile eagerly so run() is symbolic-work-free
        self.plan = plan
        self.backend = backend
        self.mode = backend.name
        self.num_segments = num_segments
        self.branching = branching

    def run(
        self, batch_inputs: Mapping[str, np.ndarray], **backend_options
    ) -> Dict[str, BatchValue]:
        """Execute a batch given as arrays with a leading batch axis."""
        # Re-resolve by name so register_backend(..., replace=True)
        # applies to executors cached before the replacement.
        backend = get_backend(self.mode)
        backend.check_options(backend_options)
        outputs = backend.execute_batch(
            self.plan,
            batch_inputs,
            num_segments=self.num_segments,
            branching=self.branching,
            **backend_options,
        )
        self.plan._record_execution(backend.name)
        return outputs

    def run_many(
        self, queries: Sequence[Mapping[str, np.ndarray]], **backend_options
    ) -> Dict[str, BatchValue]:
        """Stack per-query input dicts, then execute them as one batch."""
        return self.run(stack_queries(self.plan.cascade, queries), **backend_options)


class StreamSession:
    """Stateful incremental execution for one streaming client.

    Each ``feed`` folds a chunk into the running partial state via the
    single merge primitive (Eq. 15/16) and returns the outputs as of all
    data seen so far.  State size is O(1) in the stream length.
    """

    def __init__(self, plan) -> None:
        self.plan = plan
        self._fused = plan.fused  # raises NotFusableError for unfusable plans
        self._state: Optional[Dict[str, State]] = None
        self._position = 0

    @property
    def position(self) -> int:
        """Number of positions consumed so far."""
        return self._position

    def feed(self, chunk_inputs: Mapping[str, np.ndarray]) -> Dict[str, object]:
        """Fold one chunk into the session; returns the current outputs."""
        arrays = normalize_inputs(self.plan.cascade, dict(chunk_inputs))
        length = next(iter(arrays.values())).shape[0]
        chunk = compute_segment_state(self._fused, arrays, self._position)
        if self._state is None:
            self._state = chunk
        else:
            self._state = merge_states(self._fused, self._state, chunk)
        self._position += length
        # streaming is the incremental backend's stateful serving path;
        # each folded chunk counts as one incremental execution.
        self.plan._record_execution("incremental")
        return self.values()

    def values(self) -> Dict[str, object]:
        """Outputs over everything fed so far."""
        if self._state is None:
            raise RuntimeError("no data fed to this stream session yet")
        return state_values(self._state)

    def reset(self) -> None:
        """Forget all state; the session can be reused for a new stream."""
        self._state = None
        self._position = 0
