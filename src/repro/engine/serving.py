"""Async serving runtime: SLA-aware request scheduler + admission control.

This module turns the engine from a caller-batched library into a
request-scheduled runtime.  Clients ``submit()`` independent single
queries and receive :class:`concurrent.futures.Future` objects; a
scheduler groups compatible requests — same plan, same resolved
backend, same execution parameters, and input lengths within one
*length bucket* (``ServingConfig.bucket``) — into micro-batches under a
configurable window / max-batch policy (continuous batching) and
dispatches them through the existing ``FusionPlan.execute_batch`` path,
so a burst of 64 one-query clients gets the same vectorized execution a
single caller handing over a pre-formed batch would.  Mixed-length
requests within a bucket pad into a masked
:class:`~repro.engine.batch.RaggedBatch` — padded positions contribute
each reduction's monoid identity — so realistic ragged traffic no
longer fragments into per-length micro-batches; the padding overhead is
tracked in :class:`ServingStats`.

Scheduling is SLA-aware and multi-tenant:

* **priority classes** — every request carries one of
  :data:`PRIORITY_CLASSES` (``"interactive"`` > ``"standard"`` >
  ``"batch"``); the scheduler keeps one queue per class and always
  serves the highest non-empty class first, so a background tenant
  saturating the queue cannot sit in front of interactive traffic.
* **per-tenant quotas** — ``submit(tenant=...)`` attributes each
  request; with ``ServingConfig.tenant_quota`` set, a tenant whose
  queued requests already meet the quota is shed with
  :class:`TenantQuotaError` while other tenants keep being admitted.
* **deadline/cost-aware batch formation** — ``submit(deadline_s=...)``
  bounds how long the batching window may hold a request: the window
  closes once any member's deadline, minus the modeled dispatch cost
  (the gpusim estimate attached to the plan by simulated backends),
  would otherwise pass.  A near-deadline request is never held open
  just for batch fill.
* **policy-driven shedding** — when the bounded queue is full, the
  scheduler sheds the *worst* queued request (lowest priority class
  first, longest length bucket within the class, newest arrival last)
  rather than blindly rejecting the newest arrival; an incoming request
  only displaces a victim strictly worse than itself.  A displaced
  victim's future fails with :class:`QueueFullError`.

Admission control is a bounded queue with load shedding: once
``max_queue_depth`` requests are waiting and no worse victim exists,
further submissions fail fast with the typed :class:`QueueFullError`
(callers distinguish "shed, try later" from execution errors, which
surface through the future).

Two operating modes share one dispatch path:

* **inline** (default) — no scheduler thread; ``submit`` executes the
  request synchronously on the calling thread and returns a completed
  future.  ``Engine.run`` / ``Engine.run_batch`` are thin shims over an
  inline scheduler, so library calls pay no thread hops.
* **started** — ``start()`` (or ``Engine.serving()`` / the context
  manager) launches the scheduler thread; ``submit`` enqueues and
  returns immediately, and micro-batching happens across client
  threads.

``drain()`` blocks until the queue is empty **and** no request is in
flight (pulled into a forming or executing micro-batch), so after it
returns no work remains anywhere in the runtime.

Per-request latency, queue depth, shed counts and batch-size occupancy
accumulate in :class:`ServingStats` — globally and per priority class /
tenant — surfaced alongside the plan-cache counters through
``EngineStats.describe()``.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.spec import normalize_inputs
from ..obs import tracing
from ..obs.clock import monotonic_s
from ..obs.metrics import MetricsRegistry
from .backends import get_backend, resolve_backend
from .batch import BatchTopKState, RaggedBatch

#: Sentinel distinguishing "argument not given" from an explicit None
#: (``branching=None`` legitimately means "merge all segments flat").
_UNSET = object()

#: Priority classes, best first.  ``submit(priority=...)`` accepts a
#: class name or its index; the scheduler serves the highest non-empty
#: class first and sheds from the lowest class first.
PRIORITY_CLASSES = ("interactive", "standard", "batch")


def priority_index(priority) -> int:
    """Normalize a priority spec (class name or index) to a class index."""
    if isinstance(priority, str):
        if priority in PRIORITY_CLASSES:
            return PRIORITY_CLASSES.index(priority)
        raise ValueError(
            f"unknown priority {priority!r}; expected one of "
            f"{PRIORITY_CLASSES} or an index in [0, {len(PRIORITY_CLASSES)})"
        )
    try:
        index = int(priority)
    except (TypeError, ValueError):
        raise ValueError(
            f"priority must be a class name or index, got {priority!r}"
        ) from None
    if not 0 <= index < len(PRIORITY_CLASSES):
        raise ValueError(
            f"priority index {index} out of range; classes are "
            f"{PRIORITY_CLASSES}"
        )
    return index


class AdmissionError(RuntimeError):
    """A request was rejected before execution (shed or runtime closed)."""


class QueueFullError(AdmissionError):
    """Load shed: the scheduler's bounded queue is at ``max_queue_depth``."""


class TenantQuotaError(AdmissionError):
    """Load shed: the tenant's queued requests reached ``tenant_quota``."""


class ServingClosedError(AdmissionError):
    """The serving runtime has been closed; no new requests are accepted."""


class DeadlineExceededError(RuntimeError):
    """A request's ``deadline_s`` expired before a result arrived.

    Raised client-side by the router's deadline watchdog: a future whose
    worker wedged mid-request fails with this instead of hanging forever.
    Not an :class:`AdmissionError` — the request *was* admitted; it
    simply did not finish in time.
    """


@dataclass(frozen=True)
class ServingConfig:
    """Scheduling policy knobs.

    * ``max_queue_depth`` — admission bound; submissions beyond it shed
      (the policy sheds the lowest-priority / longest-bucket queued
      victim first, and the incoming request only when nothing queued is
      strictly worse);
    * ``max_batch`` — micro-batches never exceed this many requests;
    * ``batch_window_s`` — after the first request of a group is picked
      up, the scheduler waits up to this long for more compatible
      requests before dispatching (the window closes early when
      ``max_batch`` is reached or a member's deadline minus the modeled
      dispatch cost approaches, so full or urgent batches pay no wait);
    * ``bucket`` — the length-bucket policy deciding which input lengths
      may share a micro-batch (mixed lengths within a bucket pad into a
      masked :class:`~repro.engine.batch.RaggedBatch`):

      - ``"pow2"`` (default) — lengths bucket to the next power of two,
        so padding never more than doubles a row;
      - ``"exact"`` — only identical lengths group (the strict PR 4
        behavior: realistic mixed traffic fragments into tiny batches);
      - ``(e1, e2, ...)`` — explicit ascending *integral* bucket edges;
        a length maps to the smallest edge >= it, lengths beyond the
        last edge bucket exactly.  Non-integral edges are rejected
        (they used to be silently truncated).
    * ``default_tenant`` / ``default_priority`` — attribution applied to
      requests submitted without explicit ``tenant=`` / ``priority=``;
    * ``tenant_quota`` — optional per-tenant bound on *queued* requests;
      a tenant at its quota sheds with :class:`TenantQuotaError` while
      other tenants keep being admitted (None disables quotas).
    """

    max_queue_depth: int = 256
    max_batch: int = 64
    batch_window_s: float = 0.002
    bucket: object = "pow2"
    default_tenant: str = "default"
    default_priority: str = "standard"
    tenant_quota: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if not isinstance(self.bucket, str):
            try:
                raw = tuple(self.bucket)
            except TypeError:
                raise ValueError(
                    f'bucket must be "pow2", "exact", or a sequence of edges; '
                    f"got {self.bucket!r}"
                ) from None
            edges = []
            for edge in raw:
                try:
                    integral = float(edge) == int(edge)
                except (TypeError, ValueError, OverflowError):
                    raise ValueError(
                        "bucket edges must be integral lengths; got "
                        f"{edge!r} in {self.bucket!r}"
                    ) from None
                if not integral:
                    raise ValueError(
                        "bucket edges must be integral lengths (a float "
                        f"edge like {edge!r} would be silently truncated); "
                        f"got {self.bucket!r}"
                    )
                edges.append(int(edge))
            edges = tuple(edges)
            if not edges or any(e < 1 for e in edges) or any(
                a >= b for a, b in zip(edges, edges[1:])
            ):
                raise ValueError(
                    "bucket edges must be a non-empty strictly increasing "
                    f"sequence of positive lengths; got {self.bucket!r}"
                )
            object.__setattr__(self, "bucket", edges)
        elif self.bucket not in ("pow2", "exact"):
            raise ValueError(
                f'bucket must be "pow2", "exact", or a sequence of edges; '
                f"got {self.bucket!r}"
            )
        priority_index(self.default_priority)  # validates, raises ValueError
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1 (or None to disable)")

    def bucket_for(self, length: int) -> int:
        """The padded length requests of ``length`` group under."""
        if self.bucket == "exact":
            return length
        if self.bucket == "pow2":
            return 1 << max(0, int(length) - 1).bit_length()
        for edge in self.bucket:
            if length <= edge:
                return edge
        return length  # beyond the last edge: group exactly


class ServingStats:
    """Serving counters, registry-backed (see :mod:`repro.obs.metrics`).

    Every quantity lives as an instrument in a
    :class:`~repro.obs.metrics.MetricsRegistry` (the owning engine's, so
    one ``render_prometheus()`` covers all layers; a private one when
    standalone), while the legacy attribute surface — ``submitted``,
    ``queue_depth``, ``snapshot()`` & co. — reads through to those
    instruments unchanged.

    Monotonic: ``submitted`` / ``completed`` / ``failed`` / ``shed`` /
    ``evicted`` / ``cancelled`` / ``deadline_misses`` / ``batches`` /
    ``batched_requests``, plus the ragged padding account
    (``useful_positions`` / ``padded_positions``), which is additionally
    attributed per length bucket (``padding_by_bucket()``) so the
    bottleneck profiler can name the bucket wasting the most work.
    Submissions, completions, sheds and latencies are also attributed
    per priority class (``by_class()`` — label ``priority``) and per
    tenant (``by_tenant()``), which is what lets a benchmark verify
    that shedding drains the lowest class first while the interactive
    class's p99 stays flat.  Gauges: ``queue_depth`` (live),
    ``peak_queue_depth``, ``max_batch_size``.  Latencies (submit →
    future resolution) stream into log-bucketed histograms — the whole
    run's distribution, not a bounded reservoir that under-represents
    the tail on long runs — and ``snapshot()`` reports p50/p99/p999
    over them.

    The accounting invariant (asserted by the serving test suite): after
    ``drain()``, ``submitted == completed + failed + cancelled +
    evicted``; submit-time sheds are *never* counted as submitted.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._submitted = reg.counter(
            "serving_requests_submitted_total", "Requests admitted"
        )
        self._completed = reg.counter(
            "serving_requests_completed_total", "Requests resolved successfully"
        )
        self._failed = reg.counter(
            "serving_requests_failed_total", "Requests resolved with an error"
        )
        self._shed = reg.counter(
            "serving_requests_shed_total", "Requests rejected by admission control"
        )
        self._evicted = reg.counter(
            "serving_requests_evicted_total",
            "Admitted requests shed later by the queue-full policy",
        )
        self._cancelled = reg.counter(
            "serving_requests_cancelled_total",
            "Requests cancelled by their client before resolution",
        )
        self._deadline_misses = reg.counter(
            "serving_deadline_misses_total",
            "Requests resolved after their declared deadline",
        )
        self._batches = reg.counter(
            "serving_batches_total", "Micro-batches dispatched"
        )
        self._batched_requests = reg.counter(
            "serving_batched_requests_total", "Requests served via micro-batches"
        )
        self._ragged_batches = reg.counter(
            "serving_ragged_batches_total", "Micro-batches that needed padding"
        )
        self._useful = reg.counter(
            "serving_useful_positions_total", "Real positions executed"
        )
        self._padded = reg.counter(
            "serving_padded_positions_total", "Total positions executed (incl. padding)"
        )
        self._queue_depth = reg.gauge(
            "serving_queue_depth", "Requests currently queued"
        )
        self._peak_queue_depth = reg.gauge(
            "serving_peak_queue_depth", "Deepest queue observed"
        )
        self._max_batch_size = reg.gauge(
            "serving_max_batch_size", "Largest micro-batch dispatched"
        )
        self._latency = reg.histogram(
            "serving_request_latency_seconds",
            "Submit-to-resolution latency (streaming log-bucketed histogram)",
        )
        self._bucket_useful = reg.counter(
            "serving_bucket_useful_positions_total",
            "Real positions executed, per length bucket",
            labelnames=("bucket",),
        )
        self._bucket_padded = reg.counter(
            "serving_bucket_padded_positions_total",
            "Executed positions incl. padding, per length bucket",
            labelnames=("bucket",),
        )
        self._class_submitted = reg.counter(
            "serving_class_requests_submitted_total",
            "Requests admitted, per priority class",
            labelnames=("priority",),
        )
        self._class_completed = reg.counter(
            "serving_class_requests_completed_total",
            "Requests resolved successfully, per priority class",
            labelnames=("priority",),
        )
        self._class_shed = reg.counter(
            "serving_class_requests_shed_total",
            "Requests shed by admission control, per priority class",
            labelnames=("priority",),
        )
        self._class_latency = reg.histogram(
            "serving_class_request_latency_seconds",
            "Submit-to-resolution latency, per priority class",
            labelnames=("priority",),
        )
        self._tenant_submitted = reg.counter(
            "serving_tenant_requests_submitted_total",
            "Requests admitted, per tenant",
            labelnames=("tenant",),
        )
        self._tenant_completed = reg.counter(
            "serving_tenant_requests_completed_total",
            "Requests resolved successfully, per tenant",
            labelnames=("tenant",),
        )
        self._tenant_shed = reg.counter(
            "serving_tenant_requests_shed_total",
            "Requests shed by admission control, per tenant",
            labelnames=("tenant",),
        )
        self._labels_lock = threading.Lock()
        self._buckets_seen: set = set()
        self._classes_seen: set = set()
        self._tenants_seen: set = set()

    # -- legacy attribute surface ------------------------------------------
    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def completed(self) -> int:
        return self._completed.value

    @property
    def failed(self) -> int:
        return self._failed.value

    @property
    def shed(self) -> int:
        return self._shed.value

    @property
    def evicted(self) -> int:
        return self._evicted.value

    @property
    def cancelled(self) -> int:
        return self._cancelled.value

    @property
    def deadline_misses(self) -> int:
        return self._deadline_misses.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def batched_requests(self) -> int:
        return self._batched_requests.value

    @property
    def ragged_batches(self) -> int:
        return self._ragged_batches.value

    @property
    def useful_positions(self) -> int:
        return self._useful.value

    @property
    def padded_positions(self) -> int:
        return self._padded.value

    @property
    def queue_depth(self) -> int:
        return self._queue_depth.value

    @property
    def peak_queue_depth(self) -> int:
        return self._peak_queue_depth.value

    @property
    def max_batch_size(self) -> int:
        return self._max_batch_size.value

    # -- recording ----------------------------------------------------------
    def _note_class(self, counter, priority: Optional[str], amount: int = 1) -> None:
        if priority is None:
            return
        counter.labels(priority=priority).inc(amount)
        with self._labels_lock:
            self._classes_seen.add(priority)

    def _note_tenant(self, counter, tenant: Optional[str], amount: int = 1) -> None:
        if tenant is None:
            return
        counter.labels(tenant=tenant).inc(amount)
        with self._labels_lock:
            self._tenants_seen.add(tenant)

    def note_submitted(
        self,
        queue_depth: int,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> None:
        self._submitted.inc()
        self._queue_depth.set(queue_depth)
        self._peak_queue_depth.set_max(queue_depth)
        self._note_class(self._class_submitted, priority)
        self._note_tenant(self._tenant_submitted, tenant)

    def note_shed(
        self,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        evicted: bool = False,
    ) -> None:
        self._shed.inc()
        if evicted:
            self._evicted.inc()
        self._note_class(self._class_shed, priority)
        self._note_tenant(self._tenant_shed, tenant)

    def note_cancelled(
        self, tenant: Optional[str] = None, priority: Optional[str] = None
    ) -> None:
        self._cancelled.inc()

    def note_queue_depth(self, queue_depth: int) -> None:
        self._queue_depth.set(queue_depth)

    def note_batch(
        self, size: int, useful: int = 0, padded: int = 0,
        bucket: Optional[int] = None,
    ) -> None:
        self._batches.inc()
        self._batched_requests.inc(size)
        self._max_batch_size.set_max(size)
        self._useful.inc(useful)
        self._padded.inc(padded)
        if padded > useful:
            self._ragged_batches.inc()
        if bucket is not None:
            self._bucket_useful.labels(bucket=bucket).inc(useful)
            self._bucket_padded.labels(bucket=bucket).inc(padded)
            with self._labels_lock:
                self._buckets_seen.add(bucket)

    def note_done(
        self,
        latency_s: float,
        ok: bool,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        deadline_missed: bool = False,
    ) -> None:
        if ok:
            self._completed.inc()
            self._note_class(self._class_completed, priority)
            self._note_tenant(self._tenant_completed, tenant)
        else:
            self._failed.inc()
        if deadline_missed:
            self._deadline_misses.inc()
        self._latency.observe(latency_s)
        if priority is not None:
            self._class_latency.labels(priority=priority).observe(latency_s)
            with self._labels_lock:
                self._classes_seen.add(priority)

    # -- reading ------------------------------------------------------------
    def latency_percentiles(
        self, qs: Sequence[float] = (50.0, 99.0, 99.9)
    ) -> Dict[str, float]:
        values = self._latency.percentiles(qs)
        return {f"p{q:g}_latency_s": float(v) for q, v in zip(qs, values)}

    def padding_by_bucket(self) -> Dict[int, Dict[str, int]]:
        """Useful vs executed positions per length bucket."""
        with self._labels_lock:
            buckets = sorted(self._buckets_seen)
        return {
            bucket: {
                "useful": self._bucket_useful.labels(bucket=bucket).value,
                "padded": self._bucket_padded.labels(bucket=bucket).value,
            }
            for bucket in buckets
        }

    def _classes(self) -> List[str]:
        with self._labels_lock:
            seen = set(self._classes_seen)
        ordered = [name for name in PRIORITY_CLASSES if name in seen]
        ordered.extend(sorted(seen - set(PRIORITY_CLASSES)))
        return ordered

    def by_class(self) -> Dict[str, Dict[str, object]]:
        """Submitted/completed/shed counts and latency tail per class."""
        out: Dict[str, Dict[str, object]] = {}
        for name in self._classes():
            latency = self._class_latency.labels(priority=name)
            p50, p99 = latency.percentiles((50.0, 99.0))
            out[name] = {
                "submitted": self._class_submitted.labels(priority=name).value,
                "completed": self._class_completed.labels(priority=name).value,
                "shed": self._class_shed.labels(priority=name).value,
                "p50_latency_s": float(p50),
                "p99_latency_s": float(p99),
            }
        return out

    def shed_by_class(self) -> Dict[str, int]:
        """Shed counts per priority class (the shed-policy audit trail)."""
        return {
            name: self._class_shed.labels(priority=name).value
            for name in self._classes()
        }

    def by_tenant(self) -> Dict[str, Dict[str, int]]:
        """Submitted/completed/shed counts per tenant."""
        with self._labels_lock:
            tenants = sorted(self._tenants_seen)
        return {
            tenant: {
                "submitted": self._tenant_submitted.labels(tenant=tenant).value,
                "completed": self._tenant_completed.labels(tenant=tenant).value,
                "shed": self._tenant_shed.labels(tenant=tenant).value,
            }
            for tenant in tenants
        }

    def snapshot(self) -> Dict[str, object]:
        batches = self.batches
        batched_requests = self.batched_requests
        useful = self.useful_positions
        padded = self.padded_positions
        snap: Dict[str, object] = {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "evicted": self.evicted,
            "cancelled": self.cancelled,
            "deadline_misses": self.deadline_misses,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "batches": batches,
            "batched_requests": batched_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": batched_requests / batches if batches else 0.0,
            "ragged_batches": self.ragged_batches,
            "useful_positions": useful,
            "padded_positions": padded,
            "padding_efficiency": useful / padded if padded else 1.0,
            "by_class": self.by_class(),
            "by_tenant": self.by_tenant(),
        }
        snap.update(self.latency_percentiles())
        return snap


class _Request:
    """One scheduled unit of work (a single query or a pre-formed batch)."""

    __slots__ = (
        "plan", "inputs", "mode", "params", "options", "future",
        "submitted_at", "key", "kind", "trace", "queue_span",
        "tenant", "priority", "deadline_at", "bucket",
    )

    def __init__(self, plan, inputs, mode, params, options, key, kind,
                 trace=None, tenant="default", priority=1,
                 deadline_at=None, bucket=0) -> None:
        self.plan = plan
        self.inputs = inputs
        self.mode = mode
        self.params = params
        self.options = options
        self.key = key
        self.kind = kind  # "query" (groupable) or "batch" (pre-formed)
        self.future: Future = Future()
        self.submitted_at = monotonic_s()
        self.trace = trace  # root "request" span handle (None when disabled)
        self.queue_span = None  # open "queue" span while waiting
        self.tenant = tenant
        self.priority = priority  # class index into PRIORITY_CLASSES
        self.deadline_at = deadline_at  # absolute monotonic deadline or None
        self.bucket = bucket  # length bucket, for the shed policy

    @property
    def trace_id(self) -> Optional[int]:
        return self.trace.span_id if self.trace is not None else None

    @property
    def priority_name(self) -> str:
        return PRIORITY_CLASSES[self.priority]


class ServingEngine:
    """Request scheduler + admission control in front of one engine.

    ``submit(cascade, inputs) -> Future`` is the client API.  With the
    scheduler started, requests queue per priority class and compatible
    ones dispatch as micro-batches; inline (not started), each request
    executes synchronously on the caller's thread through the same
    dispatch code, which is what makes ``Engine.run`` a thin shim over
    the scheduler.

    Use as a context manager for scoped lifetimes::

        with engine.serving() as srv:
            futures = [
                srv.submit(cascade, q, tenant="web", priority="interactive")
                for q in queries
            ]
            results = [f.result() for f in futures]
    """

    def __init__(
        self,
        engine=None,
        config: Optional[ServingConfig] = None,
        stats: Optional[ServingStats] = None,
    ) -> None:
        if engine is None:
            from . import Engine  # deferred: Engine is defined atop this module

            engine = Engine()
        self.engine = engine
        self.config = config or ServingConfig()
        # ``stats`` lets an owner carry counters across runtime restarts
        # (Engine replaces a closed scheduler with a fresh inline one).
        # Fresh stats register on the owning engine's metrics registry so
        # one Prometheus export covers cache + serving + padding.
        self.stats = stats or ServingStats(
            registry=getattr(engine, "metrics", None)
        )
        self._queues: Tuple[Deque[_Request], ...] = tuple(
            deque() for _ in PRIORITY_CLASSES
        )
        self._tenant_queued: Dict[str, int] = {}
        self._inflight = 0  # requests pulled off the queues, not yet resolved
        self._cond = threading.Condition()
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._thread is not None

    def start(self) -> "ServingEngine":
        """Launch the scheduler thread (idempotent)."""
        with self._cond:
            if self._closed:
                raise ServingClosedError("serving runtime is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-scheduler", daemon=True
                )
                self._thread.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then join the thread."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None and wait:
            thread.join()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- client API ---------------------------------------------------------
    def submit(
        self,
        cascade,
        inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        *,
        tenant: Optional[str] = None,
        priority: object = None,
        deadline_s: Optional[float] = None,
        num_segments: Optional[int] = None,
        branching: object = _UNSET,
        chunk_len: Optional[int] = None,
        base_index: int = 0,
        **backend_options,
    ) -> Future:
        """Schedule one query; returns a future resolving to its outputs.

        ``tenant`` attributes the request for quota enforcement and
        per-tenant stats; ``priority`` is a class name from
        :data:`PRIORITY_CLASSES` (or an index); ``deadline_s`` is a
        relative latency budget — the batching window will not hold the
        request beyond it (minus the modeled dispatch cost), and a
        completion past the deadline counts as a deadline miss.

        Admission and validation happen on the calling thread: a full
        queue raises :class:`QueueFullError`, a tenant over quota raises
        :class:`TenantQuotaError`, a closed runtime raises
        :class:`ServingClosedError`, unknown modes/options/priorities
        raise the usual ``ValueError`` / ``TypeError`` — all *before* a
        future is handed out.  Execution errors surface through the
        future.
        """
        root = tracing.start_span("request", "request")
        try:
            with tracing.span("admission", parent_id=root.span_id if root else None):
                cls = priority_index(
                    self.config.default_priority if priority is None else priority
                )
                tenant_name = (
                    self.config.default_tenant if tenant is None else str(tenant)
                )
                if deadline_s is not None and deadline_s <= 0:
                    raise ValueError("deadline_s must be > 0")
                plan = self.engine.plan_for(cascade)
                backend = resolve_backend(mode, plan)
                backend.check_options(backend_options)
                arrays = normalize_inputs(plan.cascade, dict(inputs))
        except BaseException as err:
            tracing.end_span(root, ok=False, error=repr(err))
            raise
        params = {
            "num_segments": num_segments,
            "branching": branching,
            "chunk_len": chunk_len,
            "base_index": base_index,
        }
        length = next(iter(arrays.values())).shape[0]
        # A request can join a micro-batch when the batch path accepts
        # its parameters: batchable backend, default chunking/indexing.
        groupable = (
            backend.capabilities.batchable
            and chunk_len is None
            and base_index == 0
        )
        if groupable:
            # Ragged-capable backends group by length *bucket*: requests
            # of different lengths within a bucket pad into one masked
            # micro-batch.  Backends without masked execution keep the
            # strict exact-geometry key.
            if getattr(backend.capabilities, "ragged", False):
                length_key = self.config.bucket_for(length)
            else:
                length_key = length
            widths = tuple(
                arrays[name].shape[1] for name in plan.cascade.element_vars
            )
            branch_key = "flat" if branching is None else branching
            key: Optional[Tuple] = (
                id(plan), backend.name, length_key, widths,
                num_segments, branch_key if branching is not _UNSET else "default",
                tuple(sorted(backend_options.items())),
            )
        else:
            key = None  # never groups
            length_key = length
        if root is not None:
            root.attrs.update(
                backend=backend.name,
                cascade=plan.cascade.name,
                length=int(length),
                bucket=length_key,
                tenant=tenant_name,
                priority=PRIORITY_CLASSES[cls],
            )
        request = _Request(
            plan, arrays, backend.name, params, backend_options, key, "query",
            trace=root, tenant=tenant_name, priority=cls, bucket=int(length_key),
        )
        if deadline_s is not None:
            request.deadline_at = request.submitted_at + float(deadline_s)
        return self._admit(request)

    def submit_batch(
        self,
        cascade,
        batch_inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        *,
        tenant: Optional[str] = None,
        priority: object = None,
        deadline_s: Optional[float] = None,
        num_segments: Optional[int] = None,
        branching: object = _UNSET,
        **backend_options,
    ) -> Future:
        """Schedule a pre-formed batch (leading batch axis) as one unit."""
        root = tracing.start_span("request", "request_batch")
        try:
            with tracing.span("admission", parent_id=root.span_id if root else None):
                cls = priority_index(
                    self.config.default_priority if priority is None else priority
                )
                tenant_name = (
                    self.config.default_tenant if tenant is None else str(tenant)
                )
                if deadline_s is not None and deadline_s <= 0:
                    raise ValueError("deadline_s must be > 0")
                plan = self.engine.plan_for(cascade)
                backend = resolve_backend(mode, plan)
                backend.check_options(backend_options)
        except BaseException as err:
            tracing.end_span(root, ok=False, error=repr(err))
            raise
        if root is not None:
            root.attrs.update(
                backend=backend.name, cascade=plan.cascade.name,
                tenant=tenant_name, priority=PRIORITY_CLASSES[cls],
            )
        params = {"num_segments": num_segments, "branching": branching}
        request = _Request(
            plan, batch_inputs, backend.name, params, backend_options, None,
            "batch", trace=root, tenant=tenant_name, priority=cls,
        )
        if deadline_s is not None:
            request.deadline_at = request.submitted_at + float(deadline_s)
        return self._admit(request)

    def run(self, cascade, inputs, mode: Optional[str] = "auto", **kwargs):
        """Synchronous single query: ``submit(...).result()``."""
        return self.submit(cascade, inputs, mode, **kwargs).result()

    def run_batch(self, cascade, batch_inputs, mode: Optional[str] = "auto", **kwargs):
        """Synchronous pre-formed batch: ``submit_batch(...).result()``."""
        return self.submit_batch(cascade, batch_inputs, mode, **kwargs).result()

    def load(self) -> int:
        """Requests queued plus in flight — the scheduler's depth signal.

        This is what a worker process reports in health pings and what
        the router's queue-depth balancing compares across workers
        (:mod:`repro.engine.router`): it covers work pulled off the
        queues into a forming micro-batch, not just the queued tail.
        """
        with self._cond:
            return self._queued_count() + self._inflight

    def drain(self) -> None:
        """Block until no request is queued *or* in flight.

        A request pulled off the queues into a forming micro-batch (or
        held open in the batching window) is in flight, not queued;
        ``drain()`` waits for both counts to reach zero, so when it
        returns every admitted request's future has been resolved.
        """
        with self._cond:
            self._cond.wait_for(
                lambda: not self._queued_count() and self._inflight == 0
            )

    # -- admission ----------------------------------------------------------
    def _queued_count(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def _take_locked(self, request: _Request) -> None:
        """Account a request leaving the queues for a group (lock held)."""
        self._inflight += 1
        count = self._tenant_queued.get(request.tenant, 0) - 1
        if count > 0:
            self._tenant_queued[request.tenant] = count
        else:
            self._tenant_queued.pop(request.tenant, None)

    def _evict_locked(self, incoming: _Request) -> Optional[_Request]:
        """Pick and remove the queued request the shed policy drops first.

        Policy (lock held): lowest priority class first; within a class
        the longest length bucket; within a bucket the newest arrival.
        Only a victim *strictly* worse than ``incoming`` — lower class,
        or same class with a longer bucket — is displaced; otherwise the
        incoming request itself is the worst and None is returned (the
        caller sheds it).
        """
        incoming_rank = (incoming.priority, incoming.bucket)
        for cls in range(len(PRIORITY_CLASSES) - 1, incoming.priority - 1, -1):
            queue = self._queues[cls]
            victim = None
            victim_rank = None
            for request in queue:
                rank = (cls, request.bucket)
                if rank <= incoming_rank:
                    continue  # not strictly worse than the incoming request
                full_rank = rank + (request.submitted_at,)
                if victim is None or full_rank > victim_rank:
                    victim, victim_rank = request, full_rank
            if victim is not None:
                queue.remove(victim)
                count = self._tenant_queued.get(victim.tenant, 0) - 1
                if count > 0:
                    self._tenant_queued[victim.tenant] = count
                else:
                    self._tenant_queued.pop(victim.tenant, None)
                return victim
        return None

    def _shed_admitted(self, victim: _Request) -> None:
        """Fail an evicted (already-admitted) request's future.

        Runs *without* the scheduler lock held: resolving the future
        invokes client done-callbacks, which must not run under
        ``_cond``.
        """
        self._end_queue_span(victim)
        if victim.future.set_running_or_notify_cancel():
            self.stats.note_shed(
                tenant=victim.tenant, priority=victim.priority_name, evicted=True
            )
            tracing.end_span(victim.trace, ok=False, error="shed")
            victim.trace = None
            victim.future.set_exception(
                QueueFullError(
                    "request shed from the full queue by admission policy "
                    f"(priority {victim.priority_name!r}, "
                    f"length bucket {victim.bucket})"
                )
            )
        else:
            self.stats.note_cancelled(
                tenant=victim.tenant, priority=victim.priority_name
            )
            tracing.end_span(victim.trace, ok=False, error="cancelled")
            victim.trace = None

    def _admit(self, request: _Request) -> Future:
        # The queue span opens before the scheduler lock: contending for
        # admission *is* queueing from the client's point of view, and
        # it keeps span bookkeeping off the lock's critical section.  On
        # the inline/shed/closed paths the handle is simply dropped
        # unrecorded (handles only record when ended).
        queue_span = tracing.start_span(
            "queue", parent_id=request.trace_id, backend=request.mode,
            tenant=request.tenant,
        )
        victim: Optional[_Request] = None
        with self._cond:
            if self._closed:
                tracing.end_span(request.trace, ok=False, error="closed")
                raise ServingClosedError("serving runtime is closed")
            if self._thread is None:
                inline = True
            else:
                depth = self._queued_count()
                quota = self.config.tenant_quota
                if (
                    quota is not None
                    and self._tenant_queued.get(request.tenant, 0) >= quota
                ):
                    self.stats.note_shed(
                        tenant=request.tenant, priority=request.priority_name
                    )
                    self.stats.note_queue_depth(depth)
                    tracing.end_span(request.trace, ok=False, error="quota")
                    raise TenantQuotaError(
                        f"tenant {request.tenant!r} already has {quota} "
                        f"queued request(s) (tenant_quota={quota}); "
                        "request shed"
                    )
                if depth >= self.config.max_queue_depth:
                    victim = self._evict_locked(request)
                    if victim is None:
                        # The incoming request is the worst candidate:
                        # shed it, and keep the queue-depth gauge honest
                        # (shedding used to leave it stale).
                        self.stats.note_shed(
                            tenant=request.tenant, priority=request.priority_name
                        )
                        self.stats.note_queue_depth(depth)
                        tracing.end_span(request.trace, ok=False, error="shed")
                        raise QueueFullError(
                            f"queue depth {depth} at max_queue_depth="
                            f"{self.config.max_queue_depth} and no "
                            "lower-priority victim queued; request shed"
                        )
                inline = False
                if queue_span is not None:
                    queue_span.attrs["depth"] = self._queued_count()
                request.queue_span = queue_span
                self._queues[request.priority].append(request)
                self._tenant_queued[request.tenant] = (
                    self._tenant_queued.get(request.tenant, 0) + 1
                )
                self.stats.note_submitted(
                    self._queued_count(),
                    tenant=request.tenant,
                    priority=request.priority_name,
                )
                self._cond.notify_all()
        if victim is not None:
            self._shed_admitted(victim)
        if inline:
            self.stats.note_submitted(
                0, tenant=request.tenant, priority=request.priority_name
            )
            with self._cond:
                self._inflight += 1
            try:
                self._dispatch([request])
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()
        return request.future

    # -- scheduling loop ----------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queued_count() and not self._closed:
                    self._cond.wait()
                if not self._queued_count() and self._closed:
                    return
                head = None
                for queue in self._queues:  # highest priority class first
                    if queue:
                        head = queue.popleft()
                        break
                self._take_locked(head)
                group = [head]
                if head.key is not None:
                    self._collect_locked(group)
                self.stats.note_queue_depth(self._queued_count())
                self._cond.notify_all()  # wake drain() waiters
            # span recording stays off the lock's critical section
            for request in group:
                self._end_queue_span(request)
            try:
                if head.key is not None and len(group) < self.config.max_batch:
                    with tracing.span(
                        "batch_form", "window", parent_id=head.trace_id
                    ) as window_span:
                        self._await_window(group)
                        window_span.set(batch=len(group))
                self._dispatch(group)
            finally:
                # the group (including window joiners) leaves flight only
                # after every member's future has been resolved — this is
                # what makes drain() cover in-flight work
                with self._cond:
                    self._inflight -= len(group)
                    self._cond.notify_all()

    @staticmethod
    def _end_queue_span(request: _Request) -> None:
        if request.queue_span is not None:
            tracing.end_span(request.queue_span)
            request.queue_span = None

    def _collect_locked(self, group: List[_Request]) -> None:
        """Pull queued requests compatible with ``group[0]`` (lock held).

        Scans every priority class (highest first) — a lower-priority
        request with the same micro-batch key rides along for free
        rather than waiting behind the batch it could have joined.
        """
        key, limit = group[0].key, self.config.max_batch
        if len(group) >= limit:
            return
        for queue in self._queues:
            if len(group) >= limit and not queue:
                continue
            kept: Deque[_Request] = deque()
            while queue:
                request = queue.popleft()
                if request.key == key and len(group) < limit:
                    # queue span ended by the caller, unlocked
                    group.append(request)
                    self._take_locked(request)
                else:
                    kept.append(request)
            queue.extend(kept)

    def _dispatch_cost_s(self, request: _Request) -> float:
        """Modeled one-dispatch cost for deadline-aware window bounding.

        Simulated backends (``tile_ir``, ``sharded``) attach gpusim
        latency estimates to plans as they execute; the freshest
        estimate bounds how long the batching window may keep a
        deadline-carrying request waiting.  Backends without estimates
        cost 0 — the window then closes exactly at the deadline.
        """
        try:
            backend = get_backend(request.mode)
            estimate = backend.estimate_for(
                request.plan, request.options.get("gpu", "A10")
            )
        except Exception:
            return 0.0
        if estimate is None:
            return 0.0
        return float(estimate.latency_seconds)

    def _await_window(self, group: List[_Request]) -> None:
        """Hold the group open up to ``batch_window_s`` for stragglers.

        The window closes early when the batch fills, when the runtime
        closes, when *incompatible* work is waiting — holding the
        single scheduler open for one group while other keys queue
        would trade their latency for this group's occupancy — or when
        any member's deadline, minus the modeled dispatch cost, is
        about to pass (a near-deadline request is never held for batch
        fill).
        """
        window_deadline = monotonic_s() + self.config.batch_window_s
        cost_s = self._dispatch_cost_s(group[0])

        def group_deadline() -> float:
            deadline = window_deadline
            for request in group:
                if request.deadline_at is not None:
                    deadline = min(deadline, request.deadline_at - cost_s)
            return deadline

        while len(group) < self.config.max_batch:
            remaining = group_deadline() - monotonic_s()
            if remaining <= 0:
                return
            with self._cond:
                if not self._cond.wait_for(
                    lambda: self._queued_count() or self._closed,
                    timeout=remaining,
                ):
                    return
                if self._closed and not self._queued_count():
                    return
                before = len(group)
                self._collect_locked(group)
                stalled = len(group) == before and bool(self._queued_count())
                self.stats.note_queue_depth(self._queued_count())
                self._cond.notify_all()
            for request in group[before:]:
                self._end_queue_span(request)
            if stalled:
                return

    # -- dispatch (shared by inline and scheduled paths) --------------------
    def _dispatch(self, group: List[_Request]) -> None:
        head = group[0]
        root_id = head.trace_id
        if len(group) > 1 and head.trace is not None:
            # follower requests point at the head span that carried the
            # micro-batch, so a trace viewer can jump between them.
            for request in group[1:]:
                if request.trace is not None:
                    request.trace.attrs.setdefault("batched_with", root_id)
        try:
            if head.kind == "batch":
                with tracing.span(
                    "execute", parent_id=root_id, backend=head.mode, batch="preformed"
                ):
                    outputs = self._execute_batch_request(head)
                with tracing.span("merge", parent_id=root_id, batch=1):
                    self._resolve(group, [outputs])
            elif len(group) == 1:
                with tracing.span(
                    "execute", parent_id=root_id, backend=head.mode, batch=1
                ):
                    outputs = self._execute_single(head)
                with tracing.span("merge", parent_id=root_id, batch=1):
                    self._resolve(group, [outputs])
            else:
                with tracing.span(
                    "batch_form", "stack", parent_id=root_id, batch=len(group)
                ):
                    batch_inputs, useful, padded = self._stack_group(group)
                self.stats.note_batch(
                    len(group), useful, padded,
                    bucket=head.key[2] if head.key is not None else None,
                )
                with tracing.span(
                    "execute", parent_id=root_id, backend=head.mode,
                    batch=len(group), useful=useful, padded=padded,
                ):
                    merged = head.plan.execute_batch(
                        batch_inputs, mode=head.mode, **self._batch_kwargs(head)
                    )
                with tracing.span("merge", parent_id=root_id, batch=len(group)):
                    self._resolve(group, self._scatter(head.plan, merged, len(group)))
        except BaseException as err:
            for request in group:
                # A client may have cancelled a still-queued future;
                # transitioning it again would raise InvalidStateError
                # and kill the scheduler thread.
                if request.future.set_running_or_notify_cancel():
                    self.stats.note_done(
                        monotonic_s() - request.submitted_at, False,
                        tenant=request.tenant, priority=request.priority_name,
                        deadline_missed=self._deadline_missed(request),
                    )
                    tracing.end_span(request.trace, ok=False, error=repr(err))
                    request.trace = None
                    request.future.set_exception(err)
                else:
                    self.stats.note_cancelled(
                        tenant=request.tenant, priority=request.priority_name
                    )
                    tracing.end_span(request.trace, ok=False, error="cancelled")
                    request.trace = None

    def _execute_single(self, request: _Request):
        params = request.params
        kwargs = dict(request.options)
        if params["num_segments"] is not None:
            kwargs["num_segments"] = params["num_segments"]
        if params["branching"] is not _UNSET:  # None means "merge flat"
            kwargs["branching"] = params["branching"]
        if params["chunk_len"] is not None:
            kwargs["chunk_len"] = params["chunk_len"]
        kwargs["base_index"] = params["base_index"]
        return request.plan.execute(request.inputs, request.mode, **kwargs)

    def _batch_kwargs(self, request: _Request) -> Dict[str, object]:
        kwargs: Dict[str, object] = dict(request.options)
        if request.params.get("num_segments") is not None:
            kwargs["num_segments"] = request.params["num_segments"]
        branching = request.params.get("branching", _UNSET)
        if branching is not _UNSET:
            kwargs["branching"] = branching
        return kwargs

    def _execute_batch_request(self, request: _Request):
        return request.plan.execute_batch(
            request.inputs, mode=request.mode, **self._batch_kwargs(request)
        )

    def _stack_group(self, group: List[_Request]):
        """Form the micro-batch input for a compatible request group.

        Equal-length groups stack densely (the strict PR 4 path, zero
        padding); mixed-length groups — possible when the bucket policy
        is not ``"exact"`` — pad into a masked
        :class:`~repro.engine.batch.RaggedBatch`.  Returns the batch
        input plus its useful/padded position counts for the stats.
        """
        head = group[0]
        lengths = [next(iter(r.inputs.values())).shape[0] for r in group]
        if len(set(lengths)) == 1:
            stacked = {
                name: np.stack([r.inputs[name] for r in group], axis=0)
                for name in head.plan.cascade.element_vars
            }
            positions = len(group) * lengths[0]
            return stacked, positions, positions
        ragged = RaggedBatch.from_normalized(
            head.plan.cascade, [r.inputs for r in group]
        )
        return ragged, ragged.useful_positions, ragged.padded_positions

    @staticmethod
    def _scatter(plan, merged, batch: int) -> List[Dict[str, object]]:
        """Split batched outputs back into per-request output dicts."""
        rows: List[Dict[str, object]] = []
        for i in range(batch):
            out: Dict[str, object] = {}
            for name, value in merged.items():
                if isinstance(value, BatchTopKState):
                    out[name] = value.row(i)
                else:
                    out[name] = np.asarray(value)[i]
            rows.append(out)
        return rows

    @staticmethod
    def _deadline_missed(request: _Request) -> bool:
        return (
            request.deadline_at is not None
            and monotonic_s() > request.deadline_at
        )

    def _resolve(self, group: List[_Request], outputs: List) -> None:
        for request, out in zip(group, outputs):
            # Skip futures the client cancelled while they were queued
            # (their share of the batch was computed, but nobody waits);
            # every cancelled request is counted exactly once.
            if request.future.set_running_or_notify_cancel():
                self.stats.note_done(
                    monotonic_s() - request.submitted_at, True,
                    tenant=request.tenant, priority=request.priority_name,
                    deadline_missed=self._deadline_missed(request),
                )
                tracing.end_span(request.trace, ok=True)
                request.trace = None
                request.future.set_result(out)
            else:
                self.stats.note_cancelled(
                    tenant=request.tenant, priority=request.priority_name
                )
                tracing.end_span(request.trace, ok=False, error="cancelled")
                request.trace = None

    def __repr__(self) -> str:
        state = "started" if self.started else ("closed" if self._closed else "inline")
        return (
            f"<ServingEngine {state} queue={self._queued_count()}/"
            f"{self.config.max_queue_depth} inflight={self._inflight} "
            f"max_batch={self.config.max_batch}>"
        )
