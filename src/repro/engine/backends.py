"""Pluggable execution backends for :class:`~repro.engine.plan.FusionPlan`.

The serving engine separates *what* a fused cascade computes (the frozen
ACRF artifacts in a plan) from *where/how* it runs.  An
:class:`ExecutionBackend` is one "how": it declares a name, a set of
:class:`BackendCapabilities`, and ``execute`` / ``execute_batch`` entry
points that receive the plan plus normalized execution parameters.
Backends live in a process-wide registry; ``FusionPlan.execute``,
``FusionPlan.execute_batch`` and :class:`~repro.engine.batch.BatchExecutor`
all dispatch through :func:`resolve_backend`, so registering a new
backend makes it selectable everywhere (``Engine.run(..., mode=name)``)
without touching the plan layer.

Built-in backends:

* ``unfused`` — the full-pass reduction chain (Eq. 1); the reference
  every other backend is differential-tested against.
* ``fused_tree`` — the fused reduction tree (Eq. 6 + Eq. 11).
* ``incremental`` — the streaming fold with O(1) state (Eq. 15/16).
* ``tile_ir`` — simulated-kernel execution: the compiled cascade is
  lowered through :mod:`repro.codegen.tensorize`, auto-tuned against the
  analytical GPU model (:mod:`repro.gpusim`), executed numerically by
  the :class:`~repro.ir.tile.TileInterpreter`, and annotated with the
  cost model's latency estimate.  Tile programs are compiled once per
  (plan, input geometry, GPU) and cached on the plan.
* ``sharded`` — multi-device batch execution: the batch axis splits
  into contiguous shards, each shard runs a ``shardable`` inner backend
  (default ``fused_tree``) on its own simulated device (worker thread
  with per-device counters and gpusim latency attribution), and shard
  outputs merge back bitwise identical to one whole-batch call.

Mode-name validation is centralized here (:func:`resolve_backend`) so an
unknown name raises one uniform ``ValueError`` *before* any symbolic
compilation happens.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..core.spec import normalize_inputs
from ..obs import tracing
from ..obs.clock import monotonic_s
from .bounded import BoundedCache


class BackendError(RuntimeError):
    """A backend cannot execute this plan (outside its supported class)."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, declared up front for dispatch decisions.

    * ``requires_fusion`` — needs ``plan.fused`` (i.e. the symbolic ACRF
      artifacts); backends without it serve unfusable cascades too;
    * ``batchable`` — implements ``execute_batch`` over a leading batch
      axis (vectorized or compiled-once looped);
    * ``streamable`` — its state model supports O(1) streaming sessions;
    * ``simulated`` — attaches analytical cost-model estimates to the
      plan (readable via ``FusionPlan.describe()``);
    * ``shardable`` — its batch path treats queries independently, so a
      batch may be split along the leading axis and executed on several
      devices with results concatenated back (the contract the
      ``sharded`` backend relies on: for NumPy paths the reductions run
      strictly along the length axis, making shard-and-concatenate
      bitwise identical to one whole-batch call);
    * ``ragged`` — implements ``execute_ragged`` over a padded
      mixed-length :class:`~repro.engine.batch.RaggedBatch`: reductions
      run masked, with padded positions contributing the monoid
      identity, so mixed-length requests share one vectorized batch.
    """

    requires_fusion: bool = False
    batchable: bool = False
    streamable: bool = False
    simulated: bool = False
    shardable: bool = False
    ragged: bool = False


class ExecutionBackend(ABC):
    """One way of running a compiled :class:`FusionPlan`.

    ``execute`` receives the normalized per-plan parameters
    (``num_segments``, ``branching``, ``chunk_len``, ``base_index``) plus
    any backend-specific keyword options; implementations ignore the
    parameters that do not apply to them.
    """

    #: Registry key; also the ``mode=`` string users pass.
    name: str = ""
    capabilities: BackendCapabilities = BackendCapabilities()
    #: Extra keyword options this backend accepts beyond the normalized
    #: execution parameters; anything else passed by a caller is a
    #: TypeError (so typos don't silently fall back to plan defaults).
    options: frozenset = frozenset()

    def check_options(self, options: Mapping[str, object]) -> None:
        """Reject caller-supplied options this backend does not understand."""
        unknown = set(options) - self.options
        if unknown:
            raise TypeError(
                f"backend {self.name!r} got unexpected options "
                f"{sorted(unknown)}; accepted: {sorted(self.options) or 'none'}"
            )

    def supports(self, plan) -> bool:
        """Whether this backend can run the given plan at all.

        May trigger the plan's (cached, exactly-once) symbolic
        compilation when fusability is part of the answer.
        """
        if self.capabilities.requires_fusion:
            return plan.fusable
        return True

    def prepare(self, plan) -> None:
        """Eagerly pay one-time costs so later ``execute`` calls are hot."""
        if self.capabilities.requires_fusion:
            plan.fused  # compile under the plan lock (raises if unfusable)

    @abstractmethod
    def execute(self, plan, inputs: Mapping[str, object], **params) -> Dict[str, object]:
        """Run one query through the plan; returns per-reduction outputs."""

    def execute_batch(
        self, plan, batch_inputs: Mapping[str, object], **params
    ) -> Dict[str, object]:
        """Run many independent queries given arrays with a leading batch axis."""
        raise BackendError(
            f"backend {self.name!r} does not support batched execution"
        )

    def execute_ragged(self, plan, ragged, **params) -> Dict[str, object]:
        """Run a padded mixed-length batch with masked reductions.

        ``ragged`` is a :class:`~repro.engine.batch.RaggedBatch`;
        implementations must fill every padded position's contribution
        with the reduction's monoid identity so each row's outputs equal
        a per-query run at its true length.  Implementations should also
        record their padding overhead via ``plan._record_padding``.
        """
        raise BackendError(
            f"backend {self.name!r} does not support ragged (mixed-length) "
            "batches"
        )

    def describe(self, plan) -> Optional[Dict[str, object]]:
        """Optional per-plan introspection merged into ``plan.describe()``."""
        return None

    def estimate_for(self, plan, gpu: object = "A10"):
        """Latest cost-model estimate for one GPU, if this backend keeps any.

        Simulated backends override this; the default (no estimates)
        keeps harness/benchmark code generic over custom backends.
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: "Dict[str, ExecutionBackend]" = {}
_REGISTRY_LOCK = threading.Lock()

#: Names a backend may not take: ``auto`` is the default-mode selector,
#: the rest are fixed metadata keys of ``FusionPlan.describe()`` that a
#: backend's per-plan annotations would otherwise silently clobber.
RESERVED_BACKEND_NAMES = frozenset(
    {
        "auto",
        "signature",
        "cascade",
        "reductions",
        "compiled",
        "compile_seconds",
        "executions",
        "fusable",
        "default_mode",
        "corrections",
        "padding",
    }
)


def register_backend(backend: ExecutionBackend, replace: bool = False) -> ExecutionBackend:
    """Add a backend to the process-wide registry under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend must declare a non-empty name")
    if backend.name in RESERVED_BACKEND_NAMES:
        raise ValueError(
            f"backend name {backend.name!r} is reserved "
            f"(reserved names: {sorted(RESERVED_BACKEND_NAMES)})"
        )
    with _REGISTRY_LOCK:
        if backend.name in _REGISTRY and not replace:
            raise ValueError(
                f"backend {backend.name!r} is already registered "
                "(pass replace=True to override)"
            )
        _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> ExecutionBackend:
    """Remove and return a registered backend (KeyError if absent)."""
    with _REGISTRY_LOCK:
        return _REGISTRY.pop(name)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY)


def registered_backends() -> Tuple[Tuple[str, ExecutionBackend], ...]:
    """Consistent (name, backend) snapshot of the registry.

    Use this for iteration instead of ``available_backends()`` +
    ``get_backend()`` so a concurrent unregistration cannot fail the
    lookup halfway through.
    """
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY.items())


def get_backend(name: str) -> ExecutionBackend:
    """Look up a backend by name; unknown names raise the uniform error."""
    if name == "auto":
        raise ValueError(
            '"auto" is not a registered backend; pass a plan to '
            "resolve_backend() to resolve the default mode"
        )
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown execution mode {name!r}; expected one of "
            f"{('auto',) + available_backends()}"
        )
    return backend


def resolve_backend(mode: Optional[str], plan=None) -> ExecutionBackend:
    """Shared mode-validation helper for every dispatch path.

    ``None``/``"auto"`` resolve to the plan's default backend (which may
    trigger its exactly-once symbolic compile); any other name is
    validated against the registry *before* any plan state is touched,
    so unknown modes fail fast and uniformly.
    """
    if mode is None or mode == "auto":
        if plan is None:
            raise ValueError('mode "auto" needs a plan to resolve against')
        return get_backend(plan.default_mode)
    return get_backend(mode)


# ---------------------------------------------------------------------------
# NumPy reference backends (the three legacy execution modes)
# ---------------------------------------------------------------------------
class UnfusedBackend(ExecutionBackend):
    """Full-pass chain of reductions (Eq. 1); needs no fusion artifacts."""

    name = "unfused"
    capabilities = BackendCapabilities(batchable=True, shardable=True, ragged=True)

    def execute(self, plan, inputs, *, base_index: int = 0, **_params):
        from ..core.executor import unfused_impl

        return unfused_impl(plan.cascade, inputs, base_index)

    def execute_batch(self, plan, batch_inputs, **_params):
        from .batch import run_batched_unfused

        return run_batched_unfused(plan.cascade, batch_inputs)

    def execute_ragged(self, plan, ragged, **_params):
        from .batch import run_ragged_unfused

        outputs = run_ragged_unfused(plan.cascade, ragged)
        plan._record_padding(
            self.name, ragged.useful_positions, ragged.padded_positions
        )
        return outputs


class FusedTreeBackend(ExecutionBackend):
    """Fused reduction tree (Eq. 6 + Eq. 11) over contiguous segments."""

    name = "fused_tree"
    capabilities = BackendCapabilities(
        requires_fusion=True, batchable=True, shardable=True, ragged=True
    )

    def execute(self, plan, inputs, *, num_segments=4, branching=2, **_params):
        from ..core.executor import fused_tree_impl

        return fused_tree_impl(plan.fused, inputs, num_segments, branching)

    def execute_batch(self, plan, batch_inputs, *, num_segments=4, branching=2, **_params):
        from .batch import run_batched_tree

        return run_batched_tree(plan.fused, batch_inputs, num_segments, branching)

    def execute_ragged(self, plan, ragged, *, num_segments=4, branching=2, **_params):
        from .batch import run_ragged_tree

        outputs = run_ragged_tree(plan.fused, ragged, num_segments, branching)
        plan._record_padding(
            self.name, ragged.useful_positions, ragged.padded_positions
        )
        return outputs


class IncrementalBackend(ExecutionBackend):
    """Streaming fold with O(1) state (Eq. 15/16); chunked, not batched."""

    name = "incremental"
    capabilities = BackendCapabilities(requires_fusion=True, streamable=True)

    def execute(self, plan, inputs, *, chunk_len=64, **_params):
        from ..core.executor import incremental_impl

        return incremental_impl(plan.fused, inputs, chunk_len)


# ---------------------------------------------------------------------------
# tile-IR simulated-kernel backend
# ---------------------------------------------------------------------------
#: Tuner search space for engine-shaped (single query row) tile programs.
TILE_TUNE_SPACE = dict(
    blk_rows=(16, 32, 64, 128),
    blk_len=(16, 32, 64, 128),
    threads=(128, 256),
    pipeline=(1, 2),
    segments=(1, 2, 4, 8),
)

#: Default tile-IR optimization level (see :mod:`repro.codegen.opt`):
#: 0 = no rewrites (legacy overlap-heuristic estimate), 1 = dead-code +
#: slot scheduling, 2 = full pipeline with loop unrolling, temp renaming
#: and software-pipelined loop accounting.
DEFAULT_TILE_OPT_LEVEL = 2

#: Per-row validity input of masked (ragged) tile programs: 1.0 at real
#: positions, 0.0 at padding.
TILE_MASK_VAR = "ragged_mask"

#: Finite stand-in for the ±inf identities inside masked tile programs.
#: Arithmetic select (mask * gh + ...) cannot produce literal infinities
#: without 0 * inf = nan hazards, so max/min padding clamps to ∓1e300 —
#: near the double-precision edge (so only already-degenerate valid
#: contributions beyond 1e300 would ever touch the clamp), yet finite,
#: so it is absorbed by the reduce exactly like the true identity.
_TILE_MASK_BIG = 1e300

#: Identity value a masked tile program's state holds for a fully padded
#: row/segment, per reduction operator (cf. ``_TILE_MASK_BIG``).
_TILE_MASK_IDENTITY = {
    "sum": 0.0,
    "prod": 1.0,
    "max": -_TILE_MASK_BIG,
    "min": _TILE_MASK_BIG,
}


def _masked_tile_gh(gh, op_name: str):
    """Rewrite a fresh-contribution term so padding yields the identity.

    The mask enters as an ordinary per-row element variable.  sum/max/min
    use min/max clamps rather than arithmetic select so that padded
    positions whose raw ``gh`` evaluates to ±inf (e.g. exp of a padded
    score against an empty segment's -1e30 running max) still collapse
    to the identity instead of poisoning the row with nan:

    * sum:  clamp(gh, mask * -BIG, mask * BIG)   → padding: clamp to ±0
    * max:  min(gh, mask * 2BIG - BIG)           → padding: -BIG
    * min:  max(gh, BIG - mask * 2BIG)           → padding: +BIG
    * prod: gh * mask + (1 - mask)               → padding: 1
    """
    from ..symbolic import Binary, Const, Var

    mask = Var(TILE_MASK_VAR)
    big = Const(_TILE_MASK_BIG)
    two_big = Const(2.0 * _TILE_MASK_BIG)
    if op_name == "sum":
        low = Binary("mul", mask, Const(-_TILE_MASK_BIG))
        high = Binary("mul", mask, big)
        return Binary("min", Binary("max", gh, low), high)
    if op_name == "max":
        return Binary("min", gh, Binary("sub", Binary("mul", mask, two_big), big))
    if op_name == "min":
        return Binary("max", gh, Binary("sub", big, Binary("mul", mask, two_big)))
    if op_name == "prod":
        return Binary(
            "add", Binary("mul", gh, mask), Binary("sub", Const(1.0), mask)
        )
    raise BackendError(
        f"no masked tile lowering for reduction operator {op_name!r}"
    )


@dataclass(frozen=True)
class TileEstimate:
    """Cost-model annotation for one compiled tile-program variant."""

    gpu: str
    latency_seconds: float
    blk_rows: int
    blk_len: int
    threads: int
    pipeline_depth: int
    num_segments: int
    strategy: str
    candidates_tried: int
    #: Tile-IR optimizer level this variant was compiled at; at level
    #: >= 1, ``latency_seconds`` is the schedule-aware re-cost of the
    #: optimized programs (what ``_dispatch_cost_s`` and autotune see).
    opt_level: int = 0
    #: Per-pass delta report from :func:`repro.codegen.opt.optimize_programs`
    #: (empty at level 0): latency and per-engine idle before/after each
    #: pass, plus pass-specific counters.
    opt_passes: Tuple[Dict[str, object], ...] = ()

    def snapshot(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class _TileCompilation:
    """One lowered + tuned tile-program variant, frozen for reuse.

    Holds the tensorized program(s) for the tuner's winning config (one
    kernel for Single-Segment, partial + combine for Multi-Segment), the
    layout mapping between engine input arrays and tile buffers, and the
    GPU cost-model estimate.  A variant is compiled for a fixed number
    of output ``rows``: 1 for per-query execution, B for the batched
    fast path that folds the batch axis into the row axis.
    """

    def __init__(
        self, spec, programs, estimate: TileEstimate, kernel_program=None
    ) -> None:
        self.spec = spec
        self.programs = programs
        self.estimate = estimate
        #: gpusim :class:`~repro.gpusim.kernel.Program` for this variant:
        #: the optimizer's schedule-annotated kernels at level >= 1, the
        #: tuner's legacy kernel descriptors at level 0.
        self.kernel_program = kernel_program

    def run_tiles(self, data: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Interpret the tile program(s) on tile-layout buffers → (rows, w)."""
        from ..ir.tile import TileInterpreter

        if len(self.programs) == 1:
            out = TileInterpreter(self.programs[0]).run(data)
        else:
            partial, combine = self.programs
            parts = TileInterpreter(partial).run(data)
            out = TileInterpreter(combine).run(
                {k: v for k, v in parts.items() if k.endswith("_part")}
            )
        return {
            fr.reduction.name: out[fr.reduction.name]
            for fr in self.spec.fused
        }

    def run(self, arrays: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Interpret the tile program(s) on normalized (L, w) inputs."""
        data: Dict[str, np.ndarray] = {}
        for lay in self.spec.layouts:
            arr = arrays[lay.name]
            # per-row vars are (rows=1, L) in the tile model; shared
            # (per_row=False) vars keep their (L, w) layout.
            data[lay.name] = arr[:, 0][None, :] if lay.per_row else arr
        return {name: out[0] for name, out in self.run_tiles(data).items()}

    def run_batch_rows(
        self, arrays: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Interpret a (B, L, 1) all-per-row batch as B tile rows → (B, w)."""
        data = {
            lay.name: arrays[lay.name][:, :, 0] for lay in self.spec.layouts
        }
        return self.run_tiles(data)


class TileIRBackend(ExecutionBackend):
    """Simulated-kernel execution through the codegen/ir/gpusim stack.

    The plan's compiled :class:`~repro.core.fused.FusedCascade` is
    wrapped in a :class:`~repro.codegen.lower.CodegenSpec` derived from
    the query geometry (one output row, per-position length from the
    inputs, element widths from the arrays), auto-tuned over
    :data:`TILE_TUNE_SPACE` against the analytical GPU model, tensorized
    with the winning config, and executed numerically block-by-block by
    the NumPy tile interpreter.  Compilation is cached per
    ``(length, widths, gpu)`` on the plan, so serving repeats a query
    shape without re-tuning; the tuner's latency estimate is surfaced
    via ``plan.describe()["tile_ir"]``.

    Supported class: fusable single-term scalar chains (attention /
    softmax / MLA / quant-GEMM).  Top-k carriers and multi-term
    decompositions raise :class:`BackendError`.
    """

    name = "tile_ir"
    capabilities = BackendCapabilities(
        requires_fusion=True, batchable=True, simulated=True, shardable=True,
        ragged=True,
    )
    options = frozenset({"gpu", "opt_level"})

    #: Bound on cached tile-program variants per plan: a serving loop
    #: over a growing KV length would otherwise retune + retain a
    #: compilation per distinct geometry forever.  Oldest variants are
    #: evicted first (insertion order).
    max_cached_variants = 32

    def supports(self, plan) -> bool:
        if not plan.fusable:
            return False
        try:
            self._check_supported(plan)
        except BackendError:
            return False
        return True

    def execute(
        self, plan, inputs, *, gpu: object = "A10",
        opt_level: object = None, **_params,
    ):
        arrays = normalize_inputs(plan.cascade, dict(inputs))
        return self._compilation_for(
            plan, arrays, gpu, opt_level=opt_level
        ).run(arrays)

    def execute_batch(
        self, plan, batch_inputs, *, gpu: object = "A10",
        opt_level: object = None, **_params,
    ):
        """Batched execution; vectorized when the geometry allows it.

        When every element variable is per-row (width 1), the batch axis
        folds into the tile program's ``rows`` axis (the ROADMAP's "true
        vectorized tile batch path"): one program with ``rows=B``
        executes the whole batch block-by-block instead of interpreting
        B single-row programs.  Mixed-width cascades (a shared wide
        variable such as attention's V is shared *within* one query but
        differs across queries, so it cannot fold into rows) fall back
        to compile-once, interpret-per-query.  Outputs are (B, w).
        """
        from .batch import normalize_batch_inputs

        arrays, batch, _length = normalize_batch_inputs(plan.cascade, batch_inputs)
        widths = tuple(
            arrays[name].shape[2] for name in plan.cascade.element_vars
        )
        if all(width == 1 for width in widths):
            compilation = self._compilation_for(
                plan,
                {name: arrays[name][0] for name in plan.cascade.element_vars},
                gpu,
                rows=batch,
                opt_level=opt_level,
            )
            return compilation.run_batch_rows(arrays)
        first = {name: arrays[name][0] for name in plan.cascade.element_vars}
        compilation = self._compilation_for(plan, first, gpu, opt_level=opt_level)
        rows = [
            compilation.run(
                {name: arrays[name][i] for name in plan.cascade.element_vars}
            )
            for i in range(batch)
        ]
        return {
            name: np.stack([row[name] for row in rows], axis=0)
            for name in plan.cascade.output_names
        }

    def execute_ragged(
        self, plan, ragged, *, gpu: object = "A10",
        opt_level: object = None, **_params,
    ):
        """Mixed-length batch execution with the mask folded into the tiles.

        Fast path (all element vars per-row, correction ratios mask-safe):
        one *masked* tile program with ``rows=B`` is compiled for the
        padded geometry — the validity mask becomes an extra per-row
        input buffer and every reduction's fresh-contribution term is
        rewritten so padded positions yield the monoid identity
        (:func:`_masked_tile_gh`).  One program then executes the whole
        ragged batch block-by-block, exactly extending the dense batch
        fast path.

        Cascades outside that class (a shared wide variable, or a
        correction ratio that divides by a dependency and would go 0/0 on
        a fully padded segment) fall back to grouping rows by exact
        length and running the dense batch path per group — zero padding
        waste, at the cost of one compilation per distinct length.
        """
        self._check_supported(plan)
        arrays = ragged.arrays
        element_vars = plan.cascade.element_vars
        widths = tuple(arrays[name].shape[2] for name in element_vars)
        gpu_spec = self._gpu_spec(gpu)
        level = self._opt_level(opt_level)
        if all(width == 1 for width in widths) and self._mask_safe(plan):
            key = (
                ragged.batch, ragged.max_length, widths, gpu_spec.name,
                "masked", level,
            )
            compilation = self._tile_cache(plan).get_or_create(
                key,
                lambda: self._compile(
                    plan, ragged.batch, ragged.max_length, widths, gpu_spec,
                    masked=True, opt_level=level,
                ),
            )
            data = {name: arrays[name][:, :, 0] for name in element_vars}
            data[TILE_MASK_VAR] = ragged.mask.astype(float)
            # padded positions may momentarily evaluate to ±inf before
            # the mask clamp collapses them; keep the warnings quiet.
            with np.errstate(all="ignore"):
                outputs = compilation.run_tiles(data)
            plan._record_padding(
                self.name, ragged.useful_positions, ragged.padded_positions
            )
            return outputs
        # -- per-length grouping fallback -----------------------------------
        lengths = ragged.lengths
        merged: Dict[str, np.ndarray] = {}
        for length in sorted(set(int(n) for n in lengths)):
            idx = np.nonzero(lengths == length)[0]
            group = {
                name: arrays[name][idx, :length] for name in element_vars
            }
            out = self.execute_batch(plan, group, gpu=gpu, opt_level=level)
            for name, value in out.items():
                value = np.asarray(value)
                if name not in merged:
                    merged[name] = np.empty(
                        (ragged.batch,) + value.shape[1:], dtype=value.dtype
                    )
                merged[name][idx] = value
        # grouping trims every row to its true length: no padded work
        plan._record_padding(
            self.name, ragged.useful_positions, ragged.useful_positions
        )
        return merged

    def _mask_safe(self, plan) -> bool:
        """Can this plan's correction ratios survive fully padded segments?

        A masked tile program holds the (clamped) identity in every
        state fragment of a fully padded row/segment; correction ratios
        are then evaluated at those identity values, with no Appendix
        A.1 numeric repair available inside generated code.  Probe each
        ratio there: a non-finite result (e.g. a ratio dividing by a
        sum dependency, 0/0) means the masked program cannot represent
        this cascade and the per-length fallback must serve it.
        """
        from ..core.fused import NEW_SUFFIX, PREV_SUFFIX

        ops = {fr.reduction.name: fr.reduction.op_name for fr in plan.fused}
        for fr in plan.fused:
            if not fr.needs_correction:
                continue
            env: Dict[str, float] = {}
            for dep in fr.dep_names:
                identity = _TILE_MASK_IDENTITY[ops[dep]]
                env[dep + PREV_SUFFIX] = identity
                env[dep + NEW_SUFFIX] = identity
            with np.errstate(all="ignore"):
                ratio = np.asarray(fr.h_ratio.evaluate(env), dtype=float)
            if not np.all(np.isfinite(ratio)):
                return False
        return True

    def _tile_cache(self, plan) -> BoundedCache:
        """The plan's bounded per-geometry compilation cache (lazy)."""
        with plan._state_lock:
            cache = plan.backend_state.get(self.name)
            if cache is None:
                cache = BoundedCache(self.max_cached_variants)
                plan.backend_state[self.name] = cache
        return cache

    def _state_snapshot(self, plan) -> Dict[tuple, "_TileCompilation"]:
        """Point-in-time copy of the per-plan compilation cache."""
        with plan._state_lock:
            cache = plan.backend_state.get(self.name)
        return cache.snapshot() if cache is not None else {}

    def describe(self, plan) -> Optional[Dict[str, object]]:
        state = self._state_snapshot(plan)
        if not state:
            return None
        estimates = []
        for (
            rows, length, widths, gpu_name, variant, opt_level
        ), compilation in sorted(
            state.items(), key=lambda item: (item[0][0], item[0][1], item[0][3])
        ):
            info = compilation.estimate.snapshot()
            info["rows"] = rows
            info["length"] = length
            info["widths"] = dict(zip(plan.cascade.element_vars, widths))
            info["masked"] = variant == "masked"
            estimates.append(info)
        return {"compiled_variants": len(state), "estimates": estimates}

    def estimate_for(self, plan, gpu: object = "A10") -> Optional[TileEstimate]:
        """Latest cached estimate for one GPU (None before first execute)."""
        gpu_spec = self._gpu_spec(gpu)
        state = self._state_snapshot(plan)
        for (
            _rows, _length, _widths, gpu_name, _variant, _opt_level
        ), compilation in reversed(list(state.items())):
            if gpu_name == gpu_spec.name:
                return compilation.estimate
        return None

    # -- compilation --------------------------------------------------------
    @staticmethod
    def _gpu_spec(gpu: object):
        from ..gpusim.specs import GPUSpec, gpu as gpu_by_name

        if isinstance(gpu, GPUSpec):
            return gpu
        return gpu_by_name(str(gpu))

    @staticmethod
    def _opt_level(value: object) -> int:
        """Normalize a caller-supplied ``opt_level`` option."""
        from ..codegen.opt import OPT_LEVELS

        if value is None:
            return DEFAULT_TILE_OPT_LEVEL
        try:
            level = int(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise BackendError(
                f"opt_level must be an integer in {OPT_LEVELS}, got {value!r}"
            ) from None
        if level not in OPT_LEVELS:
            raise BackendError(
                f"opt_level must be one of {OPT_LEVELS}, got {level}"
            )
        return level

    def _check_supported(self, plan) -> None:
        for fr in plan.fused:  # raises NotFusableError for unfusable plans
            if fr.is_topk or fr.is_multi_term:
                raise BackendError(
                    "the tile_ir backend lowers single-term scalar chains; "
                    f"reduction {fr.reduction.name!r} is "
                    f"{'top-k' if fr.is_topk else 'multi-term'}"
                )

    def _compilation_for(
        self, plan, arrays: Mapping[str, np.ndarray], gpu: object,
        rows: int = 1, opt_level: object = None,
    ) -> _TileCompilation:
        self._check_supported(plan)
        gpu_spec = self._gpu_spec(gpu)
        level = self._opt_level(opt_level)
        length = next(iter(arrays.values())).shape[0]
        widths = tuple(
            arrays[name].shape[1] for name in plan.cascade.element_vars
        )
        key = (rows, length, widths, gpu_spec.name, "dense", level)
        return self._tile_cache(plan).get_or_create(
            key,
            lambda: self._compile(
                plan, rows, length, widths, gpu_spec, opt_level=level
            ),
        )

    @staticmethod
    def _masked_fused(fused):
        """A copy of the fused artifacts with masked contribution terms.

        Only ``gh`` changes (wrapped per :func:`_masked_tile_gh`); the
        correction ratios, dependency structure and reduction operators
        are untouched, so the masked program is the dense program plus
        one extra per-row input and a clamp per reduction.
        """
        import dataclasses as _dc

        from ..core.fused import FusedCascade
        from ..symbolic import make_evaluator

        reductions = []
        for fr in fused:
            masked_gh = _masked_tile_gh(fr.gh, fr.reduction.op_name)
            reductions.append(
                _dc.replace(fr, gh=masked_gh, _eval_gh=make_evaluator(masked_gh))
            )
        return FusedCascade(cascade=fused.cascade, reductions=tuple(reductions))

    def _compile(
        self, plan, rows: int, length: int, widths, gpu_spec,
        masked: bool = False, opt_level: object = None,
    ) -> _TileCompilation:
        from ..codegen.autotune import autotune
        from ..codegen.lower import CodegenSpec, ElementLayout, LoweringError
        from ..codegen.opt import optimize_programs
        from ..codegen.tensorize import (
            tensorize_multi_segment,
            tensorize_single_segment,
        )

        level = self._opt_level(opt_level)

        layouts = tuple(
            ElementLayout(name, width, per_row=(width == 1))
            for name, width in zip(plan.cascade.element_vars, widths)
        )
        fused = plan.fused
        if masked:
            fused = self._masked_fused(fused)
            layouts = layouts + (ElementLayout(TILE_MASK_VAR, 1, per_row=True),)
        spec = CodegenSpec(
            fused=fused, rows=rows, length=length, layouts=layouts
        )
        try:
            with tracing.span(
                "tile_compile", plan.cascade.name,
                rows=rows, length=length, gpu=gpu_spec.name, masked=masked,
            ):
                tuned = autotune(spec, gpu_spec, dtype="fp16", **TILE_TUNE_SPACE)
                if tuned.num_segments == 1:
                    programs = (tensorize_single_segment(spec, tuned.config),)
                else:
                    programs = tensorize_multi_segment(
                        spec, tuned.config, tuned.num_segments
                    )
                # Level 0 is the pre-optimizer behavior: unrewritten
                # programs, legacy overlap-heuristic estimate.  Levels
                # >= 1 run the pass pipeline over the tuner's winner and
                # re-cost it with the schedule-aware engine model, so
                # serving-path dispatch costing and autotune consumers
                # see the optimized estimate.
                latency = tuned.latency
                kernel_program = tuned.program
                opt_passes: tuple = ()
                if level > 0:
                    opt = optimize_programs(
                        programs,
                        gpu_spec,
                        opt_level=level,
                        dtype="fp16",
                        threads=tuned.config.threads,
                        pipeline_depth=tuned.config.pipeline_depth,
                    )
                    programs = opt.programs
                    latency = opt.latency_seconds
                    kernel_program = opt.kernels
                    opt_passes = opt.passes
        except LoweringError as err:
            raise BackendError(
                f"cascade {plan.cascade.name!r} is outside the tile_ir "
                f"backend's supported class: {err}"
            ) from err
        estimate = TileEstimate(
            gpu=gpu_spec.name,
            latency_seconds=latency,
            blk_rows=tuned.config.blk_rows,
            blk_len=tuned.config.blk_len,
            threads=tuned.config.threads,
            pipeline_depth=tuned.config.pipeline_depth,
            num_segments=tuned.num_segments,
            strategy=tuned.strategy,
            candidates_tried=tuned.candidates_tried,
            opt_level=level,
            opt_passes=opt_passes,
        )
        return _TileCompilation(spec, programs, estimate, kernel_program)


# ---------------------------------------------------------------------------
# sharded multi-device backend
# ---------------------------------------------------------------------------
@dataclass
class DeviceStats:
    """``Engine.stats``-style counters for one simulated device.

    ``busy_seconds`` is wall-clock time the device's worker spent inside
    the inner backend; ``simulated_seconds`` accumulates the gpusim cost
    model's attribution for the shards this device served, so benchmark
    reports can compare real interpreter time against what the modeled
    hardware would have charged.
    """

    device: int
    batches: int = 0
    queries: int = 0
    busy_seconds: float = 0.0
    simulated_seconds: float = 0.0

    def snapshot(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ShardEstimate:
    """Cost-model attribution for one sharded batch dispatch.

    ``latency_seconds`` is the modeled makespan: the slowest device's
    shard latency, since devices run concurrently.
    """

    gpu: str
    latency_seconds: float
    num_devices: int
    inner: str
    queries: int

    def snapshot(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class ShardedBackend(ExecutionBackend):
    """Split one batch across N simulated devices and merge the results.

    The batch axis is partitioned into contiguous shards
    (:func:`~repro.engine.batch.split_batch`); each shard executes the
    *inner* backend's batch path on its own worker thread (one per
    simulated device), and the per-shard outputs concatenate back into
    the full batch (:func:`~repro.engine.batch.merge_batch_outputs`).
    Because every ``shardable`` inner backend reduces strictly along the
    length axis, sharded results are bitwise identical to one
    whole-batch call of the inner backend.

    Per-device counters (:class:`DeviceStats`) record batches, queries,
    wall-clock busy time, and a gpusim latency attribution: each shard
    is modeled as one full pass over its input bytes on the requested
    GPU, and the batch's modeled makespan (slowest device) is surfaced
    via ``plan.describe()["sharded"]`` / :meth:`estimate_for`.
    """

    name = "sharded"
    capabilities = BackendCapabilities(
        requires_fusion=False, batchable=True, simulated=True, ragged=True
    )
    options = frozenset({"gpu", "inner"})

    #: fp16 element size used by the traffic attribution model.
    _ELEM_BYTES = 2.0

    def __init__(self, num_devices: int = 4, inner: str = "fused_tree") -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.num_devices = num_devices
        self.default_inner = inner
        self.devices = tuple(DeviceStats(device=d) for d in range(num_devices))
        self._stats_lock = threading.Lock()
        self._pool = None
        self._pool_pid = None
        self._pool_lock = threading.Lock()
        self._round_robin = 0

    # -- capability plumbing ------------------------------------------------
    def _inner_backend(self, inner: Optional[str]) -> ExecutionBackend:
        name = self.default_inner if inner is None else inner
        if name == self.name:
            raise ValueError("the sharded backend cannot shard itself")
        backend = get_backend(name)
        if not backend.capabilities.shardable:
            raise ValueError(
                f"backend {name!r} is not shardable; shardable backends: "
                f"{[n for n, b in registered_backends() if b.capabilities.shardable]}"
            )
        return backend

    def supports(self, plan) -> bool:
        """Support under the *default* inner backend.

        A per-call ``inner=`` override can widen this (e.g.
        ``inner="unfused"`` shards unfusable cascades); the flag
        reflects the backend as configured.
        """
        return self._inner_backend(None).supports(plan)

    def prepare(self, plan) -> None:
        # One-time costs stay with the inner backend's first execution:
        # the inner is a per-call option, so eagerly preparing the
        # default here would force fusion on plans a caller intends to
        # shard with inner="unfused".
        return None

    def _executor(self):
        from concurrent.futures import ThreadPoolExecutor

        with self._pool_lock:
            if self._pool is not None and self._pool_pid != os.getpid():
                # This backend instance lives in the process-global
                # registry, so a forked child inherits the executor
                # object but none of its worker threads — submitting to
                # it would queue forever.  Abandon the inherited shell
                # and build a fresh pool owned by this process.
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_devices,
                    thread_name_prefix="repro-device",
                )
                self._pool_pid = os.getpid()
            return self._pool

    # -- execution ----------------------------------------------------------
    @staticmethod
    def _inner_options(backend: ExecutionBackend, gpu: object) -> Dict[str, object]:
        """Forward ``gpu`` to inners that take it (e.g. ``tile_ir``)."""
        return {"gpu": gpu} if "gpu" in backend.options else {}

    def execute(self, plan, inputs, *, gpu: object = "A10", inner: Optional[str] = None, **params):
        """Single query: route to one device (round-robin), no split."""
        backend = self._inner_backend(inner)
        with self._stats_lock:
            device = self.devices[self._round_robin % self.num_devices]
            self._round_robin += 1
        start = monotonic_s()
        with tracing.span("shard", device=device.device, rows=1, inner=backend.name):
            out = backend.execute(
                plan, inputs, **self._inner_options(backend, gpu), **params
            )
        busy = monotonic_s() - start
        arrays = normalize_inputs(plan.cascade, dict(inputs))
        simulated = self._shard_latency(
            plan, self._gpu_spec(gpu), 1, next(iter(arrays.values())).shape[0],
            {name: arr.shape[1] for name, arr in arrays.items()},
        )
        with self._stats_lock:
            device.batches += 1
            device.queries += 1
            device.busy_seconds += busy
            device.simulated_seconds += simulated
        self._note_dispatch(
            plan, backend.name, self._gpu_spec(gpu).name, 1, 1, simulated,
            geometry=(
                1,
                next(iter(arrays.values())).shape[0],
                {name: arr.shape[1] for name, arr in arrays.items()},
            ),
        )
        return out

    def execute_batch(
        self,
        plan,
        batch_inputs,
        *,
        gpu: object = "A10",
        inner: Optional[str] = None,
        num_segments=4,
        branching=2,
        **_params,
    ):
        from .batch import merge_batch_outputs, normalize_batch_inputs, split_batch

        backend = self._inner_backend(inner)
        if not backend.capabilities.batchable:
            raise BackendError(
                f"inner backend {backend.name!r} does not support batched execution"
            )
        arrays, batch, length = normalize_batch_inputs(plan.cascade, batch_inputs)
        widths = {
            name: arrays[name].shape[2] for name in plan.cascade.element_vars
        }
        gpu_spec = self._gpu_spec(gpu)
        shards = split_batch(plan.cascade, arrays, self.num_devices)

        inner_options = self._inner_options(backend, gpu)
        # Worker threads can't see the scheduler thread's span stack, so
        # the dispatching span parents every shard span explicitly.
        parent_span = tracing.current_span_id()

        def run_shard(device: DeviceStats, rows, shard_arrays):
            start = monotonic_s()
            with tracing.span(
                "shard", parent_id=parent_span,
                device=device.device, rows=len(rows), inner=backend.name,
            ):
                out = backend.execute_batch(
                    plan, shard_arrays,
                    num_segments=num_segments, branching=branching,
                    **inner_options,
                )
            busy = monotonic_s() - start
            simulated = self._shard_latency(
                plan, gpu_spec, len(rows), length, widths
            )
            with self._stats_lock:
                device.batches += 1
                device.queries += len(rows)
                device.busy_seconds += busy
                device.simulated_seconds += simulated
            return out, simulated

        if len(shards) == 1:
            results = [run_shard(self.devices[0], shards[0][0], shards[0][1])]
        else:
            pool = self._executor()
            futures = [
                pool.submit(run_shard, self.devices[d], rows, shard_arrays)
                for d, (rows, shard_arrays) in enumerate(shards)
            ]
            results = [f.result() for f in futures]
        makespan = max(simulated for _out, simulated in results)
        self._note_dispatch(
            plan, backend.name, gpu_spec.name, len(shards), batch, makespan,
            geometry=(max(len(rows) for rows, _a in shards), length, widths),
        )
        return merge_batch_outputs([out for out, _simulated in results])

    def execute_ragged(
        self,
        plan,
        ragged,
        *,
        gpu: object = "A10",
        inner: Optional[str] = None,
        num_segments=4,
        branching=2,
        **_params,
    ):
        """Length-aware multi-device execution of a mixed-length batch.

        Rows are sorted by length and split into contiguous runs of
        similar total work, so each device's shard re-pads only to *its
        own* longest row — short-row shards do not pay for the batch's
        global maximum.  Uniform shards run the inner backend's dense
        batch path; mixed shards run its masked ragged path.  Outputs
        scatter back to the original row order.
        """
        from .batch import BatchTopKState, merge_batch_outputs

        backend = self._inner_backend(inner)
        if not backend.capabilities.batchable:
            raise BackendError(
                f"inner backend {backend.name!r} does not support batched execution"
            )
        gpu_spec = self._gpu_spec(gpu)
        widths = {name: arr.shape[2] for name, arr in ragged.arrays.items()}
        shards = self._length_aware_shards(ragged)
        if not backend.capabilities.ragged and any(
            not shard.is_uniform for _idx, shard in shards
        ):
            raise BackendError(
                f"inner backend {backend.name!r} does not support ragged "
                "batches; shards with mixed lengths cannot execute on it"
            )
        inner_options = self._inner_options(backend, gpu)
        parent_span = tracing.current_span_id()

        def run_shard(device: DeviceStats, indices, shard):
            start = monotonic_s()
            with tracing.span(
                "shard", parent_id=parent_span,
                device=device.device, rows=shard.batch, inner=backend.name,
                uniform=shard.is_uniform,
            ):
                if shard.is_uniform:
                    out = backend.execute_batch(
                        plan, shard.arrays,
                        num_segments=num_segments, branching=branching,
                        **inner_options,
                    )
                else:
                    out = backend.execute_ragged(
                        plan, shard,
                        num_segments=num_segments, branching=branching,
                        **inner_options,
                    )
            busy = monotonic_s() - start
            simulated = self._shard_latency(
                plan, gpu_spec, shard.batch, shard.max_length, widths
            )
            with self._stats_lock:
                device.batches += 1
                device.queries += shard.batch
                device.busy_seconds += busy
                device.simulated_seconds += simulated
            return out, simulated

        if len(shards) == 1:
            results = [run_shard(self.devices[0], shards[0][0], shards[0][1])]
        else:
            pool = self._executor()
            futures = [
                pool.submit(run_shard, self.devices[d], indices, shard)
                for d, (indices, shard) in enumerate(shards)
            ]
            results = [f.result() for f in futures]
        makespan = max(simulated for _out, simulated in results)
        self._note_dispatch(
            plan, backend.name, gpu_spec.name, len(shards), ragged.batch, makespan,
            geometry=(
                max(shard.batch for _idx, shard in shards),
                max(shard.max_length for _idx, shard in shards),
                widths,
            ),
        )
        # per-device trimming is the padding win: charge what actually ran
        executed = sum(shard.batch * shard.max_length for _idx, shard in shards)
        plan._record_padding(self.name, ragged.useful_positions, executed)

        # merge in shard order, then scatter back to the submitted order
        merged = merge_batch_outputs([out for out, _simulated in results])
        order = np.concatenate([indices for indices, _shard in shards])
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.shape[0])
        final: Dict[str, object] = {}
        for name, value in merged.items():
            if isinstance(value, BatchTopKState):
                final[name] = BatchTopKState(
                    values=value.values[inverse], indices=value.indices[inverse]
                )
            else:
                final[name] = np.asarray(value)[inverse]
        return final

    def _length_aware_shards(self, ragged):
        """Contiguous runs of the length-sorted rows, balanced by work.

        Sorting descending groups similar lengths together (minimal
        re-padding per shard); the greedy boundary walk aims each shard
        at an equal share of the total valid positions so the makespan
        stays balanced even though long rows cluster.
        """
        order = np.argsort(-ragged.lengths, kind="stable")
        lengths = ragged.lengths[order]
        n = order.shape[0]
        parts = min(self.num_devices, n)
        shards = []
        start = 0
        remaining_total = float(lengths.sum())
        for part in range(parts):
            parts_left = parts - part
            if parts_left == 1:
                stop = n
            else:
                target = remaining_total / parts_left
                stop = start + 1
                acc = float(lengths[start])
                # keep at least one row for every remaining shard
                while stop < n - (parts_left - 1) and acc + float(
                    lengths[stop]
                ) <= target:
                    acc += float(lengths[stop])
                    stop += 1
            indices = order[start:stop]
            remaining_total -= float(lengths[start:stop].sum())
            shards.append((indices, ragged.take(indices)))
            start = stop
        return shards

    # -- attribution --------------------------------------------------------
    @staticmethod
    def _gpu_spec(gpu: object):
        return TileIRBackend._gpu_spec(gpu)

    def shard_kernel(
        self, plan, queries: int, length: int, widths: Mapping[str, int]
    ):
        """The :class:`~repro.gpusim.kernel.KernelSpec` modeling one shard.

        The shard is modeled as one memory-bound kernel reading every
        element of the shard once per reduction stage and writing the
        per-query outputs — the first-order traffic of the fused tree.
        Exposed so the bottleneck profiler (:mod:`repro.obs.profile`) can
        attribute a sharded dispatch to simulated engines with the exact
        kernel the latency attribution used.
        """
        from ..gpusim.kernel import KernelSpec

        stages = len(plan.cascade.reductions)
        elems = queries * length * sum(widths.values())
        return KernelSpec(
            name=f"{plan.cascade.name}_shard",
            grid=max(1, queries),
            bytes_read=elems * self._ELEM_BYTES,
            bytes_written=queries * stages * self._ELEM_BYTES,
            flops=float(elems) * 2.0 * stages,
        )

    def _shard_latency(
        self, plan, gpu_spec, queries: int, length: int, widths: Mapping[str, int]
    ) -> float:
        """Modeled seconds for one shard (see :meth:`shard_kernel`)."""
        from ..gpusim.costmodel import ResourceError, kernel_latency

        kernel = self.shard_kernel(plan, queries, length, widths)
        try:
            return kernel_latency(gpu_spec, kernel)
        except ResourceError:  # pragma: no cover - default footprint fits
            return 0.0

    def _note_dispatch(
        self, plan, inner: str, gpu_name: str, devices_used: int,
        queries: int, makespan: float, geometry=None,
    ) -> None:
        """Record the dispatch on the plan (read back by ``describe``)."""
        with plan._state_lock:
            state = plan.backend_state.setdefault(
                self.name, {"batches": 0, "queries": 0, "estimates": {}}
            )
            state["batches"] += 1
            state["queries"] += queries
            state["estimates"][gpu_name] = ShardEstimate(
                gpu=gpu_name,
                latency_seconds=makespan,
                num_devices=devices_used,
                inner=inner,
                queries=queries,
            )
            if geometry is not None:
                # (queries, length, widths) of the latest dispatch, kept so
                # the bottleneck profiler can rebuild the shard kernel.
                state["last_geometry"] = geometry

    def device_snapshots(self) -> Tuple[Dict[str, object], ...]:
        """Point-in-time per-device counters (for reports/benchmarks)."""
        with self._stats_lock:
            return tuple(device.snapshot() for device in self.devices)

    def describe(self, plan) -> Optional[Dict[str, object]]:
        with plan._state_lock:
            state = plan.backend_state.get(self.name)
            if state is None:
                return None
            return {
                "batches": state["batches"],
                "queries": state["queries"],
                "num_devices": self.num_devices,
                "estimates": {
                    gpu: est.snapshot() for gpu, est in state["estimates"].items()
                },
            }

    def estimate_for(self, plan, gpu: object = "A10") -> Optional[ShardEstimate]:
        gpu_name = self._gpu_spec(gpu).name
        with plan._state_lock:
            state = plan.backend_state.get(self.name)
            if state is None:
                return None
            return state["estimates"].get(gpu_name)


# built-ins register at import time, in the order users should see them
register_backend(UnfusedBackend())
register_backend(FusedTreeBackend())
register_backend(IncrementalBackend())
register_backend(TileIRBackend())
register_backend(ShardedBackend())
