"""Fusion plans: the compile-once half of compile-once/execute-many.

A :class:`FusionPlan` freezes everything ACRF derives for one cascade
*structure* — the G/H decompositions, combine operators, simplified
fused/correction expressions and the chosen execution mode — behind a
:func:`cascade_signature`.  Compiling a plan is the expensive step
(symbolic decomposition, simplification, randomized equivalence
checking); executing one dispatches through the pluggable backend
registry (:mod:`repro.engine.backends`): the three NumPy reference
backends plus the simulated-kernel ``tile_ir`` backend, with room for
future ones (sharded, async, persisted).  The serving engine keys plans
by signature (:mod:`repro.engine.cache`) so that every request after the
first for a given cascade shape skips symbolic work entirely.

Fusion artifacts are materialized lazily and exactly once: a plan built
for unfused-only execution never pays for ACRF, while the first fused
execution compiles under the plan's lock.  Every symbolic compilation
(successful or not) bumps the module-level counter exposed via
:func:`fusion_compile_count`, which benchmarks and tests use to assert
that cache hits are symbolic-work-free.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import Counter
from typing import Dict, Mapping, Optional

from ..core.acrf import NotFusableError
from ..core.fused import FusedCascade, compile_fused
from ..core.spec import Cascade
from ..obs import tracing
from ..obs.clock import monotonic_s
from .backends import available_backends, registered_backends, resolve_backend
from .bounded import BoundedCache

#: Execution modes a plan can dispatch to (snapshot of the built-in
#: registry plus ``"auto"``; late-registered backends are equally
#: selectable — :func:`repro.engine.backends.available_backends` is the
#: live list).
EXECUTION_MODES = ("auto",) + available_backends()

#: Sentinel distinguishing "argument not given" from an explicit None
#: (``branching=None`` legitimately means "merge all segments flat").
_UNSET = object()


def cascade_signature(cascade: Cascade) -> str:
    """Stable structural fingerprint of a cascade specification.

    Two :class:`Cascade` objects built independently from the same spec
    (name, element variables, and per-reduction name/operator/k/mapping
    function) share a signature, so they share a plan.  The fingerprint
    relies on the canonical ``repr`` of the immutable expression trees.
    """
    parts = [cascade.name, ",".join(cascade.element_vars)]
    for red in cascade.reductions:
        parts.append(f"{red.name}|{red.op_name}|{red.topk or 0}|{red.fn!r}")
    blob = "\n".join(parts).encode()
    return hashlib.sha256(blob).hexdigest()[:20]


_COUNTER_LOCK = threading.Lock()
_FUSION_COMPILES = 0


def fusion_compile_count() -> int:
    """Total symbolic compilations (ACRF runs) performed so far."""
    with _COUNTER_LOCK:
        return _FUSION_COMPILES


def _record_fusion_compile() -> None:
    global _FUSION_COMPILES
    with _COUNTER_LOCK:
        _FUSION_COMPILES += 1


class FusionPlan:
    """Executable plan for one cascade structure.

    Lifecycle: ``plan = engine.plan_for(cascade)`` (cheap — signature
    hash + cache lookup), then ``plan.execute(inputs)`` per query,
    ``plan.execute_batch(batch)`` for many independent queries, or
    ``plan.stream()`` for stateful streaming clients.  The fused
    artifacts compile lazily on first fused use and are then frozen.

    Execution routes through the backend registry
    (:mod:`repro.engine.backends`); per-backend execution counts and
    backend-specific annotations (e.g. ``tile_ir`` cost estimates) are
    surfaced by :meth:`describe`.  ``max_batch_executors`` bounds the
    per-plan cache of :class:`~repro.engine.batch.BatchExecutor` objects
    (oldest evicted first), so serving loops that derive batch
    parameters from request sizes cannot grow plan state without bound.
    """

    #: Bound on cached BatchExecutors per plan (oldest evicted first).
    max_batch_executors = 32

    def __init__(
        self,
        cascade: Cascade,
        signature: Optional[str] = None,
        fused: Optional[FusedCascade] = None,
        num_segments: int = 4,
        branching: Optional[int] = 2,
        chunk_len: int = 64,
    ) -> None:
        self.cascade = cascade
        # Computed lazily: wrapper paths (FusionPlan.from_fused per call
        # in run_fused_tree/run_incremental) never need the hash.
        self._signature = signature
        self.num_segments = num_segments
        self.branching = branching
        self.chunk_len = chunk_len
        self.compile_seconds: Optional[float] = 0.0 if fused is not None else None
        self._fused = fused
        self._fusion_error: Optional[NotFusableError] = None
        self._compile_sinks: list = []
        # True once compile sinks have been (or need no longer be)
        # notified for the existing artifacts; plans constructed already
        # compiled notify late-attached sinks directly.
        self._sinks_notified = fused is not None
        self._lock = threading.Lock()
        #: Scratch area backends use for per-plan compiled state (e.g.
        #: the tile_ir program cache), keyed by backend name.
        self.backend_state: Dict[str, object] = {}
        self._state_lock = threading.Lock()
        self._execution_counts: "Counter[str]" = Counter()
        self._execution_sinks: list = []
        #: Ragged-execution padding accounting per backend name:
        #: [useful positions, padded positions actually executed].
        self._padding_counts: Dict[str, list] = {}
        self._batch_executors = BoundedCache(self.max_batch_executors)

    @classmethod
    def from_fused(cls, fused: FusedCascade, **kwargs) -> "FusionPlan":
        """Wrap an already-compiled :class:`FusedCascade` (no recompile)."""
        return cls(fused.cascade, fused=fused, **kwargs)

    @classmethod
    def restored(
        cls,
        cascade: Cascade,
        signature: str,
        *,
        fused: Optional[FusedCascade] = None,
        fusion_error: Optional[NotFusableError] = None,
        compile_seconds: Optional[float] = None,
        **kwargs,
    ) -> "FusionPlan":
        """Rebuild a plan from persisted artifacts (no symbolic work).

        Used by :class:`~repro.engine.store.PlanStore`: either ``fused``
        (a reconstructed :class:`FusedCascade`) or ``fusion_error`` (the
        memoized "not fusable" outcome) seeds the plan already-compiled,
        so the first fused access performs zero ACRF runs and the
        module-level :func:`fusion_compile_count` does not move.
        ``compile_seconds`` carries the *original* compile cost for
        reporting; it defaults to 0.0 (a restore costs no symbolic time).
        """
        plan = cls(cascade, signature=signature, fused=fused, **kwargs)
        if fusion_error is not None:
            plan._fusion_error = fusion_error
            plan._sinks_notified = True
        plan.compile_seconds = 0.0 if compile_seconds is None else compile_seconds
        return plan

    @property
    def signature(self) -> str:
        """Structural signature (computed on first use, then frozen)."""
        if self._signature is None:
            self._signature = cascade_signature(self.cascade)
        return self._signature

    # -- compilation --------------------------------------------------------
    @property
    def fused(self) -> FusedCascade:
        """The fused artifacts; compiled exactly once, on first access.

        Raises :class:`NotFusableError` (memoized, so the failed symbolic
        analysis also runs only once) when the cascade cannot be fused.
        """
        if self._fused is None and self._fusion_error is None:
            newly_compiled = False
            with self._lock:
                if self._fused is None and self._fusion_error is None:
                    with tracing.span("plan", "fuse", cascade=self.cascade.name):
                        start = monotonic_s()
                        try:
                            self._fused = compile_fused(self.cascade)
                        except NotFusableError as err:
                            self._fusion_error = err
                        finally:
                            _record_fusion_compile()
                            self.compile_seconds = monotonic_s() - start
                            newly_compiled = True
            if newly_compiled:
                # Outside the plan lock: sinks (e.g. the plan store's
                # artifact writer) may do I/O, and the artifacts are
                # frozen by now.  Exactly the winning thread fires them;
                # the notified flag and the snapshot move together so a
                # concurrent attach fires each sink exactly once.
                with self._state_lock:
                    self._sinks_notified = True
                    sinks = tuple(self._compile_sinks)
                for sink in sinks:
                    sink(self)
        if self._fusion_error is not None:
            # Fresh copy per raise: re-raising one shared instance would
            # grow its traceback chain and race across threads.
            raise copy.copy(self._fusion_error).with_traceback(None)
        return self._fused

    @property
    def is_compiled(self) -> bool:
        """True once the symbolic analysis has run (either way)."""
        return self._fused is not None or self._fusion_error is not None

    @property
    def fusable(self) -> bool:
        """Whether the cascade admits fused/incremental execution."""
        try:
            self.fused
        except NotFusableError:
            return False
        return True

    @property
    def default_mode(self) -> str:
        return "fused_tree" if self.fusable else "unfused"

    def attach_compile_sink(self, sink) -> None:
        """Call ``sink(plan)`` once, right after the first symbolic compile.

        Fires for failed analyses too (the ``not_fusable`` outcome is
        also worth persisting), on the thread that won the compile race,
        outside the plan lock.  Attaching after the plan is already
        compiled fires the sink immediately — the caller wants the
        artifact persisted either way.  Sinks must not raise; the plan
        store's writer reports failures through its own counters.
        """
        fire = False
        with self._state_lock:
            if sink not in self._compile_sinks:
                self._compile_sinks.append(sink)
                # Fire late attachments only once the compile path has
                # notified (or never will, for plans born compiled) —
                # otherwise the winning thread's snapshot covers us.
                fire = self._sinks_notified
        if fire:
            sink(self)

    # -- execution ----------------------------------------------------------
    def attach_execution_sink(self, sink) -> None:
        """Mirror every recorded execution into ``sink(backend_name)``.

        The owning :class:`~repro.engine.cache.PlanCache` attaches its
        engine-level totals counter here, so executions recorded on a
        plan keep counting even after the plan is evicted from the cache
        (e.g. a long-lived stream session feeding an evicted plan).
        """
        with self._state_lock:
            if sink not in self._execution_sinks:
                self._execution_sinks.append(sink)

    def _record_execution(self, backend_name: str) -> None:
        with self._state_lock:
            self._execution_counts[backend_name] += 1
            sinks = tuple(self._execution_sinks)
        for sink in sinks:  # outside the lock: sinks take their own
            sink(backend_name)

    @property
    def execution_counts(self) -> Dict[str, int]:
        """Successful executions served by this plan, per backend name."""
        with self._state_lock:
            return dict(self._execution_counts)

    def _record_padding(self, backend_name: str, useful: int, padded: int) -> None:
        """Account one ragged dispatch's padding overhead for a backend.

        ``useful`` is the sum of the true per-row lengths; ``padded`` is
        the number of positions the backend actually executed (its padded
        footprint — a length-aware backend may execute fewer than
        ``B * L_max``).
        """
        with self._state_lock:
            counts = self._padding_counts.setdefault(backend_name, [0, 0])
            counts[0] += int(useful)
            counts[1] += int(padded)

    @property
    def padding_counts(self) -> Dict[str, Dict[str, object]]:
        """Per-backend padding efficiency of ragged executions.

        ``useful_positions / padded_positions`` — 1.0 means every
        executed position carried real data (no padding waste).
        """
        with self._state_lock:
            snapshot = {name: tuple(c) for name, c in self._padding_counts.items()}
        return {
            name: {
                "useful_positions": useful,
                "padded_positions": padded,
                "efficiency": useful / padded if padded else 1.0,
            }
            for name, (useful, padded) in snapshot.items()
        }

    def execute(
        self,
        inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        *,
        num_segments: Optional[int] = None,
        branching: object = _UNSET,
        chunk_len: Optional[int] = None,
        base_index: int = 0,
        **backend_options,
    ) -> Dict[str, object]:
        """Run one query through the plan in the requested mode.

        ``mode`` names a registered execution backend (see
        :data:`EXECUTION_MODES`); ``"auto"`` picks fused-tree execution
        when the cascade is fusable and falls back to the unfused chain
        otherwise.  Unknown names raise ``ValueError`` before any
        symbolic compilation happens.  Extra keyword options are passed
        through to the backend (e.g. ``gpu="H800"`` for ``tile_ir``);
        options the backend does not declare raise ``TypeError``.
        """
        backend = resolve_backend(mode, self)
        backend.check_options(backend_options)
        outputs = backend.execute(
            self,
            inputs,
            num_segments=self.num_segments if num_segments is None else num_segments,
            branching=self.branching if branching is _UNSET else branching,
            chunk_len=self.chunk_len if chunk_len is None else chunk_len,
            base_index=base_index,
            **backend_options,
        )
        self._record_execution(backend.name)
        return outputs

    def batch_executor(
        self,
        mode: Optional[str] = "auto",
        *,
        num_segments: Optional[int] = None,
        branching: object = _UNSET,
    ) -> "BatchExecutor":
        """The plan's cached :class:`BatchExecutor` for these parameters.

        Executors are constructed at most once per (resolved mode,
        num_segments, branching) — concurrent first requests deduplicate
        via :class:`~repro.engine.bounded.BoundedCache` — and reused by
        every :meth:`execute_batch` call, so hot batch paths skip
        re-resolving the backend and re-checking fusability.
        """
        from .batch import BatchExecutor

        backend = resolve_backend(mode, self)  # validates before any compile
        num_segments = self.num_segments if num_segments is None else num_segments
        branching = self.branching if branching is _UNSET else branching
        key = (backend.name, num_segments, branching)
        return self._batch_executors.get_or_create(
            key,
            lambda: BatchExecutor(
                self, mode=backend.name,
                num_segments=num_segments, branching=branching,
            ),
        )

    def execute_batch(
        self,
        batch_inputs: Mapping[str, object],
        *,
        mode: str = "auto",
        num_segments: Optional[int] = None,
        branching: object = _UNSET,
        **backend_options,
    ) -> Dict[str, object]:
        """Vectorized execution of many independent queries (leading batch axis)."""
        executor = self.batch_executor(
            mode, num_segments=num_segments, branching=branching
        )
        return executor.run(batch_inputs, **backend_options)

    def stream(self) -> "StreamSession":
        """Open a stateful streaming session (Eq. 15/16, O(1) state)."""
        from .batch import StreamSession

        return StreamSession(self)

    # -- introspection ------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Summary dict for logs/benchmark reports.

        Includes per-backend execution counts (``"executions"``) and any
        backend-specific annotations (e.g. ``"tile_ir"`` cost-model
        estimates for every compiled tile-program variant).
        """
        info: Dict[str, object] = {
            "signature": self.signature,
            "cascade": self.cascade.name,
            "reductions": list(self.cascade.output_names),
            "compiled": self.is_compiled,
            "compile_seconds": self.compile_seconds,
            "executions": self.execution_counts,
        }
        padding = self.padding_counts
        if padding:
            info["padding"] = padding
        if self.is_compiled:
            info["fusable"] = self.fusable
            if self.fusable:
                info["default_mode"] = self.default_mode
                info["corrections"] = self.fused.needs_correction_count
        for name, backend in registered_backends():
            extra = backend.describe(self)
            if extra is not None:
                info[name] = extra
        return info

    def __repr__(self) -> str:
        return (
            f"FusionPlan({self.cascade.name!r}, signature={self.signature!r}, "
            f"compiled={self.is_compiled})"
        )
