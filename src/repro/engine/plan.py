"""Fusion plans: the compile-once half of compile-once/execute-many.

A :class:`FusionPlan` freezes everything ACRF derives for one cascade
*structure* — the G/H decompositions, combine operators, simplified
fused/correction expressions and the chosen execution mode — behind a
:func:`cascade_signature`.  Compiling a plan is the expensive step
(symbolic decomposition, simplification, randomized equivalence
checking); executing one is pure NumPy.  The serving engine therefore
keys plans by signature (:mod:`repro.engine.cache`) so that every
request after the first for a given cascade shape skips symbolic work
entirely.

Fusion artifacts are materialized lazily and exactly once: a plan built
for unfused-only execution never pays for ACRF, while the first fused
execution compiles under the plan's lock.  Every symbolic compilation
(successful or not) bumps the module-level counter exposed via
:func:`fusion_compile_count`, which benchmarks and tests use to assert
that cache hits are symbolic-work-free.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import time
from typing import Dict, Mapping, Optional

from ..core.acrf import NotFusableError
from ..core.fused import FusedCascade, compile_fused
from ..core.spec import Cascade

#: Execution modes a plan can dispatch to.
EXECUTION_MODES = ("auto", "unfused", "fused_tree", "incremental")

#: Sentinel distinguishing "argument not given" from an explicit None
#: (``branching=None`` legitimately means "merge all segments flat").
_UNSET = object()


def cascade_signature(cascade: Cascade) -> str:
    """Stable structural fingerprint of a cascade specification.

    Two :class:`Cascade` objects built independently from the same spec
    (name, element variables, and per-reduction name/operator/k/mapping
    function) share a signature, so they share a plan.  The fingerprint
    relies on the canonical ``repr`` of the immutable expression trees.
    """
    parts = [cascade.name, ",".join(cascade.element_vars)]
    for red in cascade.reductions:
        parts.append(f"{red.name}|{red.op_name}|{red.topk or 0}|{red.fn!r}")
    blob = "\n".join(parts).encode()
    return hashlib.sha256(blob).hexdigest()[:20]


_COUNTER_LOCK = threading.Lock()
_FUSION_COMPILES = 0


def fusion_compile_count() -> int:
    """Total symbolic compilations (ACRF runs) performed so far."""
    with _COUNTER_LOCK:
        return _FUSION_COMPILES


def _record_fusion_compile() -> None:
    global _FUSION_COMPILES
    with _COUNTER_LOCK:
        _FUSION_COMPILES += 1


class FusionPlan:
    """Executable plan for one cascade structure.

    Lifecycle: ``plan = engine.plan_for(cascade)`` (cheap — signature
    hash + cache lookup), then ``plan.execute(inputs)`` per query,
    ``plan.execute_batch(batch)`` for many independent queries, or
    ``plan.stream()`` for stateful streaming clients.  The fused
    artifacts compile lazily on first fused use and are then frozen.
    """

    def __init__(
        self,
        cascade: Cascade,
        signature: Optional[str] = None,
        fused: Optional[FusedCascade] = None,
        num_segments: int = 4,
        branching: Optional[int] = 2,
        chunk_len: int = 64,
    ) -> None:
        self.cascade = cascade
        # Computed lazily: wrapper paths (FusionPlan.from_fused per call
        # in run_fused_tree/run_incremental) never need the hash.
        self._signature = signature
        self.num_segments = num_segments
        self.branching = branching
        self.chunk_len = chunk_len
        self.compile_seconds: Optional[float] = 0.0 if fused is not None else None
        self._fused = fused
        self._fusion_error: Optional[NotFusableError] = None
        self._lock = threading.Lock()

    @classmethod
    def from_fused(cls, fused: FusedCascade, **kwargs) -> "FusionPlan":
        """Wrap an already-compiled :class:`FusedCascade` (no recompile)."""
        return cls(fused.cascade, fused=fused, **kwargs)

    @property
    def signature(self) -> str:
        """Structural signature (computed on first use, then frozen)."""
        if self._signature is None:
            self._signature = cascade_signature(self.cascade)
        return self._signature

    # -- compilation --------------------------------------------------------
    @property
    def fused(self) -> FusedCascade:
        """The fused artifacts; compiled exactly once, on first access.

        Raises :class:`NotFusableError` (memoized, so the failed symbolic
        analysis also runs only once) when the cascade cannot be fused.
        """
        if self._fused is None and self._fusion_error is None:
            with self._lock:
                if self._fused is None and self._fusion_error is None:
                    start = time.perf_counter()
                    try:
                        self._fused = compile_fused(self.cascade)
                    except NotFusableError as err:
                        self._fusion_error = err
                    finally:
                        _record_fusion_compile()
                        self.compile_seconds = time.perf_counter() - start
        if self._fusion_error is not None:
            # Fresh copy per raise: re-raising one shared instance would
            # grow its traceback chain and race across threads.
            raise copy.copy(self._fusion_error).with_traceback(None)
        return self._fused

    @property
    def is_compiled(self) -> bool:
        """True once the symbolic analysis has run (either way)."""
        return self._fused is not None or self._fusion_error is not None

    @property
    def fusable(self) -> bool:
        """Whether the cascade admits fused/incremental execution."""
        try:
            self.fused
        except NotFusableError:
            return False
        return True

    @property
    def default_mode(self) -> str:
        return "fused_tree" if self.fusable else "unfused"

    # -- execution ----------------------------------------------------------
    def execute(
        self,
        inputs: Mapping[str, object],
        mode: Optional[str] = "auto",
        *,
        num_segments: Optional[int] = None,
        branching: object = _UNSET,
        chunk_len: Optional[int] = None,
        base_index: int = 0,
    ) -> Dict[str, object]:
        """Run one query through the plan in the requested mode.

        ``mode`` is one of :data:`EXECUTION_MODES`; ``"auto"`` picks
        fused-tree execution when the cascade is fusable and falls back
        to the unfused chain otherwise.
        """
        from ..core import executor as _executor

        if mode is None or mode == "auto":
            mode = self.default_mode
        if mode == "unfused":
            return _executor.unfused_impl(self.cascade, inputs, base_index)
        if mode == "fused_tree":
            return _executor.fused_tree_impl(
                self.fused,
                inputs,
                self.num_segments if num_segments is None else num_segments,
                self.branching if branching is _UNSET else branching,
            )
        if mode == "incremental":
            return _executor.incremental_impl(
                self.fused,
                inputs,
                self.chunk_len if chunk_len is None else chunk_len,
            )
        raise ValueError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        )

    def execute_batch(
        self,
        batch_inputs: Mapping[str, object],
        *,
        mode: str = "auto",
        num_segments: Optional[int] = None,
        branching: object = _UNSET,
    ) -> Dict[str, object]:
        """Vectorized execution of many independent queries (leading batch axis)."""
        from .batch import BatchExecutor

        executor = BatchExecutor(
            self,
            mode=mode,
            num_segments=self.num_segments if num_segments is None else num_segments,
            branching=self.branching if branching is _UNSET else branching,
        )
        return executor.run(batch_inputs)

    def stream(self) -> "StreamSession":
        """Open a stateful streaming session (Eq. 15/16, O(1) state)."""
        from .batch import StreamSession

        return StreamSession(self)

    # -- introspection ------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Summary dict for logs/benchmark reports."""
        info: Dict[str, object] = {
            "signature": self.signature,
            "cascade": self.cascade.name,
            "reductions": list(self.cascade.output_names),
            "compiled": self.is_compiled,
            "compile_seconds": self.compile_seconds,
        }
        if self.is_compiled:
            info["fusable"] = self.fusable
            if self.fusable:
                info["default_mode"] = self.default_mode
                info["corrections"] = self.fused.needs_correction_count
        return info

    def __repr__(self) -> str:
        return (
            f"FusionPlan({self.cascade.name!r}, signature={self.signature!r}, "
            f"compiled={self.is_compiled})"
        )
