"""A small bounded cache with exactly-once construction per key.

Shared by the per-plan executor cache (:meth:`FusionPlan.batch_executor`)
and the ``tile_ir`` backend's per-geometry program cache, so the
lock/build/evict idiom exists once.  The in-flight dedup mirrors
:class:`~repro.engine.cache.PlanCache`: concurrent first requests for
one key build the value exactly once (losers wait on an event and then
take the hit path), and a failed build wakes the waiters so one of them
retries.  Insertion order is the eviction order (oldest first) once
``maxsize`` is exceeded; the just-inserted key is never evicted.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, TypeVar

V = TypeVar("V")


class BoundedCache:
    """Insert-order-bounded mapping with per-key in-flight deduplication."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._items: Dict[Hashable, object] = {}
        self._inflight: Dict[Hashable, threading.Event] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._items

    def snapshot(self) -> Dict[Hashable, object]:
        """Point-in-time copy of the cached items (for introspection)."""
        with self._lock:
            return dict(self._items)

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """The cached value for ``key``, built by ``factory`` at most once."""
        while True:
            with self._lock:
                if key in self._items:
                    return self._items[key]
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break
            event.wait()

        try:
            value = factory()
        except BaseException:
            with self._lock:
                event = self._inflight.pop(key)
            event.set()
            raise
        with self._lock:
            self._items[key] = value
            while len(self._items) > self.maxsize:
                evict = next(k for k in self._items if k != key)
                del self._items[evict]
            event = self._inflight.pop(key)
        event.set()
        return value
