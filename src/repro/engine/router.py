"""Signature-sticky, depth-balanced request router over a worker pool.

The :class:`Router` is the front end of the multi-process serving tier:
it exposes the same ``submit(cascade, inputs, mode, *, tenant, priority,
deadline_s, ...) -> Future`` surface as
:class:`~repro.engine.serving.ServingEngine` (so
:func:`repro.harness.traffic.replay` drives it unchanged), and decides
*which* worker executes each request:

* **sticky by cascade signature** — the structural
  :func:`~repro.engine.plan.cascade_signature` hashes to a home worker,
  so every request for one cascade shape lands on the same process and
  its plan cache / batch-executor cache stay hot (requests for the same
  shape also micro-batch together there);
* **queue-depth balanced** — when the home worker's outstanding depth
  exceeds the lightest worker's by more than ``imbalance``, the request
  spills to the least-loaded live worker instead (stickiness is a
  throughput optimization, never a hot-spot sentence);
* **failure aware** — dead workers are skipped, a send that discovers a
  dead worker fails over to the next candidate, and
  :meth:`check_workers` restarts dead slots (warm from the shared plan
  store).

Tenant / priority class / deadline pass through verbatim, so the SLA
scheduler (PR 7) enforces exactly the same policy per worker as it does
in process.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..obs.metrics import MetricsRegistry, Sample
from .plan import cascade_signature
from .pool import WorkerError, WorkerPool
from .serving import priority_index

#: ``serving`` snapshot keys that aggregate by summation across workers.
_SUM_KEYS = (
    "submitted", "completed", "failed", "shed", "evicted", "cancelled",
    "deadline_misses", "queue_depth", "batches", "batched_requests",
    "ragged_batches", "useful_positions", "padded_positions",
)
#: ``serving`` snapshot keys that aggregate by maximum across workers.
_MAX_KEYS = ("peak_queue_depth", "max_batch_size")


class RouterStats:
    """Routing-decision counters (thread-safe, monotonic)."""

    def __init__(self, num_workers: int) -> None:
        self._lock = threading.Lock()
        self.routed = [0] * num_workers
        self.sticky = 0
        self.spilled = 0
        self.failover = 0

    def note(self, index: int, *, sticky: bool, failover: bool = False) -> None:
        with self._lock:
            self.routed[index] += 1
            if failover:
                self.failover += 1
            elif sticky:
                self.sticky += 1
            else:
                self.spilled += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            routed = list(self.routed)
            sticky, spilled, failover = self.sticky, self.spilled, self.failover
        total = sum(routed)
        return {
            "routed": total,
            "sticky": sticky,
            "spilled": spilled,
            "failover": failover,
            "sticky_rate": sticky / total if total else 1.0,
            "by_worker": {f"w{i}": n for i, n in enumerate(routed)},
        }


def pick_worker(
    signature: str,
    outstanding: Sequence[int],
    alive: Sequence[bool],
    imbalance: int,
) -> int:
    """Pure routing decision, exposed for direct testing.

    Returns the worker index for a request with the given cascade
    signature: the signature's home worker when it is alive and within
    ``imbalance`` of the lightest live worker's outstanding depth,
    otherwise the least-loaded live worker (ties to the lowest index).
    Raises :class:`WorkerError` when no worker is alive.
    """
    live = [i for i, ok in enumerate(alive) if ok]
    if not live:
        raise WorkerError("no live workers")
    home = int(signature[:8], 16) % len(alive)
    lightest = min(live, key=lambda i: (outstanding[i], i))
    if alive[home] and outstanding[home] <= outstanding[lightest] + imbalance:
        return home
    return lightest


class Router:
    """Load-balancing front end with the ``ServingEngine.submit`` surface.

    ``imbalance`` is the stickiness budget: how many more outstanding
    requests the home worker may carry than the lightest worker before a
    request spills.  0 is pure least-loaded; large values are pure
    sticky.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        imbalance: int = 8,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if imbalance < 0:
            raise ValueError("imbalance must be >= 0")
        self.pool = pool
        self.imbalance = imbalance
        self.stats = RouterStats(pool.num_workers)
        self.registry = registry or MetricsRegistry()
        self.registry.register_collector(self._collect_samples)
        self.registry.register_collector(pool.collect_samples)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Router":
        self.pool.start()
        return self

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.pool.close()

    def drain(self, timeout: float = 120.0) -> None:
        """Block until every worker's scheduler is empty."""
        self.pool.drain(timeout)

    # -- client API ---------------------------------------------------------
    def submit(self, cascade, inputs, mode: str = "auto", **kwargs):
        """Route one request; returns the worker's Future.

        Keyword arguments (``tenant=``, ``priority=``, ``deadline_s=``,
        backend options, chunking parameters) pass through to the chosen
        worker's scheduler unchanged.  When every worker is dead this
        raises :class:`WorkerError` synchronously, like a closed serving
        runtime would.
        """
        # validate SLA attributes eagerly so a bad value raises here, as
        # ServingEngine.submit does, instead of inside the remote worker
        if "priority" in kwargs:
            priority_index(kwargs["priority"])
        deadline_s = kwargs.get("deadline_s")
        if deadline_s is not None and not float(deadline_s) > 0:
            raise ValueError("deadline_s must be > 0")
        signature = cascade_signature(cascade)
        tried: List[int] = []
        failover = False
        while True:
            outstanding = self.pool.outstanding()
            alive = list(self.pool.alive())
            for index in tried:
                alive[index] = False  # do not re-pick a worker that just failed
            index = pick_worker(signature, outstanding, alive, self.imbalance)
            sticky = index == int(signature[:8], 16) % len(alive)
            try:
                future = self.pool.submit_to(index, cascade, inputs, mode, **kwargs)
            except WorkerError:
                tried.append(index)
                failover = True
                continue
            self.stats.note(index, sticky=sticky, failover=failover)
            return future

    def run(self, cascade, inputs, mode: str = "auto", **kwargs):
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(cascade, inputs, mode, **kwargs).result()

    # -- health -------------------------------------------------------------
    def check_workers(self, *, restart: bool = True,
                      timeout: float = 5.0) -> List[bool]:
        """Ping every worker; optionally restart dead slots (warm).

        Returns post-check liveness.  Restarted workers warm-start from
        the shared plan store, so recovery costs no symbolic compiles.
        """
        health = self.pool.ping(timeout)
        if restart:
            for index, payload in enumerate(health):
                if payload is None:
                    self.pool.restart(index, drain=False)
        return self.pool.alive()

    # -- observability ------------------------------------------------------
    def _collect_samples(self):
        snap = self.stats.snapshot()
        yield Sample("router_requests_total", snap["routed"], kind="counter",
                     help="Requests routed")
        yield Sample("router_sticky_total", snap["sticky"], kind="counter",
                     help="Requests routed to their signature's home worker")
        yield Sample("router_spilled_total", snap["spilled"], kind="counter",
                     help="Requests spilled off a deep home worker")
        yield Sample("router_failover_total", snap["failover"], kind="counter",
                     help="Requests rerouted off a dead worker")
        for name in self.pool.workers():
            yield Sample("router_routed_total", snap["by_worker"][name],
                         (("worker", name),), kind="counter",
                         help="Requests routed per worker")

    def render_prometheus(self) -> str:
        """Router + per-worker rollup in Prometheus exposition format.

        Worker series come from the pool's cached stats (refresh with
        ``pool.stats()`` or :meth:`describe` before scraping for live
        values) relabeled with ``worker=<name>``.
        """
        return self.registry.render_prometheus()

    def attach_to(self, engine) -> None:
        """Roll this tier's stats into an engine's describe()/scrape.

        The engine's :meth:`~repro.engine.EngineStats.describe` gains a
        trailing ``"workers"`` namespace (cached worker sections plus a
        ``"router"`` entry) and its Prometheus scrape gains the
        worker-labeled series — with zero change to the single-process
        sections, so existing consumers parse both shapes.
        """
        engine.attach_worker_rollup(self.worker_sections)
        engine.metrics.register_collector(self._collect_samples)
        engine.metrics.register_collector(self.pool.collect_samples)

    def worker_sections(self) -> Dict[str, object]:
        """Cached per-worker stat sections, namespaced by worker name."""
        sections: Dict[str, object] = {}
        for name, payload in self.pool.cached_stats().items():
            section = {k: v for k, v in payload.items() if k != "samples"}
            sections[name] = section
        if sections:
            sections["router"] = self.stats.snapshot()
        return sections

    def describe(self) -> Dict[str, object]:
        """Aggregated tier stats in the ``EngineStats.describe`` shape.

        Top-level sections (``cache``, ``backend_executions``,
        ``serving``) sum the live per-worker numbers, so existing
        consumers read the tier exactly like a big single engine; the
        per-worker breakdown is namespaced under ``workers`` and routing
        decisions under ``router``.  Latency percentiles do not
        aggregate across processes and stay per worker.
        """
        workers = self.pool.stats()
        cache_total: Dict[str, float] = {}
        executions_total: Dict[str, int] = {}
        serving_total: Dict[str, float] = {}
        fusion_compiles = 0
        for payload in workers.values():
            if not payload.get("alive"):
                continue
            for key, value in payload.get("cache", {}).items():
                if isinstance(value, (int, float)) and key != "hit_rate":
                    cache_total[key] = cache_total.get(key, 0) + value
            for backend, count in payload.get("backend_executions", {}).items():
                executions_total[backend] = executions_total.get(backend, 0) + count
            serving = payload.get("serving", {})
            for key in _SUM_KEYS:
                if key in serving:
                    serving_total[key] = serving_total.get(key, 0) + serving[key]
            for key in _MAX_KEYS:
                if key in serving:
                    serving_total[key] = max(serving_total.get(key, 0), serving[key])
            fusion_compiles += int(payload.get("fusion_compiles", 0))
        requests = cache_total.get("hits", 0) + cache_total.get("misses", 0)
        if cache_total:
            cache_total["hit_rate"] = (
                cache_total.get("hits", 0) / requests if requests else 0.0
            )
        batches = serving_total.get("batches", 0)
        if serving_total:
            serving_total["mean_batch_size"] = (
                serving_total.get("batched_requests", 0) / batches if batches else 0.0
            )
            padded = serving_total.get("padded_positions", 0)
            serving_total["padding_efficiency"] = (
                serving_total.get("useful_positions", 0) / padded if padded else 1.0
            )
        info: Dict[str, object] = {
            "cache": cache_total,
            "backend_executions": executions_total,
            "serving": serving_total,
            "fusion_compiles": fusion_compiles,
            "workers": workers,
            "router": self.stats.snapshot(),
        }
        return info
